//! # inl — transformations for imperfectly nested loops
//!
//! Umbrella crate re-exporting the whole framework (a reproduction of
//! Kodukula & Pingali, *Transformations for Imperfectly Nested Loops*,
//! SC 1996). See the individual crates for details:
//!
//! * [`linalg`] — exact integer/rational linear algebra
//! * [`poly`] — affine constraints, Fourier–Motzkin, integer feasibility
//! * [`ir`] — the loop-nest intermediate representation
//! * [`core`] — instance vectors, dependences, transformations, legality,
//!   completion
//! * [`codegen`] — code generation from transformation matrices
//! * [`exec`] — interpreter, traces, equivalence checks, parallel executor
//! * [`vm`] — compiling bytecode VM, the fast second execution backend
//! * [`obs`] — pipeline observability: spans, counters, histograms, reports

pub use inl_codegen as codegen;
pub use inl_core as core;
pub use inl_exec as exec;
pub use inl_ir as ir;
pub use inl_linalg as linalg;
pub use inl_obs as obs;
pub use inl_poly as poly;
pub use inl_vm as vm;

/// Commonly used items, for `use inl::prelude::*`.
pub mod prelude {
    pub use inl_codegen::generate;
    pub use inl_core::depend::DependenceMatrix;
    pub use inl_core::instance::InstanceLayout;
    pub use inl_core::legal::check_legal;
    pub use inl_core::transform::Transform;
    pub use inl_exec::{Interpreter, Machine};
    pub use inl_ir::{Program, ProgramBuilder};
    pub use inl_linalg::{IMat, IVec};
}
