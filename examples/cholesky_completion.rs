//! §6's worked example: complete a partial transformation of full
//! (right-looking) Cholesky factorization into the traditional left-looking
//! form, generate the code, and validate against both the source and a
//! hand-written left-looking implementation.
//!
//! ```sh
//! cargo run --example cholesky_completion
//! ```

use inl::codegen::generate;
use inl::core::complete::complete_transform;
use inl::core::depend::analyze;
use inl::core::instance::InstanceLayout;
use inl::core::perstmt::schedule_all;
use inl::exec::equivalent;
use inl::ir::zoo;
use inl::linalg::IVec;

fn main() {
    let p = zoo::cholesky_kij();
    println!("== right-looking Cholesky (KIJ) ==\n{}", p.to_pseudocode());

    let layout = InstanceLayout::new(&p);
    let deps = analyze(&p, &layout).expect("analysis");
    println!(
        "instance vectors are {}-dimensional; {} dependence columns:\n{}",
        layout.len(),
        deps.deps.len(),
        deps.display()
    );

    // Partial transformation: make the position of the updated column (the
    // L loop's slot, which reaches S1/S2 through the diagonal padding) the
    // outermost loop. One row; the completion procedure does the rest.
    let l = p.loops().find(|&l| p.loop_decl(l).name == "L").unwrap();
    let partial = vec![IVec::unit(layout.len(), layout.loop_position(l))];
    println!("partial transformation: first row = unit selector of the L position\n");

    let completion = complete_transform(&p, &layout, &deps, &partial).expect("completable");
    println!("== completed matrix ==\n{}", completion.matrix);

    // Per-statement transformations: all non-singular, no augmentation
    // (the paper's §6 observation).
    let ast = completion.report.new_ast.as_ref().unwrap();
    let schedules = schedule_all(
        &p,
        &layout,
        ast,
        &completion.matrix,
        &deps,
        &completion.report,
    )
    .expect("schedulable");
    for s in &schedules {
        println!(
            "per-statement transform of {}: N_S =\n{}  (augmented rows: {})",
            p.stmt_decl(s.stmt).name,
            s.n_s,
            s.n_aug
        );
    }

    let result = generate(&p, &layout, &deps, &completion.matrix).expect("codegen");
    println!(
        "== generated left-looking program ==\n{}",
        result.program.to_pseudocode()
    );

    let spd = |_: &str, idx: &[usize]| {
        if idx[0] == idx[1] {
            (idx[0] + 10) as f64
        } else {
            1.0 / ((idx[0] + idx[1] + 2) as f64)
        }
    };
    for n in [2, 8, 32] {
        equivalent(&p, &result.program, &[n], &spd).expect("matches source");
        equivalent(&zoo::cholesky_left_looking(), &result.program, &[n], &spd)
            .expect("matches hand-written left-looking");
        println!("N = {n:3}: identical to source AND to hand-written left-looking ✓");
    }
}
