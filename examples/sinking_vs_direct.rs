//! The paper's §1/§4.1 argument, made runnable: the classical strategy —
//! sink every statement into the innermost loop, then transform the
//! resulting perfect nest — breaks down on exactly the loops the paper
//! cares about, while the direct instance-vector framework handles them.
//!
//! ```sh
//! cargo run --example sinking_vs_direct
//! ```

use inl::core::complete::complete_transform;
use inl::core::depend::analyze;
use inl::core::instance::InstanceLayout;
use inl::core::sink::{sink_statements, SinkError};
use inl::exec::equivalent;
use inl::ir::zoo;
use inl::linalg::IVec;

fn main() {
    // Case 1: a nest where sinking works — §2's running example. The
    // statement after the inner loop sinks with a "last iteration" guard.
    let p = zoo::running_example();
    println!("== {} ==\n{}", p.name(), p.to_pseudocode());
    match sink_statements(&p) {
        Ok(q) => {
            println!("sinks to a perfect nest:\n{}", q.to_pseudocode());
            equivalent(&p, &q, &[6], &|_, _| 0.0).expect("identical");
            println!("verified identical ✓\n");
        }
        Err(e) => println!("unexpected: {e:?}\n"),
    }

    // Case 2: simplified Cholesky — the inner loop J = I+1..N is EMPTY at
    // I = N, so the sunk pivot sqrt would never execute. Sinking must
    // refuse; the paper's framework transforms it directly.
    let p = zoo::simple_cholesky();
    println!("== {} ==\n{}", p.name(), p.to_pseudocode());
    match sink_statements(&p) {
        Err(SinkError::PossiblyEmptyRange(l)) => {
            println!("sinking REFUSED: loop {l} may have an empty range");
            println!("(at I = N the inner loop runs zero times — the sunk sqrt would be lost)\n");
        }
        other => println!("unexpected: {other:?}\n"),
    }

    // Case 3: full Cholesky — the outer loop has TWO loop children; no
    // perfect nest exists without loop distribution, and §1 notes
    // distribution is illegal for the factorizations. Direct completion
    // still permutes its loops.
    let p = zoo::cholesky_kij();
    println!("== {} ==\n{}", p.name(), p.to_pseudocode());
    match sink_statements(&p) {
        Err(SinkError::Branching(l)) => {
            println!("sinking IMPOSSIBLE: loop {l} has two loop children (needs distribution)");
        }
        other => println!("unexpected: {other:?}"),
    }
    let layout = InstanceLayout::new(&p);
    let deps = analyze(&p, &layout).expect("analysis");
    let l = p.loops().find(|&l| p.loop_decl(l).name == "L").unwrap();
    let partial = vec![IVec::unit(layout.len(), layout.loop_position(l))];
    let c = complete_transform(&p, &layout, &deps, &partial).expect("direct framework succeeds");
    let result = inl::codegen::generate(&p, &layout, &deps, &c.matrix).expect("codegen");
    println!(
        "\n…while the direct framework permutes it to left-looking form:\n{}",
        result.program.to_pseudocode()
    );
    let spd = |_: &str, idx: &[usize]| {
        if idx[0] == idx[1] {
            (idx[0] + 10) as f64
        } else {
            1.0 / ((idx[0] + idx[1] + 2) as f64)
        }
    };
    equivalent(&p, &result.program, &[12], &spd).expect("identical");
    println!("verified identical ✓");
}
