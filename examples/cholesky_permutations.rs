//! The paper's motivating claim (§1): "All six permutations of these three
//! loops compute the same result, but their performance, even on sequential
//! machines, can be quite different."
//!
//! This example enumerates every assignment of Cholesky's loop positions
//! to loop slots, lets the completion procedure find a legal statement
//! order for each, generates code, validates it by execution, and times
//! the variants.
//!
//! ```sh
//! cargo run --release --example cholesky_permutations
//! ```

use inl::codegen::generate;
use inl::core::complete::complete_transform;
use inl::core::depend::analyze;
use inl::core::instance::InstanceLayout;
use inl::exec::{run_fresh, Interpreter, Machine};
use inl::ir::zoo;
use inl::linalg::IVec;
use std::time::Instant;

fn permutations(v: &[usize]) -> Vec<Vec<usize>> {
    if v.len() <= 1 {
        return vec![v.to_vec()];
    }
    let mut out = Vec::new();
    for i in 0..v.len() {
        let mut rest = v.to_vec();
        let x = rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, x);
            out.push(tail);
        }
    }
    out
}

fn main() {
    let p = zoo::cholesky_kij();
    let layout = InstanceLayout::new(&p);
    let deps = analyze(&p, &layout).expect("analysis");
    let names = ["K", "J", "L", "I"];
    let positions: Vec<usize> = names
        .iter()
        .map(|nm| {
            let l = p.loops().find(|&l| p.loop_decl(l).name == *nm).unwrap();
            layout.loop_position(l)
        })
        .collect();

    let spd = |_: &str, idx: &[usize]| {
        if idx[0] == idx[1] {
            (idx[0] + 10) as f64
        } else {
            1.0 / ((idx[0] + idx[1] + 2) as f64)
        }
    };
    let n: i128 = 120;

    // reference result
    let reference = run_fresh(&p, &[n], &spd);

    println!("variant (slot order) | legal | verified | time at N={n}");
    println!("---------------------|-------|----------|-------------");
    for pm in permutations(&[0, 1, 2, 3]) {
        let label: String = pm.iter().map(|&i| names[i]).collect::<Vec<_>>().join("");
        let rows: Vec<IVec> = pm
            .iter()
            .map(|&i| IVec::unit(layout.len(), positions[i]))
            .collect();
        let Ok(completion) = complete_transform(&p, &layout, &deps, &rows) else {
            println!("{label:>20} |  no   |    —     |      —");
            continue;
        };
        let result = match generate(&p, &layout, &deps, &completion.matrix) {
            Ok(r) => r,
            Err(e) => {
                println!("{label:>20} |  yes  | codegen failed: {e:?}");
                continue;
            }
        };
        // verify
        let mut m = Machine::new(&result.program, &[n], &spd);
        Interpreter::new(&result.program).run(&mut m);
        let ok = reference.same_state(&m).is_ok();
        // time
        let mut m2 = Machine::new(&result.program, &[n], &spd);
        let t0 = Instant::now();
        Interpreter::new(&result.program).run(&mut m2);
        let dt = t0.elapsed();
        println!(
            "{label:>20} |  yes  |   {}    | {dt:>9.2?}",
            if ok { "✓" } else { "✗" }
        );
    }
}
