//! Observability: run the quickstart pipeline with `inl-obs` telemetry on
//! and print the pipeline report — which passes ran, how many dependence
//! pairs were tested, where Fourier–Motzkin fell back to the dark shadow,
//! how many instances executed, and where the wall-time went.
//!
//! ```sh
//! cargo run --example observability
//! # or leave the enable decision to the environment:
//! INL_OBS=1 cargo run --example observability -- --json target/obs.json
//! ```

use inl::codegen::generate;
use inl::core::depend::analyze;
use inl::core::instance::InstanceLayout;
use inl::core::transform::Transform;
use inl::exec::{run_traced, Interpreter, Machine};
use inl::ir::zoo;
use inl::obs::{Json, PipelineReport};

fn main() {
    // Telemetry is off by default (the disabled fast path is one atomic
    // load). `INL_OBS=1` enables it from the environment; this example
    // always turns it on explicitly so it has something to show.
    inl::obs::set_enabled(true);

    // The quickstart pipeline: analyze, transform, generate, execute.
    let p = zoo::simple_cholesky();
    let layout = InstanceLayout::new(&p);
    let deps = analyze(&p, &layout).expect("analysis");

    let loops: Vec<_> = p.loops().collect();
    let m = Transform::compose(
        &p,
        &layout,
        &[
            Transform::ReorderChildren {
                parent: Some(loops[0]),
                perm: vec![1, 0],
            },
            Transform::Interchange(loops[0], loops[1]),
        ],
    )
    .unwrap();
    let verdict = inl::core::legal::check_legal(&p, &layout, &deps, &m).expect("legality");
    println!("left-looking transform legal? {}", verdict.is_legal());

    let result = generate(&p, &layout, &deps, &m).expect("codegen");
    let mut machine = Machine::new(&result.program, &[64], &|_, idx| 2.0 + idx[0] as f64);
    Interpreter::new(&result.program).run(&mut machine);

    // Trace the source program too, and attach the aggregate as a report
    // section.
    let (_, trace) = run_traced(&p, &[64], &|_, idx| 2.0 + idx[0] as f64);

    let mut report = PipelineReport::capture();
    report.attach("trace", trace.summary(&p).to_json());
    println!("\n{}", report.to_table());

    // `--json <path>` writes the machine-readable form.
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            let path = args.next().expect("--json needs a path");
            report.write_json(&path).expect("write JSON");
            println!("wrote {path}");
        }
    }

    // The JSON form round-trips exactly; show a couple of fields.
    let parsed = Json::parse(&report.to_json_string()).unwrap();
    println!(
        "pairs tested: {}   instances executed: {}",
        parsed
            .get("counters")
            .and_then(|c| c.get("depend.pairs_tested"))
            .and_then(Json::as_u64)
            .unwrap_or(0),
        parsed
            .get("counters")
            .and_then(|c| c.get("exec.instances"))
            .and_then(Json::as_u64)
            .unwrap_or(0),
    );
}
