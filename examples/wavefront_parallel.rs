//! §7's parallelization claim, end to end: the wavefront recurrence has a
//! trivial dependence-matrix nullspace (no outer loop can be DOALL), but
//! skewing the outer loop by the inner makes every dependence
//! outer-carried, leaving the inner loop parallel. We generate the skewed
//! code, mark the parallel loop, and run it on multiple threads.
//!
//! ```sh
//! cargo run --release --example wavefront_parallel
//! ```

use inl::codegen::generate;
use inl::core::depend::analyze;
use inl::core::instance::InstanceLayout;
use inl::core::legal::check_legal;
use inl::core::parallel::{parallel_rows, parallel_slots};
use inl::core::transform::Transform;
use inl::exec::{Interpreter, Machine, ParallelExecutor};
use inl::ir::zoo;
use std::time::Instant;

fn main() {
    let p = zoo::wavefront();
    println!("== wavefront recurrence ==\n{}", p.to_pseudocode());

    let layout = InstanceLayout::new(&p);
    let deps = analyze(&p, &layout).expect("analysis");
    println!("dependence matrix:\n{}", deps.display());

    // §7: "parallelizing a loop requires finding a row in the nullspace of
    // the dependence matrix" — here the nullspace is trivial:
    let rows = parallel_rows(&layout, &deps).expect("parallel rows");
    println!(
        "outer-parallel directions: {} (nullspace is trivial)",
        rows.len()
    );

    // the classic fix: skew the outer loop by the inner one
    let loops: Vec<_> = p.loops().collect();
    let m = Transform::Skew {
        target: loops[0],
        source: loops[1],
        factor: 1,
    }
    .matrix(&p, &layout);
    let report = check_legal(&p, &layout, &deps, &m).expect("legality");
    assert!(report.is_legal());
    let ast = report.new_ast.as_ref().unwrap();
    let par = parallel_slots(&layout, &deps, ast, &m);
    println!("parallel loop slots after skewing: {par:?} (inner loop is DOALL)");

    let mut result = generate(&p, &layout, &deps, &m).expect("codegen");
    // mark the generated inner loop parallel (slot 1)
    let inner = result
        .program
        .loops()
        .find(|&l| {
            !result.program.loop_decl(l).children.is_empty()
                && result.program.loops_surrounding_loop(l).len() == 1
        })
        .expect("inner loop");
    result.program.set_loop_parallel(inner, true);
    println!("== skewed program ==\n{}", result.program.to_pseudocode());

    // Correctness of the parallel wavefront schedule. (With the reference
    // interpreter, spawning one thread team per anti-diagonal costs more
    // than the tiny per-iteration work saves — the *schedule* is what the
    // framework certifies; compiled kernels in `inl-bench` show the
    // speedup.)
    let n: i128 = 300;
    let init = |_: &str, idx: &[usize]| {
        if idx[0] == 0 || idx[1] == 0 {
            1.0
        } else {
            0.0
        }
    };
    let mut seq = Machine::new(&p, &[n], &init);
    Interpreter::new(&p).run(&mut seq);
    for threads in [2, 4] {
        let mut par = Machine::new(&result.program, &[n], &init);
        ParallelExecutor::new(&result.program, threads).run(&mut par);
        seq.same_state(&par).expect("bitwise identical");
        println!("wavefront, {threads} threads: bitwise identical ✓");
    }

    // For an end-to-end *speedup* inside the interpreter, a loop whose
    // OUTER slot is dependence-free works: one thread team for the whole
    // run. Row-wise prefix sums keep every dependence inside a row, so the
    // nullspace of the dependence matrix contains the outer direction.
    let q = zoo::row_prefix_sums();
    let qlayout = InstanceLayout::new(&q);
    let qdeps = analyze(&q, &qlayout).expect("analysis");
    let rows = parallel_rows(&qlayout, &qdeps).expect("parallel rows");
    println!(
        "\n== row_prefix_sums ==\ndependences:\n{}outer-parallel directions: {:?}",
        qdeps.display(),
        rows.iter().map(|r| r.to_string()).collect::<Vec<_>>()
    );
    let mut qpar = q.clone();
    let outer = qpar.loops().next().unwrap();
    qpar.set_loop_parallel(outer, true);

    let n: i128 = 2500;
    let init2 = |_: &str, idx: &[usize]| (idx[0] + idx[1]) as f64 * 0.001;
    let mut seq = Machine::new(&q, &[n], &init2);
    let t0 = Instant::now();
    Interpreter::new(&q).run(&mut seq);
    let t_seq = t0.elapsed();
    println!("sequential: {t_seq:>8.1?}");
    for threads in [1, 2, 4, 8] {
        let mut par = Machine::new(&qpar, &[n], &init2);
        let t0 = Instant::now();
        ParallelExecutor::new(&qpar, threads).run(&mut par);
        let t_par = t0.elapsed();
        seq.same_state(&par).expect("bitwise identical");
        println!(
            "threads = {threads}: {t_par:>8.1?}  (speedup {:.2}x)  identical ✓",
            t_seq.as_secs_f64() / t_par.as_secs_f64()
        );
    }
}
