//! Profiling a run: timeline tracing + VM opcode profiling in one place.
//!
//! Turns on both observability layers, runs Cholesky twice — once through
//! the bytecode VM with opcode profiling, once through the parallel
//! executor so the trace shows per-thread wavefront slices — then prints
//! the hot-opcode/statement/loop tables and writes a Chrome trace-event
//! file you can open at <https://ui.perfetto.dev> or `chrome://tracing`.
//!
//! ```sh
//! cargo run --release --example profile_run
//! # then load target/inl-trace.json in Perfetto
//! ```
//!
//! The same data is available with zero code changes via the environment:
//! `INL_TRACE_JSON=trace.json INL_VM_PROFILE=1 ./your-binary`.

use inl::exec::{run_fresh, Machine, ParallelExecutor, VmRunner};
use inl::ir::zoo;

fn spd(_: &str, idx: &[usize]) -> f64 {
    if idx.len() == 2 && idx[0] == idx[1] {
        (idx[0] + 10) as f64
    } else {
        1.0 / ((idx.iter().sum::<usize>() + 1) as f64)
    }
}

fn main() {
    // Both layers off by default; the disabled fast path is one relaxed
    // atomic load. Turn everything on explicitly for the demo.
    inl::obs::set_enabled(true);
    inl::obs::set_timeline_enabled(true);
    inl::vm::profile::set_enabled(true);

    let n: i128 = 96;

    // 1. VM run with opcode profiling: which opcodes and statements
    //    dominate the instruction stream?
    let p = zoo::cholesky_kij();
    let runner = VmRunner::new(&p);
    let mut m = Machine::new(&p, &[n], &spd);
    runner.run(&mut m);
    println!("== VM opcode profile (cholesky_kij, N = {n}) ==\n");
    print!(
        "{}",
        inl::vm::profile::render_tables(runner.compiled(), Some(&p))
    );

    // 2. Parallel run: the trace gets one `exec.par.wavefront` slice per
    //    wavefront on the main thread and `exec.par.chunk` slices on each
    //    worker's own timeline row.
    let mut par = zoo::simple_cholesky();
    let j = par.loops().find(|&l| par.loop_decl(l).name == "J").unwrap();
    par.set_loop_parallel(j, true);
    let reference = run_fresh(&par, &[n], &spd);
    let mut machine = Machine::new(&par, &[n], &spd);
    ParallelExecutor::new(&par, 4).run(&mut machine);
    reference
        .same_state(&machine)
        .expect("parallel run bitwise identical");

    // 3. Export. Spans recorded by the pipeline double as trace slices,
    //    so the file also shows where analysis/codegen time went.
    let path = "target/inl-trace.json";
    inl::obs::timeline::write_chrome_trace(path).expect("write trace");
    println!(
        "wrote {path} ({} events dropped) — open in https://ui.perfetto.dev",
        inl::obs::timeline::dropped_total()
    );

    println!("\n== pipeline telemetry ==\n");
    let mut report = inl::obs::PipelineReport::capture();
    report.attach(
        "vm_profile",
        inl::vm::profile::to_json(runner.compiled(), Some(&p)),
    );
    print!("{}", report.to_table());
}
