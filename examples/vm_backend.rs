//! The bytecode VM backend: compile a loop nest once to flat register
//! bytecode, then run it many times — and check it is bitwise identical
//! to the reference interpreter.
//!
//! ```sh
//! cargo run --example vm_backend
//! # backend selection from the environment (used by library callers):
//! INL_BACKEND=vm cargo run --example vm_backend
//! ```

use inl::exec::{run_fresh, run_fresh_with, Backend, Machine, VmRunner};
use inl::ir::zoo;

fn spd(_: &str, idx: &[usize]) -> f64 {
    if idx[0] == idx[1] {
        (idx[0] + 10) as f64
    } else {
        1.0 / ((idx[0] + idx[1] + 2) as f64)
    }
}

fn main() {
    let p = zoo::cholesky_kij();

    // `Backend` is the one-shot entry point: `from_env` honours
    // INL_BACKEND=vm|interp, defaulting to the interpreter.
    let backend = Backend::from_env();
    println!("backend from INL_BACKEND: {backend:?}");
    let m = run_fresh_with(backend, &p, &[6], &spd);
    println!("A[0..4] = {:?}\n", &m.array_by_name("A").unwrap()[..4]);

    // The two-stage lowering, spelled out. `compile` is parameter-
    // symbolic: bounds, guards and subscripts become integer coefficient
    // rows over a flat register file.
    let cp = inl::vm::compile(&p);
    println!(
        "compiled {}: {} instructions, {} f64 registers",
        p.name(),
        cp.ninstrs(),
        cp.nfregs
    );
    println!("{}", cp.disasm(&p));

    // `VmRunner` wraps compile-once / run-per-parameter-binding; `bind`
    // happens inside `run` against the machine's parameters.
    let runner = VmRunner::new(&p);
    for n in [2i128, 4, 8, 16] {
        let interp = run_fresh(&p, &[n], &spd);
        let mut vm = Machine::new(&p, &[n], &spd);
        runner.run(&mut vm);
        println!(
            "N={n:2}: VM bitwise-identical to interpreter? {}",
            interp.same_state(&vm).is_ok()
        );
    }
}
