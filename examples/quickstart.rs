//! Quickstart: build an imperfectly nested loop, analyze its dependences,
//! transform it, generate code, and verify by execution.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use inl::codegen::generate;
use inl::core::depend::analyze;
use inl::core::instance::InstanceLayout;
use inl::core::transform::Transform;
use inl::exec::equivalent;
use inl::ir::zoo;

fn main() {
    // 1. The paper's running example: a simplified Cholesky fragment.
    let p = zoo::simple_cholesky();
    println!("== source program ==\n{}", p.to_pseudocode());

    // 2. Instance vectors (§2): every dynamic statement instance becomes an
    //    integer vector; lexicographic order is execution order.
    let layout = InstanceLayout::new(&p);
    println!("instance vector length: {}", layout.len());
    let s1 = p.stmts().next().unwrap();
    println!(
        "L(S1 at I=2) = {}   (matches the paper's [I, 0, 1, I]')",
        layout.instance_vector(s1, &[2])
    );

    // 3. Dependence analysis (§3): distance/direction vectors over instance
    //    vectors, computed by integer linear programming.
    let deps = analyze(&p, &layout).expect("analysis");
    println!(
        "\n== dependence matrix ({} columns) ==\n{}",
        deps.deps.len(),
        deps.display()
    );

    // 4. Transformations are matrices (§4). A naked I↔J interchange is
    //    illegal (the pivot sqrt would run before the updates feeding it);
    //    combined with statement reordering it becomes the legal
    //    left-looking form.
    let loops: Vec<_> = p.loops().collect();
    let naked = Transform::Interchange(loops[0], loops[1]).matrix(&p, &layout);
    let verdict = inl::core::legal::check_legal(&p, &layout, &deps, &naked).expect("legality");
    println!("naked interchange legal? {}", verdict.is_legal());

    let m = Transform::compose(
        &p,
        &layout,
        &[
            Transform::ReorderChildren {
                parent: Some(loops[0]),
                perm: vec![1, 0],
            },
            Transform::Interchange(loops[0], loops[1]),
        ],
    )
    .unwrap();
    let verdict = inl::core::legal::check_legal(&p, &layout, &deps, &m).expect("legality");
    println!("reorder + interchange legal? {}", verdict.is_legal());

    // 5. Code generation (§5).
    let result = generate(&p, &layout, &deps, &m).expect("legal transforms generate");
    println!(
        "\n== transformed program ==\n{}",
        result.program.to_pseudocode()
    );

    // 6. Verify: both programs compute bitwise identical results.
    let init = |_: &str, idx: &[usize]| 2.0 + idx[0] as f64;
    for n in [1, 4, 16, 64] {
        equivalent(&p, &result.program, &[n], &init).expect("identical");
        println!("N = {n:3}: execution identical ✓");
    }
}
