//! Offline drop-in subset of [criterion](https://docs.rs/criterion).
//!
//! The build environment has no access to crates.io, so this crate
//! provides the API slice the workspace benches use — `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a plain
//! min/mean wall-clock measurement instead of criterion's statistical
//! machinery. Each benchmark prints one line:
//!
//! ```text
//! bench group/id ... min 12.3µs  mean 13.1µs  (20 samples)
//! ```

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`, like criterion's `BenchmarkId::new`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Times one closure over the configured sample count.
pub struct Bencher {
    samples: usize,
}

impl Bencher {
    /// Run `f` repeatedly, recording per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // one warmup iteration, then the measured samples
        std::hint::black_box(f());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
        }
        let mean = total / self.samples as u32;
        println!(
            "  min {min:.2?}  mean {mean:.2?}  ({} samples)",
            self.samples
        );
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    _c: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Ignored (API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        print!("bench {}/{} ...", self.name, id.into().0);
        f(&mut Bencher {
            samples: self.samples,
        });
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        print!("bench {}/{} ...", self.name, id.0);
        f(
            &mut Bencher {
                samples: self.samples,
            },
            input,
        );
        self
    }

    /// Finish the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmark a closure at the top level (10 samples).
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        print!("bench {id} ...");
        f(&mut Bencher { samples: 10 });
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _c: self,
        }
    }

    /// No-op (API compatibility).
    pub fn final_summary(&mut self) {}
}

/// Prevent the optimizer from eliding a value (re-export shim).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
