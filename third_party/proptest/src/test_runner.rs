//! Deterministic case runner and the error type test bodies return.

use std::fmt;

/// Mirrors `proptest::test_runner::Config` (exposed as `ProptestConfig`
/// from the prelude). Only `cases` matters here; the other fields exist so
/// `..Config::default()` struct update syntax from real-proptest users
/// keeps compiling.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Accepted and ignored (no shrinking in this implementation).
    pub max_shrink_iters: u32,
    /// Upper bound on rejected cases (`prop_assume!` misses) per test.
    pub max_global_rejects: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_shrink_iters: 0,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// Assertion failure: the whole test fails.
    Fail(String),
    /// `prop_assume!` rejection: the case is discarded and retried.
    Reject(String),
}

impl TestCaseError {
    /// A failing case with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (discarded) case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
        }
    }
}

/// Deterministic splitmix64 generator; one fresh stream per attempt so
/// failures are reproducible by attempt number.
pub struct TestRng(u64);

impl TestRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n = 0` yields 0.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Runs generated cases until `config.cases` pass, a case fails, or the
/// reject budget is exhausted.
pub struct TestRunner {
    config: Config,
}

impl TestRunner {
    /// A runner for the given configuration.
    pub fn new(config: Config) -> Self {
        TestRunner { config }
    }

    /// Drive `f` until enough cases pass. Panics (failing the enclosing
    /// `#[test]`) on the first `Fail` or when rejects exceed the budget.
    pub fn run_cases(&mut self, mut f: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
        let mut passed: u32 = 0;
        let mut rejected: u32 = 0;
        let mut attempt: u64 = 0;
        while passed < self.config.cases {
            attempt += 1;
            let mut rng = TestRng::new(attempt.wrapping_mul(0xA076_1D64_78BD_642F));
            match f(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        panic!(
                            "proptest: exceeded {} rejected cases ({passed} passed)",
                            self.config.max_global_rejects
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest: case {} (attempt {attempt}) failed: {msg}",
                        passed + 1
                    );
                }
            }
        }
    }
}
