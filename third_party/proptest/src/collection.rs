//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive length range for collection strategies, constructible from an
/// exact `usize` or a half-open `Range<usize>` like real proptest's
/// `SizeRange`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`](vec()).
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span + 1) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
