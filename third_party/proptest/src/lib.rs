//! Offline drop-in subset of [proptest](https://docs.rs/proptest).
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the slice of the proptest API the workspace's
//! property tests use: the `proptest!` macro with `pattern in strategy`
//! arguments and `#![proptest_config(..)]`, the `Strategy` trait with
//! `prop_map`/`prop_flat_map`, integer-range and tuple strategies,
//! `prop::collection::vec`, `prop::bool::ANY`, `Just`, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from the real crate: cases are generated from a fixed
//! deterministic seed (reproducible across runs), and failing inputs are
//! **not shrunk** — the failure message reports the case and attempt
//! number instead.

pub mod bool;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirrors `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Assert a condition inside a `proptest!` body; on failure the current
/// case fails with the formatted message (no panic unwinding mid-case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "{} ({:?} != {:?})", format!($($fmt)*), a, b);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "{} (both {:?})", format!($($fmt)*), a);
    }};
}

/// Discard the current case (retried with fresh inputs, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// The `proptest!` test-block macro: each `fn name(pat in strategy, ..)`
/// becomes a `#[test]` running `Config::cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!($crate::test_runner::Config::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            runner.run_cases(|__proptest_rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                let __proptest_result: ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
                __proptest_result
            });
        }
    )*};
}
