//! The `Strategy` trait and the combinators the workspace uses.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the per-case RNG stream.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate an intermediate value, then generate from the strategy `f`
    /// builds out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as i128, self.end as i128);
                assert!(lo < hi, "empty range strategy {lo}..{hi}");
                (lo + rng.below((hi - lo) as u64) as i128) as $t
            }
        }

        impl Strategy for ::std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy {lo}..={hi}");
                (lo + rng.below((hi - lo + 1) as u64) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}
