//! The AST → bytecode compiler.
//!
//! One pass over the program tree. Everything the interpreter re-derives
//! per statement instance is resolved here, once:
//!
//! * affine expressions become [`Row`]s over the integer register file;
//! * loop bounds become row ranges evaluated by a single [`Instr::Loop`]
//!   header;
//! * expressions become three-address code over `f64` value registers,
//!   allocated stack-wise (an operator overwrites its left operand's
//!   register and frees its right's, so the file stays as deep as the
//!   expression tree);
//! * array accesses become entries in the access table, lowered to flat
//!   buffer offsets when parameters are bound.

use crate::bytecode::{
    AccessDesc, ArrayDesc, CompiledProgram, GuardKind, IReg, Instr, LoopMeta, Pc, Reg, Row, RowId,
    RowRange,
};
use inl_ir::{Access, Aff, Bound, Expr, Guard, LoopId, Node, Program, StmtId, VarKey};
use inl_linalg::Int;

/// Narrow an IR integer (`i128`) to a VM register value.
///
/// # Panics
/// If the value does not fit `i64` (far beyond any realistic program).
fn c64(v: Int) -> i64 {
    i64::try_from(v).expect("value exceeds the VM's i64 range")
}

/// Compile a program to bytecode. The result is symbolic in the
/// parameters; bind them with [`CompiledProgram::bind`] to execute.
///
/// ```
/// let p = inl_ir::zoo::simple_cholesky();
/// let cp = inl_vm::compile(&p);
/// // Compiled once, bindable for any parameter value.
/// assert_eq!(cp.nparams, 1);
/// assert!(cp.bind(&[4]).total_len > cp.bind(&[2]).total_len);
/// ```
///
/// # Panics
/// If the program fails structural validation (dangling nodes, guards
/// with divisors, …) — compile only validated programs.
pub fn compile(p: &Program) -> CompiledProgram {
    let _span = inl_obs::span("vm.compile");
    inl_obs::timeline::instant("stage.vm-compile");
    let mut c = Compiler {
        p,
        nparams: p.nparams(),
        code: Vec::new(),
        rows: Vec::new(),
        accesses: Vec::new(),
        arrays: Vec::new(),
        loops: vec![None; p.nloops()],
        stmts: vec![None; p.nstmts()],
        next_reg: 0,
        max_reg: 0,
    };
    for a in p.arrays() {
        let decl = p.array_decl(a);
        let dims = decl
            .dims
            .iter()
            .map(|d| {
                assert_eq!(d.divisor(), 1, "array extent with divisor");
                assert!(
                    d.vars().all(|v| matches!(v, VarKey::Param(_))),
                    "array extent references a loop variable"
                );
                c.push_row(d)
            })
            .collect();
        c.arrays.push(ArrayDesc {
            name: decl.name.clone(),
            dims,
        });
    }
    c.emit_nodes(p.root());
    static NEXT_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    CompiledProgram {
        id: NEXT_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        name: p.name().to_string(),
        nparams: c.nparams,
        nloops: p.nloops(),
        nfregs: c.max_reg,
        code: c.code,
        rows: c.rows,
        accesses: c.accesses,
        arrays: c.arrays,
        loops: c.loops,
        stmts: c.stmts,
    }
}

struct Compiler<'p> {
    p: &'p Program,
    nparams: usize,
    code: Vec<Instr>,
    rows: Vec<Row>,
    accesses: Vec<AccessDesc>,
    arrays: Vec<ArrayDesc>,
    loops: Vec<Option<LoopMeta>>,
    stmts: Vec<Option<(Pc, Pc)>>,
    /// Next free value register (stack discipline, reset per statement).
    next_reg: usize,
    /// High-water mark of the value register file.
    max_reg: usize,
}

impl Compiler<'_> {
    fn ireg(&self, v: VarKey) -> IReg {
        let idx = match v {
            VarKey::Param(p) => p.0,
            VarKey::Loop(l) => self.nparams + l.0,
        };
        IReg::try_from(idx).expect("register file overflow")
    }

    fn push_row(&mut self, a: &Aff) -> RowId {
        let row = Row {
            terms: a
                .terms()
                .iter()
                .map(|&(v, c)| (self.ireg(v), c64(c)))
                .collect(),
            konst: c64(a.constant()),
            div: c64(a.divisor()),
        };
        // The arena is tiny (a handful of rows per loop/stmt); dedup keeps
        // the disassembly readable and the cache footprint minimal.
        if let Some(i) = self.rows.iter().position(|r| *r == row) {
            return i as RowId;
        }
        self.rows.push(row);
        (self.rows.len() - 1) as RowId
    }

    /// Push a bound's terms as a contiguous run of rows. Bound rows are
    /// never deduplicated (the range must stay contiguous).
    fn push_bound(&mut self, b: &Bound) -> RowRange {
        let start = self.rows.len() as RowId;
        for t in &b.terms {
            let row = Row {
                terms: t
                    .terms()
                    .iter()
                    .map(|&(v, c)| (self.ireg(v), c64(c)))
                    .collect(),
                konst: c64(t.constant()),
                div: c64(t.divisor()),
            };
            self.rows.push(row);
        }
        (start, u16::try_from(b.terms.len()).expect("bound too wide"))
    }

    fn push_access(&mut self, acc: &Access) -> u32 {
        let dims = acc.idxs.iter().map(|a| self.push_row(a)).collect();
        self.accesses.push(AccessDesc {
            array: acc.array.0 as u32,
            dims,
        });
        (self.accesses.len() - 1) as u32
    }

    fn emit_nodes(&mut self, nodes: &[Node]) {
        for &n in nodes {
            match n {
                Node::Loop(l) => self.emit_loop(l),
                Node::Stmt(s) => self.emit_stmt(s),
            }
        }
    }

    fn emit_loop(&mut self, l: LoopId) {
        let ld = self.p.loop_decl(l);
        let lo = self.push_bound(&ld.lower);
        let hi = self.push_bound(&ld.upper);
        let var = self.ireg(VarKey::Loop(l));
        let step = c64(ld.step);
        assert!(step >= 1, "loop step must be positive");
        let header = self.code.len() as Pc;
        self.code.push(Instr::Loop {
            var,
            lo,
            hi,
            step,
            exit: 0, // patched below
        });
        let body_start = self.code.len() as Pc;
        let children = ld.children.clone();
        self.emit_nodes(&children);
        let body_end = self.code.len() as Pc;
        self.code.push(Instr::Next {
            var,
            step,
            back: body_start,
        });
        let exit = self.code.len() as Pc;
        if let Instr::Loop { exit: e, .. } = &mut self.code[header as usize] {
            *e = exit;
        }
        self.loops[l.0] = Some(LoopMeta {
            var,
            step,
            header,
            body: (body_start, body_end),
            exit,
            lo,
            hi,
        });
    }

    fn emit_stmt(&mut self, s: StmtId) {
        let sd = self.p.stmt_decl(s).clone();
        let start = self.code.len() as Pc;
        let mut guard_pcs = Vec::with_capacity(sd.guards.len());
        for g in &sd.guards {
            let (aff, kind) = match g {
                Guard::Ge(a) => (a, GuardKind::Ge),
                Guard::Eq(a) => (a, GuardKind::Eq),
                Guard::Div(a, k) => (a, GuardKind::Div(c64(*k))),
            };
            debug_assert_eq!(aff.divisor(), 1, "guard with divisor");
            let row = self.push_row(aff);
            guard_pcs.push(self.code.len());
            self.code.push(Instr::Guard {
                row,
                kind,
                skip: 0, // patched below
            });
        }
        self.next_reg = 0;
        let src = self.emit_expr(&sd.rhs);
        let acc = self.push_access(&sd.write);
        self.code.push(Instr::Store { src, acc });
        let end = self.code.len() as Pc;
        for pc in guard_pcs {
            if let Instr::Guard { skip, .. } = &mut self.code[pc] {
                *skip = end;
            }
        }
        self.stmts[s.0] = Some((start, end));
    }

    fn alloc(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg += 1;
        self.max_reg = self.max_reg.max(self.next_reg);
        Reg::try_from(r).expect("value register file overflow")
    }

    /// Emit three-address code for an expression; returns the register
    /// holding the result. Binary operators write into the left operand's
    /// register and free the right's.
    fn emit_expr(&mut self, e: &Expr) -> Reg {
        match e {
            Expr::Const(v) => {
                let dst = self.alloc();
                self.code.push(Instr::Const {
                    dst,
                    bits: v.to_bits(),
                });
                dst
            }
            Expr::Index(a) => {
                let dst = self.alloc();
                let row = self.push_row(a);
                self.code.push(Instr::Idx { dst, row });
                dst
            }
            Expr::Read(acc) => {
                let dst = self.alloc();
                let acc = self.push_access(acc);
                self.code.push(Instr::Load { dst, acc });
                dst
            }
            Expr::Neg(x) => {
                let r = self.emit_expr(x);
                self.code.push(Instr::Neg { dst: r, src: r });
                r
            }
            Expr::Sqrt(x) => {
                let r = self.emit_expr(x);
                self.code.push(Instr::Sqrt { dst: r, src: r });
                r
            }
            Expr::Add(a, b) => self.emit_binop(a, b, |dst, a, b| Instr::Add { dst, a, b }),
            Expr::Sub(a, b) => self.emit_binop(a, b, |dst, a, b| Instr::Sub { dst, a, b }),
            Expr::Mul(a, b) => self.emit_binop(a, b, |dst, a, b| Instr::Mul { dst, a, b }),
            Expr::Div(a, b) => self.emit_binop(a, b, |dst, a, b| Instr::Div { dst, a, b }),
        }
    }

    fn emit_binop(&mut self, a: &Expr, b: &Expr, mk: fn(Reg, Reg, Reg) -> Instr) -> Reg {
        let ra = self.emit_expr(a);
        let rb = self.emit_expr(b);
        self.code.push(mk(ra, ra, rb));
        self.next_reg -= 1; // free rb
        ra
    }
}
