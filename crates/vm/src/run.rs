//! The virtual machine: a flat dispatch loop over bound bytecode.
//!
//! The per-instance hot path is integer dot products (tiny sparse rows),
//! indexed `f64` loads/stores into one flat buffer, and three-address
//! arithmetic — no allocation, no hashing, no rationals (except the exact
//! [`Instr::Idx`] slow path, which replicates the interpreter's rational
//! semantics bit-for-bit).
//!
//! [`exec_range`] executes an arbitrary `[start, end)` slice of the
//! instruction stream, which is what lets the parallel executor drive
//! loop *bodies* directly: it evaluates a parallel loop's bounds itself,
//! sets the loop-variable register, and runs the body range per
//! iteration on a [`SharedBuf`] visible to all workers.

use crate::bytecode::{eval_hi, eval_lo, BoundProgram, FlatAcc, GuardKind, Instr, Pc};
use inl_linalg::{Int, Rational};
use std::marker::PhantomData;

/// The mutable execution state of one VM activation: integer registers
/// (parameters then loop variables), per-loop upper-bound slots, and the
/// `f64` value register file.
///
/// Cloning a state gives an independent activation over the same bound
/// program — the parallel executor clones one per worker.
#[derive(Clone, Debug)]
pub struct VmState {
    /// Integer registers: `params ++ loop vars`.
    pub iregs: Vec<i64>,
    /// Upper-bound slot per loop variable (filled by [`Instr::Loop`]).
    pub his: Vec<i64>,
    /// `f64` value registers.
    fregs: Vec<f64>,
    /// Number of parameter registers (offset of the loop-var file).
    nparams: usize,
}

impl BoundProgram<'_> {
    /// A fresh execution state: parameters loaded, loop variables zeroed.
    pub fn new_state(&self) -> VmState {
        let mut iregs = self.params.clone();
        iregs.resize(self.cp.nparams + self.cp.nloops, 0);
        VmState {
            iregs,
            his: vec![0; self.cp.nloops],
            fregs: vec![0.0; self.cp.nfregs],
            nparams: self.cp.nparams,
        }
    }
}

/// A shared view of the flat array buffer that many VM activations may
/// read and write concurrently.
///
/// # Safety
/// Bounds are checked on every access, but *aliasing* is the caller's
/// contract: concurrent writers must target disjoint cells (the parallel
/// executor only runs loops proven dependence-free, which is exactly that
/// guarantee — same discipline as `RawArray` in `inl-exec`).
#[derive(Clone, Copy)]
pub struct SharedBuf<'a> {
    ptr: *mut f64,
    len: usize,
    _marker: PhantomData<&'a mut [f64]>,
}

unsafe impl Send for SharedBuf<'_> {}
unsafe impl Sync for SharedBuf<'_> {}

impl<'a> SharedBuf<'a> {
    /// Wrap a mutable buffer for the duration of its borrow.
    pub fn new(data: &'a mut [f64]) -> Self {
        SharedBuf {
            ptr: data.as_mut_ptr(),
            len: data.len(),
            _marker: PhantomData,
        }
    }

    #[inline]
    fn read(&self, i: usize) -> f64 {
        assert!(i < self.len, "flat read out of bounds: {i} >= {}", self.len);
        unsafe { *self.ptr.add(i) }
    }

    #[inline]
    fn write(&self, i: usize, v: f64) {
        assert!(
            i < self.len,
            "flat write out of bounds: {i} >= {}",
            self.len
        );
        unsafe { *self.ptr.add(i) = v }
    }
}

/// Resolve a bound access to a flat buffer offset at the current register
/// file. Fast path: one merged row plus a segment check. Slow path
/// (divisor subscripts): per-dimension exact-divisibility and bounds
/// checks, mirroring the interpreter.
#[inline]
fn addr(bp: &BoundProgram, acc: u32, iregs: &[i64]) -> usize {
    match &bp.accs[acc as usize] {
        FlatAcc::Flat {
            terms,
            konst,
            start,
            end,
        } => {
            let mut off = *konst;
            for &(r, c) in terms {
                off += c * iregs[r as usize];
            }
            let off = off as usize;
            assert!(
                (*start..*end).contains(&off),
                "flat access outside its array segment"
            );
            off
        }
        FlatAcc::Dims { dims, base } => {
            let mut off = *base;
            for d in dims {
                let row = &bp.cp.rows[d.row as usize];
                let num = row.num(iregs);
                assert!(num % row.div == 0, "subscript not integral");
                let v = num / row.div;
                assert!(v >= 0, "negative subscript {v}");
                let v = v as usize;
                assert!(v < d.extent, "subscript {v} out of bounds {}", d.extent);
                off += v * d.stride;
            }
            off
        }
    }
}

/// Execute instructions `[start, end)` against a state and buffer.
///
/// The `vm.instrs` / `vm.instances` counters are accumulated locally and
/// flushed **once** on return (batched far coarser than per innermost
/// trip), so telemetry costs nothing on the per-instance path. When
/// [`crate::profile`] is enabled (checked once per call), the dispatch
/// loop additionally counts executions per instruction address into a
/// local vector and flushes it to the profile sink on return — the same
/// batching discipline.
pub fn exec_range(bp: &BoundProgram, st: &mut VmState, buf: &SharedBuf<'_>, start: Pc, end: Pc) {
    if crate::profile::enabled() {
        let mut counts = vec![0u64; bp.cp.code.len()];
        exec_range_impl::<true>(bp, st, buf, start, end, &mut counts);
        crate::profile::record_loop_bodies(bp.cp, &counts);
        crate::profile::flush(bp.cp.id, &counts);
    } else {
        exec_range_impl::<false>(bp, st, buf, start, end, &mut []);
    }
}

/// The dispatch loop, monomorphised over profiling so the per-pc counting
/// costs nothing when off.
fn exec_range_impl<const PROFILE: bool>(
    bp: &BoundProgram,
    st: &mut VmState,
    buf: &SharedBuf<'_>,
    start: Pc,
    end: Pc,
    counts: &mut [u64],
) {
    let code = &bp.cp.code;
    let rows = &bp.cp.rows;
    let mut instrs: u64 = 0;
    let mut instances: u64 = 0;
    let mut pc = start;
    while pc < end {
        instrs += 1;
        if PROFILE {
            counts[pc as usize] += 1;
        }
        match code[pc as usize] {
            Instr::Loop {
                var,
                lo,
                hi,
                step: _,
                exit,
            } => {
                let lo_v = eval_lo(rows, lo, &st.iregs);
                let hi_v = eval_hi(rows, hi, &st.iregs);
                if lo_v > hi_v {
                    pc = exit;
                } else {
                    st.iregs[var as usize] = lo_v;
                    st.his[var as usize - st.nparams] = hi_v;
                    pc += 1;
                }
            }
            Instr::Next { var, step, back } => {
                let v = st.iregs[var as usize] + step;
                if v <= st.his[var as usize - st.nparams] {
                    st.iregs[var as usize] = v;
                    pc = back;
                } else {
                    pc += 1;
                }
            }
            Instr::Guard { row, kind, skip } => {
                let num = rows[row as usize].num(&st.iregs);
                let pass = match kind {
                    GuardKind::Ge => num >= 0,
                    GuardKind::Eq => num == 0,
                    GuardKind::Div(k) => num % k == 0,
                };
                pc = if pass { pc + 1 } else { skip };
            }
            Instr::Const { dst, bits } => {
                st.fregs[dst as usize] = f64::from_bits(bits);
                pc += 1;
            }
            Instr::Idx { dst, row } => {
                let r = &rows[row as usize];
                let num = r.num(&st.iregs);
                st.fregs[dst as usize] = if r.div == 1 {
                    num as f64
                } else {
                    // Exact-rational semantics, matching the interpreter:
                    // reduce num/div by the gcd before the float division.
                    let q = Rational::new(num as Int, r.div as Int);
                    q.num() as f64 / q.den() as f64
                };
                pc += 1;
            }
            Instr::Load { dst, acc } => {
                st.fregs[dst as usize] = buf.read(addr(bp, acc, &st.iregs));
                pc += 1;
            }
            Instr::Neg { dst, src } => {
                st.fregs[dst as usize] = -st.fregs[src as usize];
                pc += 1;
            }
            Instr::Sqrt { dst, src } => {
                st.fregs[dst as usize] = st.fregs[src as usize].sqrt();
                pc += 1;
            }
            Instr::Add { dst, a, b } => {
                st.fregs[dst as usize] = st.fregs[a as usize] + st.fregs[b as usize];
                pc += 1;
            }
            Instr::Sub { dst, a, b } => {
                st.fregs[dst as usize] = st.fregs[a as usize] - st.fregs[b as usize];
                pc += 1;
            }
            Instr::Mul { dst, a, b } => {
                st.fregs[dst as usize] = st.fregs[a as usize] * st.fregs[b as usize];
                pc += 1;
            }
            Instr::Div { dst, a, b } => {
                st.fregs[dst as usize] = st.fregs[a as usize] / st.fregs[b as usize];
                pc += 1;
            }
            Instr::Store { src, acc } => {
                instances += 1;
                buf.write(addr(bp, acc, &st.iregs), st.fregs[src as usize]);
                pc += 1;
            }
        }
    }
    if instrs > 0 {
        inl_obs::counter_add!("vm.instrs", instrs);
        inl_obs::hist_record!("vm.exec_range.instrs", instrs);
    }
    if instances > 0 {
        inl_obs::counter_add!("vm.instances", instances);
    }
}

/// Execute the whole program against a flat buffer of exactly
/// [`BoundProgram::total_len`] cells.
pub fn run(bp: &BoundProgram, data: &mut [f64]) {
    assert_eq!(data.len(), bp.total_len, "buffer/layout length mismatch");
    let mut st = bp.new_state();
    let buf = SharedBuf::new(data);
    exec_range(bp, &mut st, &buf, 0, bp.cp.code.len() as Pc);
}
