//! Optional VM opcode profiling: per-instruction-address execution
//! counts, batched per [`crate::exec_range`] call.
//!
//! When enabled (`INL_VM_PROFILE=1` or [`set_enabled`]), the dispatch
//! loop counts executions per program counter into a stack-local vector
//! and [`flush`]es it into a global sink once per `exec_range` — the same
//! batching discipline as the `vm.instrs` counter, so the per-instruction
//! cost is one unconditional array increment in a monomorphised copy of
//! the loop (the unprofiled copy is untouched; disabled cost is one
//! relaxed atomic load per `exec_range`, not per instruction).
//!
//! Because bytecode is static, per-pc counts are a complete profile:
//! opcode totals ([`opcode_totals`]), per-statement instance/instruction
//! counts ([`hot_statements`] — a statement's `Store` count *is* its
//! instance count), and per-loop-body iteration/instruction counts
//! ([`loop_profiles`]) are all derived views. Each flush additionally
//! records every loop's body-instruction total into the
//! `vm.loop_body.instrs` obs histogram, giving a distribution of
//! per-`exec_range` loop work alongside the exact tables.
//!
//! Profiles are keyed by [`CompiledProgram::id`], so many compiled
//! programs can be profiled in one process without interference.

use crate::bytecode::{CompiledProgram, Opcode};
use inl_ir::{Program, StmtId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

fn enabled_cell() -> &'static AtomicBool {
    static ENABLED: OnceLock<AtomicBool> = OnceLock::new();
    ENABLED.get_or_init(|| {
        AtomicBool::new(matches!(
            std::env::var("INL_VM_PROFILE").ok().as_deref(),
            Some("1") | Some("true") | Some("on")
        ))
    })
}

/// True iff opcode profiling is on (one relaxed atomic load; checked once
/// per `exec_range`, not per instruction).
#[inline]
pub fn enabled() -> bool {
    enabled_cell().load(Ordering::Relaxed)
}

/// Turn profiling on or off at runtime (overrides `INL_VM_PROFILE`).
pub fn set_enabled(on: bool) {
    enabled_cell().store(on, Ordering::Relaxed);
}

/// Per-pc execution counts accumulated per [`CompiledProgram::id`].
fn sink() -> MutexGuard<'static, HashMap<u64, Vec<u64>>> {
    static SINK: OnceLock<Mutex<HashMap<u64, Vec<u64>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Merge one `exec_range`'s per-pc counts into the program's profile.
/// Called by the dispatch loop; also usable directly by custom drivers.
pub fn flush(id: u64, counts: &[u64]) {
    if counts.iter().all(|&c| c == 0) {
        return;
    }
    let mut map = sink();
    let acc = map.entry(id).or_default();
    if acc.len() < counts.len() {
        acc.resize(counts.len(), 0);
    }
    for (a, &c) in acc.iter_mut().zip(counts) {
        *a += c;
    }
}

/// Record per-loop body-instruction totals for one flush into the
/// `vm.loop_body.instrs` histogram (requires the compiled program, so the
/// dispatch loop calls it next to [`flush`]).
pub fn record_loop_bodies(cp: &CompiledProgram, counts: &[u64]) {
    for meta in cp.loops.iter().flatten() {
        let (s, e) = meta.body;
        let body: u64 = counts
            .get(s as usize..e as usize)
            .map_or(0, |c| c.iter().sum());
        if body > 0 {
            inl_obs::hist_record!("vm.loop_body.instrs", body);
        }
    }
}

/// Drop every accumulated profile.
pub fn reset() {
    sink().clear();
}

/// The accumulated per-pc counts for a program, if it was ever executed
/// under profiling. The vector is indexed by instruction address and has
/// at most `cp.code.len()` entries.
pub fn pc_counts(cp: &CompiledProgram) -> Option<Vec<u64>> {
    sink().get(&cp.id).cloned()
}

/// Total executions of one opcode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpcodeTotal {
    pub opcode: Opcode,
    /// Times any instruction of this opcode executed.
    pub executed: u64,
    /// Distinct instruction addresses of this opcode that executed.
    pub sites: u64,
}

/// Aggregate per-pc counts into per-opcode totals, hottest first
/// (zero-count opcodes omitted).
pub fn opcode_totals(cp: &CompiledProgram, counts: &[u64]) -> Vec<OpcodeTotal> {
    let mut executed = [0u64; Opcode::ALL.len()];
    let mut sites = [0u64; Opcode::ALL.len()];
    for (instr, &c) in cp.code.iter().zip(counts) {
        if c > 0 {
            let op = instr.opcode() as usize;
            executed[op] += c;
            sites[op] += 1;
        }
    }
    let mut out: Vec<OpcodeTotal> = Opcode::ALL
        .iter()
        .filter(|&&op| executed[op as usize] > 0)
        .map(|&op| OpcodeTotal {
            opcode: op,
            executed: executed[op as usize],
            sites: sites[op as usize],
        })
        .collect();
    out.sort_by(|a, b| b.executed.cmp(&a.executed).then(a.opcode.cmp(&b.opcode)));
    out
}

/// Execution profile of one statement's instruction range.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StmtProfile {
    /// Statement label (from the source program when given, else `S<id>`).
    pub name: String,
    /// Instances executed (= the statement's `Store` count).
    pub instances: u64,
    /// Instructions executed inside the statement's range, including
    /// guards that rejected the instance.
    pub instrs: u64,
}

/// Per-statement execution counts, hottest (most instructions) first.
/// Statements that never executed are omitted.
pub fn hot_statements(
    cp: &CompiledProgram,
    p: Option<&Program>,
    counts: &[u64],
) -> Vec<StmtProfile> {
    let mut out = Vec::new();
    for (idx, range) in cp.stmts.iter().enumerate() {
        let Some((s, e)) = *range else { continue };
        let range = counts.get(s as usize..e as usize).unwrap_or(&[]);
        let instrs: u64 = range.iter().sum();
        if instrs == 0 {
            continue;
        }
        // The range ends with the statement's single Store.
        let instances = range.last().copied().unwrap_or(0);
        let name = match p {
            Some(p) => p.stmt_decl(StmtId(idx)).name.clone(),
            None => format!("S{idx}"),
        };
        out.push(StmtProfile {
            name,
            instances,
            instrs,
        });
    }
    out.sort_by(|a, b| b.instrs.cmp(&a.instrs).then(a.name.cmp(&b.name)));
    out
}

/// Execution profile of one loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopProfile {
    /// Loop-variable name (from the source program when given, else `L<id>`).
    pub name: String,
    /// Times the header ([`crate::bytecode::Instr::Loop`]) executed. Zero
    /// when a driver ran the body directly (the parallel executor does).
    pub header_execs: u64,
    /// Body iterations (executions of the first body instruction).
    pub iterations: u64,
    /// Instructions executed inside the body range.
    pub body_instrs: u64,
}

/// Per-loop execution counts, hottest body first. Loops whose body never
/// executed are omitted.
pub fn loop_profiles(
    cp: &CompiledProgram,
    p: Option<&Program>,
    counts: &[u64],
) -> Vec<LoopProfile> {
    let mut out = Vec::new();
    for (idx, meta) in cp.loops.iter().enumerate() {
        let Some(meta) = meta else { continue };
        let (s, e) = meta.body;
        let body = counts.get(s as usize..e as usize).unwrap_or(&[]);
        let body_instrs: u64 = body.iter().sum();
        if body_instrs == 0 {
            continue;
        }
        let name = match p {
            Some(p) => p.loop_decl(inl_ir::LoopId(idx)).name.clone(),
            None => format!("L{idx}"),
        };
        out.push(LoopProfile {
            name,
            header_execs: counts.get(meta.header as usize).copied().unwrap_or(0),
            iterations: body.first().copied().unwrap_or(0),
            body_instrs,
        });
    }
    out.sort_by(|a, b| b.body_instrs.cmp(&a.body_instrs).then(a.name.cmp(&b.name)));
    out
}

/// Render the "hot opcodes / hot statements / hot loops" tables for a
/// profiled program (empty string when it has no samples).
pub fn render_tables(cp: &CompiledProgram, p: Option<&Program>) -> String {
    let Some(counts) = pc_counts(cp) else {
        return String::new();
    };
    let mut out = String::new();
    let ops = opcode_totals(cp, &counts);
    let total: u64 = ops.iter().map(|o| o.executed).sum();
    out.push_str(&format!(
        "hot opcodes ({}, {} instructions executed)\n",
        cp.name, total
    ));
    out.push_str("  opcode  executed      sites  share\n");
    for o in &ops {
        out.push_str(&format!(
            "  {:<6}  {:>12}  {:>5}  {:>5.1}%\n",
            o.opcode.name(),
            o.executed,
            o.sites,
            o.executed as f64 / total.max(1) as f64 * 100.0
        ));
    }
    let stmts = hot_statements(cp, p, &counts);
    if !stmts.is_empty() {
        out.push_str("hot statements\n");
        out.push_str("  stmt      instances        instrs  instrs/instance\n");
        for s in &stmts {
            out.push_str(&format!(
                "  {:<8}  {:>9}  {:>12}  {:>15.1}\n",
                s.name,
                s.instances,
                s.instrs,
                s.instrs as f64 / s.instances.max(1) as f64
            ));
        }
    }
    let loops = loop_profiles(cp, p, &counts);
    if !loops.is_empty() {
        out.push_str("hot loops\n");
        out.push_str("  loop   headers  iterations   body instrs\n");
        for l in &loops {
            out.push_str(&format!(
                "  {:<5}  {:>7}  {:>10}  {:>12}\n",
                l.name, l.header_execs, l.iterations, l.body_instrs
            ));
        }
    }
    out
}

/// The profile as a JSON section for telemetry reports.
pub fn to_json(cp: &CompiledProgram, p: Option<&Program>) -> inl_obs::Json {
    use inl_obs::Json;
    let mut root = Json::object();
    root.insert("program", Json::Str(cp.name.clone()));
    let counts = pc_counts(cp).unwrap_or_default();
    let mut ops = Json::object();
    for o in opcode_totals(cp, &counts) {
        ops.insert(o.opcode.name(), Json::Int(o.executed));
    }
    root.insert("opcodes", ops);
    let mut stmts = Json::object();
    for s in hot_statements(cp, p, &counts) {
        let mut obj = Json::object();
        obj.insert("instances", Json::Int(s.instances));
        obj.insert("instrs", Json::Int(s.instrs));
        stmts.insert(s.name, obj);
    }
    root.insert("statements", stmts);
    let mut loops = Json::object();
    for l in loop_profiles(cp, p, &counts) {
        let mut obj = Json::object();
        obj.insert("headers", Json::Int(l.header_execs));
        obj.insert("iterations", Json::Int(l.iterations));
        obj.insert("body_instrs", Json::Int(l.body_instrs));
        loops.insert(l.name, obj);
    }
    root.insert("loops", loops);
    root
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, run};
    use inl_ir::zoo;

    // The profile flag and sink are process-global; serialize tests that
    // toggle them.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_profiling_collects_nothing() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        reset();
        let p = zoo::simple_cholesky();
        let cp = compile(&p);
        let bp = cp.bind(&[4]);
        let mut buf = vec![9.0; bp.total_len];
        run(&bp, &mut buf);
        assert!(pc_counts(&cp).is_none());
    }

    #[test]
    fn profile_counts_match_known_cholesky_shape() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        reset();
        let p = zoo::simple_cholesky();
        let cp = compile(&p);
        let bp = cp.bind(&[4]);
        let mut buf = vec![9.0; bp.total_len];
        run(&bp, &mut buf);
        set_enabled(false);

        let counts = pc_counts(&cp).expect("profiled run recorded");
        // N=4: S1 (sqrt) runs 4 times; S2 (divide) runs 3+2+1 = 6 times.
        let stmts = hot_statements(&cp, Some(&p), &counts);
        let by_name = |n: &str| stmts.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("S1").instances, 4);
        assert_eq!(by_name("S2").instances, 6);

        let ops = opcode_totals(&cp, &counts);
        let op = |o: Opcode| ops.iter().find(|t| t.opcode == o).map_or(0, |t| t.executed);
        assert_eq!(op(Opcode::Store), 10);
        assert_eq!(op(Opcode::Sqrt), 4);
        assert_eq!(op(Opcode::Div), 6);
        // Totals agree with the dispatch loop's own tally.
        let executed: u64 = ops.iter().map(|t| t.executed).sum();
        assert_eq!(executed, counts.iter().sum::<u64>());
        assert!(ops.windows(2).all(|w| w[0].executed >= w[1].executed));

        // Inner loop J: 6 iterations, driven through its header.
        let loops = loop_profiles(&cp, Some(&p), &counts);
        let j = loops.iter().find(|l| l.name == "J").unwrap();
        assert_eq!(j.iterations, 6);
        assert!(j.header_execs > 0);

        let tables = render_tables(&cp, Some(&p));
        assert!(tables.contains("hot opcodes"));
        assert!(tables.contains("store"));
        assert!(tables.contains("S2"));
    }

    #[test]
    fn profiles_are_keyed_per_program() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        reset();
        let p1 = zoo::simple_cholesky();
        let p2 = zoo::matmul();
        let cp1 = compile(&p1);
        let cp2 = compile(&p2);
        assert_ne!(cp1.id, cp2.id);
        let bp = cp1.bind(&[3]);
        let mut buf = vec![4.0; bp.total_len];
        run(&bp, &mut buf);
        set_enabled(false);
        assert!(pc_counts(&cp1).is_some());
        assert!(pc_counts(&cp2).is_none());
    }
}
