//! # inl-vm
//!
//! A compiling bytecode VM for executing transformed loop nests — the
//! framework's second execution backend, next to the tree-walking
//! interpreter in `inl-exec`.
//!
//! The interpreter pays, per statement instance: a closure-based variable
//! lookup, exact-`Rational` affine evaluation, and a heap-allocated
//! `Vec<usize>` per array access. That overhead drowns out the locality
//! effects the paper's E7 experiment exists to measure. `inl-vm` pre-lowers
//! all of it at compile time:
//!
//! * affine bounds, guards, and subscripts → integer **coefficient rows**
//!   over a flat register file (parameters + loop variables);
//! * multi-dimensional array accesses → a precomputed **flat-offset row**
//!   (base + strides folded into the coefficients) into a single flat
//!   `f64` buffer;
//! * expressions → stack-free **three-address code** over `f64` value
//!   registers;
//! * loops → `Loop`/`Next` header/latch instructions with explicit jump
//!   targets.
//!
//! The per-instance hot path is integer multiply-adds and indexed loads —
//! zero allocation, zero hashing.
//!
//! ## Two-stage lowering
//!
//! [`compile()`](compile()) produces a [`CompiledProgram`] that is still *symbolic* in
//! the program parameters (array extents are affine in `N`).
//! [`CompiledProgram::bind`] fixes parameter values: it lays the arrays
//! out in one flat buffer (row-major, `ArrayId` order — the same order
//! the `inl-exec` `Machine` allocates them) and lowers every access to a
//! [`bytecode::FlatAcc`]. [`run()`](run()) then executes against a `&mut [f64]`.
//!
//! ```
//! use inl_ir::zoo;
//!
//! let p = zoo::simple_cholesky();
//! let cp = inl_vm::compile(&p);
//! let bp = cp.bind(&[2]);           // N = 2
//! let mut buf = vec![16.0; bp.total_len];
//! inl_vm::run(&bp, &mut buf);
//! let a = &bp.arrays[0];            // A, extent N+1
//! assert_eq!(buf[a.base + 1], 4.0); // sqrt(16)
//! assert_eq!(buf[a.base + 2], 2.0); // sqrt(16/4)
//! ```
//!
//! ## Equivalence discipline
//!
//! The VM is **bitwise-identical** to the interpreter by construction:
//! the same f64 operations in the same order, guards as integer sign
//! tests on the same numerators, and [`bytecode::Instr::Idx`] replicating
//! the interpreter's reduce-then-divide rational semantics. The
//! differential tests in the workspace root assert this over every zoo
//! program and randomly transformed variants.
//!
//! ## Parallel execution
//!
//! [`exec_range`] runs any `[start, end)` slice of the instruction
//! stream, so a driver can evaluate a parallel loop's bounds via
//! [`bytecode::BoundProgram::loop_bounds`], set the loop-variable
//! register in a cloned [`VmState`], and execute the loop *body* range
//! per iteration against a [`SharedBuf`] shared across workers. The
//! `inl-exec` parallel wavefront executor does exactly this.
//!
//! ## Telemetry
//!
//! Compilation runs under an `inl-obs` `vm.compile` span; execution
//! batches `vm.instrs` / `vm.instances` counters locally and flushes once
//! per [`exec_range`] call. The optional [`profile`] mode
//! (`INL_VM_PROFILE=1`) additionally counts executions per instruction
//! address with the same per-`exec_range` batching, from which hot
//! opcode/statement/loop tables are derived.

pub mod bytecode;
pub mod compile;
pub mod profile;
pub mod run;

pub use bytecode::{BoundProgram, CompiledProgram, GuardKind, Instr, Opcode, Row};
pub use compile::compile;
pub use run::{exec_range, run, SharedBuf, VmState};

#[cfg(test)]
mod tests {
    use super::*;
    use inl_ir::{zoo, Aff, Expr, Guard, ProgramBuilder};

    /// Fill a fresh flat buffer with `init(array_name, multi_index)`,
    /// mirroring `Machine::new`'s initialisation contract.
    fn init_buf(bp: &BoundProgram, init: &dyn Fn(&str, &[usize]) -> f64) -> Vec<f64> {
        let mut buf = vec![0.0; bp.total_len];
        for a in &bp.arrays {
            let mut idx = vec![0usize; a.dims.len()];
            for i in 0..a.len {
                let mut rem = i;
                for (d, &ext) in a.dims.iter().enumerate().rev() {
                    idx[d] = rem % ext;
                    rem /= ext;
                }
                buf[a.base + i] = init(&a.name, &idx);
            }
        }
        buf
    }

    /// Read one cell of `name` at a multi-index.
    fn cell(bp: &BoundProgram, buf: &[f64], name: &str, idx: &[usize]) -> f64 {
        let a = bp.arrays.iter().find(|a| a.name == name).unwrap();
        assert_eq!(idx.len(), a.dims.len());
        let mut off = 0;
        for (d, &i) in idx.iter().enumerate() {
            assert!(i < a.dims[d]);
            off = off * a.dims[d] + i;
        }
        buf[a.base + off]
    }

    #[test]
    fn simple_cholesky_computes() {
        let p = zoo::simple_cholesky();
        let cp = compile(&p);
        // N = 1: A(1) = sqrt(A(1)); no inner iterations
        let bp = cp.bind(&[1]);
        let mut buf = init_buf(&bp, &|_, _| 16.0);
        run(&bp, &mut buf);
        assert_eq!(cell(&bp, &buf, "A", &[1]), 4.0);
        // N = 2: A(1)=sqrt(A(1)); A(2)=A(2)/A(1); A(2)=sqrt(A(2))
        let bp = cp.bind(&[2]);
        let mut buf = init_buf(&bp, &|_, _| 16.0);
        run(&bp, &mut buf);
        assert_eq!(cell(&bp, &buf, "A", &[1]), 4.0);
        assert_eq!(cell(&bp, &buf, "A", &[2]), 2.0); // sqrt(16/4)
    }

    #[test]
    fn wavefront_values() {
        let p = zoo::wavefront();
        let cp = compile(&p);
        let bp = cp.bind(&[3]);
        let mut buf = init_buf(&bp, &|_, idx| {
            if idx[0] == 0 || idx[1] == 0 {
                1.0
            } else {
                0.0
            }
        });
        run(&bp, &mut buf);
        assert_eq!(cell(&bp, &buf, "A", &[1, 1]), 2.0);
        assert_eq!(cell(&bp, &buf, "A", &[2, 1]), 3.0);
        assert_eq!(cell(&bp, &buf, "A", &[2, 2]), 6.0);
        assert_eq!(cell(&bp, &buf, "A", &[3, 3]), 20.0);
    }

    #[test]
    fn guards_filter_instances() {
        // do I = 1..N: if (I mod 2 == 0) X(I) = 1
        let mut b = ProgramBuilder::new("guarded");
        let n = b.param("N");
        let x = b.array("X", &[Aff::param(n) + Aff::konst(1)]);
        b.hloop("I", Aff::konst(1), Aff::param(n), |b| {
            let i = b.loop_var("I");
            b.stmt_guarded(
                "S",
                x,
                vec![Aff::var(i)],
                Expr::konst(1.0),
                vec![Guard::Div(Aff::var(i), 2)],
            );
        });
        let p = b.finish();
        let cp = compile(&p);
        let bp = cp.bind(&[5]);
        let mut buf = init_buf(&bp, &|_, _| 0.0);
        run(&bp, &mut buf);
        let x = &bp.arrays[0];
        assert_eq!(
            &buf[x.base..x.base + x.len],
            &[0.0, 0.0, 1.0, 0.0, 1.0, 0.0]
        );
    }

    #[test]
    fn empty_ranges_execute_nothing() {
        let p = zoo::perfect_nest();
        let cp = compile(&p);
        // N = 1: inner loop J = 2..1 is empty
        let bp = cp.bind(&[1]);
        let mut buf = init_buf(&bp, &|_, _| 7.0);
        run(&bp, &mut buf);
        let a = &bp.arrays[0];
        assert_eq!(&buf[a.base..a.base + a.len], &[7.0, 7.0]);
    }

    #[test]
    fn instance_counters_match_instance_count() {
        inl_obs::reset();
        inl_obs::set_enabled(true);
        let p = zoo::simple_cholesky();
        let cp = compile(&p);
        let bp = cp.bind(&[4]);
        let mut buf = init_buf(&bp, &|_, _| 9.0);
        run(&bp, &mut buf);
        // N=4: S1 runs 4 times; S2 runs 3+2+1 = 6 times
        assert_eq!(inl_obs::counter_value("vm.instances"), 10);
        assert!(inl_obs::counter_value("vm.instrs") >= 10);
        inl_obs::set_enabled(false);
    }

    #[test]
    fn disasm_mentions_structure() {
        let p = zoo::simple_cholesky();
        let cp = compile(&p);
        let d = cp.disasm(&p);
        assert!(d.contains("loop I"));
        assert!(d.contains("loop J"));
        assert!(d.contains("store"));
        assert!(d.contains("sqrt"));
    }

    #[test]
    fn flat_accesses_merge_strides() {
        // Every zoo access has divisor-1 subscripts → all lower to Flat.
        let p = zoo::matmul();
        let cp = compile(&p);
        let bp = cp.bind(&[4]);
        assert!(bp
            .accs
            .iter()
            .all(|a| matches!(a, bytecode::FlatAcc::Flat { .. })));
    }
}
