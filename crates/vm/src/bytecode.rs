//! The bytecode format: affine rows, instructions, and the two program
//! stages (symbolic [`CompiledProgram`], parameter-bound [`BoundProgram`]).
//!
//! # Register files
//!
//! The VM has two register files:
//!
//! * **integer registers** — one `i64` per program variable, parameters
//!   first (`0 .. nparams`), then loop variables (`nparams + LoopId.0`).
//!   Parameters are loaded once at bind time and never change; loop
//!   registers are driven by [`Instr::Loop`]/[`Instr::Next`].
//! * **value registers** — a small `f64` file holding expression
//!   temporaries, allocated stack-wise per statement at compile time.
//!
//! # Affine rows
//!
//! Every affine expression of the IR (bounds, guards, subscripts, index
//! values) compiles to a [`Row`]: a sparse list of `(integer register,
//! coefficient)` terms, a constant, and a positive divisor. Evaluating a
//! row is one integer dot product — no rationals, no hashing, no
//! allocation.
//!
//! # Array storage
//!
//! All arrays live in **one flat `f64` buffer**; binding assigns each
//! array a base offset and row-major strides. An access whose subscripts
//! all have divisor 1 collapses into a *single* row computing the flat
//! buffer offset directly (strides and the array base folded into the
//! coefficients); accesses with divisor subscripts (non-unimodular code
//! generation) keep per-dimension rows with exact-divisibility checks.

use inl_ir::{LoopId, Program, StmtId};
use inl_linalg::Int;

/// Index of an `f64` value register.
pub type Reg = u16;
/// Index of an `i64` integer register (parameters then loop variables).
pub type IReg = u16;
/// Index into a program's row arena.
pub type RowId = u32;
/// Instruction address.
pub type Pc = u32;

/// A contiguous run of rows in the arena: `(start, len)`. Loop bounds are
/// `max`/`min` over such a run (one row per bound term).
pub type RowRange = (RowId, u16);

/// A sparse affine row `(Σ cᵢ·reg_i + konst) / div` over the integer
/// register file, with `div ≥ 1`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// `(integer register, coefficient)` terms.
    pub terms: Vec<(IReg, i64)>,
    /// Constant term (numerator).
    pub konst: i64,
    /// Positive divisor.
    pub div: i64,
}

impl Row {
    /// Numerator value at the current register file (no division applied).
    #[inline]
    pub fn num(&self, iregs: &[i64]) -> i64 {
        let mut acc = self.konst;
        for &(r, c) in &self.terms {
            acc += c * iregs[r as usize];
        }
        acc
    }
}

/// Mathematical floor of `n / d` for `d > 0`.
#[inline]
pub fn floor_div(n: i64, d: i64) -> i64 {
    n.div_euclid(d)
}

/// Mathematical ceiling of `n / d` for `d > 0`.
#[inline]
pub fn ceil_div(n: i64, d: i64) -> i64 {
    -(-n).div_euclid(d)
}

/// A guard's comparison kind (the row's divisor is always 1 — the IR
/// validator rejects guards with divisors).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GuardKind {
    /// `row ≥ 0`.
    Ge,
    /// `row = 0`.
    Eq,
    /// `k` divides `row`.
    Div(i64),
}

/// One VM instruction. The stream is flat; control flow is explicit
/// through the `exit`/`back`/`skip` addresses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Instr {
    /// Loop header: evaluate the lower bound (max of ceilings over `lo`)
    /// into integer register `var` and the upper bound (min of floors over
    /// `hi`) into the loop's bound slot; jump to `exit` when the range is
    /// empty.
    Loop {
        /// Loop-variable register.
        var: IReg,
        /// Lower-bound rows.
        lo: RowRange,
        /// Upper-bound rows.
        hi: RowRange,
        /// Step (≥ 1).
        step: i64,
        /// First instruction after the loop.
        exit: Pc,
    },
    /// Loop latch: `var += step`; jump to `back` (the first body
    /// instruction) while `var` has not passed the stored upper bound.
    Next {
        /// Loop-variable register.
        var: IReg,
        /// Step (≥ 1).
        step: i64,
        /// First body instruction.
        back: Pc,
    },
    /// Statement guard: jump to `skip` (past the statement) unless the
    /// condition holds.
    Guard {
        /// Guard expression row (divisor 1).
        row: RowId,
        /// Comparison kind.
        kind: GuardKind,
        /// First instruction after the statement.
        skip: Pc,
    },
    /// Load an `f64` literal (stored as bits for `Eq`/`Hash`).
    Const {
        /// Destination value register.
        dst: Reg,
        /// `f64::to_bits` of the literal.
        bits: u64,
    },
    /// The value of an affine row as `f64` (`Expr::Index`): exact-rational
    /// semantics matching the interpreter.
    Idx {
        /// Destination value register.
        dst: Reg,
        /// The affine row (may carry a divisor).
        row: RowId,
    },
    /// Array read through a bound access into a value register.
    Load {
        /// Destination value register.
        dst: Reg,
        /// Index into the bound access table.
        acc: u32,
    },
    /// Negation.
    Neg {
        /// Destination (also source) value register.
        dst: Reg,
        /// Source value register.
        src: Reg,
    },
    /// Square root.
    Sqrt {
        /// Destination (also source) value register.
        dst: Reg,
        /// Source value register.
        src: Reg,
    },
    /// Addition.
    Add {
        /// Destination value register.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// Subtraction.
    Sub {
        /// Destination value register.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// Multiplication.
    Mul {
        /// Destination value register.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// Division.
    Div {
        /// Destination value register.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// Array write; ends a statement instance (this is where
    /// `vm.instances` counts).
    Store {
        /// Source value register.
        src: Reg,
        /// Index into the bound access table.
        acc: u32,
    },
}

/// The operation kind of an [`Instr`], without operands — the unit the
/// VM profiler aggregates over.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Opcode {
    Loop,
    Next,
    Guard,
    Const,
    Idx,
    Load,
    Neg,
    Sqrt,
    Add,
    Sub,
    Mul,
    Div,
    Store,
}

impl Opcode {
    /// Every opcode, in declaration order.
    pub const ALL: [Opcode; 13] = [
        Opcode::Loop,
        Opcode::Next,
        Opcode::Guard,
        Opcode::Const,
        Opcode::Idx,
        Opcode::Load,
        Opcode::Neg,
        Opcode::Sqrt,
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::Div,
        Opcode::Store,
    ];

    /// Mnemonic, matching the disassembly.
    pub fn name(self) -> &'static str {
        match self {
            Opcode::Loop => "loop",
            Opcode::Next => "next",
            Opcode::Guard => "guard",
            Opcode::Const => "const",
            Opcode::Idx => "idx",
            Opcode::Load => "load",
            Opcode::Neg => "neg",
            Opcode::Sqrt => "sqrt",
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::Mul => "mul",
            Opcode::Div => "div",
            Opcode::Store => "store",
        }
    }
}

impl Instr {
    /// This instruction's [`Opcode`].
    pub fn opcode(&self) -> Opcode {
        match self {
            Instr::Loop { .. } => Opcode::Loop,
            Instr::Next { .. } => Opcode::Next,
            Instr::Guard { .. } => Opcode::Guard,
            Instr::Const { .. } => Opcode::Const,
            Instr::Idx { .. } => Opcode::Idx,
            Instr::Load { .. } => Opcode::Load,
            Instr::Neg { .. } => Opcode::Neg,
            Instr::Sqrt { .. } => Opcode::Sqrt,
            Instr::Add { .. } => Opcode::Add,
            Instr::Sub { .. } => Opcode::Sub,
            Instr::Mul { .. } => Opcode::Mul,
            Instr::Div { .. } => Opcode::Div,
            Instr::Store { .. } => Opcode::Store,
        }
    }
}

/// A symbolic (pre-binding) array access: per-dimension subscript rows.
#[derive(Clone, Debug)]
pub struct AccessDesc {
    /// The array (by `ArrayId.0`).
    pub array: u32,
    /// One row per dimension, in declaration order.
    pub dims: Vec<RowId>,
}

/// A symbolic array declaration: extents as rows over the parameter
/// registers only.
#[derive(Clone, Debug)]
pub struct ArrayDesc {
    /// Source-level name.
    pub name: String,
    /// Extent rows (divisor 1, parameters only).
    pub dims: Vec<RowId>,
}

/// Compile-time metadata for one loop: where its instructions live, so
/// drivers (the parallel executor) can run bodies directly.
#[derive(Clone, Copy, Debug)]
pub struct LoopMeta {
    /// The loop-variable integer register.
    pub var: IReg,
    /// Step (≥ 1).
    pub step: i64,
    /// Address of the [`Instr::Loop`] header.
    pub header: Pc,
    /// Body instruction range `[start, end)` (excludes header and latch).
    pub body: (Pc, Pc),
    /// First instruction after the loop (also the header's `exit`).
    pub exit: Pc,
    /// Lower-bound rows.
    pub lo: RowRange,
    /// Upper-bound rows.
    pub hi: RowRange,
}

/// A program compiled to bytecode, still symbolic in the parameters.
/// Bind parameters with [`CompiledProgram::bind`] to make it runnable.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    /// Process-unique compilation id (assigned by [`crate::compile()`]),
    /// keying this program's profile samples in [`crate::profile`].
    pub id: u64,
    /// Source program name.
    pub name: String,
    /// Number of parameters (integer registers `0 .. nparams`).
    pub nparams: usize,
    /// Number of loop variables (integer registers `nparams ..`).
    pub nloops: usize,
    /// Size of the `f64` value register file.
    pub nfregs: usize,
    /// The instruction stream.
    pub code: Vec<Instr>,
    /// Row arena.
    pub rows: Vec<Row>,
    /// Symbolic accesses (lowered to [`FlatAcc`] at bind time).
    pub accesses: Vec<AccessDesc>,
    /// Array declarations.
    pub arrays: Vec<ArrayDesc>,
    /// Per-loop metadata (`None` for loops detached from the tree).
    pub loops: Vec<Option<LoopMeta>>,
    /// Per-statement instruction ranges `[start, end)`.
    pub stmts: Vec<Option<(Pc, Pc)>>,
}

/// One array's slice of the flat execution buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrayLayout {
    /// Source-level name.
    pub name: String,
    /// Concrete extents.
    pub dims: Vec<usize>,
    /// Offset of the array's first cell in the flat buffer.
    pub base: usize,
    /// Total cell count (`Π dims`).
    pub len: usize,
}

/// One dimension of a slow-path (divisor-carrying) access.
#[derive(Clone, Debug)]
pub struct DimAcc {
    /// Subscript row.
    pub row: RowId,
    /// Row-major stride of this dimension.
    pub stride: usize,
    /// Extent (for the bounds check).
    pub extent: usize,
}

/// A parameter-bound array access.
#[derive(Clone, Debug)]
pub enum FlatAcc {
    /// Fast path: all subscripts had divisor 1, so strides and the array
    /// base fold into one row computing the flat offset directly. The
    /// offset is checked against the array's buffer segment.
    Flat {
        /// Merged `(integer register, coefficient)` terms.
        terms: Vec<(IReg, i64)>,
        /// Constant term (includes the array base).
        konst: i64,
        /// Segment start (the array base).
        start: usize,
        /// Segment end (exclusive).
        end: usize,
    },
    /// Slow path: per-dimension rows with exact-divisibility and
    /// per-dimension bounds checks (mirrors the interpreter).
    Dims {
        /// Per-dimension accesses.
        dims: Vec<DimAcc>,
        /// Array base offset.
        base: usize,
    },
}

/// A [`CompiledProgram`] with parameters bound: array layout computed,
/// accesses lowered, ready to execute on a flat `f64` buffer.
#[derive(Clone, Debug)]
pub struct BoundProgram<'c> {
    /// The underlying bytecode.
    pub cp: &'c CompiledProgram,
    /// Bound parameter values.
    pub params: Vec<i64>,
    /// Per-array buffer layout, in `ArrayId` order.
    pub arrays: Vec<ArrayLayout>,
    /// Lowered accesses, parallel to `cp.accesses`.
    pub accs: Vec<FlatAcc>,
    /// Total flat buffer length (`Σ arrays[i].len`).
    pub total_len: usize,
}

impl CompiledProgram {
    /// Bind parameter values: compute array layouts and lower every access
    /// to its flat form.
    ///
    /// ```
    /// let p = inl_ir::zoo::simple_cholesky();
    /// let cp = inl_vm::compile(&p);
    /// let bp = cp.bind(&[3]); // N = 3
    /// let mut buf = vec![9.0; bp.total_len];
    /// inl_vm::run(&bp, &mut buf);
    /// assert_eq!(buf[bp.arrays[0].base + 1], 3.0); // A[1] = sqrt(9)
    /// ```
    ///
    /// # Panics
    /// On parameter arity mismatch, non-positive extents, or values that
    /// do not fit the VM's `i64` registers.
    pub fn bind(&self, params: &[Int]) -> BoundProgram<'_> {
        assert_eq!(params.len(), self.nparams, "parameter arity mismatch");
        let params: Vec<i64> = params
            .iter()
            .map(|&p| i64::try_from(p).expect("parameter out of i64 range"))
            .collect();
        // Extent rows reference parameter registers only (enforced at
        // compile time), so a params-prefixed scratch file suffices.
        let mut scratch = params.clone();
        scratch.resize(self.nparams + self.nloops, 0);
        let mut arrays = Vec::with_capacity(self.arrays.len());
        let mut base = 0usize;
        for a in &self.arrays {
            let dims: Vec<usize> = a
                .dims
                .iter()
                .map(|&r| {
                    let row = &self.rows[r as usize];
                    debug_assert_eq!(row.div, 1, "array extent with divisor");
                    let ext = row.num(&scratch);
                    assert!(ext > 0, "array {} has non-positive extent {ext}", a.name);
                    ext as usize
                })
                .collect();
            let len = dims.iter().product();
            arrays.push(ArrayLayout {
                name: a.name.clone(),
                dims,
                base,
                len,
            });
            base += len;
        }
        let accs = self
            .accesses
            .iter()
            .map(|acc| self.lower_access(acc, &arrays))
            .collect();
        BoundProgram {
            cp: self,
            params,
            arrays,
            accs,
            total_len: base,
        }
    }

    fn lower_access(&self, acc: &AccessDesc, arrays: &[ArrayLayout]) -> FlatAcc {
        let layout = &arrays[acc.array as usize];
        // row-major strides: stride_d = Π extents after d
        let mut strides = vec![1usize; layout.dims.len()];
        for d in (0..layout.dims.len().saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * layout.dims[d + 1];
        }
        let fast = acc.dims.iter().all(|&r| self.rows[r as usize].div == 1);
        if fast {
            // merge stride_d · row_d into one flat-offset row
            let mut terms: Vec<(IReg, i64)> = Vec::new();
            let mut konst = layout.base as i64;
            for (&r, &stride) in acc.dims.iter().zip(&strides) {
                let row = &self.rows[r as usize];
                konst += row.konst * stride as i64;
                for &(reg, c) in &row.terms {
                    match terms.iter_mut().find(|(tr, _)| *tr == reg) {
                        Some((_, tc)) => *tc += c * stride as i64,
                        None => terms.push((reg, c * stride as i64)),
                    }
                }
            }
            terms.retain(|&(_, c)| c != 0);
            FlatAcc::Flat {
                terms,
                konst,
                start: layout.base,
                end: layout.base + layout.len,
            }
        } else {
            FlatAcc::Dims {
                dims: acc
                    .dims
                    .iter()
                    .zip(&strides)
                    .zip(&layout.dims)
                    .map(|((&row, &stride), &extent)| DimAcc {
                        row,
                        stride,
                        extent,
                    })
                    .collect(),
                base: layout.base,
            }
        }
    }

    /// Metadata for a loop, if it is attached to the program tree.
    pub fn loop_meta(&self, l: LoopId) -> Option<&LoopMeta> {
        self.loops[l.0].as_ref()
    }

    /// Instruction range of a statement.
    pub fn stmt_range(&self, s: StmtId) -> Option<(Pc, Pc)> {
        self.stmts[s.0]
    }

    /// Total instruction count.
    pub fn ninstrs(&self) -> usize {
        self.code.len()
    }

    /// Human-readable disassembly (one instruction per line), used in docs
    /// and tests. Register names resolve through the source program.
    pub fn disasm(&self, p: &Program) -> String {
        use std::fmt::Write;
        let ireg_name = |r: IReg| -> String {
            let r = r as usize;
            if r < self.nparams {
                p.params()[r].clone()
            } else {
                p.loop_decl(LoopId(r - self.nparams)).name.clone()
            }
        };
        let row_str = |id: RowId| -> String {
            let row = &self.rows[id as usize];
            let mut s = String::new();
            for (i, &(r, c)) in row.terms.iter().enumerate() {
                let name = ireg_name(r);
                if i == 0 {
                    match c {
                        1 => write!(s, "{name}").unwrap(),
                        -1 => write!(s, "-{name}").unwrap(),
                        _ => write!(s, "{c}*{name}").unwrap(),
                    }
                } else if c >= 0 {
                    write!(
                        s,
                        " + {}",
                        if c == 1 { name } else { format!("{c}*{name}") }
                    )
                    .unwrap();
                } else {
                    let c = -c;
                    write!(
                        s,
                        " - {}",
                        if c == 1 { name } else { format!("{c}*{name}") }
                    )
                    .unwrap();
                }
            }
            if row.terms.is_empty() {
                write!(s, "{}", row.konst).unwrap();
            } else if row.konst > 0 {
                write!(s, " + {}", row.konst).unwrap();
            } else if row.konst < 0 {
                write!(s, " - {}", -row.konst).unwrap();
            }
            if row.div != 1 {
                s = format!("({s})/{}", row.div);
            }
            s
        };
        let range_str = |(start, len): RowRange| -> String {
            (start..start + len as u32)
                .map(row_str)
                .collect::<Vec<_>>()
                .join(", ")
        };
        let acc_str = |a: u32| -> String {
            let acc = &self.accesses[a as usize];
            format!(
                "{}[{}]",
                self.arrays[acc.array as usize].name,
                acc.dims
                    .iter()
                    .map(|&r| row_str(r))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        };
        let mut out = String::new();
        for (pc, i) in self.code.iter().enumerate() {
            let line = match *i {
                Instr::Loop {
                    var,
                    lo,
                    hi,
                    step,
                    exit,
                } => format!(
                    "loop {} = max({}) .. min({}) step {step} exit @{exit}",
                    ireg_name(var),
                    range_str(lo),
                    range_str(hi)
                ),
                Instr::Next { var, step, back } => {
                    format!("next {} += {step} back @{back}", ireg_name(var))
                }
                Instr::Guard { row, kind, skip } => {
                    let cond = match kind {
                        GuardKind::Ge => format!("{} >= 0", row_str(row)),
                        GuardKind::Eq => format!("{} == 0", row_str(row)),
                        GuardKind::Div(k) => format!("{k} | {}", row_str(row)),
                    };
                    format!("guard {cond} else @{skip}")
                }
                Instr::Const { dst, bits } => format!("r{dst} = {}", f64::from_bits(bits)),
                Instr::Idx { dst, row } => format!("r{dst} = idx({})", row_str(row)),
                Instr::Load { dst, acc } => format!("r{dst} = load {}", acc_str(acc)),
                Instr::Neg { dst, src } => format!("r{dst} = -r{src}"),
                Instr::Sqrt { dst, src } => format!("r{dst} = sqrt(r{src})"),
                Instr::Add { dst, a, b } => format!("r{dst} = r{a} + r{b}"),
                Instr::Sub { dst, a, b } => format!("r{dst} = r{a} - r{b}"),
                Instr::Mul { dst, a, b } => format!("r{dst} = r{a} * r{b}"),
                Instr::Div { dst, a, b } => format!("r{dst} = r{a} / r{b}"),
                Instr::Store { src, acc } => format!("store r{src} -> {}", acc_str(acc)),
            };
            out.push_str(&format!("{pc:4}: {line}\n"));
        }
        out
    }
}

impl BoundProgram<'_> {
    /// Evaluate a loop's bounds at the current register file:
    /// `(max of ceilings, min of floors)`.
    pub fn loop_bounds(&self, l: LoopId, iregs: &[i64]) -> (i64, i64) {
        let meta = self.cp.loop_meta(l).expect("detached loop");
        (
            eval_lo(&self.cp.rows, meta.lo, iregs),
            eval_hi(&self.cp.rows, meta.hi, iregs),
        )
    }
}

/// Lower bound of a row range: max of ceilings.
#[inline]
pub(crate) fn eval_lo(rows: &[Row], (start, len): RowRange, iregs: &[i64]) -> i64 {
    let mut best = i64::MIN;
    for row in &rows[start as usize..start as usize + len as usize] {
        let v = ceil_div(row.num(iregs), row.div);
        best = best.max(v);
    }
    best
}

/// Upper bound of a row range: min of floors.
#[inline]
pub(crate) fn eval_hi(rows: &[Row], (start, len): RowRange, iregs: &[i64]) -> i64 {
    let mut best = i64::MAX;
    for row in &rows[start as usize..start as usize + len as usize] {
        let v = floor_div(row.num(iregs), row.div);
        best = best.min(v);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_ceil_division() {
        assert_eq!(floor_div(7, 2), 3);
        assert_eq!(floor_div(-7, 2), -4);
        assert_eq!(ceil_div(7, 2), 4);
        assert_eq!(ceil_div(-7, 2), -3);
        assert_eq!(ceil_div(8, 2), 4);
        assert_eq!(floor_div(-8, 2), -4);
    }

    #[test]
    fn row_eval() {
        let row = Row {
            terms: vec![(0, 2), (2, -1)],
            konst: 5,
            div: 1,
        };
        assert_eq!(row.num(&[3, 99, 4]), 2 * 3 - 4 + 5);
    }
}
