//! Length-prefixed framing over any byte stream.
//!
//! A frame is a 4-byte big-endian length `n` followed by `n` bytes of
//! payload. The reader distinguishes a *clean* end of stream (EOF at a
//! frame boundary — the peer hung up politely) from a *truncated* frame
//! (EOF mid-header or mid-payload — a protocol violation reported as a
//! typed error).

use inl_linalg::{InlError, InlErrorKind};
use std::io::{ErrorKind, Read, Write};

/// Default cap on a single frame's payload: 1 MiB. Generous for every
/// message this protocol defines (the largest are pseudocode listings a
/// few KiB long) while keeping a hostile length prefix from forcing a
/// 4 GiB allocation.
pub const MAX_FRAME_DEFAULT: usize = 1 << 20;

/// Decode limits applied to every inbound frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameLimits {
    /// Maximum payload length in bytes; a length prefix above this is
    /// rejected before any allocation.
    pub max_frame: usize,
    /// Maximum JSON nesting depth for the payload (see
    /// [`inl_obs::ParseLimits`]).
    pub max_json_depth: usize,
}

impl Default for FrameLimits {
    fn default() -> Self {
        FrameLimits {
            max_frame: MAX_FRAME_DEFAULT,
            max_json_depth: 64,
        }
    }
}

/// Write one frame: 4-byte big-endian length, then the payload.
///
/// Fails with a typed error if `payload` exceeds `u32::MAX` bytes (it
/// could not be represented in the header); I/O errors pass through.
///
/// ```
/// let mut wire = Vec::new();
/// inl_proto::write_frame(&mut wire, b"{}").unwrap();
/// assert_eq!(wire, [0, 0, 0, 2, b'{', b'}']);
/// ```
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(
            ErrorKind::InvalidInput,
            format!("frame payload of {} bytes exceeds u32", payload.len()),
        )
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// What [`read_frame`] can report besides a payload.
#[derive(Debug)]
pub enum FrameError {
    /// The transport failed (socket reset, interrupted read, …).
    Io(std::io::Error),
    /// The peer violated the protocol: truncated frame or a length
    /// prefix beyond [`FrameLimits::max_frame`].
    Malformed(InlError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport: {e}"),
            FrameError::Malformed(e) => write!(f, "protocol: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Read one frame under `limits`.
///
/// Returns `Ok(None)` on a clean EOF before the first header byte (the
/// peer closed the connection between frames). EOF anywhere *inside* a
/// frame is [`FrameError::Malformed`], as is a length prefix above
/// [`FrameLimits::max_frame`] — checked before the payload buffer is
/// allocated, so a hostile header cannot balloon memory.
pub fn read_frame(r: &mut impl Read, limits: &FrameLimits) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; 4];
    // First byte by hand to tell clean EOF from truncation.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    header[0] = first[0];
    read_exact_or_truncated(r, &mut header[1..], "length header")?;
    let len = u32::from_be_bytes(header) as usize;
    if len > limits.max_frame {
        return Err(FrameError::Malformed(InlError::new(
            InlErrorKind::IllFormed,
            format!(
                "frame length {len} exceeds the {}-byte limit",
                limits.max_frame
            ),
        )));
    }
    let mut payload = vec![0u8; len];
    read_exact_or_truncated(r, &mut payload, "payload")?;
    Ok(Some(payload))
}

fn read_exact_or_truncated(
    r: &mut impl Read,
    buf: &mut [u8],
    what: &str,
) -> Result<(), FrameError> {
    match r.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == ErrorKind::UnexpectedEof => Err(FrameError::Malformed(
            InlError::new(InlErrorKind::IllFormed, format!("truncated frame {what}")),
        )),
        Err(e) => Err(FrameError::Io(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_frames() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, b"world!").unwrap();
        let mut r = &wire[..];
        let limits = FrameLimits::default();
        assert_eq!(read_frame(&mut r, &limits).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, &limits).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r, &limits).unwrap().unwrap(), b"world!");
        assert!(read_frame(&mut r, &limits).unwrap().is_none());
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        // Header claims u32::MAX bytes; only 2 follow. Must error on the
        // length check, not attempt a 4 GiB allocation.
        let wire = [0xFF, 0xFF, 0xFF, 0xFF, 1, 2];
        let err = read_frame(&mut &wire[..], &FrameLimits::default()).unwrap_err();
        match err {
            FrameError::Malformed(e) => {
                assert_eq!(e.kind(), inl_linalg::InlErrorKind::IllFormed);
                assert!(e.message().contains("exceeds"), "{e}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_malformed_not_clean_eof() {
        // Truncated header.
        let wire = [0u8, 0];
        assert!(matches!(
            read_frame(&mut &wire[..], &FrameLimits::default()),
            Err(FrameError::Malformed(_))
        ));
        // Truncated payload: header says 5 bytes, only 3 arrive.
        let wire = [0u8, 0, 0, 5, b'a', b'b', b'c'];
        assert!(matches!(
            read_frame(&mut &wire[..], &FrameLimits::default()),
            Err(FrameError::Malformed(_))
        ));
    }
}
