//! # inl-proto
//!
//! The wire protocol spoken between `inl-serve` and its clients: a
//! std-only layer of **length-prefixed frames** carrying **hand-rolled
//! JSON** messages (the [`inl_obs::Json`] writer/parser — the build
//! environment has no serde), with typed request/response enums on top.
//!
//! Design rules, in order:
//!
//! 1. **Never panic on wire input.** Every decode path — truncated
//!    frames, oversized length prefixes, garbage bytes, over-deep JSON,
//!    unknown message types, missing fields — returns a typed
//!    [`InlError`](inl_linalg::InlError); the `inl-fuzz` harness feeds
//!    random garbage through [`decode_request`]/[`decode_response`] to
//!    enforce this.
//! 2. **Strict limits before allocation.** A frame's length prefix is
//!    validated against [`FrameLimits::max_frame`] *before* the payload
//!    buffer is allocated, and the JSON parser runs under
//!    [`inl_obs::ParseLimits`] so nesting depth is bounded.
//! 3. **Deterministic encoding.** Messages serialize through
//!    [`inl_obs::Json::to_pretty_string`] with object keys in `BTreeMap` order, so
//!    an identical request always produces byte-identical wire text —
//!    this is what lets the load generator assert server responses are
//!    bitwise-identical to in-process results.
//!
//! Frame format: a 4-byte big-endian payload length, then exactly that
//! many bytes of UTF-8 JSON. See [`frame`] for the framing primitives
//! and [`msg`] for the message schema.

#![warn(missing_docs)]

pub mod frame;
pub mod msg;

pub use frame::{read_frame, write_frame, FrameError, FrameLimits, MAX_FRAME_DEFAULT};
pub use msg::{
    decode_request, decode_response, encode_request, encode_response, BackendChoice,
    CompileOutcome, Request, Response,
};
