//! The typed message schema: what flows inside the frames.
//!
//! Every message is a JSON object with a `"type"` discriminator. The
//! request side mirrors the pipeline's operations (compile / run /
//! explain), plus `stats` / `metrics` / `shutdown` for service control;
//! the response side carries either the operation's result or a typed
//! `error` object — a malformed request gets an error *response*, never
//! a dropped connection.
//!
//! # Telemetry
//!
//! `compile` / `run` / `explain` requests accept an opt-in boolean
//! `telemetry` flag. When it is `true`, the matching response carries a
//! versioned `telemetry` JSON object (per-stage span durations, counter
//! deltas including poly-cache hits/misses, explain verdict summary —
//! the schema is owned by `inl_obs::capture`). Both the flag and the
//! section are **encoded only when present**, so a telemetry-off
//! exchange is byte-identical to the pre-telemetry protocol; `metrics`
//! returns the server's sliding-window percentiles (schema owned by
//! `inl_obs::window`). Everything stays canonical JSON, so bitwise
//! response comparison still holds once the telemetry section is
//! stripped ([`Response::strip_telemetry`]).

use inl_linalg::{InlError, InlErrorKind};
use inl_obs::{Json, JsonError, ParseLimits};

use crate::frame::FrameLimits;

/// Which execution backend a `run` request wants.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackendChoice {
    /// The reference tree-walking interpreter.
    Interp,
    /// The compiling bytecode VM (the service default — both backends
    /// are bitwise-identical, the VM is just faster).
    #[default]
    Vm,
}

impl BackendChoice {
    /// Wire name (`"interp"` / `"vm"`).
    pub fn as_str(self) -> &'static str {
        match self {
            BackendChoice::Interp => "interp",
            BackendChoice::Vm => "vm",
        }
    }
}

/// A client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Push a program through analyze → (complete) → codegen and return
    /// the generated pseudocode. `order` names a loop order (e.g.
    /// `"KJLI"`): a permutation of the program's loop names, completed
    /// to a full transformation; `None` compiles the identity schedule.
    Compile {
        /// Zoo program name (e.g. `"cholesky_kij"`).
        program: String,
        /// Optional loop-order permutation, one character per loop.
        order: Option<String>,
        /// Ask the server to attach a per-request `telemetry` section to
        /// the response (encoded on the wire only when `true`).
        telemetry: bool,
    },
    /// Compile (as above) and execute, returning a digest of the final
    /// array state for bitwise comparison.
    Run {
        /// Zoo program name.
        program: String,
        /// Symbolic parameter values (e.g. the problem size `N`).
        params: Vec<u32>,
        /// Optional loop-order permutation.
        order: Option<String>,
        /// Which backend executes the program.
        backend: BackendChoice,
        /// Ask for a per-request `telemetry` section (see module docs).
        telemetry: bool,
    },
    /// Ask *why* a loop order is legal or rejected for a program.
    Explain {
        /// Zoo program name.
        program: String,
        /// Optional loop-order permutation.
        order: Option<String>,
        /// Ask for a per-request `telemetry` section (see module docs).
        telemetry: bool,
    },
    /// Auto-schedule: search the legal transformation space of a zoo
    /// program and return the cost-minimal variant plus the search
    /// counters (`inl-sched` as a service operation).
    Schedule {
        /// Zoo program name.
        program: String,
        /// Ask for a per-request `telemetry` section (see module docs).
        telemetry: bool,
    },
    /// Snapshot service counters and the process-wide poly-cache stats.
    Stats,
    /// Snapshot the server's sliding-window live metrics (latency
    /// percentiles, request rate, error rate over the last N seconds).
    Metrics,
    /// Graceful shutdown: the server acknowledges, stops accepting new
    /// connections, drains in-flight sessions, and exits.
    Shutdown,
}

impl Request {
    /// True iff this request opts into a per-request `telemetry` section.
    pub fn wants_telemetry(&self) -> bool {
        match self {
            Request::Compile { telemetry, .. }
            | Request::Run { telemetry, .. }
            | Request::Explain { telemetry, .. }
            | Request::Schedule { telemetry, .. } => *telemetry,
            Request::Stats | Request::Metrics | Request::Shutdown => false,
        }
    }

    /// The wire discriminator (`"compile"`, `"run"`, ... ) — also the
    /// per-request-kind key the server's sliding window tallies under.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Request::Compile { .. } => "compile",
            Request::Run { .. } => "run",
            Request::Explain { .. } => "explain",
            Request::Schedule { .. } => "schedule",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Shutdown => "shutdown",
        }
    }
}

/// Result of a `compile` request: rejection is a first-class outcome
/// (an illegal loop order is an *answer*, not an error).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileOutcome {
    /// The schedule is legal; here is the generated program.
    Legal {
        /// Pseudocode of the generated program.
        pseudocode: String,
    },
    /// The schedule was rejected by legality/completion.
    Rejected {
        /// The typed rejection, rendered (deterministic per input).
        reason: String,
    },
}

/// A server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Compile`].
    Compile {
        /// The compile result (legal pseudocode or typed rejection).
        outcome: CompileOutcome,
        /// Per-request telemetry section, present iff the request set
        /// `telemetry: true` (must be a JSON object when present).
        telemetry: Option<Json>,
    },
    /// Answer to [`Request::Run`].
    Run {
        /// FNV-1a 64 digest over every array's `f64` bit patterns, as
        /// 16 lowercase hex digits — equal digests mean bitwise-equal
        /// final states.
        digest: String,
        /// Number of arrays digested.
        arrays: u64,
        /// Total `f64` cells digested.
        cells: u64,
        /// Per-request telemetry section (see [`Response::Compile`]).
        telemetry: Option<Json>,
    },
    /// Answer to [`Request::Explain`].
    Explain {
        /// `"legal"` or `"rejected"`.
        verdict: String,
        /// The evidence line (proof or killing dependence).
        reason: String,
        /// Per-request telemetry section (see [`Response::Compile`]).
        telemetry: Option<Json>,
    },
    /// Answer to [`Request::Schedule`]: the chosen variant and the
    /// deterministic search counters. Carries no timings — responses
    /// must stay byte-stable so `inl-load` can bitwise-compare them
    /// against in-process scheduling.
    Schedule {
        /// Label of the chosen variant (e.g. `"IKJ"`, `"dist(I@1)/I_2.I"`).
        chosen: String,
        /// Pseudocode of the chosen variant's generated program.
        pseudocode: String,
        /// Search-tree nodes actually visited.
        nodes_visited: u64,
        /// Nodes a brute-force enumeration would have visited.
        nodes_exhaustive: u64,
        /// Prefixes whose dependence violation killed a whole subtree.
        pruned_subtrees: u64,
        /// Legal variants found (the chosen one is the cost-minimal).
        legal_variants: u64,
        /// Per-request telemetry section (see [`Response::Compile`]).
        telemetry: Option<Json>,
    },
    /// Answer to [`Request::Stats`]: a free-form JSON object (poly-cache
    /// counters, serve counters, uptime/session gauges).
    Stats {
        /// The stats object.
        stats: Json,
    },
    /// Answer to [`Request::Metrics`]: the sliding-window snapshot
    /// (schema owned by `inl_obs::window`).
    Metrics {
        /// The windowed-metrics object.
        metrics: Json,
    },
    /// Acknowledges [`Request::Shutdown`]; sent before the drain begins.
    Shutdown,
    /// A typed failure: unknown program, malformed request, execution
    /// error. Carries the [`InlErrorKind`] name so clients can match.
    Error {
        /// The error kind (an [`InlErrorKind`] rendered, e.g.
        /// `"invalid target"`).
        kind: String,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Build an error response from a typed error.
    pub fn from_error(e: &InlError) -> Response {
        Response::Error {
            kind: e.kind().to_string(),
            message: e.message().to_string(),
        }
    }

    /// The telemetry section, if this response carries one.
    pub fn telemetry(&self) -> Option<&Json> {
        match self {
            Response::Compile { telemetry, .. }
            | Response::Run { telemetry, .. }
            | Response::Explain { telemetry, .. }
            | Response::Schedule { telemetry, .. } => telemetry.as_ref(),
            _ => None,
        }
    }

    /// Attach a telemetry section to a telemetry-capable response;
    /// returns every other variant unchanged.
    pub fn with_telemetry(mut self, section: Json) -> Response {
        match &mut self {
            Response::Compile { telemetry, .. }
            | Response::Run { telemetry, .. }
            | Response::Explain { telemetry, .. }
            | Response::Schedule { telemetry, .. } => *telemetry = Some(section),
            _ => {}
        }
        self
    }

    /// A copy with any telemetry section removed — the *core* response.
    /// Stripped responses from a telemetry-on exchange encode to exactly
    /// the bytes a telemetry-off exchange would have produced, which is
    /// what `inl-load` byte-compares against in-process handling.
    pub fn strip_telemetry(&self) -> Response {
        let mut core = self.clone();
        match &mut core {
            Response::Compile { telemetry, .. }
            | Response::Run { telemetry, .. }
            | Response::Explain { telemetry, .. }
            | Response::Schedule { telemetry, .. } => *telemetry = None,
            _ => {}
        }
        core
    }
}

// ------------------------------------------------------------- encoding

fn obj(kind: &str) -> Json {
    let mut o = Json::object();
    o.insert("type", Json::Str(kind.to_string()));
    o
}

/// Encode a request as canonical JSON text (deterministic: object keys
/// serialize in sorted order).
pub fn encode_request(req: &Request) -> String {
    // The `telemetry` flag is encoded only when set, so a telemetry-off
    // request is byte-identical to the pre-telemetry wire format.
    let telemetry_flag = |o: &mut Json, on: bool| {
        if on {
            o.insert("telemetry", Json::Bool(true));
        }
    };
    let json = match req {
        Request::Compile {
            program,
            order,
            telemetry,
        } => {
            let mut o = obj("compile");
            o.insert("program", Json::Str(program.clone()));
            if let Some(ord) = order {
                o.insert("order", Json::Str(ord.clone()));
            }
            telemetry_flag(&mut o, *telemetry);
            o
        }
        Request::Run {
            program,
            params,
            order,
            backend,
            telemetry,
        } => {
            let mut o = obj("run");
            o.insert("program", Json::Str(program.clone()));
            o.insert(
                "params",
                Json::Array(params.iter().map(|&p| Json::Int(p as u64)).collect()),
            );
            if let Some(ord) = order {
                o.insert("order", Json::Str(ord.clone()));
            }
            o.insert("backend", Json::Str(backend.as_str().to_string()));
            telemetry_flag(&mut o, *telemetry);
            o
        }
        Request::Explain {
            program,
            order,
            telemetry,
        } => {
            let mut o = obj("explain");
            o.insert("program", Json::Str(program.clone()));
            if let Some(ord) = order {
                o.insert("order", Json::Str(ord.clone()));
            }
            telemetry_flag(&mut o, *telemetry);
            o
        }
        Request::Schedule { program, telemetry } => {
            let mut o = obj("schedule");
            o.insert("program", Json::Str(program.clone()));
            telemetry_flag(&mut o, *telemetry);
            o
        }
        Request::Stats => obj("stats"),
        Request::Metrics => obj("metrics"),
        Request::Shutdown => obj("shutdown"),
    };
    json.to_pretty_string()
}

/// Encode a response as canonical JSON text.
pub fn encode_response(resp: &Response) -> String {
    // Like the request flag: the `telemetry` section is encoded only
    // when present, keeping telemetry-off responses byte-stable.
    let telemetry_section = |o: &mut Json, t: &Option<Json>| {
        if let Some(section) = t {
            o.insert("telemetry", section.clone());
        }
    };
    let json = match resp {
        Response::Compile { outcome, telemetry } => {
            let mut o = obj("compile");
            match outcome {
                CompileOutcome::Legal { pseudocode } => {
                    o.insert("legal", Json::Bool(true));
                    o.insert("pseudocode", Json::Str(pseudocode.clone()));
                }
                CompileOutcome::Rejected { reason } => {
                    o.insert("legal", Json::Bool(false));
                    o.insert("reason", Json::Str(reason.clone()));
                }
            }
            telemetry_section(&mut o, telemetry);
            o
        }
        Response::Run {
            digest,
            arrays,
            cells,
            telemetry,
        } => {
            let mut o = obj("run");
            o.insert("digest", Json::Str(digest.clone()));
            o.insert("arrays", Json::Int(*arrays));
            o.insert("cells", Json::Int(*cells));
            telemetry_section(&mut o, telemetry);
            o
        }
        Response::Explain {
            verdict,
            reason,
            telemetry,
        } => {
            let mut o = obj("explain");
            o.insert("verdict", Json::Str(verdict.clone()));
            o.insert("reason", Json::Str(reason.clone()));
            telemetry_section(&mut o, telemetry);
            o
        }
        Response::Schedule {
            chosen,
            pseudocode,
            nodes_visited,
            nodes_exhaustive,
            pruned_subtrees,
            legal_variants,
            telemetry,
        } => {
            let mut o = obj("schedule");
            o.insert("chosen", Json::Str(chosen.clone()));
            o.insert("pseudocode", Json::Str(pseudocode.clone()));
            o.insert("nodes_visited", Json::Int(*nodes_visited));
            o.insert("nodes_exhaustive", Json::Int(*nodes_exhaustive));
            o.insert("pruned_subtrees", Json::Int(*pruned_subtrees));
            o.insert("legal_variants", Json::Int(*legal_variants));
            telemetry_section(&mut o, telemetry);
            o
        }
        Response::Stats { stats } => {
            let mut o = obj("stats");
            o.insert("stats", stats.clone());
            o
        }
        Response::Metrics { metrics } => {
            let mut o = obj("metrics");
            o.insert("metrics", metrics.clone());
            o
        }
        Response::Shutdown => obj("shutdown"),
        Response::Error { kind, message } => {
            let mut o = obj("error");
            o.insert("kind", Json::Str(kind.clone()));
            o.insert("message", Json::Str(message.clone()));
            o
        }
    };
    json.to_pretty_string()
}

// ------------------------------------------------------------- decoding

fn decode_json(payload: &[u8], limits: &FrameLimits) -> Result<Json, InlError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| InlError::new(InlErrorKind::IllFormed, format!("payload not UTF-8: {e}")))?;
    let parse_limits = ParseLimits {
        max_len: limits.max_frame,
        max_depth: limits.max_json_depth,
    };
    Json::parse_with_limits(text, &parse_limits).map_err(|e| match e {
        JsonError::TooLong { .. } | JsonError::TooDeep { .. } => {
            InlError::new(InlErrorKind::Budget, e.to_string())
        }
        JsonError::Syntax(msg) => InlError::new(InlErrorKind::IllFormed, msg),
    })
}

fn msg_type(json: &Json) -> Result<&str, InlError> {
    json.get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| InlError::new(InlErrorKind::IllFormed, "message has no 'type' field"))
}

fn str_field(json: &Json, field: &str) -> Result<String, InlError> {
    json.get(field)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| {
            InlError::new(
                InlErrorKind::IllFormed,
                format!("missing or non-string '{field}' field"),
            )
        })
}

fn opt_str_field(json: &Json, field: &str) -> Result<Option<String>, InlError> {
    match json.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(InlError::new(
            InlErrorKind::IllFormed,
            format!("'{field}' must be a string"),
        )),
    }
}

/// An optional boolean field; absent (or `null`) means `false`, any
/// non-boolean value is a typed error.
fn opt_bool_field(json: &Json, field: &str) -> Result<bool, InlError> {
    match json.get(field) {
        None | Some(Json::Null) => Ok(false),
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(InlError::new(
            InlErrorKind::IllFormed,
            format!("'{field}' must be a boolean"),
        )),
    }
}

/// An optional JSON-object field (the `telemetry` section); absent (or
/// `null`) means none, any non-object value is a typed error.
fn opt_object_field(json: &Json, field: &str) -> Result<Option<Json>, InlError> {
    match json.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(section @ Json::Object(_)) => Ok(Some(section.clone())),
        Some(_) => Err(InlError::new(
            InlErrorKind::IllFormed,
            format!("'{field}' must be an object"),
        )),
    }
}

/// A required JSON-object field (`stats` / `metrics` payloads).
fn object_field(json: &Json, field: &str) -> Result<Json, InlError> {
    opt_object_field(json, field)?.ok_or_else(|| {
        InlError::new(
            InlErrorKind::IllFormed,
            format!("missing object '{field}' field"),
        )
    })
}

fn u64_field(json: &Json, field: &str) -> Result<u64, InlError> {
    json.get(field).and_then(Json::as_u64).ok_or_else(|| {
        InlError::new(
            InlErrorKind::IllFormed,
            format!("missing or non-integer '{field}' field"),
        )
    })
}

/// Decode a request payload. All failure modes — bad UTF-8, bad JSON,
/// over-deep nesting, unknown `type`, missing or mistyped fields,
/// out-of-range parameters — are typed errors.
pub fn decode_request(payload: &[u8], limits: &FrameLimits) -> Result<Request, InlError> {
    let json = decode_json(payload, limits)?;
    match msg_type(&json)? {
        "compile" => Ok(Request::Compile {
            program: str_field(&json, "program")?,
            order: opt_str_field(&json, "order")?,
            telemetry: opt_bool_field(&json, "telemetry")?,
        }),
        "run" => {
            let params = match json.get("params") {
                Some(Json::Array(items)) => items
                    .iter()
                    .map(|v| {
                        v.as_u64()
                            .and_then(|n| u32::try_from(n).ok())
                            .ok_or_else(|| {
                                InlError::new(
                                    InlErrorKind::IllFormed,
                                    "'params' entries must be integers in u32 range",
                                )
                            })
                    })
                    .collect::<Result<Vec<u32>, InlError>>()?,
                _ => {
                    return Err(InlError::new(
                        InlErrorKind::IllFormed,
                        "missing or non-array 'params' field",
                    ))
                }
            };
            let backend = match opt_str_field(&json, "backend")?.as_deref() {
                None | Some("vm") => BackendChoice::Vm,
                Some("interp") => BackendChoice::Interp,
                Some(other) => {
                    return Err(InlError::new(
                        InlErrorKind::Unsupported,
                        format!("unknown backend '{other}' (expected 'vm' or 'interp')"),
                    ))
                }
            };
            Ok(Request::Run {
                program: str_field(&json, "program")?,
                params,
                order: opt_str_field(&json, "order")?,
                backend,
                telemetry: opt_bool_field(&json, "telemetry")?,
            })
        }
        "explain" => Ok(Request::Explain {
            program: str_field(&json, "program")?,
            order: opt_str_field(&json, "order")?,
            telemetry: opt_bool_field(&json, "telemetry")?,
        }),
        "schedule" => Ok(Request::Schedule {
            program: str_field(&json, "program")?,
            telemetry: opt_bool_field(&json, "telemetry")?,
        }),
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(InlError::new(
            InlErrorKind::Unsupported,
            format!("unknown request type '{other}'"),
        )),
    }
}

/// Decode a response payload (the client side of [`decode_request`]).
pub fn decode_response(payload: &[u8], limits: &FrameLimits) -> Result<Response, InlError> {
    let json = decode_json(payload, limits)?;
    match msg_type(&json)? {
        "compile" => {
            let outcome = match json.get("legal") {
                Some(Json::Bool(true)) => CompileOutcome::Legal {
                    pseudocode: str_field(&json, "pseudocode")?,
                },
                Some(Json::Bool(false)) => CompileOutcome::Rejected {
                    reason: str_field(&json, "reason")?,
                },
                _ => {
                    return Err(InlError::new(
                        InlErrorKind::IllFormed,
                        "compile response has no boolean 'legal' field",
                    ))
                }
            };
            Ok(Response::Compile {
                outcome,
                telemetry: opt_object_field(&json, "telemetry")?,
            })
        }
        "run" => Ok(Response::Run {
            digest: str_field(&json, "digest")?,
            arrays: u64_field(&json, "arrays")?,
            cells: u64_field(&json, "cells")?,
            telemetry: opt_object_field(&json, "telemetry")?,
        }),
        "explain" => Ok(Response::Explain {
            verdict: str_field(&json, "verdict")?,
            reason: str_field(&json, "reason")?,
            telemetry: opt_object_field(&json, "telemetry")?,
        }),
        "schedule" => Ok(Response::Schedule {
            chosen: str_field(&json, "chosen")?,
            pseudocode: str_field(&json, "pseudocode")?,
            nodes_visited: u64_field(&json, "nodes_visited")?,
            nodes_exhaustive: u64_field(&json, "nodes_exhaustive")?,
            pruned_subtrees: u64_field(&json, "pruned_subtrees")?,
            legal_variants: u64_field(&json, "legal_variants")?,
            telemetry: opt_object_field(&json, "telemetry")?,
        }),
        "stats" => Ok(Response::Stats {
            stats: json
                .get("stats")
                .cloned()
                .ok_or_else(|| InlError::new(InlErrorKind::IllFormed, "missing 'stats' field"))?,
        }),
        "metrics" => Ok(Response::Metrics {
            metrics: object_field(&json, "metrics")?,
        }),
        "shutdown" => Ok(Response::Shutdown),
        "error" => Ok(Response::Error {
            kind: str_field(&json, "kind")?,
            message: str_field(&json, "message")?,
        }),
        other => Err(InlError::new(
            InlErrorKind::Unsupported,
            format!("unknown response type '{other}'"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> FrameLimits {
        FrameLimits::default()
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Compile {
                program: "cholesky_kij".into(),
                order: Some("KJLI".into()),
                telemetry: false,
            },
            Request::Compile {
                program: "matmul".into(),
                order: None,
                telemetry: true,
            },
            Request::Run {
                program: "wavefront".into(),
                params: vec![12],
                order: None,
                backend: BackendChoice::Vm,
                telemetry: true,
            },
            Request::Run {
                program: "rect_wavefront".into(),
                params: vec![5, 9],
                order: None,
                backend: BackendChoice::Interp,
                telemetry: false,
            },
            Request::Explain {
                program: "cholesky_kij".into(),
                order: Some("IKJL".into()),
                telemetry: true,
            },
            Request::Schedule {
                program: "cholesky_kij".into(),
                telemetry: false,
            },
            Request::Schedule {
                program: "matmul".into(),
                telemetry: true,
            },
            Request::Stats,
            Request::Metrics,
            Request::Shutdown,
        ];
        for req in reqs {
            let text = encode_request(&req);
            let back = decode_request(text.as_bytes(), &limits()).unwrap();
            assert_eq!(back, req, "through {text}");
        }
    }

    #[test]
    fn telemetry_off_wire_bytes_have_no_telemetry_key() {
        // The opt-in flag and the response section are invisible when
        // unused: telemetry-off traffic is byte-identical to the
        // pre-telemetry protocol.
        let req = Request::Compile {
            program: "matmul".into(),
            order: None,
            telemetry: false,
        };
        assert!(!encode_request(&req).contains("telemetry"));
        let resp = Response::Compile {
            outcome: CompileOutcome::Legal {
                pseudocode: "for K".into(),
            },
            telemetry: None,
        };
        assert!(!encode_response(&resp).contains("telemetry"));
        // And with the flag on, the key appears in both directions.
        let req_on = Request::Compile {
            program: "matmul".into(),
            order: None,
            telemetry: true,
        };
        assert!(encode_request(&req_on).contains("\"telemetry\": true"));
        assert!(req_on.wants_telemetry());
        let resp_on = resp.with_telemetry(Json::object());
        assert!(encode_response(&resp_on).contains("\"telemetry\""));
        // strip_telemetry recovers the exact telemetry-off bytes.
        let stripped = resp_on.strip_telemetry();
        assert!(!encode_response(&stripped).contains("telemetry"));
    }

    #[test]
    fn telemetry_fields_must_be_well_typed() {
        use inl_linalg::InlErrorKind;
        // Request flag must be a boolean.
        let e = decode_request(
            b"{\"type\": \"compile\", \"program\": \"m\", \"telemetry\": 1}",
            &limits(),
        )
        .unwrap_err();
        assert_eq!(e.kind(), InlErrorKind::IllFormed);
        // null means absent, matching the optional-string convention.
        let req = decode_request(
            b"{\"type\": \"compile\", \"program\": \"m\", \"telemetry\": null}",
            &limits(),
        )
        .unwrap();
        assert!(!req.wants_telemetry());
        // Response section must be an object.
        let e = decode_response(
            b"{\"type\": \"run\", \"digest\": \"00\", \"arrays\": 1, \"cells\": 1, \
              \"telemetry\": [1, 2]}",
            &limits(),
        )
        .unwrap_err();
        assert_eq!(e.kind(), InlErrorKind::IllFormed);
        // Metrics payload must be an object.
        let e = decode_response(b"{\"type\": \"metrics\", \"metrics\": 7}", &limits()).unwrap_err();
        assert_eq!(e.kind(), InlErrorKind::IllFormed);
        let e = decode_response(b"{\"type\": \"metrics\"}", &limits()).unwrap_err();
        assert_eq!(e.kind(), InlErrorKind::IllFormed);
    }

    #[test]
    fn responses_round_trip() {
        let mut stats = Json::object();
        stats.insert("hits", Json::Int(42));
        let mut telemetry = Json::object();
        telemetry.insert("version", Json::Int(1));
        let mut counters = Json::object();
        counters.insert("poly.cache.hit", Json::Int(3));
        telemetry.insert("counters", counters);
        let mut metrics = Json::object();
        metrics.insert("count", Json::Int(12));
        let resps = [
            Response::Compile {
                outcome: CompileOutcome::Legal {
                    pseudocode: "for K = 1 to N".into(),
                },
                telemetry: Some(telemetry.clone()),
            },
            Response::Compile {
                outcome: CompileOutcome::Rejected {
                    reason: "PartialRowIllegal(2)".into(),
                },
                telemetry: None,
            },
            Response::Run {
                digest: "00ff00ff00ff00ff".into(),
                arrays: 2,
                cells: 128,
                telemetry: Some(telemetry.clone()),
            },
            Response::Explain {
                verdict: "legal".into(),
                reason: "completed".into(),
                telemetry: Some(telemetry.clone()),
            },
            Response::Schedule {
                chosen: "dist(I@1)/I_2.I".into(),
                pseudocode: "do I = 1..N".into(),
                nodes_visited: 14,
                nodes_exhaustive: 14,
                pruned_subtrees: 0,
                legal_variants: 10,
                telemetry: Some(telemetry),
            },
            Response::Stats { stats },
            Response::Metrics { metrics },
            Response::Shutdown,
            Response::Error {
                kind: "invalid target".into(),
                message: "unknown program 'nope'".into(),
            },
        ];
        for resp in resps {
            let text = encode_response(&resp);
            let back = decode_response(text.as_bytes(), &limits()).unwrap();
            assert_eq!(back, resp, "through {text}");
        }
    }

    #[test]
    fn decode_rejects_garbage_with_typed_errors() {
        use inl_linalg::InlErrorKind;
        // Not UTF-8.
        let e = decode_request(&[0xFF, 0xFE, 0x80], &limits()).unwrap_err();
        assert_eq!(e.kind(), InlErrorKind::IllFormed);
        // Not JSON.
        let e = decode_request(b"{{{{", &limits()).unwrap_err();
        assert_eq!(e.kind(), InlErrorKind::IllFormed);
        // JSON but no type.
        let e = decode_request(b"{\"a\": 1}", &limits()).unwrap_err();
        assert_eq!(e.kind(), InlErrorKind::IllFormed);
        // Unknown type.
        let e = decode_request(b"{\"type\": \"fly\"}", &limits()).unwrap_err();
        assert_eq!(e.kind(), InlErrorKind::Unsupported);
        // Missing field.
        let e = decode_request(b"{\"type\": \"compile\"}", &limits()).unwrap_err();
        assert_eq!(e.kind(), InlErrorKind::IllFormed);
        // Param out of u32 range.
        let e = decode_request(
            b"{\"type\": \"run\", \"program\": \"matmul\", \"params\": [99999999999]}",
            &limits(),
        )
        .unwrap_err();
        assert_eq!(e.kind(), InlErrorKind::IllFormed);
    }

    #[test]
    fn over_deep_json_is_a_budget_error() {
        let deep = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        let e = decode_request(deep.as_bytes(), &limits()).unwrap_err();
        assert_eq!(e.kind(), inl_linalg::InlErrorKind::Budget);
    }

    #[test]
    fn encoding_is_deterministic() {
        let req = Request::Run {
            program: "matmul".into(),
            params: vec![8],
            order: None,
            backend: BackendChoice::Vm,
            telemetry: false,
        };
        assert_eq!(encode_request(&req), encode_request(&req.clone()));
    }
}
