//! End-to-end pin of the decision-provenance tentpole: sweeping all 24
//! Cholesky loop orders under `INL_EXPLAIN` must leave an acceptance
//! record with proving evidence for each of the 12 legal orders, and a
//! record naming the violating dependence for each rejected order — and
//! the `inl-explain` binary must render, query, and diff the artifact.

use std::collections::BTreeSet;
use std::process::Command;

/// All 24 KJLI-style permutation labels.
fn all_orders() -> BTreeSet<String> {
    let names = ["K", "J", "L", "I"];
    inl_bench::permutations(&[0usize, 1, 2, 3])
        .into_iter()
        .map(|pm| pm.iter().map(|&i| names[i]).collect::<Vec<_>>().join(""))
        .collect()
}

#[test]
fn cholesky_sweep_explains_every_order_and_binary_renders_it() {
    inl_obs::set_explain_enabled(true);
    inl_obs::explain::reset();
    let (_p, variants) = inl_bench::cholesky_variants();
    inl_obs::set_explain_enabled(false);
    assert_eq!(variants.len(), 12, "12 legal Cholesky orders");
    let legal: BTreeSet<String> = variants.iter().map(|(l, _)| l.clone()).collect();

    let json = inl_obs::explain::to_json().to_pretty_string();
    let artifact = inl_explain::parse(&json).expect("artifact parses");
    assert_eq!(artifact.sessions.len(), 24, "one session per permutation");

    for order in all_orders() {
        let label = format!("cholesky/{order}");
        let session = artifact
            .sessions
            .iter()
            .find(|(_, l)| *l == label)
            .unwrap_or_else(|| panic!("no session {label}"))
            .0;
        let recs: Vec<_> = artifact
            .records
            .iter()
            .filter(|r| r.session == session)
            .collect();
        assert!(!recs.is_empty(), "{label}: no records");
        if legal.contains(&order) {
            // acceptance with proving evidence: the final legality check
            // records every dependence's projected row
            let accept = recs
                .iter()
                .find(|r| r.stage == "legal" && r.verdict == "accept")
                .unwrap_or_else(|| panic!("{label}: legal order has no acceptance record"));
            let proof = accept
                .details
                .get("proof")
                .unwrap_or_else(|| panic!("{label}: acceptance carries no proof"));
            assert!(
                proof.contains("dep ") && proof.contains("projects to"),
                "{label}: proof does not name projected dependence rows: {proof}"
            );
            assert!(
                recs.iter()
                    .any(|r| r.stage == "complete" && r.verdict == "accept"),
                "{label}: completion success not recorded"
            );
        } else {
            // rejection naming the violating dependence row
            let reject = recs
                .iter()
                .find(|r| r.verdict == "reject")
                .unwrap_or_else(|| panic!("{label}: rejected order has no rejection record"));
            let names_dep = reject.reason.contains("dep ")
                || reject.details.values().any(|v| v.contains("dep "));
            assert!(
                names_dep,
                "{label}: rejection does not name a dependence: {} {:?}",
                reject.reason, reject.details
            );
            let has_row = reject.details.contains_key("dep_row")
                || reject.details.values().any(|v| v.contains("row ["));
            assert!(
                has_row,
                "{label}: rejection carries no dependence row: {:?}",
                reject.details
            );
        }
    }

    // --- drive the inl-explain binary over the artifact ---
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(dir).expect("tmpdir");
    let path = dir.join("cholesky-explain.json");
    std::fs::write(&path, &json).expect("write artifact");
    let bin = env!("CARGO_BIN_EXE_inl-explain");

    let render = Command::new(bin)
        .args(["render", path.to_str().unwrap()])
        .output()
        .expect("render runs");
    assert!(render.status.success(), "render failed: {render:?}");
    let text = String::from_utf8_lossy(&render.stdout);
    assert!(
        text.contains("== cholesky/KJLI =="),
        "render lists sessions"
    );
    assert!(text.contains("[ACCEPT] legal"), "render shows acceptances");
    assert!(text.contains("[REJECT]"), "render shows rejections");

    // query: the KJLI session has an acceptance, and some order rejects
    let query = Command::new(bin)
        .args([
            "query",
            path.to_str().unwrap(),
            "--session",
            "cholesky/KJLI",
            "--verdict",
            "accept",
            "--stage",
            "legal",
        ])
        .output()
        .expect("query runs");
    assert!(query.status.success(), "query failed: {query:?}");
    let qtext = String::from_utf8_lossy(&query.stdout);
    assert!(
        qtext.contains("matching record(s)") && !qtext.starts_with("0 matching"),
        "query found the KJLI acceptance: {qtext}"
    );

    // diff: identical artifacts are clean (exit 0); dropping a session's
    // records is a reported difference (exit 1)
    let same = Command::new(bin)
        .args(["diff", path.to_str().unwrap(), path.to_str().unwrap()])
        .output()
        .expect("diff runs");
    assert!(same.status.success(), "self-diff must be clean: {same:?}");

    let mut pruned = artifact.clone();
    let drop_session = pruned.sessions[0].0;
    pruned.records.retain(|r| r.session != drop_session);
    let pruned_path = dir.join("cholesky-explain-pruned.json");
    // re-serialize through the same schema by hand-editing the JSON text
    // would be brittle; instead rewrite via the obs store is unavailable,
    // so rebuild a minimal artifact body from the parsed records
    std::fs::write(&pruned_path, rebuild_json(&pruned)).expect("write pruned");
    let changed = Command::new(bin)
        .args([
            "diff",
            path.to_str().unwrap(),
            pruned_path.to_str().unwrap(),
        ])
        .output()
        .expect("diff runs");
    assert_eq!(
        changed.status.code(),
        Some(1),
        "diff must flag the removed session: {changed:?}"
    );

    // usage / parse errors exit 2
    let bad = Command::new(bin).args(["bogus"]).output().expect("runs");
    assert_eq!(bad.status.code(), Some(2));
}

/// Serialize an [`inl_explain::Artifact`] back to the schema (test-only;
/// the production writer lives in `inl_obs::explain`).
fn rebuild_json(a: &inl_explain::Artifact) -> String {
    use inl_obs::json::Json;
    let mut root = Json::object();
    root.insert("version", Json::Int(a.version));
    root.insert("dropped", Json::Int(a.dropped));
    root.insert(
        "sessions",
        Json::Array(
            a.sessions
                .iter()
                .map(|(id, label)| {
                    let mut s = Json::object();
                    s.insert("id", Json::Int(*id));
                    s.insert("label", Json::Str(label.clone()));
                    s
                })
                .collect(),
        ),
    );
    root.insert(
        "records",
        Json::Array(
            a.records
                .iter()
                .map(|r| {
                    let mut obj = Json::object();
                    obj.insert("session", Json::Int(r.session));
                    obj.insert("seq", Json::Int(r.seq));
                    obj.insert("stage", Json::Str(r.stage.clone()));
                    obj.insert("subject", Json::Str(r.subject.clone()));
                    obj.insert("verdict", Json::Str(r.verdict.clone()));
                    obj.insert("reason", Json::Str(r.reason.clone()));
                    obj
                })
                .collect(),
        ),
    );
    root.to_pretty_string()
}
