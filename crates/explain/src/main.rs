//! `inl-explain`: render, query, and diff decision-provenance artifacts.
//!
//! ```sh
//! # human-readable "why" report of a whole artifact
//! inl-explain render target/inl-explain.json
//! # why was the JKLI order rejected, and by which dependence?
//! inl-explain query target/inl-explain.json --session JKLI --verdict reject
//! # did any decision change between two runs?
//! inl-explain diff old.json new.json
//! ```
//!
//! `render` and `query` share the filter flags `--stage <name>`,
//! `--subject <substring>`, `--verdict <accept|reject|info>`, and
//! `--session <id-or-label-substring>`; `query` additionally prints the
//! match count first. `diff` matches records across artifacts by
//! (session label, stage, subject) and exits 1 when any verdict set
//! changed, appeared, or disappeared.
//!
//! Exit status: 0 ok (and no differences for `diff`), 1 differences
//! found, 2 usage or parse errors.

use inl_explain::{diff, load, render, Filter};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: inl-explain render <artifact.json> [filters]\n\
         \x20      inl-explain query  <artifact.json> [filters]\n\
         \x20      inl-explain diff   <old.json> <new.json>\n\
         filters: --stage <name> --subject <substring> \
         --verdict <accept|reject|info> --session <id-or-label>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return usage();
    };
    let mut paths: Vec<String> = Vec::new();
    let mut filter = Filter::default();
    while let Some(a) = args.next() {
        let set = |field: &mut Option<String>, value: Option<String>| match value {
            Some(v) => {
                *field = Some(v);
                true
            }
            None => false,
        };
        match a.as_str() {
            "--stage" => {
                if !set(&mut filter.stage, args.next()) {
                    return usage();
                }
            }
            "--subject" => {
                if !set(&mut filter.subject, args.next()) {
                    return usage();
                }
            }
            "--verdict" => {
                if !set(&mut filter.verdict, args.next()) {
                    return usage();
                }
            }
            "--session" => {
                if !set(&mut filter.session, args.next()) {
                    return usage();
                }
            }
            _ if a.starts_with('-') => return usage(),
            _ => paths.push(a),
        }
    }
    if let Some(v) = &filter.verdict {
        if !matches!(v.as_str(), "accept" | "reject" | "info") {
            return usage();
        }
    }

    match cmd.as_str() {
        "render" | "query" => {
            let [path] = paths.as_slice() else {
                return usage();
            };
            let artifact = match load(path) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("inl-explain: {e}");
                    return ExitCode::from(2);
                }
            };
            if cmd == "query" {
                let n = artifact
                    .records
                    .iter()
                    .filter(|r| filter.matches(&artifact, r))
                    .count();
                println!("{n} matching record(s) in {path}");
            }
            print!("{}", render(&artifact, &filter));
            ExitCode::SUCCESS
        }
        "diff" => {
            if !filter.is_empty() {
                return usage();
            }
            let [old_path, new_path] = paths.as_slice() else {
                return usage();
            };
            let loaded = load(old_path).and_then(|o| load(new_path).map(|n| (o, n)));
            let (old, new) = match loaded {
                Ok(pair) => pair,
                Err(e) => {
                    eprintln!("inl-explain: {e}");
                    return ExitCode::from(2);
                }
            };
            let (text, ndiff) = diff(&old, &new);
            println!("inl-explain diff {old_path} -> {new_path}");
            print!("{text}");
            if ndiff > 0 {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        _ => usage(),
    }
}
