//! # inl-explain
//!
//! Reader, renderer, and differ for the decision-provenance artifacts the
//! [`inl_obs::explain`] layer writes (`INL_EXPLAIN_JSON`, or the report
//! binary's `target/inl-explain.json`). The artifact answers *why* every
//! candidate transformation was accepted or rejected — which dependence
//! row killed it, which projected rows prove it legal — plus the cost
//! features codegen attached to each variant.
//!
//! The library half parses the versioned JSON schema into [`Artifact`]
//! and renders human-readable "why" reports; the `inl-explain` binary
//! (`src/main.rs`) wraps it with `render`, `query`, and `diff`
//! subcommands.

use inl_obs::json::Json;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// One decision record, decoded from the artifact.
#[derive(Clone, Debug)]
pub struct Rec {
    /// Compile-session id (0 = before any session began).
    pub session: u64,
    /// Process-wide sequence number (stable order).
    pub seq: u64,
    /// Verdict point (`legal`, `complete`, `sink`, `structural`,
    /// `parallel`, `codegen`, `exec`).
    pub stage: String,
    /// What was judged.
    pub subject: String,
    /// `accept`, `reject`, or `info`.
    pub verdict: String,
    /// The evidence: violating dependence row, proving projection, ...
    pub reason: String,
    /// String evidence keyed by name.
    pub details: BTreeMap<String, String>,
    /// Integer cost features keyed by name (rendered to preserve sign).
    pub features: BTreeMap<String, i64>,
}

/// A parsed explain artifact.
#[derive(Clone, Debug, Default)]
pub struct Artifact {
    /// Schema version (`1`).
    pub version: u64,
    /// Records dropped to the capacity bound before the dump.
    pub dropped: u64,
    /// `(id, label)` of every compile session, in begin order.
    pub sessions: Vec<(u64, String)>,
    /// All records, oldest first.
    pub records: Vec<Rec>,
}

impl Artifact {
    /// The label of a session id, or the id itself as text.
    pub fn session_label(&self, id: u64) -> String {
        self.sessions
            .iter()
            .find(|(sid, _)| *sid == id)
            .map(|(_, label)| label.clone())
            .unwrap_or_else(|| format!("session {id}"))
    }
}

fn str_field(obj: &Json, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("record missing string field {key:?}"))
}

fn int_field(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("record missing integer field {key:?}"))
}

/// Parse the artifact text (see `inl_obs::explain` for the schema).
pub fn parse(text: &str) -> Result<Artifact, String> {
    let root = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let version = int_field(&root, "version")?;
    if version != inl_obs::explain::SCHEMA_VERSION {
        return Err(format!(
            "unsupported artifact version {version} (expected {})",
            inl_obs::explain::SCHEMA_VERSION
        ));
    }
    let dropped = int_field(&root, "dropped")?;
    let mut sessions = Vec::new();
    if let Some(Json::Array(items)) = root.get("sessions") {
        for s in items {
            sessions.push((int_field(s, "id")?, str_field(s, "label")?));
        }
    }
    let mut records = Vec::new();
    let Some(Json::Array(items)) = root.get("records") else {
        return Err("artifact has no records array".to_string());
    };
    for r in items {
        let mut details = BTreeMap::new();
        if let Some(Json::Object(map)) = r.get("details") {
            for (k, v) in map {
                details.insert(
                    k.clone(),
                    v.as_str().map(str::to_string).unwrap_or_default(),
                );
            }
        }
        let mut features = BTreeMap::new();
        if let Some(Json::Object(map)) = r.get("features") {
            for (k, v) in map {
                let val = match v {
                    Json::Int(n) => *n as i64,
                    Json::Float(f) => *f as i64,
                    _ => 0,
                };
                features.insert(k.clone(), val);
            }
        }
        records.push(Rec {
            session: int_field(r, "session")?,
            seq: int_field(r, "seq")?,
            stage: str_field(r, "stage")?,
            subject: str_field(r, "subject")?,
            verdict: str_field(r, "verdict")?,
            reason: str_field(r, "reason")?,
            details,
            features,
        });
    }
    Ok(Artifact {
        version,
        dropped,
        sessions,
        records,
    })
}

/// Read and parse an artifact file.
pub fn load(path: impl AsRef<Path>) -> Result<Artifact, String> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse(&text)
}

/// Record filter for `render`/`query`: every set field must match
/// (stage/verdict exactly, subject by substring, session by id or by
/// label substring).
#[derive(Clone, Debug, Default)]
pub struct Filter {
    /// Exact stage name.
    pub stage: Option<String>,
    /// Substring of the subject.
    pub subject: Option<String>,
    /// Exact verdict (`accept`/`reject`/`info`).
    pub verdict: Option<String>,
    /// Session id (numeric) or label substring.
    pub session: Option<String>,
}

impl Filter {
    /// True when no field is set (render everything).
    pub fn is_empty(&self) -> bool {
        self.stage.is_none()
            && self.subject.is_none()
            && self.verdict.is_none()
            && self.session.is_none()
    }

    /// Does `rec` pass every set field?
    pub fn matches(&self, artifact: &Artifact, rec: &Rec) -> bool {
        if let Some(stage) = &self.stage {
            if rec.stage != *stage {
                return false;
            }
        }
        if let Some(sub) = &self.subject {
            if !rec.subject.contains(sub.as_str()) {
                return false;
            }
        }
        if let Some(v) = &self.verdict {
            if rec.verdict != *v {
                return false;
            }
        }
        if let Some(sess) = &self.session {
            let by_id = sess.parse::<u64>().is_ok_and(|id| rec.session == id);
            let by_label = artifact.session_label(rec.session).contains(sess.as_str());
            if !by_id && !by_label {
                return false;
            }
        }
        true
    }
}

fn verdict_tag(v: &str) -> &'static str {
    match v {
        "accept" => "ACCEPT",
        "reject" => "REJECT",
        _ => "info  ",
    }
}

/// Render the matching records as a human-readable "why" report, grouped
/// by compile session.
pub fn render(artifact: &Artifact, filter: &Filter) -> String {
    let matched: Vec<&Rec> = artifact
        .records
        .iter()
        .filter(|r| filter.matches(artifact, r))
        .collect();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "explain artifact v{}: {} record(s), {} matched, {} dropped to capacity",
        artifact.version,
        artifact.records.len(),
        matched.len(),
        artifact.dropped
    );
    let mut current: Option<u64> = None;
    for r in matched {
        if current != Some(r.session) {
            current = Some(r.session);
            let _ = writeln!(out, "\n== {} ==", artifact.session_label(r.session));
        }
        let _ = writeln!(
            out,
            "  [{}] {}: {}",
            verdict_tag(&r.verdict),
            r.stage,
            r.subject
        );
        let _ = writeln!(out, "      {}", r.reason);
        for (k, v) in &r.details {
            let _ = writeln!(out, "      {k}: {v}");
        }
        if !r.features.is_empty() {
            let feats: Vec<String> = r.features.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let _ = writeln!(out, "      features: {}", feats.join(" "));
        }
    }
    out
}

/// Verdict-set key for diffing: records are matched across artifacts by
/// session *label* (ids may differ between runs), stage, and subject.
fn verdict_map(a: &Artifact) -> BTreeMap<(String, String, String), Vec<String>> {
    let mut map: BTreeMap<(String, String, String), Vec<String>> = BTreeMap::new();
    for r in &a.records {
        map.entry((
            a.session_label(r.session),
            r.stage.clone(),
            r.subject.clone(),
        ))
        .or_default()
        .push(r.verdict.clone());
    }
    for v in map.values_mut() {
        v.sort();
    }
    map
}

/// Diff two artifacts by (session label, stage, subject): reports keys
/// whose verdict sets changed, appeared, or disappeared. Returns the
/// rendered report and the number of differences.
pub fn diff(old: &Artifact, new: &Artifact) -> (String, usize) {
    let a = verdict_map(old);
    let b = verdict_map(new);
    let mut out = String::new();
    let mut ndiff = 0usize;
    for (key, averdicts) in &a {
        match b.get(key) {
            None => {
                ndiff += 1;
                let _ = writeln!(
                    out,
                    "- [{}] {}: {} (only in old: {})",
                    key.0,
                    key.1,
                    key.2,
                    averdicts.join(",")
                );
            }
            Some(bverdicts) if bverdicts != averdicts => {
                ndiff += 1;
                let _ = writeln!(
                    out,
                    "~ [{}] {}: {} ({} -> {})",
                    key.0,
                    key.1,
                    key.2,
                    averdicts.join(","),
                    bverdicts.join(",")
                );
            }
            Some(_) => {}
        }
    }
    for (key, bverdicts) in &b {
        if !a.contains_key(key) {
            ndiff += 1;
            let _ = writeln!(
                out,
                "+ [{}] {}: {} (only in new: {})",
                key.0,
                key.1,
                key.2,
                bverdicts.join(",")
            );
        }
    }
    let _ = writeln!(
        out,
        "{} decision key(s) compared, {ndiff} difference(s)",
        a.len().max(b.len())
    );
    (out, ndiff)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Artifact {
        parse(
            r#"{
  "version": 1,
  "dropped": 2,
  "sessions": [ { "id": 1, "label": "cholesky/KJLI" }, { "id": 2, "label": "cholesky/JKLI" } ],
  "records": [
    { "session": 1, "seq": 0, "stage": "legal", "subject": "transformation [[1 0] [0 1]]",
      "verdict": "accept", "reason": "all 3 dependences satisfied",
      "details": { "proof": "dep 0: row [+ 0] projects to [+ 0]" },
      "features": { "deps": 3 } },
    { "session": 2, "seq": 1, "stage": "complete", "subject": "partial row 0 [0 1 0 0]",
      "verdict": "reject", "reason": "dep 1 (flow S2->S1, level 0): projection of row would go negative",
      "details": { "dep_row": "[- + *]" }, "features": { "slot": 0, "deps": 3 } }
  ]
}"#,
        )
        .expect("sample parses")
    }

    #[test]
    fn parses_schema_and_fields() {
        let a = sample();
        assert_eq!(a.version, 1);
        assert_eq!(a.dropped, 2);
        assert_eq!(a.sessions.len(), 2);
        assert_eq!(a.records.len(), 2);
        assert_eq!(a.records[1].verdict, "reject");
        assert_eq!(a.records[1].details["dep_row"], "[- + *]");
        assert_eq!(a.records[0].features["deps"], 3);
        assert_eq!(a.session_label(2), "cholesky/JKLI");
    }

    #[test]
    fn filters_select_records() {
        let a = sample();
        let all = Filter::default();
        assert!(all.is_empty());
        assert_eq!(a.records.iter().filter(|r| all.matches(&a, r)).count(), 2);
        let rejects = Filter {
            verdict: Some("reject".to_string()),
            ..Filter::default()
        };
        assert_eq!(
            a.records.iter().filter(|r| rejects.matches(&a, r)).count(),
            1
        );
        let by_label = Filter {
            session: Some("KJLI".to_string()),
            ..Filter::default()
        };
        // substring "KJLI" appears in both labels ("JKLI" does not match)
        assert_eq!(
            a.records.iter().filter(|r| by_label.matches(&a, r)).count(),
            1
        );
        let by_stage = Filter {
            stage: Some("complete".to_string()),
            subject: Some("partial row".to_string()),
            ..Filter::default()
        };
        assert_eq!(
            a.records.iter().filter(|r| by_stage.matches(&a, r)).count(),
            1
        );
    }

    #[test]
    fn render_groups_by_session_and_names_evidence() {
        let a = sample();
        let text = render(&a, &Filter::default());
        assert!(text.contains("== cholesky/KJLI =="), "{text}");
        assert!(text.contains("[ACCEPT] legal"), "{text}");
        assert!(text.contains("[REJECT] complete"), "{text}");
        assert!(text.contains("dep_row: [- + *]"), "{text}");
        assert!(text.contains("features: deps=3"), "{text}");
        assert!(text.contains("2 dropped to capacity"), "{text}");
    }

    #[test]
    fn diff_reports_verdict_changes_and_missing_keys() {
        let a = sample();
        let (text, n) = diff(&a, &a);
        assert_eq!(n, 0, "{text}");
        let mut b = sample();
        b.records[1].verdict = "accept".to_string();
        b.records.push(Rec {
            session: 1,
            seq: 9,
            stage: "parallel".to_string(),
            subject: "new loop slot 3".to_string(),
            verdict: "accept".to_string(),
            reason: "DOALL".to_string(),
            details: BTreeMap::new(),
            features: BTreeMap::new(),
        });
        let (text, n) = diff(&a, &b);
        assert_eq!(n, 2, "{text}");
        assert!(text.contains("reject -> accept"), "{text}");
        assert!(text.contains("only in new"), "{text}");
    }

    #[test]
    fn rejects_bad_artifacts() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"version": 99, "dropped": 0, "records": []}"#).is_err());
        assert!(parse(r#"{"version": 1, "dropped": 0}"#).is_err());
    }
}
