//! Integration: a real `inl-serve` instance on an ephemeral port, hit by
//! parallel client threads, checked bitwise against in-process
//! compilation, then shut down gracefully mid-traffic.

use inl_serve::{
    handle_request, serve, BackendChoice, Client, FrameLimits, Request, Response, ServerConfig,
};

fn start() -> inl_serve::ServerHandle {
    serve(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        limits: FrameLimits::default(),
    })
    .expect("bind ephemeral port")
}

/// The mixed request set each client thread replays.
fn requests_for(thread: usize) -> Vec<Request> {
    let orders = ["KJLI", "KIJL", "IKJL", "JKLI"]; // two legal, two rejected
    vec![
        Request::Compile {
            program: "cholesky_kij".into(),
            order: Some(orders[thread % orders.len()].into()),
            telemetry: false,
        },
        Request::Compile {
            program: "matmul".into(),
            order: None,
            telemetry: false,
        },
        Request::Run {
            program: "cholesky_kij".into(),
            params: vec![12],
            order: None,
            backend: if thread.is_multiple_of(2) {
                BackendChoice::Vm
            } else {
                BackendChoice::Interp
            },
            telemetry: false,
        },
        Request::Explain {
            program: "cholesky_kij".into(),
            order: Some(orders[(thread + 1) % orders.len()].into()),
            telemetry: false,
        },
        Request::Run {
            program: "wavefront".into(),
            params: vec![20],
            order: None,
            backend: BackendChoice::Vm,
            telemetry: false,
        },
    ]
}

#[test]
fn parallel_sessions_match_in_process_results_bitwise() {
    let handle = start();
    let addr = handle.local_addr();

    let wave = |threads: usize| {
        std::thread::scope(|scope| {
            let mut joins = Vec::new();
            for t in 0..threads {
                joins.push(scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    for req in requests_for(t) {
                        let resp = client.request(&req).expect("request");
                        // Bitwise: both sides encode deterministically, so
                        // the comparison is on the exact wire bytes.
                        assert_eq!(
                            inl_proto::encode_response(&resp),
                            inl_proto::encode_response(&handle_request(&req)),
                            "thread {t} diverged on {req:?}"
                        );
                    }
                }));
            }
            for j in joins {
                j.join().expect("client thread");
            }
        });
    };

    let before = inl_poly::cache::stats();
    wave(4);
    let mid = inl_poly::cache::stats();
    wave(4); // identical second wave: the shared cache must be warm now
    let after = inl_poly::cache::stats();
    let (h, m) = (after.hits - mid.hits, after.misses - mid.misses);
    assert!(h > 0, "second wave must hit the warm cache: {after:?}");
    let warm_rate = h as f64 / (h + m).max(1) as f64;
    let cold_rate = {
        let (h0, m0) = (mid.hits - before.hits, mid.misses - before.misses);
        h0 as f64 / (h0 + m0).max(1) as f64
    };
    assert!(
        warm_rate >= cold_rate,
        "warm wave rate {warm_rate} below cold wave rate {cold_rate}"
    );

    // Transport counters saw all 40 requests (2 waves × 4 threads × 5).
    let stats = handle.stats_json();
    let requests = stats
        .get("requests")
        .and_then(inl_obs::Json::as_u64)
        .unwrap();
    assert!(requests >= 40, "{stats:?}");
    handle.shutdown();
}

#[test]
fn stats_request_reports_transport_and_cache_counters() {
    let handle = start();
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    // Generate some traffic first so counters are non-trivial.
    let _ = client
        .request(&Request::Compile {
            program: "matmul".into(),
            order: None,
            telemetry: false,
        })
        .expect("compile");
    let resp = client.request(&Request::Stats).expect("stats");
    // Drain semantics: shutdown waits for every open session, so close
    // ours before asking the server to stop.
    drop(client);
    match resp {
        Response::Stats { stats } => {
            let serve = stats.get("serve").expect("serve section");
            let requests = serve
                .get("requests")
                .and_then(inl_obs::Json::as_u64)
                .unwrap();
            assert!(requests >= 2, "{serve:?}");
            assert!(stats.get("poly_cache").is_some());
        }
        other => panic!("expected Stats, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn malformed_input_gets_a_typed_error_response() {
    use std::io::{Read as _, Write as _};
    let handle = start();
    let mut raw = std::net::TcpStream::connect(handle.local_addr()).expect("connect");

    // A syntactically valid frame whose payload is garbage JSON: the
    // session answers with a typed error and stays up for the next frame.
    inl_proto::write_frame(&mut raw, b"{{{not json").expect("write");
    let reply = inl_proto::read_frame(
        &mut std::io::BufReader::new(&mut raw),
        &FrameLimits::default(),
    )
    .expect("read")
    .expect("payload");
    let resp = inl_proto::decode_response(&reply, &FrameLimits::default()).expect("decode");
    assert!(matches!(resp, Response::Error { .. }), "{resp:?}");
    drop(raw); // shutdown drains open sessions; close ours first

    // An oversized length prefix: the server answers with a typed error
    // and then closes (framing is no longer trustworthy).
    let mut raw2 = std::net::TcpStream::connect(handle.local_addr()).expect("connect");
    raw2.write_all(&[0xFF, 0xFF, 0xFF, 0xFF]).expect("write");
    let mut buf = Vec::new();
    let mut reader = std::io::BufReader::new(&mut raw2);
    let reply = inl_proto::read_frame(&mut reader, &FrameLimits::default())
        .expect("read")
        .expect("payload");
    let resp = inl_proto::decode_response(&reply, &FrameLimits::default()).expect("decode");
    assert!(matches!(resp, Response::Error { .. }), "{resp:?}");
    assert_eq!(reader.read_to_end(&mut buf).ok(), Some(0), "must close");

    handle.shutdown();
}

#[test]
fn shutdown_request_drains_and_stops() {
    let handle = start();
    let addr = handle.local_addr();

    // Keep a busy session going while another connection asks to stop.
    let busy = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        let mut answered = 0u32;
        for _ in 0..5 {
            match client.request(&Request::Compile {
                program: "cholesky_kij".into(),
                order: Some("KJLI".into()),
                telemetry: false,
            }) {
                Ok(Response::Compile { .. }) => answered += 1,
                Ok(other) => panic!("unexpected {other:?}"),
                // The session was accepted before shutdown, so it drains
                // fully; errors here would mean dropped in-flight work.
                Err(e) => panic!("in-flight request dropped: {e}"),
            }
        }
        answered
    });
    std::thread::sleep(std::time::Duration::from_millis(20));
    let mut stopper = Client::connect(addr).expect("connect");
    let ack = stopper.request(&Request::Shutdown).expect("shutdown");
    assert_eq!(ack, Response::Shutdown);

    assert_eq!(busy.join().expect("busy thread"), 5);
    let final_stats = handle.join(); // returns => fully stopped
    let requests = final_stats
        .get("requests")
        .and_then(inl_obs::Json::as_u64)
        .unwrap();
    assert!(requests >= 6, "{final_stats:?}");

    // New connections must now be refused or go unanswered.
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut c) => {
            assert!(
                c.request(&Request::Stats).is_err(),
                "server must not answer after shutdown"
            );
        }
    }
}
