//! Integration: wire-level telemetry against a real server — opt-in
//! sections match in-process captures under the deterministic
//! projection, telemetry-off traffic is byte-identical to a bare
//! response, and the `metrics`/`stats` requests expose the live window
//! and the new lifetime gauges.

use inl_serve::{
    handle_request, serve, BackendChoice, Client, FrameLimits, Request, Response, ServerConfig,
};

fn start() -> inl_serve::ServerHandle {
    serve(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        limits: FrameLimits::default(),
    })
    .expect("bind ephemeral port")
}

fn jget(j: &inl_obs::Json, key: &str) -> u64 {
    j.get(key).and_then(inl_obs::Json::as_u64).unwrap_or(0)
}

#[test]
fn telemetry_sections_match_in_process_captures() {
    let handle = start();
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    let requests = [
        Request::Compile {
            program: "cholesky_kij".into(),
            order: Some("KJLI".into()),
            telemetry: true,
        },
        Request::Run {
            program: "matmul".into(),
            params: vec![12],
            order: None,
            backend: BackendChoice::Vm,
            telemetry: true,
        },
        Request::Explain {
            program: "cholesky_kij".into(),
            order: Some("IKJL".into()),
            telemetry: true,
        },
    ];
    for req in &requests {
        let remote = client.request(req).expect("request");
        let local = handle_request(req);
        // Core answer: byte-identical once the (timing-bearing)
        // telemetry section is stripped from both sides.
        assert_eq!(
            inl_proto::encode_response(&remote.strip_telemetry()),
            inl_proto::encode_response(&local.strip_telemetry()),
            "core bytes diverged for {req:?}"
        );
        // Telemetry: identical under the deterministic projection
        // (durations and cache-warmth evidence stripped).
        let remote_proj = inl_obs::capture::deterministic_projection(
            remote.telemetry().expect("server telemetry"),
        );
        let local_proj =
            inl_obs::capture::deterministic_projection(local.telemetry().expect("local telemetry"));
        assert_eq!(
            remote_proj.to_pretty_string(),
            local_proj.to_pretty_string(),
            "telemetry projection diverged for {req:?}"
        );
        // The section itself is versioned and carries real durations.
        let section = remote.telemetry().unwrap();
        assert_eq!(
            jget(section, "version"),
            inl_obs::capture::SCHEMA_VERSION,
            "{section:?}"
        );
        let stages = section.get("stages").expect("stages");
        assert!(
            matches!(stages, inl_obs::Json::Object(m) if !m.is_empty()),
            "{stages:?}"
        );
    }
    drop(client);
    handle.shutdown();
}

#[test]
fn telemetry_off_wire_bytes_are_unchanged() {
    let handle = start();
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    let off = Request::Compile {
        program: "cholesky_kij".into(),
        order: Some("KJLI".into()),
        telemetry: false,
    };
    // The encoded request has no telemetry key at all when the flag is
    // off — old servers would accept these bytes unchanged.
    assert!(!inl_proto::encode_request(&off).contains("telemetry"));
    let resp = client.request(&off).expect("request");
    assert!(resp.telemetry().is_none());
    assert!(!inl_proto::encode_response(&resp).contains("telemetry"));
    // And the answer equals the in-process one on exact wire bytes.
    assert_eq!(
        inl_proto::encode_response(&resp),
        inl_proto::encode_response(&handle_request(&off))
    );
    drop(client);
    handle.shutdown();
}

#[test]
fn metrics_request_reports_the_live_window() {
    let handle = start();
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    // Some traffic, including one typed error.
    for _ in 0..3 {
        let _ = client
            .request(&Request::Compile {
                program: "matmul".into(),
                order: None,
                telemetry: false,
            })
            .expect("compile");
    }
    let err = client
        .request(&Request::Compile {
            program: "nonesuch".into(),
            order: None,
            telemetry: false,
        })
        .expect("compile");
    assert!(matches!(err, Response::Error { .. }));

    let resp = client.request(&Request::Metrics).expect("metrics");
    let metrics = match resp {
        Response::Metrics { metrics } => metrics,
        other => panic!("expected Metrics, got {other:?}"),
    };
    assert!(jget(&metrics, "count") >= 4, "{metrics:?}");
    assert!(jget(&metrics, "errors") >= 1, "{metrics:?}");
    let by_kind = metrics.get("by_kind").expect("by_kind");
    assert!(jget(by_kind, "compile") >= 4, "{metrics:?}");
    let lat = metrics.get("latency_ns").expect("latency_ns");
    assert!(jget(lat, "p50") > 0, "{metrics:?}");
    assert!(jget(lat, "p99") >= jget(lat, "p50"), "{metrics:?}");
    drop(client);
    handle.shutdown();
}

#[test]
fn stats_reports_uptime_sessions_and_inflight_high_water() {
    let handle = start();
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let _ = client
        .request(&Request::Compile {
            program: "matmul".into(),
            order: None,
            telemetry: false,
        })
        .expect("compile");
    std::thread::sleep(std::time::Duration::from_millis(5));
    let resp = client.request(&Request::Stats).expect("stats");
    let stats = match resp {
        Response::Stats { stats } => stats,
        other => panic!("expected Stats, got {other:?}"),
    };
    let serve = stats.get("serve").expect("serve section");
    assert!(jget(serve, "uptime_ms") >= 5, "{serve:?}");
    assert!(jget(serve, "sessions") >= 1, "{serve:?}");
    assert!(jget(serve, "in_flight_hwm") >= 1, "{serve:?}");
    // The stats request itself is in flight while being answered.
    assert!(jget(serve, "in_flight") >= 1, "{serve:?}");
    drop(client);
    handle.shutdown();
}
