//! `inl-serve` — run the compile service.
//!
//! ```sh
//! inl-serve [--addr 127.0.0.1:7878] [--workers N] [--quiet]
//! ```
//!
//! Binds (default `127.0.0.1:7878`), prints the bound address on the
//! first stdout line (`listening on <addr>` — scripts wait for it), and
//! serves until a `shutdown` request arrives. Telemetry and timeline
//! layers are enabled so every request contributes `serve.*` spans and
//! counters; `INL_SERVE_WORKERS` is an env alternative to `--workers`.

fn flag_value(flag: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

fn main() {
    let addr = flag_value("--addr").unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let workers = flag_value("--workers")
        .or_else(|| std::env::var("INL_SERVE_WORKERS").ok())
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(0);
    let quiet = std::env::args().any(|a| a == "--quiet");

    inl_obs::set_enabled(true);
    inl_obs::set_timeline_enabled(true);

    let config = inl_serve::ServerConfig {
        addr,
        workers,
        limits: inl_serve::FrameLimits::default(),
    };
    let handle = match inl_serve::serve(&config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("inl-serve: cannot bind {}: {e}", config.addr);
            std::process::exit(1);
        }
    };
    println!("listening on {}", handle.local_addr());
    if !quiet {
        eprintln!(
            "inl-serve: {} worker(s), frame limit {} bytes; send a 'shutdown' request to stop",
            if config.workers == 0 {
                std::thread::available_parallelism().map_or(2, |x| x.get())
            } else {
                config.workers
            },
            config.limits.max_frame
        );
    }
    let stats = handle.join();
    if !quiet {
        eprintln!(
            "inl-serve: drained, final stats {}",
            stats.to_pretty_string()
        );
    }
}
