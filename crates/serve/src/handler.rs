//! The pure request handler: one [`Request`] in, one [`Response`] out.
//!
//! This is the same code path whether a request arrives over TCP or is
//! invoked in-process — the integration tests and the load generator
//! exploit that to assert the server's answers are bitwise-identical to
//! local computation. The handler never panics and never returns a
//! transport-level failure: every pipeline error becomes a typed
//! [`Response::Error`], and an *illegal loop order* is not an error at
//! all but a structured [`CompileOutcome::Rejected`].

use inl_codegen::generate;
use inl_core::complete::complete_transform;
use inl_core::depend::{analyze, DependenceMatrix};
use inl_core::instance::InstanceLayout;
use inl_ir::{zoo, Program};
use inl_linalg::{IMat, IVec, InlError, InlErrorKind};
use inl_proto::{BackendChoice, CompileOutcome, Request, Response};

/// Largest accepted value for a `run` parameter. Service-side cap: a
/// request names a problem size, and an unbounded size would let one
/// client monopolize a worker (cholesky at N=512 is already ~10⁸ flops).
pub const MAX_PARAM: u32 = 512;

/// A zoo entry: the wire name clients use, and the program constructor.
pub type ZooEntry = (&'static str, fn() -> Program);

/// Every program a request may name, with its constructor. The list is
/// the `inl_ir::zoo` — the service exposes exactly the programs the test
/// suite and benchmarks use, nothing dynamic.
pub const ZOO: &[ZooEntry] = &[
    ("simple_cholesky", zoo::simple_cholesky),
    ("running_example", zoo::running_example),
    ("perfect_nest", zoo::perfect_nest),
    ("augmentation_example", zoo::augmentation_example),
    ("cholesky_kij", zoo::cholesky_kij),
    ("cholesky_left_looking", zoo::cholesky_left_looking),
    ("lu_kij", zoo::lu_kij),
    ("wavefront", zoo::wavefront),
    ("matmul", zoo::matmul),
    ("rect_wavefront", zoo::rect_wavefront),
    ("row_prefix_sums", zoo::row_prefix_sums),
    (
        "distributed_simple_cholesky",
        zoo::distributed_simple_cholesky,
    ),
    ("independent_pair", zoo::independent_pair),
];

fn zoo_program(name: &str) -> Result<Program, InlError> {
    ZOO.iter()
        .find(|(n, _)| *n == name)
        .map(|(_, f)| f())
        .ok_or_else(|| {
            InlError::new(
                InlErrorKind::InvalidTarget,
                format!("unknown program '{name}' (see the zoo listing)"),
            )
        })
}

/// Resolve an order string like `"KJLI"` into unit partial rows for
/// [`complete_transform`]: one character per loop, each naming a loop of
/// the program by its (single-character) index-variable name, outermost
/// slot first.
fn order_rows(p: &Program, layout: &InstanceLayout, order: &str) -> Result<Vec<IVec>, InlError> {
    let loops: Vec<_> = p.loops().collect();
    let nloops = loops.len();
    if order.chars().count() != nloops {
        return Err(InlError::new(
            InlErrorKind::InvalidTarget,
            format!(
                "order '{order}' names {} loop(s); program '{}' has {nloops}",
                order.chars().count(),
                p.name()
            ),
        ));
    }
    let mut used = vec![false; nloops];
    let mut rows = Vec::with_capacity(nloops);
    for ch in order.chars() {
        let want = ch.to_string();
        let Some(slot) = loops.iter().position(|&l| p.loop_decl(l).name == want) else {
            return Err(InlError::new(
                InlErrorKind::InvalidTarget,
                format!("order '{order}': program '{}' has no loop '{ch}'", p.name()),
            ));
        };
        if used[slot] {
            return Err(InlError::new(
                InlErrorKind::InvalidTarget,
                format!("order '{order}' names loop '{ch}' twice"),
            ));
        }
        used[slot] = true;
        rows.push(IVec::unit(layout.len(), layout.loop_position(loops[slot])));
    }
    Ok(rows)
}

fn analyzed(p: &Program) -> Result<(InstanceLayout, DependenceMatrix), InlError> {
    let layout = InstanceLayout::new(p);
    let deps = analyze(p, &layout)?;
    Ok((layout, deps))
}

/// Run compile-with-order and classify: `Ok(Ok(program))` compiled,
/// `Ok(Err(reason))` legality rejected the order (a structured outcome),
/// `Err(e)` the request itself was bad.
fn compile_inner(program: &str, order: Option<&str>) -> Result<Result<Program, String>, InlError> {
    let _span = inl_obs::span("serve.compile");
    let p = zoo_program(program)?;
    let (layout, deps) = analyzed(&p)?;
    let matrix: IMat = match order {
        None => IMat::identity(layout.len()),
        Some(ord) => match complete_transform(&p, &layout, &deps, &order_rows(&p, &layout, ord)?) {
            Ok(c) => c.matrix,
            // Deterministic per input: derive formatting of the typed
            // completion error, same text for the same rejection.
            Err(e) => return Ok(Err(format!("completion rejected the order: {e:?}"))),
        },
    };
    match generate(&p, &layout, &deps, &matrix) {
        Ok(r) => Ok(Ok(r.program)),
        Err(e) => Ok(Err(format!("codegen rejected the schedule: {e:?}"))),
    }
}

/// FNV-1a 64 over every array's name and `f64` bit patterns; returns the
/// digest plus (array count, total cell count). Equal digests across two
/// runs mean the final machine states are bitwise identical.
fn digest_machine(m: &inl_exec::Machine) -> (String, u64, u64) {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut step = |byte: u8| {
        h ^= byte as u64;
        h = h.wrapping_mul(PRIME);
    };
    let mut cells = 0u64;
    for a in m.arrays() {
        for b in a.name.bytes() {
            step(b);
        }
        for v in &a.data {
            for b in v.to_bits().to_le_bytes() {
                step(b);
            }
            cells += 1;
        }
    }
    (format!("{h:016x}"), m.arrays().len() as u64, cells)
}

fn handle_compile(program: &str, order: Option<&str>) -> Result<Response, InlError> {
    let outcome = match compile_inner(program, order)? {
        Ok(generated) => CompileOutcome::Legal {
            pseudocode: generated.to_pseudocode(),
        },
        Err(reason) => CompileOutcome::Rejected { reason },
    };
    Ok(Response::Compile {
        outcome,
        telemetry: None,
    })
}

fn handle_run(
    program: &str,
    params: &[u32],
    order: Option<&str>,
    backend: BackendChoice,
) -> Result<Response, InlError> {
    let p = zoo_program(program)?; // cheap; re-validates nparams first
    if params.len() != p.nparams() {
        return Err(InlError::new(
            InlErrorKind::InvalidTarget,
            format!(
                "program '{program}' takes {} parameter(s), got {}",
                p.nparams(),
                params.len()
            ),
        ));
    }
    for &v in params {
        if v == 0 || v > MAX_PARAM {
            return Err(InlError::new(
                InlErrorKind::Budget,
                format!("parameter {v} outside the service range 1..={MAX_PARAM}"),
            ));
        }
    }
    let generated = match compile_inner(program, order)? {
        Ok(g) => g,
        Err(reason) => {
            return Err(InlError::new(
                InlErrorKind::Infeasible,
                format!("cannot run a rejected order: {reason}"),
            ))
        }
    };
    let ints: Vec<inl_linalg::Int> = params.iter().map(|&v| v as inl_linalg::Int).collect();
    let be = match backend {
        BackendChoice::Interp => inl_exec::Backend::Interp,
        BackendChoice::Vm => inl_exec::Backend::Vm,
    };
    let machine = {
        let _span = inl_obs::span("serve.exec");
        inl_exec::run_fresh_with(be, &generated, &ints, &inl_bench::spd_init)
    };
    let (digest, arrays, cells) = digest_machine(&machine);
    Ok(Response::Run {
        digest,
        arrays,
        cells,
        telemetry: None,
    })
}

fn handle_explain(program: &str, order: Option<&str>) -> Result<Response, InlError> {
    Ok(match compile_inner(program, order)? {
        Ok(_) => Response::Explain {
            verdict: "legal".to_string(),
            reason: match order {
                Some(ord) => format!(
                    "order {ord} completes to a full legal transformation \
                     (every dependence projection stays lexicographically positive)"
                ),
                None => "identity schedule; source order is legal by construction".to_string(),
            },
            telemetry: None,
        },
        Err(reason) => Response::Explain {
            verdict: "rejected".to_string(),
            reason,
            telemetry: None,
        },
    })
}

fn handle_schedule(program: &str) -> Result<Response, InlError> {
    let _span = inl_obs::span("serve.schedule");
    let p = zoo_program(program)?;
    // fixed configuration, single-threaded compile sweep: the response
    // must be byte-identical whether the search runs in the server or
    // in-process in a client (inl-load bitwise-compares the two), so
    // nothing environment- or thread-order-dependent may leak in
    let cfg = inl_sched::SchedConfig {
        threads: 1,
        ..inl_sched::SchedConfig::default()
    };
    let r = inl_sched::schedule_with(&p, &cfg)
        .map_err(|e| InlError::new(InlErrorKind::Infeasible, format!("scheduling failed: {e}")))?;
    Ok(Response::Schedule {
        chosen: r.chosen().label.clone(),
        pseudocode: r.chosen().pseudocode.clone(),
        nodes_visited: r.stats.nodes_visited,
        nodes_exhaustive: r.stats.nodes_exhaustive,
        pruned_subtrees: r.stats.pruned_subtrees,
        legal_variants: r.stats.legal_variants,
        telemetry: None,
    })
}

/// The dispatch core, without telemetry capture.
fn handle_core(req: &Request) -> Response {
    let result = match req {
        Request::Compile { program, order, .. } => handle_compile(program, order.as_deref()),
        Request::Run {
            program,
            params,
            order,
            backend,
            ..
        } => handle_run(program, params, order.as_deref(), *backend),
        Request::Explain { program, order, .. } => handle_explain(program, order.as_deref()),
        Request::Schedule { program, .. } => handle_schedule(program),
        Request::Stats => {
            let mut stats = inl_obs::Json::object();
            stats.insert("poly_cache", inl_poly::cache::stats_json());
            Ok(Response::Stats { stats })
        }
        Request::Metrics => Ok(Response::Metrics {
            metrics: crate::request_window().snapshot().to_json(),
        }),
        Request::Shutdown => Ok(Response::Shutdown),
    };
    result.unwrap_or_else(|e| Response::from_error(&e))
}

/// Handle one request. Infallible by design: anything that can go wrong
/// becomes a [`Response::Error`]. [`Request::Stats`] answers with the
/// process-wide poly-cache snapshot (the server layer adds its own
/// transport counters on top); [`Request::Metrics`] snapshots the
/// process-wide [sliding window](crate::request_window) (empty unless a
/// server in this process has been feeding it); [`Request::Shutdown`] is
/// acknowledged here and *acted on* by the server layer.
///
/// A request with `telemetry: true` is handled inside an
/// `inl_obs::capture` window and its response carries the capture as a
/// versioned `telemetry` section — counters, per-stage durations, and
/// poly-cache deltas attributable to exactly this request. Error
/// responses have no telemetry slot and are returned bare.
pub fn handle_request(req: &Request) -> Response {
    if !req.wants_telemetry() {
        return handle_core(req);
    }
    let (resp, capture) = inl_obs::capture::with(|| handle_core(req));
    resp.with_telemetry(capture.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile_req(program: &str, order: Option<&str>) -> Request {
        Request::Compile {
            program: program.into(),
            order: order.map(str::to_string),
            telemetry: false,
        }
    }

    #[test]
    fn compile_legal_and_rejected_orders() {
        let legal = handle_request(&compile_req("cholesky_kij", Some("KJLI")));
        match legal {
            Response::Compile {
                outcome: CompileOutcome::Legal { pseudocode },
                ..
            } => {
                assert!(pseudocode.contains("do"), "{pseudocode}");
            }
            other => panic!("KJLI should be legal, got {other:?}"),
        }
        let rejected = handle_request(&compile_req("cholesky_kij", Some("IKJL")));
        assert!(
            matches!(
                rejected,
                Response::Compile {
                    outcome: CompileOutcome::Rejected { .. },
                    ..
                }
            ),
            "IKJL should reject, got {rejected:?}"
        );
    }

    #[test]
    fn identity_compile_works_for_every_zoo_program() {
        for (name, _) in ZOO {
            let resp = handle_request(&compile_req(name, None));
            assert!(
                matches!(
                    resp,
                    Response::Compile {
                        outcome: CompileOutcome::Legal { .. },
                        ..
                    }
                ),
                "{name}: {resp:?}"
            );
        }
    }

    #[test]
    fn run_digest_matches_backends_and_is_deterministic() {
        let req = |backend| Request::Run {
            program: "cholesky_kij".into(),
            params: vec![24],
            order: None,
            backend,
            telemetry: false,
        };
        let interp = handle_request(&req(BackendChoice::Interp));
        let vm = handle_request(&req(BackendChoice::Vm));
        assert_eq!(interp, vm, "backends must be bitwise identical");
        assert_eq!(interp, handle_request(&req(BackendChoice::Interp)));
        match interp {
            Response::Run {
                digest,
                arrays,
                cells,
                ..
            } => {
                assert_eq!(digest.len(), 16);
                assert_eq!(arrays, 1);
                assert_eq!(cells, 25 * 25);
            }
            other => panic!("expected Run, got {other:?}"),
        }
    }

    #[test]
    fn transformed_run_differs_in_schedule_not_result() {
        // KJLI reorders the update loops; final state must be bitwise
        // equal to the source order (pure interchange within the family).
        let source = handle_request(&Request::Run {
            program: "cholesky_kij".into(),
            params: vec![16],
            order: None,
            backend: BackendChoice::Vm,
            telemetry: false,
        });
        let kjli = handle_request(&Request::Run {
            program: "cholesky_kij".into(),
            params: vec![16],
            order: Some("KJLI".into()),
            backend: BackendChoice::Vm,
            telemetry: false,
        });
        assert_eq!(source, kjli);
    }

    #[test]
    fn schedule_is_deterministic_and_prunes() {
        let req = Request::Schedule {
            program: "cholesky_kij".into(),
            telemetry: false,
        };
        let first = handle_request(&req);
        // byte-stability is what inl-load's bitwise gate relies on
        assert_eq!(
            inl_proto::encode_response(&first),
            inl_proto::encode_response(&handle_request(&req))
        );
        match first {
            Response::Schedule {
                chosen,
                pseudocode,
                nodes_visited,
                nodes_exhaustive,
                pruned_subtrees,
                legal_variants,
                ..
            } => {
                assert!(!chosen.is_empty());
                assert!(pseudocode.contains("do"), "{pseudocode}");
                assert!(nodes_visited < nodes_exhaustive);
                assert!(pruned_subtrees > 0);
                assert!(legal_variants > 0);
            }
            other => panic!("expected Schedule, got {other:?}"),
        }
        let unknown = handle_request(&Request::Schedule {
            program: "nonesuch".into(),
            telemetry: false,
        });
        assert!(matches!(unknown, Response::Error { .. }), "{unknown:?}");
    }

    #[test]
    fn bad_requests_get_typed_errors() {
        let unknown = handle_request(&compile_req("nonesuch", None));
        assert!(
            matches!(unknown, Response::Error { ref kind, .. } if kind.contains("target")),
            "{unknown:?}"
        );
        let bad_order = handle_request(&compile_req("cholesky_kij", Some("KKKK")));
        assert!(matches!(bad_order, Response::Error { .. }), "{bad_order:?}");
        let bad_arity = handle_request(&Request::Run {
            program: "matmul".into(),
            params: vec![8, 8],
            order: None,
            backend: BackendChoice::Vm,
            telemetry: false,
        });
        assert!(matches!(bad_arity, Response::Error { .. }), "{bad_arity:?}");
        let oversize = handle_request(&Request::Run {
            program: "matmul".into(),
            params: vec![100_000],
            order: None,
            backend: BackendChoice::Vm,
            telemetry: false,
        });
        assert!(
            matches!(oversize, Response::Error { ref kind, .. } if kind.contains("budget")),
            "{oversize:?}"
        );
        let illegal_run = handle_request(&Request::Run {
            program: "cholesky_kij".into(),
            params: vec![8],
            order: Some("IKJL".into()),
            backend: BackendChoice::Vm,
            telemetry: false,
        });
        assert!(
            matches!(illegal_run, Response::Error { ref kind, .. } if kind.contains("infeasible")),
            "{illegal_run:?}"
        );
    }

    #[test]
    fn explain_names_the_verdict() {
        let legal = handle_request(&Request::Explain {
            program: "cholesky_kij".into(),
            order: Some("KJLI".into()),
            telemetry: false,
        });
        assert!(
            matches!(legal, Response::Explain { ref verdict, .. } if verdict == "legal"),
            "{legal:?}"
        );
        let rejected = handle_request(&Request::Explain {
            program: "cholesky_kij".into(),
            order: Some("IKJL".into()),
            telemetry: false,
        });
        match rejected {
            Response::Explain {
                verdict, reason, ..
            } => {
                assert_eq!(verdict, "rejected");
                assert!(!reason.is_empty());
            }
            other => panic!("expected Explain, got {other:?}"),
        }
    }

    #[test]
    fn stats_carries_the_poly_cache_snapshot() {
        let resp = handle_request(&Request::Stats);
        match resp {
            Response::Stats { stats } => {
                let pc = stats.get("poly_cache").expect("poly_cache section");
                assert!(pc.get("hits").is_some());
                assert!(pc.get("hit_rate").is_some());
            }
            other => panic!("expected Stats, got {other:?}"),
        }
    }

    #[test]
    fn telemetry_request_gets_a_versioned_section() {
        let mut req = compile_req("cholesky_kij", Some("KJLI"));
        if let Request::Compile { telemetry, .. } = &mut req {
            *telemetry = true;
        }
        let resp = handle_request(&req);
        let section = resp.telemetry().expect("telemetry section");
        assert_eq!(
            section.get("version").and_then(inl_obs::Json::as_u64),
            Some(inl_obs::capture::SCHEMA_VERSION)
        );
        let stages = section.get("stages").expect("stages");
        let compile = stages.get("serve.compile").expect("serve.compile stage");
        assert_eq!(
            compile.get("count").and_then(inl_obs::Json::as_u64),
            Some(1)
        );
        assert!(section.get("poly_cache").is_some());
        assert!(section.get("explain").is_some());
        // The core answer (telemetry stripped) is byte-identical to the
        // telemetry-off answer for the same request.
        let off = handle_request(&compile_req("cholesky_kij", Some("KJLI")));
        assert_eq!(
            inl_proto::encode_response(&resp.strip_telemetry()),
            inl_proto::encode_response(&off)
        );
        // Error responses carry no telemetry slot and come back bare.
        let mut bad = compile_req("nonesuch", None);
        if let Request::Compile { telemetry, .. } = &mut bad {
            *telemetry = true;
        }
        let err = handle_request(&bad);
        assert!(matches!(err, Response::Error { .. }), "{err:?}");
        assert!(err.telemetry().is_none());
    }

    #[test]
    fn metrics_snapshot_reflects_window_feed() {
        let resp = handle_request(&Request::Metrics);
        let before = match &resp {
            Response::Metrics { metrics } => metrics
                .get("count")
                .and_then(inl_obs::Json::as_u64)
                .unwrap(),
            other => panic!("expected Metrics, got {other:?}"),
        };
        crate::request_window().record("compile", 1_000, false);
        let resp = handle_request(&Request::Metrics);
        match resp {
            Response::Metrics { metrics } => {
                let after = metrics
                    .get("count")
                    .and_then(inl_obs::Json::as_u64)
                    .unwrap();
                assert!(after > before, "window feed not visible: {metrics:?}");
            }
            other => panic!("expected Metrics, got {other:?}"),
        }
    }
}
