//! `inl-load` — replay a deterministic mixed workload against a running
//! `inl-serve` and record throughput + latency percentiles.
//!
//! ```sh
//! inl-load [--addr HOST:PORT] [--requests N] [--connections C]
//!          [--telemetry] [--out BENCH_serve.json] [--shutdown]
//! ```
//!
//! The workload cycles a fixed schedule — identity compiles and runs for
//! every zoo program, compile + explain for all 24 Cholesky loop orders,
//! auto-schedule probes for three programs,
//! a `stats`/`metrics` probe every 50th request — split round-robin
//! across `C` connections. Every response except `stats`/`metrics` is
//! compared **bytewise** against the in-process
//! [`inl_serve::handle_request`] answer for the same request (both sides
//! encode deterministically), so the run proves the server computes
//! exactly what local compilation computes.
//!
//! With `--telemetry` every compile/run/explain request also asks for
//! the per-request capture section. The returned section's
//! *deterministic projection* (durations and cache-warmth evidence
//! stripped — see [`inl_obs::capture::deterministic_projection`]) must
//! be **byte-identical** to the projection of an in-process capture of
//! the same request; the core response bytes are compared with the
//! telemetry section stripped. The run also re-measures the
//! instruments-off overhead of the request path (A/B with global obs
//! toggled) and records it as `obs_overhead_pct`.
//!
//! Latency is recorded per request into the `load.latency` histogram
//! and reported as p50/p95/p99 in the output JSON, whose `programs`
//! shape feeds the `inl-obs-diff` CI gate. Exit code 1 on any transport
//! error, bitwise mismatch, or telemetry-projection disagreement.

use inl_serve::{handle_request, Client, Request, Response, ZOO};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

fn flag_value(flag: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

/// One cycle of the schedule: every zoo program compiled (identity) and
/// the single-parameter ones run on both backends, all 24 Cholesky
/// orders compiled and explained.
fn base_schedule(telemetry: bool) -> Vec<Request> {
    let mut reqs = Vec::new();
    for (name, make) in ZOO {
        reqs.push(Request::Compile {
            program: (*name).to_string(),
            order: None,
            telemetry,
        });
        let p = make();
        if p.nparams() == 1 {
            for backend in [
                inl_proto::BackendChoice::Vm,
                inl_proto::BackendChoice::Interp,
            ] {
                reqs.push(Request::Run {
                    program: (*name).to_string(),
                    params: vec![16],
                    order: None,
                    backend,
                    telemetry,
                });
            }
        }
    }
    let names = ["K", "J", "L", "I"];
    for pm in inl_bench::permutations(&[0usize, 1, 2, 3]) {
        let order: String = pm.iter().map(|&i| names[i]).collect();
        reqs.push(Request::Compile {
            program: "cholesky_kij".to_string(),
            order: Some(order.clone()),
            telemetry,
        });
        reqs.push(Request::Explain {
            program: "cholesky_kij".to_string(),
            order: Some(order),
            telemetry,
        });
    }
    // auto-schedule probes: like every other non-stats request these are
    // byte-compared against in-process scheduling, proving the server's
    // search visits the same tree and chooses the same variant. Small
    // search trees keep one cycle fast; matmul exercises the shape axis.
    for prog in ["simple_cholesky", "matmul", "wavefront"] {
        reqs.push(Request::Schedule {
            program: prog.to_string(),
            telemetry,
        });
    }
    reqs
}

/// Time the in-process request path over a fixed compile sample; used
/// for the instruments-off vs instruments-on A/B.
fn time_sample_ns(sample: &[Request], rounds: usize) -> u64 {
    let t0 = Instant::now();
    for _ in 0..rounds {
        for req in sample {
            std::hint::black_box(handle_request(req));
        }
    }
    t0.elapsed().as_nanos() as u64
}

fn main() {
    let addr = flag_value("--addr").unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let total: usize = flag_value("--requests")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let connections: usize = flag_value("--connections")
        .and_then(|v| v.parse().ok())
        .filter(|&c| c > 0)
        .unwrap_or(4);
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let send_shutdown = std::env::args().any(|a| a == "--shutdown");
    let telemetry = std::env::args().any(|a| a == "--telemetry");

    inl_obs::set_enabled(true); // load.latency histogram

    // Deterministic workload: cycle the base schedule, with a stats or
    // metrics probe alternating in every 50th slot.
    let base = base_schedule(telemetry);
    let schedule: Vec<Request> = (0..total)
        .map(|i| {
            if i % 100 == 49 {
                Request::Stats
            } else if i % 100 == 99 {
                Request::Metrics
            } else {
                base[i % base.len()].clone()
            }
        })
        .collect();

    let errors = AtomicU64::new(0);
    let mismatches = AtomicU64::new(0);
    let telemetry_checked = AtomicU64::new(0);
    let telemetry_mismatches = AtomicU64::new(0);
    let completed = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..connections {
            let schedule = &schedule;
            let errors = &errors;
            let mismatches = &mismatches;
            let telemetry_checked = &telemetry_checked;
            let telemetry_mismatches = &telemetry_mismatches;
            let completed = &completed;
            let addr = &addr;
            scope.spawn(move || {
                let mut client = match Client::connect(addr.as_str()) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("inl-load[{t}]: connect: {e}");
                        errors.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                };
                for req in schedule.iter().skip(t).step_by(connections) {
                    let start = Instant::now();
                    let resp = match client.request(req) {
                        Ok(r) => r,
                        Err(e) => {
                            eprintln!("inl-load[{t}]: {e}");
                            errors.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    };
                    inl_obs::hist_record!("load.latency", start.elapsed().as_nanos() as u64);
                    completed.fetch_add(1, Ordering::Relaxed);
                    if matches!(resp, Response::Error { .. }) {
                        eprintln!(
                            "inl-load[{t}]: error response to {}: {}",
                            inl_proto::encode_request(req).replace('\n', " "),
                            inl_proto::encode_response(&resp).replace('\n', " ")
                        );
                        errors.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    // Stats and metrics depend on live server state;
                    // everything else must match the in-process answer
                    // byte for byte (modulo the telemetry section, which
                    // carries wall-clock durations).
                    if matches!(req, Request::Stats | Request::Metrics) {
                        continue;
                    }
                    let local = handle_request(req);
                    let expected = inl_proto::encode_response(&local.strip_telemetry());
                    let actual = inl_proto::encode_response(&resp.strip_telemetry());
                    if expected != actual {
                        eprintln!(
                            "inl-load[{t}]: MISMATCH for {}",
                            inl_proto::encode_request(req).replace('\n', " ")
                        );
                        mismatches.fetch_add(1, Ordering::Relaxed);
                    }
                    if req.wants_telemetry() {
                        telemetry_checked.fetch_add(1, Ordering::Relaxed);
                        let remote = resp
                            .telemetry()
                            .map(inl_obs::capture::deterministic_projection)
                            .map(|j| j.to_pretty_string());
                        let here = local
                            .telemetry()
                            .map(inl_obs::capture::deterministic_projection)
                            .map(|j| j.to_pretty_string());
                        if remote.is_none() || remote != here {
                            eprintln!(
                                "inl-load[{t}]: TELEMETRY MISMATCH for {}\n  server: {}\n  local:  {}",
                                inl_proto::encode_request(req).replace('\n', " "),
                                remote.as_deref().unwrap_or("<missing>").replace('\n', " "),
                                here.as_deref().unwrap_or("<missing>").replace('\n', " "),
                            );
                            telemetry_mismatches.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let wall = t0.elapsed();
    let completed = completed.load(Ordering::Relaxed);
    let errors = errors.load(Ordering::Relaxed);
    let mismatches = mismatches.load(Ordering::Relaxed);
    let telemetry_checked = telemetry_checked.load(Ordering::Relaxed);
    let telemetry_mismatches = telemetry_mismatches.load(Ordering::Relaxed);
    let bitwise_identical = mismatches == 0;
    let telemetry_identical = telemetry_mismatches == 0;

    let snap = inl_obs::PipelineReport::capture();
    let latency = snap
        .histograms
        .get("load.latency")
        .cloned()
        .unwrap_or_default();
    let throughput = completed as f64 / wall.as_secs_f64().max(1e-9);

    // Re-measure the instruments-off budget: the same in-process compile
    // sample with every instrument off (one relaxed load per site)
    // versus global obs on. The telemetry machinery rides the same flag
    // byte, so this covers the new capture dispatch as well.
    let sample: Vec<Request> = base_schedule(false)
        .into_iter()
        .filter(|r| matches!(r, Request::Compile { .. } | Request::Explain { .. }))
        .collect();
    let rounds = 20;
    inl_obs::set_enabled(false);
    time_sample_ns(&sample, 2); // warm the poly cache for both arms
    let off_ns = time_sample_ns(&sample, rounds).max(1);
    inl_obs::set_enabled(true);
    let on_ns = time_sample_ns(&sample, rounds);
    let obs_overhead_pct = (on_ns as f64 - off_ns as f64) / off_ns as f64 * 100.0;

    if send_shutdown {
        match Client::connect(addr.as_str()).and_then(|mut c| c.request(&Request::Shutdown)) {
            Ok(Response::Shutdown) => eprintln!("inl-load: server draining"),
            Ok(other) => eprintln!("inl-load: unexpected shutdown reply {other:?}"),
            Err(e) => eprintln!("inl-load: shutdown: {e}"),
        }
    }

    let mut entry = inl_obs::Json::object();
    entry.insert("name", inl_obs::Json::Str("mixed".to_string()));
    entry.insert("p50_ns", inl_obs::Json::Int(latency.p50()));
    entry.insert("p95_ns", inl_obs::Json::Int(latency.p95()));
    entry.insert("p99_ns", inl_obs::Json::Int(latency.p99()));
    entry.insert("throughput_rps", inl_obs::Json::Float(throughput));
    entry.insert("errors", inl_obs::Json::Int(errors));
    entry.insert("mismatches", inl_obs::Json::Int(mismatches));
    entry.insert("bitwise_identical", inl_obs::Json::Bool(bitwise_identical));
    entry.insert("telemetry_checked", inl_obs::Json::Int(telemetry_checked));
    entry.insert(
        "telemetry_identical",
        inl_obs::Json::Bool(telemetry_identical),
    );
    entry.insert("obs_overhead_pct", inl_obs::Json::Float(obs_overhead_pct));
    let mut doc = inl_obs::Json::object();
    doc.insert("version", inl_obs::Json::Int(1));
    doc.insert("requests", inl_obs::Json::Int(completed));
    doc.insert("connections", inl_obs::Json::Int(connections as u64));
    doc.insert("programs", inl_obs::Json::Array(vec![entry]));
    if let Err(e) = std::fs::write(&out_path, doc.to_pretty_string()) {
        eprintln!("inl-load: cannot write {out_path}: {e}");
        std::process::exit(1);
    }

    println!(
        "inl-load: {completed}/{total} request(s) over {connections} connection(s) in {wall:.2?} \
         — {throughput:.0} req/s, p50 {:?}, p95 {:?}, p99 {:?}, {errors} error(s), {}, \
         telemetry {telemetry_checked} checked / {}, obs overhead {obs_overhead_pct:.1}%",
        std::time::Duration::from_nanos(latency.p50()),
        std::time::Duration::from_nanos(latency.p95()),
        std::time::Duration::from_nanos(latency.p99()),
        if bitwise_identical {
            "bitwise identical".to_string()
        } else {
            format!("{mismatches} MISMATCH(ES)")
        },
        if telemetry_identical {
            "identical".to_string()
        } else {
            format!("{telemetry_mismatches} MISMATCH(ES)")
        }
    );
    println!("inl-load: wrote {out_path}");
    if errors > 0 || !bitwise_identical || !telemetry_identical || completed < total as u64 {
        std::process::exit(1);
    }
}
