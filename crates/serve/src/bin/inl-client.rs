//! `inl-client` — one-shot requests against a running `inl-serve`.
//!
//! ```sh
//! inl-client [--addr HOST:PORT] [--json] [--telemetry] <command> [args]
//!
//! inl-client compile <program> [order]      # pseudocode or rejection
//! inl-client run <prog> <N> [M ...] [--order ORD] [--backend vm|interp]
//! inl-client explain <program> <order>      # why legal / why rejected
//! inl-client schedule <program>             # auto-schedule: chosen variant
//! inl-client stats                          # cache + transport counters
//! inl-client metrics                        # sliding-window latency/rates
//! inl-client shutdown                       # graceful stop
//! ```
//!
//! Default output is human-readable; `--json` prints the raw response
//! JSON exactly as it came off the wire. `--telemetry` asks the server
//! for the per-request capture section on compile/run/explain and
//! prints it after the answer. Exit code 0 on any well-formed response
//! that is not an `error`, 2 on a typed error response, 1 on transport
//! failure or bad usage.

use inl_serve::{BackendChoice, Client, CompileOutcome, Request, Response};

fn usage() -> ! {
    eprintln!(
        "usage: inl-client [--addr HOST:PORT] [--json] [--telemetry] \
         (compile <prog> [order] | run <prog> <N>.. [--order ORD] [--backend vm|interp] | \
         explain <prog> <order> | schedule <prog> | stats | metrics | shutdown)"
    );
    std::process::exit(1);
}

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut json_output = false;
    let mut telemetry = false;
    let mut positional: Vec<String> = Vec::new();
    let mut order: Option<String> = None;
    let mut backend = BackendChoice::Vm;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => addr = args.next().unwrap_or_else(|| usage()),
            "--json" => json_output = true,
            "--telemetry" => telemetry = true,
            "--order" => order = Some(args.next().unwrap_or_else(|| usage())),
            "--backend" => {
                backend = match args.next().as_deref() {
                    Some("vm") => BackendChoice::Vm,
                    Some("interp") => BackendChoice::Interp,
                    _ => usage(),
                }
            }
            _ => positional.push(a),
        }
    }
    let Some(command) = positional.first().cloned() else {
        usage()
    };
    let rest = &positional[1..];

    let request = match command.as_str() {
        "compile" => match rest {
            [prog] => Request::Compile {
                program: prog.clone(),
                order: order.clone(),
                telemetry,
            },
            [prog, ord] => Request::Compile {
                program: prog.clone(),
                order: Some(ord.clone()),
                telemetry,
            },
            _ => usage(),
        },
        "run" => {
            let [prog, params @ ..] = rest else { usage() };
            let parsed: Option<Vec<u32>> = params.iter().map(|p| p.parse().ok()).collect();
            let Some(params) = parsed else { usage() };
            if params.is_empty() {
                usage();
            }
            Request::Run {
                program: prog.clone(),
                params,
                order: order.clone(),
                backend,
                telemetry,
            }
        }
        "explain" => match rest {
            [prog, ord] => Request::Explain {
                program: prog.clone(),
                order: Some(ord.clone()),
                telemetry,
            },
            [prog] => Request::Explain {
                program: prog.clone(),
                order: order.clone(),
                telemetry,
            },
            _ => usage(),
        },
        "schedule" => match rest {
            [prog] => Request::Schedule {
                program: prog.clone(),
                telemetry,
            },
            _ => usage(),
        },
        "stats" => Request::Stats,
        "metrics" => Request::Metrics,
        "shutdown" => Request::Shutdown,
        _ => usage(),
    };

    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("inl-client: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    let response = match client.request(&request) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("inl-client: {e}");
            std::process::exit(1);
        }
    };

    if json_output {
        println!("{}", inl_proto::encode_response(&response));
    } else {
        match &response {
            Response::Compile {
                outcome: CompileOutcome::Legal { pseudocode },
                ..
            } => println!("legal\n{pseudocode}"),
            Response::Compile {
                outcome: CompileOutcome::Rejected { reason },
                ..
            } => println!("rejected: {reason}"),
            Response::Run {
                digest,
                arrays,
                cells,
                ..
            } => println!("digest {digest} ({arrays} array(s), {cells} cell(s))"),
            Response::Explain {
                verdict, reason, ..
            } => println!("{verdict}: {reason}"),
            Response::Schedule {
                chosen,
                pseudocode,
                nodes_visited,
                nodes_exhaustive,
                pruned_subtrees,
                legal_variants,
                ..
            } => println!(
                "chosen {chosen} ({legal_variants} legal variant(s); visited \
                 {nodes_visited}/{nodes_exhaustive} nodes, {pruned_subtrees} subtree(s) pruned)\n\
                 {pseudocode}"
            ),
            Response::Stats { stats } => println!("{}", stats.to_pretty_string()),
            Response::Metrics { metrics } => println!("{}", metrics.to_pretty_string()),
            Response::Shutdown => println!("server draining"),
            Response::Error { kind, message } => eprintln!("error [{kind}]: {message}"),
        }
        if let Some(section) = response.telemetry() {
            println!("telemetry:\n{}", section.to_pretty_string());
        }
    }
    if matches!(response, Response::Error { .. }) {
        std::process::exit(2);
    }
}
