//! `inl-top` — a live plain-text dashboard over a running `inl-serve`.
//!
//! ```sh
//! inl-top [--addr HOST:PORT] [--interval-ms N] [--count N] [--once] [--no-clear]
//! ```
//!
//! Polls the `metrics` and `stats` requests on one connection and
//! redraws a terminal summary each tick: throughput and error rate over
//! the sliding window, latency percentiles, the per-request-type
//! breakdown, poly-cache hit rate, and the server's lifetime transport
//! gauges (uptime, sessions, in-flight high-water mark). Standard
//! library only — the "dashboard" is aligned text plus an ANSI
//! clear-screen, suitable for any terminal or for piping a single
//! `--once` frame into a log. Exit code 1 on transport failure.

use inl_serve::{Client, Request, Response};

fn flag_value(flag: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

fn u(j: &inl_obs::Json, key: &str) -> u64 {
    j.get(key).and_then(inl_obs::Json::as_u64).unwrap_or(0)
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn fmt_uptime(ms: u64) -> String {
    let s = ms / 1000;
    format!("{:02}:{:02}:{:02}", s / 3600, (s / 60) % 60, s % 60)
}

/// One dashboard frame rendered from a `metrics` and a `stats` reply.
fn render(metrics: &inl_obs::Json, stats: &inl_obs::Json) -> String {
    let mut out = String::new();
    let serve = stats.get("serve");
    let cache = stats.get("poly_cache");
    let lat = metrics.get("latency_ns");

    let req_per_sec = u(metrics, "req_per_sec_milli") as f64 / 1e3;
    let err_pct = u(metrics, "error_rate_ppm") as f64 / 1e4;
    let window_s = u(metrics, "covered_ms") as f64 / 1e3;
    out.push_str(&format!(
        "inl-top — window {:.0}s: {} request(s), {:.1} req/s, {:.2}% errors\n",
        window_s,
        u(metrics, "count"),
        req_per_sec,
        err_pct
    ));
    if let Some(lat) = lat {
        out.push_str(&format!(
            "latency    p50 {:>9}  p95 {:>9}  p99 {:>9}  max {:>9}\n",
            fmt_ns(u(lat, "p50")),
            fmt_ns(u(lat, "p95")),
            fmt_ns(u(lat, "p99")),
            fmt_ns(u(lat, "max")),
        ));
    }
    if let Some(serve) = serve {
        out.push_str(&format!(
            "server     up {}  sessions {}  in-flight {} (hwm {})  lifetime {} req / {} err\n",
            fmt_uptime(u(serve, "uptime_ms")),
            u(serve, "sessions"),
            u(serve, "in_flight"),
            u(serve, "in_flight_hwm"),
            u(serve, "requests"),
            u(serve, "errors"),
        ));
    }
    if let Some(cache) = cache {
        let rate = match cache.get("hit_rate") {
            Some(inl_obs::Json::Float(f)) => *f * 100.0,
            _ => 0.0,
        };
        out.push_str(&format!(
            "poly cache {} hit(s) / {} miss(es) — {:.1}% hit rate\n",
            u(cache, "hits"),
            u(cache, "misses"),
            rate
        ));
    }
    if let Some(inl_obs::Json::Object(by_kind)) = metrics.get("by_kind") {
        if !by_kind.is_empty() {
            out.push_str("by kind   ");
            for (kind, count) in by_kind {
                out.push_str(&format!(" {kind}={}", count.as_u64().unwrap_or(0)));
            }
            out.push('\n');
        }
    }
    out
}

fn main() {
    let addr = flag_value("--addr").unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let interval_ms: u64 = flag_value("--interval-ms")
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(1000);
    let once = std::env::args().any(|a| a == "--once");
    let no_clear = std::env::args().any(|a| a == "--no-clear") || once;
    let count: Option<u64> = if once {
        Some(1)
    } else {
        flag_value("--count").and_then(|v| v.parse().ok())
    };

    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("inl-top: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };

    let mut ticks = 0u64;
    loop {
        let metrics = match client.request(&Request::Metrics) {
            Ok(Response::Metrics { metrics }) => metrics,
            Ok(other) => {
                eprintln!("inl-top: unexpected metrics reply {other:?}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("inl-top: {e}");
                std::process::exit(1);
            }
        };
        let stats = match client.request(&Request::Stats) {
            Ok(Response::Stats { stats }) => stats,
            Ok(other) => {
                eprintln!("inl-top: unexpected stats reply {other:?}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("inl-top: {e}");
                std::process::exit(1);
            }
        };
        if !no_clear {
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", render(&metrics, &stats));
        use std::io::Write as _;
        let _ = std::io::stdout().flush();

        ticks += 1;
        if count.is_some_and(|c| ticks >= c) {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}
