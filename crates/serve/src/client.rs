//! A minimal blocking client: one TCP connection, any number of
//! request/response exchanges. Used by the `inl-client` CLI, the
//! `inl-load` generator, and the integration tests.

use inl_linalg::{InlError, InlErrorKind};
use inl_proto::{
    decode_response, encode_request, read_frame, write_frame, FrameError, FrameLimits, Request,
    Response,
};
use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failure: either the transport broke or the peer violated
/// the protocol.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write).
    Io(std::io::Error),
    /// The server's bytes did not decode as a well-formed response.
    Protocol(InlError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One connection to an `inl-serve` instance.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    limits: FrameLimits,
}

impl Client {
    /// Connect with default [`FrameLimits`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Client::connect_with(addr, FrameLimits::default())
    }

    /// Connect with explicit decode limits for inbound responses.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        limits: FrameLimits,
    ) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            limits,
        })
    }

    /// Send one request and block for its response.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        let text = encode_request(req);
        write_frame(&mut self.writer, text.as_bytes())?;
        match read_frame(&mut self.reader, &self.limits) {
            Ok(Some(payload)) => {
                decode_response(&payload, &self.limits).map_err(ClientError::Protocol)
            }
            Ok(None) => Err(ClientError::Protocol(InlError::new(
                InlErrorKind::IllFormed,
                "server closed the connection before responding",
            ))),
            Err(FrameError::Io(e)) => Err(ClientError::Io(e)),
            Err(FrameError::Malformed(e)) => Err(ClientError::Protocol(e)),
        }
    }
}
