//! The concurrent TCP server: listener thread + worker pool over a
//! shared connection queue.
//!
//! Life of a request: a worker pops a connection, reads one frame
//! (`serve.decode` span), decodes it under [`FrameLimits`], dispatches to
//! [`handle_request`](crate::handle_request()) (`serve.compile` /
//! `serve.exec` spans inside), encodes the response and writes it back —
//! all under a `serve.request` span carrying the process-unique request
//! id into the timeline. Decode failures answer with a typed `error`
//! response on the same connection; only transport failures (broken
//! socket) end a session early. All sessions share the process-wide poly
//! query cache, so a warm server completes repeated schedules from memo.
//!
//! Shutdown: a `shutdown` request is acknowledged on its own connection,
//! then the stop flag is raised and the listener unblocked with a
//! loop-back connection. Workers drain every already-accepted connection
//! before exiting, so in-flight requests always get their responses.
//!
//! A panicking thread poisons the queue mutex but cannot corrupt it (the
//! queue holds independent sockets; no multi-step invariant spans a
//! panic site), so the listener and workers recover the guard with
//! `into_inner` instead of propagating the poison and dying one by one.

use crate::handler::handle_request;
use inl_proto::{encode_response, read_frame, write_frame, FrameLimits, Request, Response};
use std::collections::VecDeque;
use std::io::{BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Transport counters, updated unconditionally (independent of `inl-obs`
/// enablement) so the `stats` response is always truthful. The same
/// values are mirrored into `inl-obs` counters (`serve.requests`,
/// `serve.errors`, `serve.bytes_in`, `serve.bytes_out`) when telemetry
/// is on.
#[derive(Debug)]
pub struct ServeStats {
    /// Requests decoded and dispatched (including ones answered with a
    /// typed error response).
    pub requests: AtomicU64,
    /// Responses of type `error`, plus malformed frames.
    pub errors: AtomicU64,
    /// Payload bytes received (frame headers excluded).
    pub bytes_in: AtomicU64,
    /// Payload bytes sent (frame headers excluded).
    pub bytes_out: AtomicU64,
    /// Connections accepted (each is one session).
    pub connections: AtomicU64,
    /// Requests currently being handled.
    pub in_flight: AtomicU64,
    /// High-water mark of [`ServeStats::in_flight`] over the server's
    /// lifetime.
    pub in_flight_hwm: AtomicU64,
    /// When these counters started accumulating (server start).
    pub started: Instant,
}

impl Default for ServeStats {
    fn default() -> Self {
        ServeStats {
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            in_flight_hwm: AtomicU64::new(0),
            started: Instant::now(),
        }
    }
}

impl ServeStats {
    fn to_json(&self) -> inl_obs::Json {
        let mut o = inl_obs::Json::object();
        let get = |a: &AtomicU64| inl_obs::Json::Int(a.load(Ordering::Relaxed));
        o.insert("requests", get(&self.requests));
        o.insert("errors", get(&self.errors));
        o.insert("bytes_in", get(&self.bytes_in));
        o.insert("bytes_out", get(&self.bytes_out));
        o.insert("connections", get(&self.connections));
        o.insert("sessions", get(&self.connections));
        o.insert("in_flight", get(&self.in_flight));
        o.insert("in_flight_hwm", get(&self.in_flight_hwm));
        o.insert(
            "uptime_ms",
            inl_obs::Json::Int(self.started.elapsed().as_millis() as u64),
        );
        o
    }

    /// Enter a request: bump the in-flight gauge and fold the new value
    /// into the high-water mark.
    fn enter_request(&self) {
        let now = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.in_flight_hwm.fetch_max(now, Ordering::Relaxed);
    }

    fn leave_request(&self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `"127.0.0.1:7878"` or `"127.0.0.1:0"` for an
    /// ephemeral port.
    pub addr: String,
    /// Worker threads handling connections. 0 means one per core.
    pub workers: usize,
    /// Decode limits applied to every inbound frame.
    pub limits: FrameLimits,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            limits: FrameLimits::default(),
        }
    }
}

struct Shared {
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    stop: AtomicBool,
    next_request_id: AtomicU64,
    stats: ServeStats,
    limits: FrameLimits,
}

/// Handle to a running server; dropping it does *not* stop the server —
/// call [`ServerHandle::shutdown`] or send a `shutdown` request.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    listener: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot the transport counters.
    pub fn stats_json(&self) -> inl_obs::Json {
        self.shared.stats.to_json()
    }

    /// Raise the stop flag and unblock the accept loop, then wait for
    /// every worker to drain. Idempotent with a `shutdown` request
    /// having already stopped the server. Returns the final transport
    /// counters.
    pub fn shutdown(self) -> inl_obs::Json {
        request_stop(&self.shared, self.addr);
        self.join()
    }

    /// Wait until the server stops (via a `shutdown` request or
    /// [`ServerHandle::shutdown`]); returns the final transport counters.
    pub fn join(mut self) -> inl_obs::Json {
        if let Some(l) = self.listener.take() {
            let _ = l.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.shared.stats.to_json()
    }
}

fn request_stop(shared: &Shared, addr: SocketAddr) {
    if shared.stop.swap(true, Ordering::SeqCst) {
        return; // already stopping
    }
    // Unblock the blocking accept() with a throwaway loop-back
    // connection; the listener re-checks the flag per iteration.
    let _ = TcpStream::connect(addr);
    shared.ready.notify_all();
}

/// Bind and start the server; returns once the listener and workers are
/// running.
pub fn serve(config: &ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let nworkers = if config.workers == 0 {
        std::thread::available_parallelism().map_or(2, |x| x.get())
    } else {
        config.workers
    };
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        stop: AtomicBool::new(false),
        next_request_id: AtomicU64::new(1),
        stats: ServeStats::default(),
        limits: config.limits,
    });

    let accept_shared = Arc::clone(&shared);
    let listener_thread = std::thread::Builder::new()
        .name("inl-serve-accept".to_string())
        .spawn(move || {
            for conn in listener.incoming() {
                if accept_shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        accept_shared
                            .stats
                            .connections
                            .fetch_add(1, Ordering::Relaxed);
                        let mut q = accept_shared
                            .queue
                            .lock()
                            .unwrap_or_else(|e| e.into_inner());
                        q.push_back(stream);
                        drop(q);
                        accept_shared.ready.notify_one();
                    }
                    Err(_) => continue,
                }
            }
            // Wake every worker so they observe the stop flag.
            accept_shared.ready.notify_all();
        })?;

    let mut workers = Vec::with_capacity(nworkers);
    for i in 0..nworkers {
        let worker_shared = Arc::clone(&shared);
        workers.push(
            std::thread::Builder::new()
                .name(format!("inl-serve-worker-{i}"))
                .spawn(move || worker_loop(&worker_shared, addr))?,
        );
    }

    Ok(ServerHandle {
        addr,
        shared,
        listener: Some(listener_thread),
        workers,
    })
}

/// Pop connections until the stop flag is up *and* the queue is drained
/// (shutdown must not drop already-accepted sessions).
fn worker_loop(shared: &Shared, addr: SocketAddr) {
    loop {
        let stream = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(s) = q.pop_front() {
                    break Some(s);
                }
                if shared.stop.load(Ordering::SeqCst) {
                    break None;
                }
                q = shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        match stream {
            Some(s) => session(shared, s, addr),
            None => return,
        }
    }
}

/// Serve one connection: a sequence of frames until clean EOF, a
/// transport error, or a `shutdown` request.
fn session(shared: &Shared, stream: TcpStream, addr: SocketAddr) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    loop {
        let payload = match read_frame(&mut reader, &shared.limits) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean EOF between frames
            Err(inl_proto::frame::FrameError::Malformed(e)) => {
                // Protocol violation: answer with a typed error, then
                // close (framing is no longer trustworthy).
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                inl_obs::counter_add!("serve.errors", 1);
                let _ = respond(shared, &mut writer, &Response::from_error(&e));
                return;
            }
            Err(inl_proto::frame::FrameError::Io(_)) => return,
        };
        let request_id = shared.next_request_id.fetch_add(1, Ordering::Relaxed);
        let req_start = Instant::now();
        let _req_span = inl_obs::span("serve.request");
        let _scope =
            inl_obs::timeline::scope_args("serve.request", &[("request_id", request_id as i64)]);
        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        shared.stats.enter_request();
        shared
            .stats
            .bytes_in
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        inl_obs::counter_add!("serve.requests", 1);
        inl_obs::counter_add!("serve.bytes_in", payload.len());

        let decoded = {
            let _span = inl_obs::span("serve.decode");
            inl_proto::decode_request(&payload, &shared.limits)
        };
        let kind = match &decoded {
            Ok(req) => req.kind_name(),
            Err(_) => "error",
        };
        let (response, stop_after) = match decoded {
            Ok(Request::Shutdown) => (Response::Shutdown, true),
            Ok(Request::Stats) => {
                // The handler contributes the poly-cache section; the
                // server layer owns the transport counters.
                let mut stats = inl_obs::Json::object();
                stats.insert("poly_cache", inl_poly::cache::stats_json());
                stats.insert("serve", shared.stats.to_json());
                (Response::Stats { stats }, false)
            }
            Ok(req) => (handle_request(&req), false),
            Err(e) => (Response::from_error(&e), false),
        };
        let is_error = matches!(response, Response::Error { .. });
        if is_error {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            inl_obs::counter_add!("serve.errors", 1);
        }
        // Feed the live metrics window before writing the reply so a
        // `metrics` probe on another connection never misses a finished
        // request.
        crate::request_window().record(kind, req_start.elapsed().as_nanos() as u64, is_error);
        shared.stats.leave_request();
        if respond(shared, &mut writer, &response).is_err() {
            return;
        }
        if stop_after {
            let _ = writer.flush();
            request_stop(shared, addr);
            return;
        }
    }
}

fn respond(shared: &Shared, w: &mut impl std::io::Write, resp: &Response) -> std::io::Result<()> {
    let text = encode_response(resp);
    shared
        .stats
        .bytes_out
        .fetch_add(text.len() as u64, Ordering::Relaxed);
    inl_obs::counter_add!("serve.bytes_out", text.len());
    write_frame(w, text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Client, Request, Response};

    /// A thread that panics while holding the connection-queue lock
    /// poisons the mutex. The queue's invariant (a deque of independent
    /// sockets) cannot be half-updated by any panic here, so the listener
    /// and every worker recover the guard with `into_inner` and keep
    /// serving — concurrent sessions through the poisoned lock still get
    /// their responses.
    #[test]
    fn poisoned_queue_lock_does_not_kill_the_server() {
        let handle = serve(&ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            limits: FrameLimits::default(),
        })
        .expect("bind ephemeral port");
        let addr = handle.local_addr();

        // Poison the real server's queue mutex: take the lock on a
        // scratch thread and panic while holding it.
        let shared = Arc::clone(&handle.shared);
        let panicker = std::thread::spawn(move || {
            let _q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            panic!("deliberate poison");
        });
        assert!(panicker.join().is_err(), "the panicker must panic");
        assert!(handle.shared.queue.is_poisoned(), "mutex must be poisoned");

        // Concurrent sessions must still be accepted, queued through the
        // poisoned lock, popped by workers, and answered.
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    for _ in 0..3 {
                        let resp = client.request(&Request::Stats).expect("request");
                        assert!(matches!(resp, Response::Stats { .. }));
                    }
                });
            }
        });
        handle.shutdown();
    }
}
