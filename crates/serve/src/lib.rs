//! # inl-serve
//!
//! The compile pipeline as a long-lived concurrent TCP service. Three
//! layers, each independently testable:
//!
//! * [`handler`] — the pure request handler: [`Request`] in,
//!   [`Response`] out, no I/O. The integration tests and the `inl-load`
//!   generator call it in-process to assert the server's answers are
//!   **bitwise-identical** to local computation (responses encode
//!   deterministically, so equality is byte equality on the wire).
//! * [`server`] — listener thread + worker pool over a shared connection
//!   queue (the same atomic-queue idiom as `inl_bench::compile_batch`),
//!   per-request `serve.*` spans/counters, typed error responses for
//!   malformed input, and graceful drain on `shutdown`.
//! * [`client`] — a minimal blocking client used by the `inl-client`
//!   CLI, the `inl-load` generator, and the tests.
//!
//! All sessions share the process-wide `inl_poly` query cache: a warm
//! server answers repeated completions mostly from memo, which the
//! `stats` request exposes (hits/misses/hit-rate) alongside transport
//! counters.
//!
//! ## Telemetry
//!
//! Requests that set `telemetry: true` are evaluated inside an
//! [`inl_obs::capture`] scope; the response carries a versioned
//! `telemetry` section with per-stage span durations, counter deltas,
//! the poly-cache delta, and the explain tally for that one request.
//! Every served request additionally feeds [`request_window`], the
//! process-wide sliding window behind the `metrics` request (live
//! req/s, error rate, and latency percentiles over the last minute).
//! The `inl-top` binary polls `metrics`/`stats` into a terminal
//! dashboard.

#![warn(missing_docs)]

pub mod client;
pub mod handler;
pub mod server;

pub use client::{Client, ClientError};
pub use handler::{handle_request, MAX_PARAM, ZOO};
pub use server::{serve, ServeStats, ServerConfig, ServerHandle};

// Re-exported so binaries and tests need only this crate.
pub use inl_obs::window::{SlidingWindow, WindowSnapshot};
pub use inl_proto::{BackendChoice, CompileOutcome, FrameLimits, Request, Response};

/// The process-wide sliding window of served-request latencies.
///
/// Server sessions record every request they answer here (keyed by
/// request kind, errors flagged); the `metrics` request is answered
/// from its snapshot. In-process callers that never ran a server see
/// an empty window.
pub fn request_window() -> &'static SlidingWindow {
    static WINDOW: std::sync::OnceLock<SlidingWindow> = std::sync::OnceLock::new();
    WINDOW.get_or_init(SlidingWindow::default)
}
