//! Per-statement transformations and augmentation (§5.4–5.5 of the paper).
//!
//! A legal matrix `M` induces, for every statement `S` nested in `k`
//! loops, a `k × k` **per-statement transformation** `M_S` (Definition 7)
//! mapping `S`'s iteration vector to the values of the new loops
//! surrounding it — plus an offset vector from the alignment constants.
//! `M_S` need not have full rank (the paper's skewing example maps every
//! instance of `S1` to iteration 0 of the new outer loop), in which case
//! the `Complete` procedure (Fig. 7) appends rows — extra *innermost* loops
//! around `S` — that carry the self-dependences `M` left unsatisfied, then
//! fills with nullspace rows up to rank `k`.
//!
//! From the augmented `T_S`, the **non-singular per-statement
//! transformation** `N_S` (Definition 8) keeps the rows that grow the rank;
//! the deleted *singular* rows are recorded together with the coefficients
//! expressing them over the kept rows (these become runtime guards,
//! `i_k = Σ m_j·i_j`, in generated code — Definition 9 / §5.5).

use crate::depend::{DepEntry, DependenceMatrix};
use crate::instance::InstanceLayout;
use crate::legal::{LegalityReport, NewAst};
use inl_ir::{Program, StmtId};
use inl_linalg::{gauss, IMat, IVec, InlError, Rational};

/// The complete scheduling recipe for one statement under a legal matrix.
#[derive(Clone, Debug)]
pub struct StmtSchedule {
    /// The statement.
    pub stmt: StmtId,
    /// New-AST loop slot positions surrounding the statement, outside-in
    /// (ascending vector positions). Length `k`.
    pub slot_positions: Vec<usize>,
    /// `T'_S`: `l × k` full-rank-`k` row matrix; row `r` gives the value of
    /// the `r`-th loop around the statement in the transformed program as
    /// `rows[r] · i + offsets[r]`. The first `k` rows correspond to
    /// `slot_positions`; the last `n_aug` rows are the augmentation loops
    /// (innermost, synthesized around the statement).
    pub rows: IMat,
    /// Constant offsets per row (alignment constants; augmented rows get 0).
    pub offsets: IVec,
    /// Number of augmented rows.
    pub n_aug: usize,
    /// For each row: `None` if the row is part of `N_S`; otherwise the
    /// coefficients expressing it over the *previous* `N_S` rows
    /// (ordered as in `n_s_rows`), which codegen turns into an equality
    /// guard.
    pub singular: Vec<Option<Vec<Rational>>>,
    /// Row indices (into `rows`) forming `N_S`, in order.
    pub n_s_rows: Vec<usize>,
    /// `N_S`: the `k × k` non-singular per-statement transformation.
    pub n_s: IMat,
}

/// Errors from schedule construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleError {
    /// An unsatisfied self-dependence has an ambiguous leading entry, so
    /// the `Complete` procedure's unit rows cannot be proven to carry it.
    AmbiguousSelfDependence(usize),
    /// Augmentation failed to reach rank `k` (should be impossible for
    /// non-singular `M`; reported rather than asserted).
    RankDeficient,
    /// Exact arithmetic overflowed while ranking or expressing rows.
    Arithmetic(InlError),
}

impl From<InlError> for ScheduleError {
    fn from(e: InlError) -> Self {
        ScheduleError::Arithmetic(e)
    }
}

/// Compute `M_S` and `g_S` (the projection of `M·E_S` / `M·f_S` onto the
/// statement's new loop slots), before augmentation.
pub fn raw_per_stmt(
    layout: &InstanceLayout,
    ast: &NewAst,
    m: &IMat,
    s: StmtId,
) -> (Vec<usize>, IMat, IVec) {
    let (e, f) = layout.embedding(s);
    let me = m.mul(e);
    let mf = m.mul_vec(f);
    // Slots are pinned: the new loops surrounding s are the same loop slots
    // as in the source layout, in ascending position order.
    let slots = {
        let mut v = layout.stmt_loop_positions(s);
        v.sort_unstable();
        v
    };
    let k = slots.len();
    let ms = IMat::from_fn(k, k, |r, c| me[(slots[r], c)]);
    let gs: IVec = slots.iter().map(|&p| mf[p]).collect();
    let _ = &ast.program; // slots identical in source and target layouts
    (slots, ms, gs)
}

/// Project a dependence's entries onto the statement's iteration dimensions
/// (outside-in). Only meaningful for self-dependences.
fn project_self_dep(
    layout: &InstanceLayout,
    deps: &DependenceMatrix,
    dep_idx: usize,
) -> Vec<DepEntry> {
    let d = &deps.deps[dep_idx];
    debug_assert_eq!(d.src, d.dst);
    layout
        .stmt_loop_positions(d.src)
        .iter()
        .map(|&p| d.entries[p])
        .collect()
}

/// Build the full schedule for a statement: per-statement transform,
/// `Complete` augmentation (Fig. 7), and `N_S` extraction.
pub fn schedule_stmt(
    p: &Program,
    layout: &InstanceLayout,
    ast: &NewAst,
    m: &IMat,
    deps: &DependenceMatrix,
    report: &LegalityReport,
    s: StmtId,
) -> Result<StmtSchedule, ScheduleError> {
    let _ = p;
    let (slots, ms, gs) = raw_per_stmt(layout, ast, m, s);
    let k = slots.len();

    // unsatisfied self deps of this statement, projected
    let mut pending: Vec<(usize, Vec<DepEntry>)> = report
        .unsatisfied_self
        .iter()
        .filter(|&&i| deps.deps[i].src == s)
        .map(|&i| (i, project_self_dep(layout, deps, i)))
        .collect();

    let mut rows = ms.clone();
    let mut offsets = gs.clone();
    let mut n_aug = 0usize;

    // --- Procedure Complete (Fig. 7) ---
    let mut rank = gauss::checked_rank(&rows)?;
    while rank < k && !pending.is_empty() {
        // Height: first dimension at which some pending vector is nonzero.
        // All-zero pending vectors cannot be carried by any unit row; the
        // ambiguity error (rather than a panic) lets callers recover.
        let Some(h) = (0..k).find(|&dim| pending.iter().any(|(_, v)| !v[dim].is_zero())) else {
            return Err(ScheduleError::AmbiguousSelfDependence(pending[0].0));
        };
        // Every pending vector with height h must have a provably positive
        // entry there (self-dependences are lexicographically positive).
        for (idx, v) in &pending {
            let height = (0..k).find(|&dim| !v[dim].is_zero());
            if height == Some(h) && !v[h].is_positive() {
                return Err(ScheduleError::AmbiguousSelfDependence(*idx));
            }
        }
        rows.push_row(&IVec::unit(k, h));
        offsets = offsets.concat(&IVec::zeros(1));
        n_aug += 1;
        pending.retain(|(_, v)| (0..k).find(|&dim| !v[dim].is_zero()) != Some(h));
        rank = gauss::checked_rank(&rows)?;
    }
    // Fill to rank k with nullspace rows (line 15 of Fig. 7).
    if rank < k {
        for v in gauss::nullspace_int(&rows)? {
            if gauss::checked_rank(&rows)? == k {
                break;
            }
            rows.push_row(&v);
            offsets = offsets.concat(&IVec::zeros(1));
            n_aug += 1;
        }
        rank = gauss::checked_rank(&rows)?;
    }
    if rank != k {
        return Err(ScheduleError::RankDeficient);
    }

    // --- N_S extraction (Definition 8) ---
    let mut n_s_rows = Vec::with_capacity(k);
    let mut kept: Vec<IVec> = Vec::with_capacity(k);
    let mut singular = Vec::with_capacity(rows.nrows());
    for r in 0..rows.nrows() {
        let row = rows.row(r);
        match gauss::express_in_row_space(&kept, &row)? {
            Some(coeffs) => singular.push(Some(coeffs)),
            None => {
                kept.push(row);
                n_s_rows.push(r);
                singular.push(None);
            }
        }
    }
    let n_s = IMat::from_rows(
        &kept
            .iter()
            .map(|v| v.as_slice().to_vec())
            .collect::<Vec<_>>(),
    );
    debug_assert_eq!(n_s.nrows(), k);
    debug_assert!(n_s.checked_det().map(|d| d != 0).unwrap_or(true));

    Ok(StmtSchedule {
        stmt: s,
        slot_positions: slots,
        rows,
        offsets,
        n_aug,
        singular,
        n_s_rows,
        n_s,
    })
}

/// Schedules for every statement of the program.
pub fn schedule_all(
    p: &Program,
    layout: &InstanceLayout,
    ast: &NewAst,
    m: &IMat,
    deps: &DependenceMatrix,
    report: &LegalityReport,
) -> Result<Vec<StmtSchedule>, ScheduleError> {
    p.stmts()
        .map(|s| schedule_stmt(p, layout, ast, m, deps, report, s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depend::analyze;
    use crate::legal::check_legal;
    use crate::transform::Transform;
    use inl_ir::{zoo, LoopId};

    fn looop(p: &Program, name: &str) -> LoopId {
        p.loops().find(|&l| p.loop_decl(l).name == name).unwrap()
    }
    fn stmt(p: &Program, name: &str) -> StmtId {
        p.stmts().find(|&s| p.stmt_decl(s).name == name).unwrap()
    }

    /// The paper's §5.4 example: skew I by -J.
    fn skew_setup() -> (
        Program,
        InstanceLayout,
        DependenceMatrix,
        IMat,
        LegalityReport,
    ) {
        let p = zoo::augmentation_example();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        let m = Transform::Skew {
            target: looop(&p, "I"),
            source: looop(&p, "J"),
            factor: -1,
        }
        .matrix(&p, &layout);
        let report = check_legal(&p, &layout, &deps, &m).expect("legality");
        assert!(report.is_legal());
        (p, layout, deps, m, report)
    }

    #[test]
    fn paper_per_stmt_transforms() {
        // §5.4: M_S1 = [0], M_S2 = [[1, -1], [0, 1]]
        let (p, layout, _deps, m, report) = skew_setup();
        let ast = report.new_ast.as_ref().unwrap();
        let s1 = stmt(&p, "S1");
        let s2 = stmt(&p, "S2");
        let (_, ms1, g1) = raw_per_stmt(&layout, ast, &m, s1);
        assert_eq!(ms1, IMat::from_rows(&[&[0][..]]));
        assert!(g1.is_zero());
        let (_, ms2, g2) = raw_per_stmt(&layout, ast, &m, s2);
        assert_eq!(ms2, IMat::from_rows(&[&[1, -1][..], &[0, 1]]));
        assert!(g2.is_zero());
    }

    #[test]
    fn paper_augmentation_of_s1() {
        // §5.4: the augmentation completes S1's [0] to [[0], [1]] — a new
        // innermost loop carrying its self dependence — with N_S1 = [1].
        let (p, layout, deps, m, report) = skew_setup();
        let ast = report.new_ast.as_ref().unwrap();
        let s1 = stmt(&p, "S1");
        let sched = schedule_stmt(&p, &layout, ast, &m, &deps, &report, s1).unwrap();
        assert_eq!(sched.n_aug, 1);
        assert_eq!(sched.rows, IMat::from_rows(&[&[0][..], &[1]]));
        assert_eq!(sched.n_s, IMat::from_rows(&[&[1][..]]));
        assert_eq!(sched.n_s_rows, vec![1]);
        // row 0 is singular: 0 = (empty combination)
        assert_eq!(sched.singular[0], Some(vec![]));
        assert_eq!(sched.singular[1], None);
    }

    #[test]
    fn s2_needs_no_augmentation() {
        // §5.4: N_S2 = [[1, -1], [0, 1]] directly.
        let (p, layout, deps, m, report) = skew_setup();
        let ast = report.new_ast.as_ref().unwrap();
        let s2 = stmt(&p, "S2");
        let sched = schedule_stmt(&p, &layout, ast, &m, &deps, &report, s2).unwrap();
        assert_eq!(sched.n_aug, 0);
        assert_eq!(sched.n_s, IMat::from_rows(&[&[1, -1][..], &[0, 1]]));
        assert!(sched.singular.iter().all(|s| s.is_none()));
    }

    #[test]
    fn left_looking_cholesky_all_nonsingular() {
        // §6: "the per-statement transformation in this case is
        // non-singular for each statement and no augmentation is
        // necessary"
        let p = zoo::cholesky_kij();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        let c = IMat::from_rows(&[
            &[0, 0, 0, 0, 0, 1, 0][..],
            &[0, 0, 1, 0, 0, 0, 0],
            &[0, 0, 0, 1, 0, 0, 0],
            &[0, 1, 0, 0, 0, 0, 0],
            &[0, 0, 0, 0, 1, 0, 0],
            &[1, 0, 0, 0, 0, 0, 0],
            &[0, 0, 0, 0, 0, 0, 1],
        ]);
        let report = check_legal(&p, &layout, &deps, &c).expect("legality");
        assert!(report.is_legal());
        let ast = report.new_ast.as_ref().unwrap();
        for s in p.stmts() {
            let sched = schedule_stmt(&p, &layout, ast, &c, &deps, &report, s).unwrap();
            assert_eq!(
                sched.n_aug,
                0,
                "{} needed augmentation",
                p.stmt_decl(s).name
            );
            assert!(sched.singular.iter().all(|x| x.is_none()));
            assert!(sched.n_s.is_unimodular());
        }
        // and the per-statement map of S3 is the left-looking permutation
        // (k, j, l) -> (l, j, k)
        let s3 = stmt(&p, "S3");
        let sched = schedule_stmt(&p, &layout, ast, &c, &deps, &report, s3).unwrap();
        assert_eq!(
            sched.rows,
            IMat::from_rows(&[&[0, 0, 1][..], &[0, 1, 0], &[1, 0, 0]])
        );
    }

    #[test]
    fn identity_schedules_are_identity() {
        let p = zoo::simple_cholesky();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        let m = IMat::identity(layout.len());
        let report = check_legal(&p, &layout, &deps, &m).expect("legality");
        let ast = report.new_ast.as_ref().unwrap();
        for s in p.stmts() {
            let sched = schedule_stmt(&p, &layout, ast, &m, &deps, &report, s).unwrap();
            let k = sched.slot_positions.len();
            assert_eq!(sched.rows, IMat::identity(k));
            assert!(sched.offsets.is_zero());
            assert_eq!(sched.n_aug, 0);
        }
    }

    #[test]
    fn alignment_offsets_propagate() {
        // align S1 by -1 w.r.t. I (run the sqrt one iteration early —
        // legality aside, offsets must land in g_S)
        let p = zoo::simple_cholesky();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        let s1 = stmt(&p, "S1");
        let i = looop(&p, "I");
        let m = Transform::Align {
            stmt: s1,
            looop: i,
            offset: -1,
        }
        .matrix(&p, &layout);
        let report = check_legal(&p, &layout, &deps, &m).expect("legality");
        let ast = report.new_ast.as_ref().unwrap();
        let (_, ms1, g1) = raw_per_stmt(&layout, ast, &m, s1);
        assert_eq!(ms1, IMat::from_rows(&[&[1][..]]));
        assert_eq!(g1.as_slice(), &[-1]);
        // S2 unaffected
        let s2 = stmt(&p, "S2");
        let (_, _, g2) = raw_per_stmt(&layout, ast, &m, s2);
        assert!(g2.is_zero());
    }
}
