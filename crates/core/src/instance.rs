//! Instance vectors (§2 of the paper).
//!
//! A dynamic instance of a statement in an imperfectly nested loop is a
//! partially labeled AST; the function **L** maps it to an integer
//! **instance vector** such that lexicographic order on instance vectors is
//! execution order (Theorem 1). The layout of vector positions is fixed per
//! program:
//!
//! for a node `N` with children `n₁ … n_m`,
//! `R(N) = label(N) // label(e_m) // … // label(e₁) // R(n_m) // … // R(n₁)`
//!
//! — children and their edges appear in *reverse* order, so instances of
//! later children compare lexicographically greater. Two refinements from
//! the paper:
//!
//! * **ε optimization** (§2.2): a node with a single child contributes no
//!   edge positions, so instance vectors of perfectly nested loops degenerate
//!   to ordinary iteration vectors;
//! * **padding** (procedure **M**): loop positions not on the path to the
//!   statement are labeled with the nearest labeled ancestor's value (the
//!   "diagonal embedding"); positions with no labeled ancestor get 0, and
//!   unlabeled edges get 0.
//!
//! Because padding is an affine function of the statement's iteration
//! vector, every statement `S` has an **embedding** `v = E_S·i + f_S`
//! ([`InstanceLayout::embedding`]) — the bridge between the paper's AST
//! formulation and plain linear algebra.

use inl_ir::{LoopId, Node, Program, StmtId};
use inl_linalg::{IMat, IVec, Int};

/// What one position of an instance vector denotes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Position {
    /// The index value of a loop.
    Loop(LoopId),
    /// The edge label for child `child` (0-based, left-to-right) of
    /// `parent` (`None` = the virtual root). Only present when the parent
    /// has ≥ 2 children (ε optimization).
    Edge {
        /// Parent node (`None` for the virtual root).
        parent: Option<LoopId>,
        /// Child index, 0-based left-to-right.
        child: usize,
    },
}

/// Per-statement embedding data.
#[derive(Clone, Debug)]
struct StmtEmbed {
    /// Surrounding loops, outside-in.
    loops: Vec<LoopId>,
    /// `E_S`: n × k selector matrix (loop positions pick an iteration
    /// entry — possibly a padded duplicate; edge positions are zero rows).
    e: IMat,
    /// `f_S`: the constant edge labels.
    f: IVec,
    /// Positions padded by procedure M (Definition 4).
    padded: Vec<usize>,
}

/// The instance-vector layout of a program: the meaning of each vector
/// position, plus the per-statement embeddings.
#[derive(Clone, Debug)]
pub struct InstanceLayout {
    positions: Vec<Position>,
    /// Position of each loop's index value, indexed by `LoopId`.
    loop_pos: Vec<usize>,
    stmt_embed: Vec<StmtEmbed>,
}

impl InstanceLayout {
    /// Compute the canonical layout of a program (Equation 1's emit order).
    pub fn new(p: &Program) -> Self {
        let mut positions = Vec::new();
        emit_children(p, None, p.root(), &mut positions);
        Self::with_positions(p, positions)
    }

    /// Build a layout with an explicit position vector.
    ///
    /// Used for *transformed* ASTs: statement reordering permutes only the
    /// edge labels — subtree slots stay at their source positions (this is
    /// the convention of the paper's §6 matrix), so the transformed
    /// program's layout reuses the source position vector rather than the
    /// canonical emit order. Lexicographic order remains execution order
    /// because edges of a node still precede its subtrees and ancestors
    /// still precede descendants.
    pub fn with_positions(p: &Program, positions: Vec<Position>) -> Self {
        let mut loop_pos = vec![usize::MAX; p.loops().count()];
        for (i, pos) in positions.iter().enumerate() {
            if let Position::Loop(l) = pos {
                loop_pos[l.0] = i;
            }
        }
        let mut layout = InstanceLayout {
            positions,
            loop_pos,
            stmt_embed: Vec::new(),
        };
        layout.stmt_embed = p.stmts().map(|s| layout.embed_stmt(p, s)).collect();
        layout
    }

    /// Instance-vector length `n`.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True iff the program has no loops or edges at all.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The meaning of every position.
    pub fn positions(&self) -> &[Position] {
        &self.positions
    }

    /// The position holding a loop's index value.
    pub fn loop_position(&self, l: LoopId) -> usize {
        let p = self.loop_pos[l.0];
        assert_ne!(p, usize::MAX, "loop {l:?} not in layout");
        p
    }

    /// The position of an edge label, if it exists (parents with a single
    /// child have no edge positions).
    pub fn edge_position(&self, parent: Option<LoopId>, child: usize) -> Option<usize> {
        self.positions
            .iter()
            .position(|&p| p == Position::Edge { parent, child })
    }

    /// Positions of the loops surrounding a statement, outside-in.
    pub fn stmt_loop_positions(&self, s: StmtId) -> Vec<usize> {
        self.stmt_embed[s.0]
            .loops
            .iter()
            .map(|&l| self.loop_position(l))
            .collect()
    }

    /// The loops surrounding a statement, outside-in (cached).
    pub fn stmt_loops(&self, s: StmtId) -> &[LoopId] {
        &self.stmt_embed[s.0].loops
    }

    /// The padded positions of a statement (Definition 4).
    pub fn padded_positions(&self, s: StmtId) -> &[usize] {
        &self.stmt_embed[s.0].padded
    }

    /// The embedding `(E_S, f_S)` with `L(instance) = E_S·i + f_S` for the
    /// iteration vector `i` (outside-in).
    pub fn embedding(&self, s: StmtId) -> (&IMat, &IVec) {
        (&self.stmt_embed[s.0].e, &self.stmt_embed[s.0].f)
    }

    /// **L**: the instance vector of statement `s` at iteration `iter`
    /// (values of the surrounding loops, outside-in).
    pub fn instance_vector(&self, s: StmtId, iter: &[Int]) -> IVec {
        let emb = &self.stmt_embed[s.0];
        assert_eq!(
            iter.len(),
            emb.loops.len(),
            "instance_vector: wrong iteration arity"
        );
        let iv = IVec::from(iter);
        &emb.e.mul_vec(&iv) + &emb.f
    }

    /// **L⁻¹** step 1: identify which statement an instance vector belongs
    /// to, from its edge labels. Returns `None` if the edge labels match no
    /// statement (or are not 0/1).
    pub fn statement_of(&self, p: &Program, iv: &IVec) -> Option<StmtId> {
        assert_eq!(iv.len(), self.len(), "statement_of: wrong vector length");
        p.stmts().find(|&s| {
            let emb = &self.stmt_embed[s.0];
            self.positions.iter().enumerate().all(|(i, pos)| match pos {
                Position::Edge { .. } => iv[i] == emb.f[i],
                Position::Loop(_) => true,
            })
        })
    }

    /// **L⁻¹** (Definition 5): decode an instance vector into a statement
    /// and its iteration vector (outside-in), ignoring padded positions.
    pub fn decode(&self, p: &Program, iv: &IVec) -> Option<(StmtId, Vec<Int>)> {
        let s = self.statement_of(p, iv)?;
        let iter = self.stmt_embed[s.0]
            .loops
            .iter()
            .map(|&l| iv[self.loop_position(l)])
            .collect();
        Some((s, iter))
    }

    fn embed_stmt(&self, p: &Program, s: StmtId) -> StmtEmbed {
        let loops = p.loops_surrounding(s);
        let k = loops.len();
        let n = self.len();
        let mut e = IMat::zeros(n, k);
        let mut f = IVec::zeros(n);
        let mut padded = Vec::new();
        // Path-of-children: for each loop on the path (and the root), which
        // child index continues towards s.
        for (i, pos) in self.positions.iter().enumerate() {
            match *pos {
                Position::Loop(l) => {
                    if let Some(idx) = loops.iter().position(|&x| x == l) {
                        // a real loop of s
                        e[(i, idx)] = 1;
                    } else {
                        // padded: nearest labeled ancestor of l that
                        // surrounds s
                        let ancestors = p.loops_surrounding_loop(l);
                        let lab = ancestors
                            .iter()
                            .rev()
                            .find_map(|a| loops.iter().position(|&x| x == *a));
                        padded.push(i);
                        if let Some(idx) = lab {
                            e[(i, idx)] = 1;
                        } // else: no labeled ancestor — padded with 0
                    }
                }
                Position::Edge { parent, child } => {
                    // 1 iff the path from parent towards s goes through
                    // `child`.
                    let on_path = match parent {
                        None => {
                            // which top-level subtree contains s?
                            child_index_towards(p, p.root(), s) == Some(child)
                        }
                        Some(l) => {
                            if loops.contains(&l) {
                                child_index_towards(p, &p.loop_decl(l).children, s) == Some(child)
                            } else {
                                false
                            }
                        }
                    };
                    if on_path {
                        f[i] = 1;
                    }
                }
            }
        }
        StmtEmbed {
            loops,
            e,
            f,
            padded,
        }
    }
}

/// Which child of `nodes` contains (or is) statement `s`?
fn child_index_towards(p: &Program, nodes: &[Node], s: StmtId) -> Option<usize> {
    fn contains(p: &Program, n: Node, s: StmtId) -> bool {
        match n {
            Node::Stmt(x) => x == s,
            Node::Loop(l) => p.loop_decl(l).children.iter().any(|&c| contains(p, c, s)),
        }
    }
    nodes.iter().position(|&n| contains(p, n, s))
}

fn emit_children(p: &Program, parent: Option<LoopId>, children: &[Node], out: &mut Vec<Position>) {
    let m = children.len();
    if m >= 2 {
        for j in (0..m).rev() {
            out.push(Position::Edge { parent, child: j });
        }
    }
    for j in (0..m).rev() {
        if let Node::Loop(l) = children[j] {
            out.push(Position::Loop(l));
            emit_children(p, Some(l), &p.loop_decl(l).children, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inl_ir::zoo;
    use inl_linalg::lex::lex_cmp;
    use std::cmp::Ordering;

    fn stmt_by_name(p: &Program, name: &str) -> StmtId {
        p.stmts().find(|&s| p.stmt_decl(s).name == name).unwrap()
    }

    #[test]
    fn simple_cholesky_layout_matches_paper() {
        // §3: S1 instances are [I, 0, 1, I]', S2 instances are [I, 1, 0, J]'
        let p = zoo::simple_cholesky();
        let layout = InstanceLayout::new(&p);
        assert_eq!(layout.len(), 4);
        let s1 = stmt_by_name(&p, "S1");
        let s2 = stmt_by_name(&p, "S2");
        assert_eq!(layout.instance_vector(s1, &[7]).as_slice(), &[7, 0, 1, 7]);
        assert_eq!(
            layout.instance_vector(s2, &[7, 9]).as_slice(),
            &[7, 1, 0, 9]
        );
        // the J position of S1 is padded (Definition 4 / Lemma 1)
        let jpos = 3;
        assert_eq!(layout.padded_positions(s1), &[jpos]);
        assert!(layout.padded_positions(s2).is_empty());
    }

    #[test]
    fn perfect_nest_reduces_to_iteration_vectors() {
        // Lemma 2 + §2.2: with the ε optimization, a perfect nest's
        // instance vectors are exactly its iteration vectors.
        let p = zoo::perfect_nest();
        let layout = InstanceLayout::new(&p);
        assert_eq!(layout.len(), 2);
        let s1 = p.stmts().next().unwrap();
        assert_eq!(layout.instance_vector(s1, &[3, 5]).as_slice(), &[3, 5]);
        assert!(layout.padded_positions(s1).is_empty());
    }

    #[test]
    fn cholesky_kij_is_seven_dimensional() {
        // §6: the transformation matrices for full Cholesky are 7×7.
        let p = zoo::cholesky_kij();
        let layout = InstanceLayout::new(&p);
        assert_eq!(layout.len(), 7);
        // position order: K, e(K,2), e(K,1), e(K,0), J, L, I
        assert!(matches!(layout.positions()[0], Position::Loop(_)));
        assert_eq!(
            layout.positions()[1],
            Position::Edge {
                parent: Some(inl_ir::LoopId(0)),
                child: 2
            }
        );
    }

    #[test]
    fn execution_order_is_lexicographic_order() {
        // Theorem 1 on the §2 running example: enumerate all dynamic
        // instances in execution order and check L is strictly increasing
        // and injective.
        let p = zoo::running_example();
        let layout = InstanceLayout::new(&p);
        let s1 = stmt_by_name(&p, "S1");
        let s2 = stmt_by_name(&p, "S2");
        let s3 = stmt_by_name(&p, "S3");
        let n = 4;
        let mut vectors = Vec::new();
        for i in 1..=n {
            for j in i..=n {
                vectors.push(layout.instance_vector(s1, &[i, j]));
                vectors.push(layout.instance_vector(s2, &[i, j]));
            }
            vectors.push(layout.instance_vector(s3, &[i]));
        }
        for w in vectors.windows(2) {
            assert_eq!(
                lex_cmp(&w[0], &w[1]),
                Ordering::Less,
                "execution order not lexicographic: {} !< {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn l_inverse_roundtrip() {
        let p = zoo::cholesky_kij();
        let layout = InstanceLayout::new(&p);
        for s in p.stmts() {
            let k = layout.stmt_loops(s).len();
            let iter: Vec<Int> = (0..k as Int).map(|x| 3 + 2 * x).collect();
            let iv = layout.instance_vector(s, &iter);
            let (s2, iter2) = layout.decode(&p, &iv).expect("decodable");
            assert_eq!(s, s2);
            assert_eq!(iter, iter2);
        }
    }

    #[test]
    fn embedding_is_affine() {
        // E_S·i + f_S agrees with instance_vector everywhere
        let p = zoo::simple_cholesky();
        let layout = InstanceLayout::new(&p);
        for s in p.stmts() {
            let (e, f) = layout.embedding(s);
            let k = layout.stmt_loops(s).len();
            for trial in 0..5 {
                let iter: Vec<Int> = (0..k as Int).map(|x| trial * 3 + x + 1).collect();
                let via_embed = &e.mul_vec(&IVec::from(iter.as_slice())) + f;
                assert_eq!(via_embed, layout.instance_vector(s, &iter));
            }
        }
    }

    #[test]
    fn distributed_program_has_root_edges() {
        let p = zoo::distributed_simple_cholesky();
        let layout = InstanceLayout::new(&p);
        // positions: e(root,1), e(root,0), I2, J, I
        assert_eq!(layout.len(), 5);
        assert_eq!(layout.edge_position(None, 0), Some(1));
        assert_eq!(layout.edge_position(None, 1), Some(0));
        let s1 = stmt_by_name(&p, "S1");
        let s2 = stmt_by_name(&p, "S2");
        // S1 (first loop): root edge 0 set; sibling subtree padded with 0
        let v1 = layout.instance_vector(s1, &[4]);
        assert_eq!(v1.as_slice(), &[0, 1, 0, 0, 4]);
        let v2 = layout.instance_vector(s2, &[4, 6]);
        assert_eq!(v2.as_slice(), &[1, 0, 4, 6, 0]);
        // execution order: all of loop 1 before all of loop 2
        assert_eq!(lex_cmp(&v1, &v2), Ordering::Less);
    }

    #[test]
    fn padding_is_diagonal_embedding() {
        // §2: "iteration I of statement S3 is mapped to iteration (I, I)"
        let p = zoo::running_example();
        let layout = InstanceLayout::new(&p);
        let s3 = stmt_by_name(&p, "S3");
        let v = layout.instance_vector(s3, &[5]);
        // layout: I, e(I,1), e(I,0), J, e(J,1), e(J,0)
        // S3 is child 1 of I; J position padded with I's value
        let jpos = layout
            .positions()
            .iter()
            .position(|&pp| matches!(pp, Position::Loop(l) if p.loop_decl(l).name == "J"))
            .unwrap();
        assert_eq!(v[jpos], 5);
        assert!(layout.padded_positions(s3).contains(&jpos));
    }
}
