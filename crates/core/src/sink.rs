//! Statement sinking — the baseline the paper argues *against*.
//!
//! §4.1: "the commonly used strategy of performing transformations after
//! sinking all statements into the innermost loop will in general change
//! the index space". This module implements that classical strategy so the
//! repo can compare it with the paper's direct approach:
//!
//! * a statement before (after) a sibling loop is moved into the loop,
//!   guarded by "first (last) iteration";
//! * this is only *possible* when each loop has a single loop child
//!   (otherwise no perfect nest exists without distribution), and only
//!   *correct* when the inner loop's range is provably non-empty — exactly
//!   the two failure modes matrix factorizations hit, which is the paper's
//!   motivation for transforming imperfect nests directly.

use inl_ir::{Aff, Guard, LoopId, Node, Program, VarKey};
use inl_linalg::InlError;
use inl_poly::{is_empty, Feasibility, LinExpr, System};

/// Why sinking is impossible or unsafe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SinkError {
    /// A loop has two or more loop children: no single perfect nest exists
    /// without loop distribution.
    Branching(String),
    /// The inner loop's range may be empty for some legal parameter/outer
    /// values, so a sunk statement could be skipped entirely.
    PossiblyEmptyRange(String),
    /// Bounds with multiple max/min terms cannot express the "first/last
    /// iteration" guard as a single affine equality.
    ComplexBounds(String),
    /// Non-unit steps are not supported by this baseline.
    NonUnitStep(String),
    /// The sink target was structurally malformed, or exact arithmetic
    /// overflowed while reasoning about the inner range.
    Invalid(InlError),
}

impl From<InlError> for SinkError {
    fn from(e: InlError) -> Self {
        SinkError::Invalid(e)
    }
}

/// Human-readable reason for a [`SinkError`], fed to explain records.
fn sink_reason(e: &SinkError) -> String {
    match e {
        SinkError::Branching(l) => {
            format!("loop {l} has two or more loop children: no perfect nest without distribution")
        }
        SinkError::PossiblyEmptyRange(l) => {
            format!("inner loop {l} may have an empty range: a sunk statement could be skipped")
        }
        SinkError::ComplexBounds(l) => {
            format!("loop {l} has multi-term bounds: no single affine first/last-iteration guard")
        }
        SinkError::NonUnitStep(l) => format!("loop {l} has a non-unit step"),
        SinkError::Invalid(err) => format!("invalid sink target: {err}"),
    }
}

/// Sink every statement into the innermost loop, producing a perfect nest.
///
/// Returns the transformed program or the reason the strategy breaks down.
pub fn sink_statements(p: &Program) -> Result<Program, SinkError> {
    let mut cur = p.clone();
    let mut sunk = 0i64;
    loop {
        let target = match find_sinkable(&cur) {
            Ok(Some(t)) => t,
            Ok(None) => {
                if inl_obs::explain_enabled() {
                    inl_obs::explain::accept(
                        "sink",
                        format!("program {}", p.name()),
                        format!("perfect nest reached after {sunk} sink steps"),
                    )
                    .feature("sink_steps", sunk);
                }
                return Ok(cur);
            }
            Err(e) => {
                if inl_obs::explain_enabled() {
                    inl_obs::explain::reject(
                        "sink",
                        format!("program {}", p.name()),
                        sink_reason(&e),
                    )
                    .feature("sink_steps", sunk);
                }
                return Err(e);
            }
        };
        let outer_name = cur.loop_decl(target).name.clone();
        match sink_one(&cur, target) {
            Ok(next) => {
                if inl_obs::explain_enabled() {
                    inl_obs::explain::note(
                        "sink",
                        format!("loop {outer_name}"),
                        "sank statement children into the single loop child under first/last-iteration guards",
                    );
                }
                sunk += 1;
                cur = next;
            }
            Err(e) => {
                if inl_obs::explain_enabled() {
                    inl_obs::explain::reject("sink", format!("loop {outer_name}"), sink_reason(&e))
                        .feature("sink_steps", sunk);
                }
                return Err(e);
            }
        }
    }
}

/// Find a loop whose children mix statements with exactly one loop.
/// `Ok(None)` when the program is already perfectly nested.
fn find_sinkable(p: &Program) -> Result<Option<LoopId>, SinkError> {
    for l in p.loops() {
        // skip detached loops
        if p.loops_surrounding_loop(l).is_empty() && !p.root().contains(&Node::Loop(l)) {
            continue;
        }
        let children = &p.loop_decl(l).children;
        let nloops = children
            .iter()
            .filter(|c| matches!(c, Node::Loop(_)))
            .count();
        let nstmts = children.len() - nloops;
        if nloops >= 2 {
            return Err(SinkError::Branching(p.loop_decl(l).name.clone()));
        }
        if nloops == 1 && nstmts > 0 {
            return Ok(Some(l));
        }
    }
    // also the virtual root must not branch for a perfect nest, but a
    // multi-loop root is a sequence of perfect nests — acceptable output
    Ok(None)
}

/// Sink the statement children of `outer` into its single loop child.
fn sink_one(p: &Program, outer: LoopId) -> Result<Program, SinkError> {
    let mut out = p.clone();
    let children = p.loop_decl(outer).children.clone();
    let Some((loop_pos, inner)) = children.iter().enumerate().find_map(|(i, &c)| match c {
        Node::Loop(l) => Some((i, l)),
        _ => None,
    }) else {
        return Err(SinkError::Invalid(InlError::invalid_target(
            format!("loop {}", p.loop_decl(outer).name),
            "sink target has no loop child",
        )));
    };
    let inner_decl = p.loop_decl(inner).clone();
    let iname = inner_decl.name.clone();
    if inner_decl.step != 1 {
        return Err(SinkError::NonUnitStep(iname));
    }
    if inner_decl.lower.terms.len() != 1 || inner_decl.upper.terms.len() != 1 {
        return Err(SinkError::ComplexBounds(iname));
    }
    let lo = inner_decl.lower.terms[0].clone();
    let hi = inner_decl.upper.terms[0].clone();
    if lo.divisor() != 1 || hi.divisor() != 1 {
        return Err(SinkError::ComplexBounds(iname));
    }

    // The range must be provably non-empty in the outer context.
    if range_may_be_empty(p, inner)? {
        return Err(SinkError::PossiblyEmptyRange(iname));
    }

    let second_loop = || {
        SinkError::Invalid(InlError::invalid_target(
            format!("loop {}", p.loop_decl(outer).name),
            "sink target has more than one loop child",
        ))
    };
    let ivar = Aff::var(VarKey::Loop(inner));
    let mut new_inner_children = Vec::new();
    // statements before the loop: guard "first iteration" (i == lo)
    for &c in &children[..loop_pos] {
        let Node::Stmt(s) = c else {
            return Err(second_loop());
        };
        out.stmts_guard_push(s, Guard::Eq(ivar.clone() - lo.clone()));
        new_inner_children.push(c);
    }
    new_inner_children.extend(&inner_decl.children);
    // statements after the loop: guard "last iteration" (i == hi)
    for &c in &children[loop_pos + 1..] {
        let Node::Stmt(s) = c else {
            return Err(second_loop());
        };
        out.stmts_guard_push(s, Guard::Eq(ivar.clone() - hi.clone()));
        new_inner_children.push(c);
    }
    out.set_loop_children(inner, new_inner_children);
    out.set_loop_children(outer, vec![Node::Loop(inner)]);
    Ok(out)
}

/// Can the loop's range be empty for some feasible outer iteration?
fn range_may_be_empty(p: &Program, l: LoopId) -> Result<bool, InlError> {
    let space = p.space();
    let mut sys = p.assumption_system(space);
    // outer loops' bounds
    for &o in p.loops_surrounding_loop(l).iter() {
        add_loop_bounds(p, o, space, &mut sys)?;
    }
    // emptiness: upper <= lower - 1 (single-term bounds checked by caller)
    let ld = p.loop_decl(l);
    let lo = p.to_linexpr(&ld.lower.terms[0], space);
    let hi = p.to_linexpr(&ld.upper.terms[0], space);
    sys.add_ge(
        lo.checked_sub(&hi)?
            .checked_sub(&LinExpr::constant(space, 1))?,
    );
    Ok(is_empty(&sys) != Feasibility::Empty)
}

fn add_loop_bounds(p: &Program, l: LoopId, space: usize, sys: &mut System) -> Result<(), InlError> {
    let ld = p.loop_decl(l);
    let iv = LinExpr::var(space, p.loop_var_index(l));
    for t in &ld.lower.terms {
        sys.add_ge(
            iv.checked_scale(t.divisor())?
                .checked_sub(&p.to_linexpr(&t.numerator(), space))?,
        );
    }
    for t in &ld.upper.terms {
        sys.add_ge(
            p.to_linexpr(&t.numerator(), space)
                .checked_sub(&iv.checked_scale(t.divisor())?)?,
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use inl_ir::zoo;

    #[test]
    fn running_example_sinks_to_perfect_nest() {
        // J = I..N is never empty (I <= N), so sinking S3 (after the J
        // loop) works with a "last iteration" guard
        let p = zoo::running_example();
        let q = sink_statements(&p).expect("sinkable");
        // perfect: the I loop has a single loop child carrying everything
        let i = q.loops().next().unwrap();
        assert_eq!(q.loop_decl(i).children.len(), 1);
        let inl_ir::Node::Loop(j) = q.loop_decl(i).children[0] else {
            panic!("expected loop child")
        };
        assert_eq!(q.loop_decl(j).children.len(), 3); // S1, S2, S3(guarded)
        assert!(q.validate().is_ok(), "{:?}", q.validate());
        // and it computes the same thing
        inl_exec::equivalent(&p, &q, &[5], &|_, _| 0.0).expect("identical");
        inl_exec::equivalent(&p, &q, &[1], &|_, _| 0.0).expect("identical at N=1");
    }

    #[test]
    fn cholesky_sinking_fails_on_empty_range() {
        // the paper's motivation: J = I+1..N is empty at I = N, so the
        // pivot sqrt would be lost — sinking must refuse
        let p = zoo::simple_cholesky();
        assert!(matches!(
            sink_statements(&p),
            Err(SinkError::PossiblyEmptyRange(name)) if name == "J"
        ));
    }

    #[test]
    fn full_cholesky_sinking_fails_on_branching() {
        // K has two loop children (I and J nests): no perfect nest without
        // distribution — which §1 notes is illegal here anyway
        let p = zoo::cholesky_kij();
        assert!(matches!(sink_statements(&p), Err(SinkError::Branching(_))));
    }

    #[test]
    fn already_perfect_nest_is_untouched() {
        let p = zoo::perfect_nest();
        let q = sink_statements(&p).expect("no-op");
        assert_eq!(p.to_pseudocode(), q.to_pseudocode());
    }

    #[test]
    fn sunk_guards_reference_inner_variable() {
        let p = zoo::running_example();
        let q = sink_statements(&p).expect("sinkable");
        let s3 = q.stmts().find(|&s| q.stmt_decl(s).name == "S3").unwrap();
        assert_eq!(q.stmt_decl(s3).guards.len(), 1);
        assert!(matches!(q.stmt_decl(s3).guards[0], Guard::Eq(_)));
    }
}
