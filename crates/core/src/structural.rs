//! Loop distribution and jamming (§4.2 of the paper).
//!
//! Distribution and jamming change the number of instance-vector positions,
//! so they are represented by **non-square** matrices: distribution
//! replicates the distributed loop's position (the new program has two
//! loops whose values both come from the old loop's position), and jamming
//! merges two loop positions into one.
//!
//! Each operation returns the matrix *and* the structurally transformed
//! target program (built by `inl-ir`'s surgery), plus a legality test based
//! on the dependence matrix:
//!
//! * distribution of loop `l` is legal iff no dependence from a statement
//!   of the second part to a statement of the first part is carried by `l`
//!   itself (dependences carried by outer loops stay satisfied; a
//!   loop-independent dependence in that direction cannot exist);
//! * jamming is legal iff no dependence from the first loop's statements to
//!   the second loop's statements would be reversed — i.e. the dependence
//!   polyhedron admits no point with `i_dst < i_src` for the fused loop
//!   variables.

use crate::depend::DependenceMatrix;
use crate::instance::{InstanceLayout, Position};
use crate::transform::node_contains;
use inl_ir::{Aff, Bound, LoopId, Node, Program, StmtId, VarKey};
use inl_linalg::{IMat, InlError, Int};
use inl_poly::{is_empty, Feasibility, LinExpr};

/// Human-readable path of a parent node, for [`InlError::invalid_target`].
fn parent_path(p: &Program, parent: Option<LoopId>) -> String {
    match parent {
        None => "<root>".to_string(),
        Some(q) => format!("loop {}", p.loop_decl(q).name),
    }
}

/// The two jam targets must be adjacent sibling *loops* with identical
/// bounds (after renaming the second's variable to the first's) and steps.
/// Errors name the offending node path.
fn jam_targets(
    p: &Program,
    parent: Option<LoopId>,
    idx: usize,
) -> Result<(LoopId, LoopId), InlError> {
    let siblings: &[Node] = match parent {
        None => p.root(),
        Some(q) => &p.loop_decl(q).children,
    };
    if idx + 1 >= siblings.len() {
        return Err(InlError::invalid_target(
            parent_path(p, parent),
            format!(
                "jam needs children {idx} and {} but there are only {}",
                idx + 1,
                siblings.len()
            ),
        ));
    }
    let (Node::Loop(a), Node::Loop(b)) = (siblings[idx], siblings[idx + 1]) else {
        return Err(InlError::invalid_target(
            format!("{}, children {idx} and {}", parent_path(p, parent), idx + 1),
            "jam targets must both be loops",
        ));
    };
    let da = p.loop_decl(a);
    let db = p.loop_decl(b);
    let rename = |aff: &Aff| -> Aff {
        aff.substitute_loops(&|id: LoopId| {
            if id == b {
                Aff::var(VarKey::Loop(a))
            } else {
                Aff::var(VarKey::Loop(id))
            }
        })
    };
    let rebound = |bd: &Bound| Bound {
        terms: bd.terms.iter().map(&rename).collect(),
    };
    if rebound(&db.lower) != da.lower || rebound(&db.upper) != da.upper {
        return Err(InlError::invalid_target(
            format!("loops {} and {}", da.name, db.name),
            "jam requires identical bounds",
        ));
    }
    if da.step != db.step {
        return Err(InlError::invalid_target(
            format!("loops {} and {}", da.name, db.name),
            "jam requires identical steps",
        ));
    }
    Ok((a, b))
}

/// Distribution's split point must cut a loop with >= 2 children into two
/// non-empty parts, and the loop must be attached to the program.
fn distribute_target(
    p: &Program,
    l: LoopId,
    split: usize,
) -> Result<(Option<LoopId>, usize), InlError> {
    let name = &p.loop_decl(l).name;
    let nchildren = p.loop_decl(l).children.len();
    if split == 0 || split >= nchildren {
        return Err(InlError::invalid_target(
            format!("loop {name}"),
            format!("split {split} out of range for {nchildren} children"),
        ));
    }
    let parent = p.loops_surrounding_loop(l).last().copied();
    let old_siblings: &[Node] = match parent {
        None => p.root(),
        Some(q) => &p.loop_decl(q).children,
    };
    let t = old_siblings
        .iter()
        .position(|&x| x == Node::Loop(l))
        .ok_or_else(|| {
            InlError::invalid_target(
                format!("loop {name}"),
                "loop is not attached to the program",
            )
        })?;
    Ok((parent, t))
}

/// The result of a structural transformation: the (generally non-square)
/// matrix, the target program, and its layout.
#[derive(Clone, Debug)]
pub struct StructuralResult {
    /// Maps old instance vectors to new ones: `v_new = matrix · v_old`.
    pub matrix: IMat,
    /// The transformed program (statement ids preserved).
    pub target: Program,
    /// Layout of the transformed program.
    pub target_layout: InstanceLayout,
}

/// Apply a child reordering structurally (used by
/// [`crate::transform::Transform::ReorderChildren`]).
pub fn apply_reorder(p: &Program, parent: Option<LoopId>, perm: &[usize]) -> Program {
    p.reorder_children(parent, perm)
}

/// Distribute loop `l` at `split` and build the distribution matrix.
///
/// Fails with [`InlErrorKind::InvalidTarget`](inl_linalg::InlErrorKind) when
/// `split` does not cut `l`'s children into two non-empty parts or `l` is
/// detached from the program.
pub fn distribute(
    p: &Program,
    layout: &InstanceLayout,
    l: LoopId,
    split: usize,
) -> Result<StructuralResult, InlError> {
    let (parent, t) = distribute_target(p, l, split)?;
    let (target, new_loop) = p.distribute_loop(l, split);
    let target_layout = InstanceLayout::new(&target);
    let n_old = layout.len();
    let n_new = target_layout.len();
    let old_children = p.loop_decl(l).children.len();

    let mut m = IMat::zeros(n_new, n_old);
    for (new_pos, slot) in target_layout.positions().iter().enumerate() {
        match *slot {
            Position::Loop(x) => {
                let src = if x == new_loop { l } else { x };
                m[(new_pos, layout.loop_position(src))] = 1;
            }
            Position::Edge {
                parent: q,
                child: c,
            } => {
                if q == parent {
                    // the parent's child list grew by one at index t
                    if c < t {
                        m[(new_pos, layout.edge_position(q, c).expect("edge"))] = 1;
                    } else if c == t || c == t + 1 {
                        // indicator "in first part" / "in second part":
                        // sum of the old loop's child edges of that part
                        let range = if c == t {
                            0..split
                        } else {
                            split..old_children
                        };
                        for j in range {
                            let e = layout
                                .edge_position(Some(l), j)
                                .expect("distributed loop had child edges");
                            m[(new_pos, e)] = 1;
                        }
                    } else {
                        m[(new_pos, layout.edge_position(q, c - 1).expect("edge"))] = 1;
                    }
                } else if q == Some(l) {
                    // first part kept children 0..split
                    m[(new_pos, layout.edge_position(Some(l), c).expect("edge"))] = 1;
                } else if q == Some(new_loop) {
                    m[(
                        new_pos,
                        layout.edge_position(Some(l), c + split).expect("edge"),
                    )] = 1;
                } else {
                    m[(new_pos, layout.edge_position(q, c).expect("edge"))] = 1;
                }
            }
        }
    }
    Ok(StructuralResult {
        matrix: m,
        target,
        target_layout,
    })
}

/// Is distributing loop `l` at `split` legal under `deps`?
pub fn distribution_legal(
    p: &Program,
    deps: &DependenceMatrix,
    l: LoopId,
    split: usize,
) -> Result<bool, InlError> {
    distribute_target(p, l, split)?;
    let depth = p.loops_surrounding_loop(l).len();
    let children = &p.loop_decl(l).children;
    let subject = || format!("distribute loop {} at split {split}", p.loop_decl(l).name);
    let in_part = |s: StmtId, range: std::ops::Range<usize>| -> bool {
        children[range.clone()]
            .iter()
            .any(|&c| node_contains(p, c, Node::Stmt(s)))
    };
    for (di, d) in deps.deps.iter().enumerate() {
        let src_second = in_part(d.src, split..children.len());
        let dst_first = in_part(d.dst, 0..split);
        if src_second && dst_first && d.level == depth {
            if inl_obs::explain_enabled() {
                inl_obs::explain::reject(
                    "structural",
                    subject(),
                    format!(
                        "{} runs from the second part back to the first and is carried \
                         by the distributed loop itself (level {depth})",
                        crate::provenance::dep_label(p, di, d)
                    ),
                )
                .detail("dep_row", crate::provenance::dep_row(d))
                .feature("deps", deps.deps.len() as i64)
                .feature("split", split as i64);
            }
            return Ok(false);
        }
    }
    if inl_obs::explain_enabled() {
        inl_obs::explain::accept(
            "structural",
            subject(),
            format!(
                "none of the {} dependences runs from the second part to the first \
                 at the distributed level {depth}",
                deps.deps.len()
            ),
        )
        .feature("deps", deps.deps.len() as i64)
        .feature("split", split as i64);
    }
    Ok(true)
}

/// Jam (fuse) adjacent sibling loops — children `idx` and `idx + 1` of
/// `parent` — and build the jamming matrix.
///
/// Fails with [`InlErrorKind::InvalidTarget`](inl_linalg::InlErrorKind) when
/// the targets are not both loops, are not adjacent siblings of `parent`,
/// or have mismatched bounds/steps.
pub fn jam(
    p: &Program,
    layout: &InstanceLayout,
    parent: Option<LoopId>,
    idx: usize,
) -> Result<StructuralResult, InlError> {
    let (a, b) = jam_targets(p, parent, idx)?;
    let ma = p.loop_decl(a).children.len();
    let target = p.jam_loops(parent, idx);
    let target_layout = InstanceLayout::new(&target);
    let n_old = layout.len();
    let n_new = target_layout.len();

    let mut m = IMat::zeros(n_new, n_old);
    let parent_pos: Option<usize> = parent.map(|q| layout.loop_position(q));
    // indicator rows: "instance lies under old child `c` of `parent`" —
    // needed when a fused part had a single child (no own edges).
    let under_old_sibling = |m: &mut IMat, row: usize, c: usize, sign: Int| {
        match layout.edge_position(parent, c) {
            Some(e) => m[(row, e)] += sign,
            None => {
                // parent had a single child: the indicator is constant 1,
                // which cannot appear in a linear matrix. This cannot
                // happen here: parent has at least the two loops a and b.
                unreachable!("parent of jammed loops has >= 2 children");
            }
        }
    };
    for (new_pos, slot) in target_layout.positions().iter().enumerate() {
        match *slot {
            Position::Loop(x) => {
                if x == a {
                    // merged loop value: pos(a) + pos(b) − pad
                    m[(new_pos, layout.loop_position(a))] += 1;
                    m[(new_pos, layout.loop_position(b))] += 1;
                    if let Some(pp) = parent_pos {
                        m[(new_pos, pp)] -= 1;
                    }
                } else {
                    m[(new_pos, layout.loop_position(x))] = 1;
                }
            }
            Position::Edge {
                parent: q,
                child: c,
            } => {
                if q == parent {
                    // the parent's child list shrank by one at idx+1
                    if c < idx {
                        m[(new_pos, layout.edge_position(q, c).expect("edge"))] = 1;
                    } else if c == idx {
                        under_old_sibling(&mut m, new_pos, idx, 1);
                        under_old_sibling(&mut m, new_pos, idx + 1, 1);
                    } else {
                        m[(new_pos, layout.edge_position(q, c + 1).expect("edge"))] = 1;
                    }
                } else if q == Some(a) {
                    // merged children: a's children first, then b's
                    if c < ma {
                        match layout.edge_position(Some(a), c) {
                            Some(e) => m[(new_pos, e)] = 1,
                            // a had a single child: indicator = "under a"
                            None => under_old_sibling(&mut m, new_pos, idx, 1),
                        }
                    } else {
                        match layout.edge_position(Some(b), c - ma) {
                            Some(e) => m[(new_pos, e)] = 1,
                            None => under_old_sibling(&mut m, new_pos, idx + 1, 1),
                        }
                    }
                } else {
                    m[(new_pos, layout.edge_position(q, c).expect("edge"))] = 1;
                }
            }
        }
    }
    Ok(StructuralResult {
        matrix: m,
        target,
        target_layout,
    })
}

/// Is jamming children `idx`, `idx+1` of `parent` legal under `deps`?
///
/// Checks every dependence from a statement of the first loop to a
/// statement of the second: the fused order reverses it iff the dependence
/// polyhedron contains a point where the target's fused-loop value is
/// *smaller* than the source's. (Equal values are fine: the first loop's
/// body precedes the second's in the fused body.)
pub fn jamming_legal(
    p: &Program,
    deps: &DependenceMatrix,
    parent: Option<LoopId>,
    idx: usize,
) -> Result<bool, InlError> {
    let (a, b) = jam_targets(p, parent, idx)?;
    let nparams = p.nparams();
    let subject = || {
        format!(
            "jam loops {} and {}",
            p.loop_decl(a).name,
            p.loop_decl(b).name
        )
    };
    let mut crossing = 0i64;
    for (di, d) in deps.deps.iter().enumerate() {
        let src_in_a = node_contains(p, Node::Loop(a), Node::Stmt(d.src));
        let dst_in_b = node_contains(p, Node::Loop(b), Node::Stmt(d.dst));
        if !(src_in_a && dst_in_b) {
            continue;
        }
        crossing += 1;
        // slots of a (in src loops) and b (in dst loops)
        let sa = d
            .src_loops
            .iter()
            .position(|&x| x == a)
            .expect("a surrounds src");
        let sb = d
            .dst_loops
            .iter()
            .position(|&x| x == b)
            .expect("b surrounds dst");
        let space = d.system.nvars();
        let ia = LinExpr::var(space, nparams + sa);
        let ib = LinExpr::var(space, nparams + d.src_loops.len() + sb);
        let mut sys = d.system.clone();
        // violation: i_b < i_a, i.e. i_a - i_b - 1 >= 0
        sys.add_ge(ia - ib - LinExpr::constant(space, 1));
        if is_empty(&sys) != Feasibility::Empty {
            if inl_obs::explain_enabled() {
                inl_obs::explain::reject(
                    "structural",
                    subject(),
                    format!(
                        "{} admits an instance with target iteration below the source: \
                         the fused order would reverse it",
                        crate::provenance::dep_label(p, di, d)
                    ),
                )
                .detail("dep_row", crate::provenance::dep_row(d))
                .feature("deps", deps.deps.len() as i64)
                .feature("crossing_deps", crossing);
            }
            return Ok(false);
        }
    }
    if inl_obs::explain_enabled() {
        inl_obs::explain::accept(
            "structural",
            subject(),
            format!(
                "{crossing} dependences cross from the first loop into the second; \
                 none admits a fused-iteration reversal"
            ),
        )
        .feature("deps", deps.deps.len() as i64)
        .feature("crossing_deps", crossing);
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depend::analyze;
    use inl_ir::zoo;
    use inl_linalg::IVec;

    fn stmt(p: &Program, name: &str) -> StmtId {
        p.stmts().find(|&s| p.stmt_decl(s).name == name).unwrap()
    }

    #[test]
    fn distribution_matrix_maps_instances() {
        // §4.2: distributing the I loop of simplified Cholesky. The paper's
        // 5×4 matrix maps S1 and S2 instances into the two-loop program.
        let p = zoo::simple_cholesky();
        let layout = InstanceLayout::new(&p);
        let i = p.loops().next().unwrap();
        let r = distribute(&p, &layout, i, 1).expect("distributes");
        assert_eq!(r.matrix.nrows(), 5);
        assert_eq!(r.matrix.ncols(), 4);
        let s1 = stmt(&p, "S1");
        let s2 = stmt(&p, "S2");
        // S1 at I=4 maps to the first loop at I=4
        let v1 = r.matrix.mul_vec(&layout.instance_vector(s1, &[4]));
        let (d1, it1) = r.target_layout.decode(&r.target, &v1).expect("decodable");
        assert_eq!(d1, s1);
        assert_eq!(it1, vec![4]);
        // S2 at (4, 6) maps to the second loop nest at (4, 6)
        let v2 = r.matrix.mul_vec(&layout.instance_vector(s2, &[4, 6]));
        let (d2, it2) = r.target_layout.decode(&r.target, &v2).expect("decodable");
        assert_eq!(d2, s2);
        assert_eq!(it2, vec![4, 6]);
        // and all S1 instances now precede all S2 instances
        let early = r.matrix.mul_vec(&layout.instance_vector(s1, &[9]));
        let late = r.matrix.mul_vec(&layout.instance_vector(s2, &[1, 2]));
        assert_eq!(
            inl_linalg::lex::lex_cmp(&early, &late),
            std::cmp::Ordering::Less
        );
    }

    #[test]
    fn distribution_illegal_for_cholesky() {
        // the paper: "loop distribution … is not legal in any of the matrix
        // factorization codes"
        let p = zoo::simple_cholesky();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        let i = p.loops().next().unwrap();
        assert!(!distribution_legal(&p, &deps, i, 1).expect("valid target"));
    }

    #[test]
    fn distribution_legal_for_independent_statements() {
        let p = zoo::independent_pair();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        let i = p.loops().next().unwrap();
        assert!(distribution_legal(&p, &deps, i, 1).expect("valid target"));
        let r = distribute(&p, &layout, i, 1).expect("distributes");
        assert!(r.target.validate().is_ok());
        assert_eq!(r.target.root().len(), 2);
    }

    #[test]
    fn jam_matrix_reverses_distribution() {
        // §4.2: jamming the distributed simplified Cholesky restores the
        // original instance vectors.
        let p = zoo::distributed_simple_cholesky();
        let layout = InstanceLayout::new(&p);
        let r = jam(&p, &layout, None, 0).expect("jams");
        assert_eq!(r.matrix.nrows(), 4);
        assert_eq!(r.matrix.ncols(), 5);
        let s1 = stmt(&p, "S1");
        let s2 = stmt(&p, "S2");
        let v1 = r.matrix.mul_vec(&layout.instance_vector(s1, &[4]));
        let (d1, it1) = r.target_layout.decode(&r.target, &v1).unwrap();
        assert_eq!((d1, it1), (s1, vec![4]));
        let v2 = r.matrix.mul_vec(&layout.instance_vector(s2, &[4, 6]));
        let (d2, it2) = r.target_layout.decode(&r.target, &v2).unwrap();
        assert_eq!((d2, it2), (s2, vec![4, 6]));
        // jammed program prints like the original simple_cholesky
        assert_eq!(
            r.target.to_pseudocode(),
            zoo::simple_cholesky().to_pseudocode()
        );
    }

    #[test]
    fn jamming_distributed_cholesky_is_illegal() {
        // The distributed simple-Cholesky program (§4.2's *structural*
        // example — the paper notes distribution is illegal for the real
        // Cholesky) executes every S1 before every S2, so S2 at (I2, I)
        // with I2 < I reads the A(I) that S1 already wrote. Jamming would
        // move that read before the write: the fused target index I2 is
        // smaller than the source index I, so jamming is illegal — it
        // would change the distributed program's (different!) semantics.
        let p = zoo::distributed_simple_cholesky();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        assert!(!jamming_legal(&p, &deps, None, 0).expect("valid target"));
    }

    #[test]
    fn jamming_reversal_detected() {
        // S2 in the second loop reads X(I+1), written by the first loop:
        // fusing would execute the read of X(i+1) at fused iteration i
        // before its write at iteration i+1 — illegal.
        use inl_ir::{Aff, Expr, ProgramBuilder};
        let mut b = ProgramBuilder::new("backward");
        let n = b.param("N");
        let x = b.array("X", &[Aff::param(n) + Aff::konst(2)]);
        let y = b.array("Y", &[Aff::param(n) + Aff::konst(2)]);
        b.hloop("I", Aff::konst(1), Aff::param(n), |b| {
            let i = b.loop_var("I");
            b.stmt("S1", x, vec![Aff::var(i)], Expr::index(Aff::var(i)));
        });
        b.hloop("I2", Aff::konst(1), Aff::param(n), |b| {
            let i = b.loop_var("I2");
            b.stmt(
                "S2",
                y,
                vec![Aff::var(i)],
                Expr::read(x, vec![Aff::var(i) + Aff::konst(1)]),
            );
        });
        let p = b.finish();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        assert!(!jamming_legal(&p, &deps, None, 0).expect("valid target"));
        // while the same shape reading X(I-1) is legal to fuse
        let mut b = ProgramBuilder::new("forward");
        let n = b.param("N");
        let x = b.array("X", &[Aff::param(n) + Aff::konst(2)]);
        let y = b.array("Y", &[Aff::param(n) + Aff::konst(2)]);
        b.hloop("I", Aff::konst(1), Aff::param(n), |b| {
            let i = b.loop_var("I");
            b.stmt("S1", x, vec![Aff::var(i)], Expr::index(Aff::var(i)));
        });
        b.hloop("I2", Aff::konst(1), Aff::param(n), |b| {
            let i = b.loop_var("I2");
            b.stmt(
                "S2",
                y,
                vec![Aff::var(i)],
                Expr::read(x, vec![Aff::var(i) - Aff::konst(1)]),
            );
        });
        let q = b.finish();
        let qlayout = InstanceLayout::new(&q);
        let qdeps = analyze(&q, &qlayout).expect("analysis");
        assert!(jamming_legal(&q, &qdeps, None, 0).expect("valid target"));
    }

    #[test]
    fn jam_invalid_targets_report_node_path() {
        use inl_linalg::InlErrorKind;
        let p = zoo::simple_cholesky();
        let layout = InstanceLayout::new(&p);
        let i = p.loops().next().unwrap();
        // children of I are [S1, J-loop]: child 0 is not a loop
        let e = jam(&p, &layout, Some(i), 0).unwrap_err();
        assert_eq!(e.kind(), InlErrorKind::InvalidTarget);
        assert!(e.to_string().contains("loop I"), "{e}");
        // the root has a single child: no adjacent sibling to jam
        let e = jam(&p, &layout, None, 0).unwrap_err();
        assert_eq!(e.kind(), InlErrorKind::InvalidTarget);
        // the legality query validates identically instead of panicking
        let deps = analyze(&p, &layout).expect("analysis");
        let e = jamming_legal(&p, &deps, Some(i), 0).unwrap_err();
        assert_eq!(e.kind(), InlErrorKind::InvalidTarget);
    }

    #[test]
    fn jam_mismatched_bounds_rejected() {
        use inl_ir::{Aff, Expr, ProgramBuilder};
        use inl_linalg::InlErrorKind;
        let mut b = ProgramBuilder::new("mismatched");
        let n = b.param("N");
        let x = b.array("X", &[Aff::param(n) + Aff::konst(2)]);
        b.hloop("I", Aff::konst(1), Aff::param(n), |b| {
            let i = b.loop_var("I");
            b.stmt("S1", x, vec![Aff::var(i)], Expr::index(Aff::var(i)));
        });
        b.hloop("I2", Aff::konst(2), Aff::param(n), |b| {
            let i = b.loop_var("I2");
            b.stmt("S2", x, vec![Aff::var(i)], Expr::index(Aff::var(i)));
        });
        let p = b.finish();
        let layout = InstanceLayout::new(&p);
        let e = jam(&p, &layout, None, 0).unwrap_err();
        assert_eq!(e.kind(), InlErrorKind::InvalidTarget);
        assert!(e.to_string().contains("identical bounds"), "{e}");
    }

    #[test]
    fn distribute_invalid_split_rejected() {
        use inl_linalg::InlErrorKind;
        let p = zoo::simple_cholesky();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        let i = p.loops().next().unwrap();
        // the I loop has exactly 2 children: only split = 1 is in range
        for split in [0, 2, 99] {
            let e = distribute(&p, &layout, i, split).unwrap_err();
            assert_eq!(e.kind(), InlErrorKind::InvalidTarget, "split {split}");
            let e = distribution_legal(&p, &deps, i, split).unwrap_err();
            assert_eq!(e.kind(), InlErrorKind::InvalidTarget, "split {split}");
        }
    }

    #[test]
    fn distribute_then_jam_round_trips_instances() {
        // Figure 4 semantics: matrices act on *instance vectors of their
        // source program*; padded positions are not transformed
        // consistently, so composing across programs requires decoding and
        // re-encoding (L⁻¹ then L) between the two steps.
        let p = zoo::simple_cholesky();
        let layout = InstanceLayout::new(&p);
        let i = p.loops().next().unwrap();
        let d = distribute(&p, &layout, i, 1).expect("distributes");
        let j = jam(&d.target, &d.target_layout, None, 0).expect("jams");
        for s in p.stmts() {
            let k = layout.stmt_loops(s).len();
            let iter: Vec<inl_linalg::Int> = (0..k as inl_linalg::Int).map(|x| x + 2).collect();
            let v = layout.instance_vector(s, &iter);
            // step 1: distribute, decode, re-encode
            let (s1, it1) = d
                .target_layout
                .decode(&d.target, &d.matrix.mul_vec(&v))
                .expect("distributed instance decodable");
            let v1 = d.target_layout.instance_vector(s1, &it1);
            // step 2: jam, decode
            let (s2, it2) = j
                .target_layout
                .decode(&j.target, &j.matrix.mul_vec(&v1))
                .expect("jammed instance decodable");
            assert_eq!(s2, s);
            let orig: Vec<_> = IVec::from(iter.as_slice()).into_vec();
            assert_eq!(it2, orig);
        }
    }
}
