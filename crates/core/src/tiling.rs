//! Loop splitting (strip-mining) and its legality proof.
//!
//! Tiling sits *outside* the paper's matrix framework: a split is not a
//! linear map on instance vectors (the tile number is `floor(i/T)`), so
//! it cannot be expressed as one of §4's matrices. Instead it is a
//! structural pre-pass, like distribution and jamming in
//! [`crate::structural`]: `inl-ir` surgery builds the split program (one
//! index becomes an outer×tile pair whose reconstruction `i = i` is
//! enforced by clamp bounds, see [`Program::split_loop`]), and legality
//! is proved through the ordinary dependence-projection machinery — a
//! split is legal iff the dependence projections of the *reconstructed*
//! (split) program stay lexicographically non-negative under the
//! identity transformation. Because the inner loop keeps the original
//! index's absolute value, strip-mining preserves execution order
//! exactly and the proof always succeeds on a valid program; running it
//! through [`check_legal`] keeps the evidence honest (explain records
//! under the `tile` stage carry the projection counts) and guards
//! against surgery bugs.
//!
//! The scheduler (`inl-sched`) picks *where* to split with
//! [`innermost_reuse_loop`]: the deepest loop in which some access of a
//! statement it surrounds is invariant. Such a loop carries temporal
//! reuse — the invariant access's working set is re-touched every
//! iteration — so confining it to a tile is what shrinks the reuse
//! distance past the cache cliff.

use crate::depend::analyze;
use crate::instance::InstanceLayout;
use crate::legal::{check_legal, LegalityReport};
use inl_ir::{Access, LoopId, Program, VarKey};
use inl_linalg::{IMat, InlError, Int};

/// A split program with the bookkeeping the scheduler needs.
#[derive(Clone, Debug)]
pub struct SplitResult {
    /// The split program (statement ids preserved; the original loop id
    /// survives as the tile-confined inner loop).
    pub program: Program,
    /// The fresh outer (tile-number) loop.
    pub outer: LoopId,
    /// The tile size.
    pub tile: Int,
    /// Layout of the split program.
    pub layout: InstanceLayout,
}

/// The deepest loop that carries temporal reuse: some array access (write
/// or read) of a statement nested inside it mentions the loop's variable
/// in **no** subscript, so every iteration of that loop re-touches the
/// access's working set. Returns `None` when every access varies with
/// every surrounding loop (splitting cannot create reuse) — ties on depth
/// go to the earliest-declared loop for determinism. Stepped loops are
/// never candidates (surgery cannot split them).
pub fn innermost_reuse_loop(p: &Program) -> Option<LoopId> {
    let mut best: Option<(usize, LoopId)> = None;
    for s in p.stmts() {
        let sd = p.stmt_decl(s);
        let mut accesses: Vec<Access> = vec![sd.write.clone()];
        sd.rhs.collect_reads(&mut accesses);
        for &l in &p.loops_surrounding(s) {
            if p.loop_decl(l).step != 1 {
                continue;
            }
            let v = VarKey::Loop(l);
            let carries = accesses
                .iter()
                .any(|a| a.idxs.iter().all(|idx| idx.coeff(v) == 0));
            if !carries {
                continue;
            }
            let depth = p.loops_surrounding_loop(l).len();
            let better = match best {
                None => true,
                Some((bd, bl)) => depth > bd || (depth == bd && l.0 < bl.0),
            };
            if better {
                best = Some((depth, l));
            }
        }
    }
    best.map(|(_, l)| l)
}

/// Split loop `l` by `tile` and build the split program's layout.
///
/// Fails with [`InlErrorKind::InvalidTarget`](inl_linalg::InlErrorKind)
/// when `tile < 2`, `l` is a stepped loop, or `l` is detached from the
/// program — the same conditions `Program::split_loop` would panic on.
pub fn split(p: &Program, l: LoopId, tile: Int) -> Result<SplitResult, InlError> {
    let name = &p.loop_decl(l).name;
    if tile < 2 {
        return Err(InlError::invalid_target(
            format!("loop {name}"),
            format!("tile size {tile} must be at least 2"),
        ));
    }
    if p.loop_decl(l).step != 1 {
        return Err(InlError::invalid_target(
            format!("loop {name}"),
            "cannot split a stepped loop",
        ));
    }
    let parent = p.loops_surrounding_loop(l).last().copied();
    let siblings = match parent {
        None => p.root(),
        Some(q) => &p.loop_decl(q).children,
    };
    if !siblings.contains(&inl_ir::Node::Loop(l)) {
        return Err(InlError::invalid_target(
            format!("loop {name}"),
            "loop is not attached to the program",
        ));
    }
    let (program, outer) = p.split_loop(l, tile);
    let layout = InstanceLayout::new(&program);
    Ok(SplitResult {
        program,
        outer,
        tile,
        layout,
    })
}

/// Prove the split legal: analyze the split program's dependences and
/// check that every projection stays lexicographically non-negative under
/// the identity transformation — i.e. the reconstructed (outer×tile)
/// order is still the source order. Emits explain records under the
/// `tile` stage.
pub fn split_legal(r: &SplitResult) -> Result<LegalityReport, InlError> {
    let deps = analyze(&r.program, &r.layout)?;
    let m = IMat::identity(r.layout.len());
    let report = check_legal(&r.program, &r.layout, &deps, &m)?;
    if inl_obs::explain_enabled() {
        let inner = r
            .program
            .loop_decl(r.outer)
            .children
            .first()
            .and_then(|&n| match n {
                inl_ir::Node::Loop(x) => Some(r.program.loop_decl(x).name.clone()),
                _ => None,
            })
            .unwrap_or_default();
        let subject = format!("split loop {inner} by {}", r.tile);
        if report.is_legal() {
            inl_obs::explain::accept(
                "tile",
                subject,
                format!(
                    "all {} reconstructed dependence projections stay lexicographically \
                     non-negative under the outer×tile order",
                    deps.deps.len()
                ),
            )
            .feature("deps", deps.deps.len() as i64)
            .feature("tile", r.tile as i64);
        } else {
            inl_obs::explain::reject(
                "tile",
                subject,
                format!(
                    "{} reconstructed dependence projections go lexicographically \
                     negative under the outer×tile order",
                    report.violations.len()
                ),
            )
            .feature("deps", deps.deps.len() as i64)
            .feature("violations", report.violations.len() as i64)
            .feature("tile", r.tile as i64);
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use inl_ir::zoo;
    use inl_linalg::InlErrorKind;

    fn loop_named(p: &Program, name: &str) -> LoopId {
        p.loops().find(|&l| p.loop_decl(l).name == name).unwrap()
    }

    #[test]
    fn reuse_loop_is_the_deepest_invariant_carrier() {
        // matmul: C(i,j) is invariant in K, the deepest loop
        let p = zoo::matmul();
        assert_eq!(innermost_reuse_loop(&p), Some(loop_named(&p, "K")));
        // cholesky_kij: A(j,k) is invariant in L (depth 2, under K and J)
        let p = zoo::cholesky_kij();
        assert_eq!(innermost_reuse_loop(&p), Some(loop_named(&p, "L")));
        // simple_cholesky: A(i) is invariant in J
        let p = zoo::simple_cholesky();
        assert_eq!(innermost_reuse_loop(&p), Some(loop_named(&p, "J")));
        // wavefront: every access varies with both loops — nothing to tile
        assert_eq!(innermost_reuse_loop(&zoo::wavefront()), None);
    }

    #[test]
    fn split_is_always_legal_across_the_zoo() {
        // strip-mining preserves execution order, so the reconstructed
        // projections must stay lex-non-negative for every zoo program
        // that has a reuse-carrying loop
        for ctor in [
            zoo::simple_cholesky,
            zoo::perfect_nest,
            zoo::cholesky_kij,
            zoo::cholesky_left_looking,
            zoo::lu_kij,
            zoo::matmul,
        ] {
            let p = ctor();
            let l = innermost_reuse_loop(&p).expect("reuse loop");
            for tile in [2, 16, 64] {
                let r = split(&p, l, tile).expect("split");
                assert!(r.program.validate().is_ok(), "{:?}", r.program.validate());
                let report = split_legal(&r).expect("analysis");
                assert!(
                    report.is_legal(),
                    "{} tile {tile}: {:?}",
                    p.name(),
                    report.violations
                );
            }
        }
    }

    #[test]
    fn split_rejects_bad_targets_typed() {
        let p = zoo::matmul();
        let k = loop_named(&p, "K");
        let e = split(&p, k, 1).unwrap_err();
        assert_eq!(e.kind(), InlErrorKind::InvalidTarget);
        assert!(e.to_string().contains("tile size"), "{e}");
    }
}
