//! Legality of transformation matrices (§5.1–5.3 of the paper).
//!
//! A square matrix `M` is a legal transformation (Definition 6) iff
//!
//! 1. it has the **block structure** of Fig. 5, from which the transformed
//!    AST can be recovered (Fig. 6's `NewAST`): for every node, the edge
//!    rows form a permutation of that node's edge columns (giving the new
//!    child order), and subtree blocks only map to their own new location;
//! 2. for every dependence `d` from `S1` to `S2`, the projection `P` of
//!    `M·d` onto the loops common to `S1` and `S2` is lexicographically
//!    positive, or zero with `S1 ⪯ₛ S2` in the new AST.
//!
//! `P = 0` with `S1 = S2` is allowed — the dependence is *unsatisfied* and
//! must be carried by the extra loops the augmentation step adds (§5.4).
//!
//! The dependence test runs in two tiers: interval arithmetic over the
//! distance/direction entries (fast, conservative), falling back to exact
//! feasibility queries on the retained dependence polyhedra when the
//! intervals are inconclusive.

use crate::depend::{DepEntry, Dependence, DependenceMatrix};
use crate::instance::InstanceLayout;
use inl_ir::{LoopId, Program, StmtId};
use inl_linalg::{IMat, InlError, Int};
use inl_poly::{is_empty, Feasibility, LinExpr};
use std::collections::HashMap;

/// The recovered transformed AST (Fig. 6): the source program with each
/// node's children permuted, plus the mapping from old vector positions to
/// new ones.
#[derive(Clone, Debug)]
pub struct NewAst {
    /// Structurally transformed program (bounds/bodies still the source
    /// ones — code generation rewrites them; syntactic order is already
    /// the new one).
    pub program: Program,
    /// Its layout.
    pub layout: InstanceLayout,
    /// `pos_map[old] = new` for every slot (loop or edge).
    pub pos_map: Vec<usize>,
    /// Child permutation per node (`None` key = virtual root): old child
    /// index → new child index. Identity permutations included.
    pub child_perms: HashMap<Option<LoopId>, Vec<usize>>,
}

/// Why a dependence is violated.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Index into `deps.deps`.
    pub dep: usize,
    /// Human-readable description.
    pub reason: String,
}

/// Result of [`check_legal`].
#[derive(Clone, Debug)]
pub struct LegalityReport {
    /// The recovered AST, or the block-structure error.
    pub new_ast: Result<NewAst, String>,
    /// Violated dependences.
    pub violations: Vec<Violation>,
    /// Indices of self-dependences left unsatisfied (`P = 0`, `S1 = S2`);
    /// the augmentation procedure must carry these.
    pub unsatisfied_self: Vec<usize>,
}

impl LegalityReport {
    /// True iff the matrix is a legal transformation.
    pub fn is_legal(&self) -> bool {
        self.new_ast.is_ok() && self.violations.is_empty()
    }
}

/// Recover the transformed AST from the block structure of `m`
/// (Fig. 6's `NewAST`). Fails with a description if `m` lacks the
/// structure.
///
/// The convention (read off the paper's §6 worked example) is that
/// statement reordering permutes only a node's **edge positions**; subtree
/// slots stay pinned. So the check is: for every node with ≥ 2 children,
/// the rows at that node's edge positions must be unit selectors of that
/// same node's edge columns, jointly forming a permutation — which *is*
/// the new child order. Loop rows are unconstrained here (they are vetted
/// by the dependence test and the per-statement rank machinery).
pub fn recover_ast(p: &Program, layout: &InstanceLayout, m: &IMat) -> Result<NewAst, String> {
    let n = layout.len();
    if m.nrows() != n || m.ncols() != n {
        return Err(format!(
            "matrix is {}×{}, expected {n}×{n}",
            m.nrows(),
            m.ncols()
        ));
    }
    match m.checked_det() {
        Ok(0) => return Err("matrix is singular".to_string()),
        Ok(_) => {}
        Err(_) => return Err("determinant computation overflows".to_string()),
    }
    let mut perms: HashMap<Option<LoopId>, Vec<usize>> = HashMap::new();
    // visit the virtual root and every loop
    let mut nodes: Vec<(Option<LoopId>, usize)> = vec![(None, p.root().len())];
    for l in p.loops() {
        nodes.push((Some(l), p.loop_decl(l).children.len()));
    }
    for (node, c) in nodes {
        // loops detached by surgery (e.g. after jamming) have no layout
        // slots and no children in the tree — skip them
        if let Some(l) = node {
            let present = layout
                .positions()
                .contains(&crate::instance::Position::Loop(l));
            if !present {
                continue;
            }
        }
        let name = match node {
            None => "<root>".to_string(),
            Some(l) => p.loop_decl(l).name.clone(),
        };
        let mut perm: Vec<usize> = (0..c).collect();
        if c >= 2 {
            let edge_pos: Vec<usize> = (0..c)
                .map(|j| {
                    layout
                        .edge_position(node, j)
                        .ok_or_else(|| format!("node {name} missing edge positions"))
                })
                .collect::<Result<_, _>>()?;
            let edge_set: std::collections::HashSet<usize> = edge_pos.iter().copied().collect();
            for j_row in 0..c {
                let row = edge_pos[j_row];
                let mut hit = None;
                for (col, &v) in m.row_slice(row).iter().enumerate() {
                    match v {
                        0 => {}
                        1 if edge_set.contains(&col) && hit.is_none() => hit = Some(col),
                        _ => {
                            return Err(format!(
                                "edge row {row} of node {name} is not a unit edge selector"
                            ));
                        }
                    }
                }
                let Some(colpos) = hit else {
                    return Err(format!("edge row {row} of node {name} selects no edge"));
                };
                let j_col = edge_pos.iter().position(|&e| e == colpos).unwrap();
                // new vector's slot for child j_row gets old child j_col's
                // edge: old child j_col becomes new child j_row
                perm[j_col] = j_row;
            }
            let mut seen = vec![false; c];
            for &i in &perm {
                if seen[i] {
                    return Err(format!(
                        "edge rows of node {name} do not form a permutation"
                    ));
                }
                seen[i] = true;
            }
            // edge columns must not be written with ±1-breaking values by
            // OTHER edge rows — already ensured; loop rows may read edge
            // columns (alignment), which is fine.
        }
        perms.insert(node, perm);
    }
    // Build the reordered program by applying each non-identity child
    // permutation (node identities are stable under reordering).
    let mut program = p.clone();
    for (node, perm) in &perms {
        if perm.iter().enumerate().any(|(i, &x)| i != x) {
            program = program.reorder_children(*node, perm);
        }
    }
    // Pinned-slot layout: same position vector, interpreted against the
    // reordered program.
    let new_layout = InstanceLayout::with_positions(&program, layout.positions().to_vec());
    Ok(NewAst {
        program,
        layout: new_layout,
        pos_map: (0..n).collect(),
        child_perms: perms,
    })
}

/// Interval arithmetic over dependence entries. A bound whose product
/// overflows is widened to "unbounded" — sound (the interval only grows)
/// and inconclusive intervals fall through to the exact polyhedral check.
fn scale_entry(e: DepEntry, k: Int) -> DepEntry {
    if k == 0 {
        return DepEntry::dist(0);
    }
    let (lo, hi) = (
        e.lo.and_then(|x| x.checked_mul(k)),
        e.hi.and_then(|x| x.checked_mul(k)),
    );
    if k > 0 {
        DepEntry { lo, hi }
    } else {
        DepEntry { lo: hi, hi: lo }
    }
}

fn add_entry(a: DepEntry, b: DepEntry) -> DepEntry {
    DepEntry {
        lo: a.lo.zip(b.lo).and_then(|(x, y)| x.checked_add(y)),
        hi: a.hi.zip(b.hi).and_then(|(x, y)| x.checked_add(y)),
    }
}

/// One transformed row of `M · d` as an interval.
pub(crate) fn transformed_entry(m: &IMat, d: &Dependence, row: usize) -> DepEntry {
    let mut acc = DepEntry::dist(0);
    for (j, &coef) in m.row_slice(row).iter().enumerate() {
        if coef != 0 {
            acc = add_entry(acc, scale_entry(d.entries[j], coef));
        }
    }
    acc
}

/// Outcome of one dependence under the transformation.
enum DepStatus {
    Satisfied,
    UnsatisfiedSelf,
    Violated(String),
}

/// Check legality of `m` (Definition 6).
///
/// Errors only when the exact polyhedral fallback overflows `i128`; the
/// interval fast path degrades conservatively instead.
pub fn check_legal(
    p: &Program,
    layout: &InstanceLayout,
    deps: &DependenceMatrix,
    m: &IMat,
) -> Result<LegalityReport, InlError> {
    let _span = inl_obs::span("legal.check");
    inl_obs::timeline::instant("stage.legality");
    let new_ast = recover_ast(p, layout, m);
    let mut violations = Vec::new();
    let mut unsatisfied_self = Vec::new();
    if let Ok(ast) = &new_ast {
        for (idx, d) in deps.deps.iter().enumerate() {
            match check_dep(p, layout, ast, m, d)? {
                DepStatus::Satisfied => {}
                DepStatus::UnsatisfiedSelf => unsatisfied_self.push(idx),
                DepStatus::Violated(reason) => violations.push(Violation { dep: idx, reason }),
            }
        }
    }
    if inl_obs::explain_enabled() {
        record_verdict(p, layout, deps, m, &new_ast, &violations, &unsatisfied_self);
    }
    Ok(LegalityReport {
        new_ast,
        violations,
        unsatisfied_self,
    })
}

/// Feed the decision-provenance layer: one record per [`check_legal`]
/// call, carrying the violating dependence row (Def. 6 failure) or the
/// proving projections `M·d` on success. Only called with the explain
/// layer enabled.
fn record_verdict(
    p: &Program,
    layout: &InstanceLayout,
    deps: &DependenceMatrix,
    m: &IMat,
    new_ast: &Result<NewAst, String>,
    violations: &[Violation],
    unsatisfied_self: &[usize],
) {
    use crate::provenance::{dep_label, dep_row, matrix_text};
    let subject = format!("transformation {}", matrix_text(m));
    let ast = match new_ast {
        Err(e) => {
            inl_obs::explain::reject("legal", subject, format!("no Fig. 5 block structure: {e}"))
                .feature("deps", deps.deps.len() as i64);
            return;
        }
        Ok(ast) => ast,
    };
    let projected = |d: &Dependence| -> String {
        let proj: Vec<String> = common_new_positions(layout, ast, d)
            .iter()
            .map(|&row| transformed_entry(m, d, row).to_string())
            .collect();
        format!("[{}]", proj.join(" "))
    };
    if let Some(v) = violations.first() {
        let d = &deps.deps[v.dep];
        let mut rec = inl_obs::explain::reject(
            "legal",
            subject,
            format!("{}: {}", dep_label(p, v.dep, d), v.reason),
        )
        .detail("dep_row", dep_row(d))
        .detail("projected_row", projected(d))
        .feature("deps", deps.deps.len() as i64)
        .feature("violations", violations.len() as i64);
        if violations.len() > 1 {
            let others: Vec<String> = violations[1..]
                .iter()
                .map(|v| {
                    format!(
                        "{}: {} (row {})",
                        dep_label(p, v.dep, &deps.deps[v.dep]),
                        v.reason,
                        dep_row(&deps.deps[v.dep])
                    )
                })
                .collect();
            rec = rec.detail("other_violations", others.join("; "));
        }
        drop(rec);
        return;
    }
    let proof: Vec<String> = deps
        .deps
        .iter()
        .enumerate()
        .map(|(idx, d)| {
            let tag = if unsatisfied_self.contains(&idx) {
                " (self, left to augmentation)"
            } else {
                ""
            };
            format!(
                "{}: row {} projects to {}{}",
                dep_label(p, idx, d),
                dep_row(d),
                projected(d),
                tag
            )
        })
        .collect();
    inl_obs::explain::accept(
        "legal",
        subject,
        format!(
            "all {} dependences lexicographically satisfied, {} self-dependences to augmentation",
            deps.deps.len(),
            unsatisfied_self.len()
        ),
    )
    .detail("proof", proof.join("; "))
    .feature("deps", deps.deps.len() as i64)
    .feature("unsatisfied_self", unsatisfied_self.len() as i64);
}

/// Positions (new-space, ascending = outside-in) of the loops common to the
/// dependence's source and target.
pub(crate) fn common_new_positions(
    layout: &InstanceLayout,
    ast: &NewAst,
    d: &Dependence,
) -> Vec<usize> {
    let ncommon = d.common_loops();
    let mut pos: Vec<usize> = d.src_loops[..ncommon]
        .iter()
        .map(|&l| ast.pos_map[layout.loop_position(l)])
        .collect();
    pos.sort_unstable();
    pos
}

fn check_dep(
    p: &Program,
    layout: &InstanceLayout,
    ast: &NewAst,
    m: &IMat,
    d: &Dependence,
) -> Result<DepStatus, InlError> {
    let common = common_new_positions(layout, ast, d);
    // fast path: interval arithmetic
    let mut need_exact = false;
    let mut decided: Option<DepStatus> = None;
    for (k, &row) in common.iter().enumerate() {
        let e = transformed_entry(m, d, row);
        if e.is_positive() {
            decided = Some(DepStatus::Satisfied);
            break;
        } else if e.is_zero() {
            continue;
        } else if e.is_negative() {
            decided = Some(DepStatus::Violated(format!(
                "projected entry {k} is negative ({e})"
            )));
            break;
        } else {
            need_exact = true;
            break;
        }
    }
    if !need_exact {
        inl_obs::counter_add!("legal.fast_path_hits", 1);
        return Ok(match decided {
            Some(s) => s,
            // all projected entries exactly zero
            None => zero_case(ast, d),
        });
    }
    // exact fallback: per-prefix feasibility on the dependence polyhedron
    inl_obs::counter_add!("legal.exact_fallbacks", 1);
    exact_check(p, layout, ast, m, d, &common)
}

fn zero_case(ast: &NewAst, d: &Dependence) -> DepStatus {
    if d.src == d.dst {
        DepStatus::UnsatisfiedSelf
    } else if ast.program.syntactically_before(d.src, d.dst) {
        DepStatus::Satisfied
    } else {
        DepStatus::Violated(
            "projection is zero but statements are reordered against the dependence".to_string(),
        )
    }
}

fn exact_check(
    p: &Program,
    layout: &InstanceLayout,
    ast: &NewAst,
    m: &IMat,
    d: &Dependence,
    common: &[usize],
) -> Result<DepStatus, InlError> {
    let _span = inl_obs::span("legal.exact");
    let nparams = p.nparams();
    let space = d.system.nvars();
    // new-space row `row` of M·Δ as a LinExpr over the dependence polyhedron
    let row_expr = |row: usize| -> Result<LinExpr, InlError> {
        let mut acc = LinExpr::zero(space);
        for (j, &coef) in m.row_slice(row).iter().enumerate() {
            if coef != 0 {
                let term = d
                    .checked_delta_expr(layout, nparams, j)?
                    .checked_scale(coef)?;
                acc = acc.checked_add(&term)?;
            }
        }
        Ok(acc)
    };
    // violation at prefix q: rows 0..q zero, row q negative. The prefix
    // system grows by one equality per step, so accumulate it once instead
    // of rebuilding the q-row prefix from scratch for every q.
    let mut prefix = d.system.clone();
    for (q, &row) in common.iter().enumerate() {
        let re = row_expr(row)?;
        let mut sys = prefix.clone();
        sys.add_ge(
            re.checked_neg()?
                .checked_sub(&LinExpr::constant(space, 1))?,
        );
        if is_empty(&sys) != Feasibility::Empty {
            return Ok(DepStatus::Violated(format!(
                "dependence instance with negative projected entry {q} exists"
            )));
        }
        prefix.add_eq(re);
    }
    // all-zero case feasible? `prefix` now carries every common row pinned
    // to zero.
    Ok(if is_empty(&prefix) != Feasibility::Empty {
        zero_case(ast, d)
    } else {
        DepStatus::Satisfied
    })
}

/// Convenience: check legality of a transformation sequence. An invalid
/// transform in the sequence reports [`inl_linalg::InlErrorKind::InvalidTarget`].
pub fn check_legal_seq(
    p: &Program,
    layout: &InstanceLayout,
    deps: &DependenceMatrix,
    seq: &[crate::transform::Transform],
) -> Result<LegalityReport, InlError> {
    let m = crate::transform::Transform::compose(p, layout, seq)?;
    check_legal(p, layout, deps, &m)
}

/// Group a report's unsatisfied self-dependences by statement (input to the
/// augmentation procedure).
pub fn unsatisfied_by_stmt(
    deps: &DependenceMatrix,
    report: &LegalityReport,
) -> HashMap<StmtId, Vec<usize>> {
    let mut map: HashMap<StmtId, Vec<usize>> = HashMap::new();
    for &idx in &report.unsatisfied_self {
        map.entry(deps.deps[idx].src).or_default().push(idx);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depend::analyze;
    use crate::transform::Transform;
    use inl_ir::zoo;

    fn looop(p: &Program, name: &str) -> LoopId {
        p.loops().find(|&l| p.loop_decl(l).name == name).unwrap()
    }
    fn stmt(p: &Program, name: &str) -> StmtId {
        p.stmts().find(|&s| p.stmt_decl(s).name == name).unwrap()
    }

    #[test]
    fn identity_is_legal() {
        let p = zoo::simple_cholesky();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        let m = IMat::identity(layout.len());
        let r = check_legal(&p, &layout, &deps, &m).expect("legality");
        assert!(r.is_legal(), "{:?}", r.violations);
        assert!(r.unsatisfied_self.is_empty());
    }

    #[test]
    fn cholesky_interchange_needs_statement_reorder() {
        // A naked I↔J interchange of the simplified Cholesky is ILLEGAL:
        // at new outer value v, S1@v (the sqrt) would run before
        // S2@(i, v), but S2@(i, v) writes the A(v) that S1@v consumes.
        let p = zoo::simple_cholesky();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        let i = looop(&p, "I");
        let j = looop(&p, "J");
        let inter = Transform::Interchange(i, j).matrix(&p, &layout);
        let r = check_legal(&p, &layout, &deps, &inter).expect("legality");
        assert!(!r.is_legal(), "naked interchange must be illegal");
        // Interchange combined with moving the J loop before S1 (the
        // left-looking form: all updates of column v, then its sqrt) is
        // legal — this is §6's point that loop permutation of matrix
        // factorizations needs the full framework.
        let m = Transform::compose(
            &p,
            &layout,
            &[
                Transform::ReorderChildren {
                    parent: Some(i),
                    perm: vec![1, 0],
                },
                Transform::Interchange(i, j),
            ],
        )
        .unwrap();
        let r2 = check_legal(&p, &layout, &deps, &m).expect("legality");
        assert!(r2.is_legal(), "{:?}", r2.violations);
        // and the recovered AST puts S2's loop first
        let ast = r2.new_ast.unwrap();
        let order = ast.program.stmts_in_syntactic_order();
        assert_eq!(ast.program.stmt_decl(order[0]).name, "S2");
    }

    #[test]
    fn reversal_of_carried_loop_is_illegal() {
        // reversing the I loop of the simplified Cholesky reverses the
        // flow dependence from S1 to S2 in later iterations
        let p = zoo::simple_cholesky();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        let m = Transform::Reverse(looop(&p, "I")).matrix(&p, &layout);
        let r = check_legal(&p, &layout, &deps, &m).expect("legality");
        assert!(!r.is_legal());
    }

    #[test]
    fn wavefront_interchange_legal_reversal_illegal() {
        let p = zoo::wavefront();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        let i = looop(&p, "I");
        let j = looop(&p, "J");
        let inter = Transform::Interchange(i, j).matrix(&p, &layout);
        assert!(check_legal(&p, &layout, &deps, &inter)
            .expect("legality")
            .is_legal());
        let rev = Transform::Reverse(i).matrix(&p, &layout);
        assert!(!check_legal(&p, &layout, &deps, &rev)
            .expect("legality")
            .is_legal());
        // skewing J by I keeps all dependences lexicographically positive
        let skew = Transform::Skew {
            target: j,
            source: i,
            factor: 1,
        }
        .matrix(&p, &layout);
        assert!(check_legal(&p, &layout, &deps, &skew)
            .expect("legality")
            .is_legal());
    }

    #[test]
    fn paper_skew_example_legal_with_unsatisfied_self_dep() {
        // §5.4: M = skew of I by -J on the augmentation example is legal,
        // and S1's self dependence is left unsatisfied (to be carried by
        // the added loop).
        let p = zoo::augmentation_example();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        let m = Transform::Skew {
            target: looop(&p, "I"),
            source: looop(&p, "J"),
            factor: -1,
        }
        .matrix(&p, &layout);
        let r = check_legal(&p, &layout, &deps, &m).expect("legality");
        assert!(r.is_legal(), "{:?}", r.violations);
        let s1 = stmt(&p, "S1");
        let unsat = unsatisfied_by_stmt(&deps, &r);
        assert!(
            unsat.contains_key(&s1),
            "S1 should have unsatisfied self deps: {:?}",
            r.unsatisfied_self
        );
    }

    #[test]
    fn statement_reorder_against_dependence_is_illegal() {
        // moving S2's loop before S1 breaks the S1 -> S2 flow dependence at
        // equal I
        let p = zoo::simple_cholesky();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        let i = looop(&p, "I");
        let m = Transform::ReorderChildren {
            parent: Some(i),
            perm: vec![1, 0],
        }
        .matrix(&p, &layout);
        let r = check_legal(&p, &layout, &deps, &m).expect("legality");
        assert!(!r.is_legal());
    }

    #[test]
    fn recover_ast_reads_child_permutation() {
        let p = zoo::simple_cholesky();
        let layout = InstanceLayout::new(&p);
        let i = looop(&p, "I");
        let m = Transform::ReorderChildren {
            parent: Some(i),
            perm: vec![1, 0],
        }
        .matrix(&p, &layout);
        let ast = recover_ast(&p, &layout, &m).unwrap();
        assert_eq!(ast.child_perms[&Some(i)], vec![1, 0]);
        // in the new AST the J loop comes first
        let order = ast.program.stmts_in_syntactic_order();
        assert_eq!(ast.program.stmt_decl(order[0]).name, "S2");
    }

    #[test]
    fn recover_ast_rejects_garbage() {
        let p = zoo::simple_cholesky();
        let layout = InstanceLayout::new(&p);
        // singular
        let z = IMat::zeros(4, 4);
        assert!(recover_ast(&p, &layout, &z).is_err());
        // edge row smeared into loop columns
        let mut m = IMat::identity(4);
        m[(1, 0)] = 1; // edge row reads the I loop
        assert!(recover_ast(&p, &layout, &m).is_err());
        // wrong size
        assert!(recover_ast(&p, &layout, &IMat::identity(3)).is_err());
    }

    #[test]
    fn paper_section6_left_looking_matrix_is_legal() {
        // §6's worked example: transform right-looking (KIJ) Cholesky to
        // the traditional left-looking form. The paper prints a matrix C
        // whose loop rows are inconsistent with the position layout its
        // own §3 vectors and §6 dependence matrix fix (see EXPERIMENTS.md,
        // E6); in that layout — [K, e₃, e₂, e₁, J, L, I] — the correct
        // left-looking matrix has the same edge rows and the loop rows:
        //   new outer ← old L position (the column being updated, reaching
        //               every statement through the diagonal padding),
        //   new J slot ← old J, new L slot ← old K, new I slot ← old I.
        let p = zoo::cholesky_kij();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        let c = IMat::from_rows(&[
            &[0, 0, 0, 0, 0, 1, 0][..], // outer = old L position
            &[0, 0, 1, 0, 0, 0, 0],     // edge rows: children (S1, I, J)
            &[0, 0, 0, 1, 0, 0, 0],     //   permuted to (J, S1, I)
            &[0, 1, 0, 0, 0, 0, 0],
            &[0, 0, 0, 0, 1, 0, 0], // J slot = old J
            &[1, 0, 0, 0, 0, 0, 0], // L slot = old K
            &[0, 0, 0, 0, 0, 0, 1], // I slot = old I
        ]);
        let r = check_legal(&p, &layout, &deps, &c).expect("legality");
        assert!(r.is_legal(), "violations: {:?}", r.violations);
        assert!(
            r.unsatisfied_self.is_empty(),
            "per-statement transforms are nonsingular"
        );
        let ast = r.new_ast.unwrap();
        let k = looop(&p, "K");
        // old children (S1, I, J) → new order (J, S1, I): perm [1, 2, 0]
        assert_eq!(ast.child_perms[&Some(k)], vec![1, 2, 0]);
        let order = ast.program.stmts_in_syntactic_order();
        let names: Vec<_> = order
            .iter()
            .map(|&s| ast.program.stmt_decl(s).name.clone())
            .collect();
        assert_eq!(names, vec!["S3", "S1", "S2"]);
    }

    #[test]
    fn paper_section6_printed_matrix_is_rejected() {
        // The literally-printed C of §6 (first row selecting the old J
        // position) reverses the flow from S3's column-k updates to S2's
        // column-k division in our (paper-§3-faithful) layout; the checker
        // must catch it.
        let p = zoo::cholesky_kij();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        let c = IMat::from_rows(&[
            &[0, 0, 0, 0, 1, 0, 0][..],
            &[0, 0, 1, 0, 0, 0, 0],
            &[0, 0, 0, 1, 0, 0, 0],
            &[0, 1, 0, 0, 0, 0, 0],
            &[1, 0, 0, 0, 0, 0, 0],
            &[0, 0, 0, 0, 0, 1, 0],
            &[0, 0, 0, 0, 0, 0, 1],
        ]);
        let r = check_legal(&p, &layout, &deps, &c).expect("legality");
        assert!(!r.is_legal());
    }

    #[test]
    fn forward_alignment_breaking_flow_is_illegal() {
        // aligning S1 forward by 1 w.r.t. I delays each pivot sqrt to the
        // next outer iteration; S2@(I, ·) reads A(I) written by S1@I, so
        // the flow dependence is reversed.
        let p = zoo::simple_cholesky();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        let s1 = stmt(&p, "S1");
        let i = looop(&p, "I");
        let fwd = Transform::Align {
            stmt: s1,
            looop: i,
            offset: 1,
        }
        .matrix(&p, &layout);
        let r = check_legal(&p, &layout, &deps, &fwd).expect("legality");
        assert!(!r.is_legal());
    }
}
