//! The completion procedure (§6 of the paper).
//!
//! Given a dependence matrix and a *partial* transformation — the desired
//! rows for the first few loop slots — produce a complete legal
//! transformation matrix. This generalizes the Li–Pingali completion for
//! perfectly nested loops \[10\]:
//!
//! * loop slots are processed outside-in; each gets either the next
//!   user-supplied row or a greedily chosen candidate (unit position
//!   selectors, then their negations, then pairwise skew combinations)
//!   that keeps every still-active dependence non-negative — preferring
//!   candidates that *strictly satisfy* the most dependences;
//! * dependences whose projection ends up all-zero between *different*
//!   statements are satisfied syntactically: they impose "source's child
//!   before target's child" constraints at the divergence node, which a
//!   topological sort turns into the child permutations (the edge rows);
//! * leftover all-zero *self* dependences are legal — the augmentation
//!   step (§5.4) adds loops that carry them.
//!
//! The §6 worked example — completing "make the updated-column position
//! outermost" on right-looking Cholesky into the left-looking form — is
//! reproduced in the tests.

use crate::depend::{DepEntry, Dependence, DependenceMatrix};
use crate::instance::{InstanceLayout, Position};
use crate::legal::{check_legal, LegalityReport};
use inl_ir::{LoopId, Node, Program, StmtId};
use inl_linalg::{IMat, IVec, InlError, Int};
use inl_poly::{is_empty, Feasibility, LinExpr};
use std::collections::HashMap;

/// Why completion failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompletionError {
    /// A user-supplied row would make some dependence's projection
    /// negative.
    PartialRowIllegal(usize),
    /// A user-supplied row's length does not match the instance-vector
    /// length.
    PartialRowBadLength {
        /// Index of the offending row in `partial`.
        row: usize,
        /// Its actual length.
        got: usize,
        /// The instance-vector length it must have.
        want: usize,
    },
    /// More partial rows than loop slots.
    TooManyRows,
    /// No candidate row was valid for the given slot.
    NoCandidate(usize),
    /// The syntactic ordering constraints are cyclic.
    OrderingCycle,
    /// The assembled matrix failed the final legality check.
    FinalCheckFailed(String),
    /// Exact arithmetic overflowed (or a polyhedral budget was exhausted)
    /// while evaluating candidate rows.
    Arithmetic(InlError),
}

impl From<InlError> for CompletionError {
    fn from(e: InlError) -> Self {
        CompletionError::Arithmetic(e)
    }
}

/// A successful completion.
#[derive(Clone, Debug)]
pub struct Completion {
    /// The complete legal transformation matrix.
    pub matrix: IMat,
    /// Its legality report (always legal; carries the recovered AST and
    /// the self-dependences left to augmentation).
    pub report: LegalityReport,
}

/// Per-dependence completion state.
struct DepState<'a> {
    /// Index into `deps.deps` (names the dependence in explain records).
    idx: usize,
    dep: &'a Dependence,
    /// Common loop positions (ascending) of src/dst.
    common: Vec<usize>,
    /// Rows already applied at this dependence's common slots that may be
    /// zero on some instances (context for exact queries).
    zero_context: Vec<IVec>,
    satisfied: bool,
}

/// Interval of `row · entries`. Bounds that overflow widen to "unbounded"
/// — sound, and inconclusive intervals fall through to the exact check.
fn row_dot(row: &IVec, entries: &[DepEntry]) -> DepEntry {
    let mut acc = DepEntry::dist(0);
    for (j, &c) in row.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let e = entries[j];
        let scaled = if c > 0 {
            DepEntry {
                lo: e.lo.and_then(|x| x.checked_mul(c)),
                hi: e.hi.and_then(|x| x.checked_mul(c)),
            }
        } else {
            DepEntry {
                lo: e.hi.and_then(|x| x.checked_mul(c)),
                hi: e.lo.and_then(|x| x.checked_mul(c)),
            }
        };
        acc = DepEntry {
            lo: acc.lo.zip(scaled.lo).and_then(|(a, b)| a.checked_add(b)),
            hi: acc.hi.zip(scaled.hi).and_then(|(a, b)| a.checked_add(b)),
        };
    }
    acc
}

/// `row · Δ` as a linear expression over the dependence polyhedron.
fn row_expr(
    layout: &InstanceLayout,
    nparams: usize,
    d: &Dependence,
    row: &IVec,
) -> Result<LinExpr, InlError> {
    let space = d.system.nvars();
    let mut acc = LinExpr::zero(space);
    for (j, &c) in row.iter().enumerate() {
        if c != 0 {
            let term = d.checked_delta_expr(layout, nparams, j)?.checked_scale(c)?;
            acc = acc.checked_add(&term)?;
        }
    }
    Ok(acc)
}

/// Outcome of applying a row to a dependence.
enum RowEffect {
    /// Every instance gets a strictly positive value: dependence satisfied.
    Satisfies,
    /// Identically zero (or possibly zero, never negative): stays active.
    /// The boolean says whether the row must join the zero context.
    NonNegative(bool),
    /// Some instance would go negative: the row is invalid.
    Invalid,
}

fn apply_row(
    layout: &InstanceLayout,
    nparams: usize,
    st: &DepState<'_>,
    row: &IVec,
) -> Result<RowEffect, InlError> {
    let v = row_dot(row, &st.dep.entries);
    if v.is_positive() {
        return Ok(RowEffect::Satisfies);
    }
    if v.is_zero() {
        return Ok(RowEffect::NonNegative(false));
    }
    // Both polyhedral questions below share the dependence system with the
    // zero context pinned, and the candidate row as a LinExpr — build each
    // once here instead of per query.
    let ctx = context_system(layout, nparams, st)?;
    let re = row_expr(layout, nparams, st.dep, row)?;
    if v.lo.is_some_and(|l| l >= 0) {
        // never negative; strictly positive unless it can be 0
        return Ok(if can_be(&ctx, &re, 0)? {
            RowEffect::NonNegative(true)
        } else {
            RowEffect::Satisfies
        });
    }
    // interval admits negative values: ask the polyhedron
    Ok(if can_be_negative(&ctx, &re)? {
        RowEffect::Invalid
    } else if can_be(&ctx, &re, 0)? {
        RowEffect::NonNegative(true)
    } else {
        RowEffect::Satisfies
    })
}

fn context_system(
    layout: &InstanceLayout,
    nparams: usize,
    st: &DepState<'_>,
) -> Result<inl_poly::System, InlError> {
    let mut sys = st.dep.system.clone();
    for z in &st.zero_context {
        sys.add_eq(row_expr(layout, nparams, st.dep, z)?);
    }
    Ok(sys)
}

/// Can `row_expr` go strictly negative over the context polyhedron?
fn can_be_negative(ctx: &inl_poly::System, row_expr: &LinExpr) -> Result<bool, InlError> {
    let mut sys = ctx.clone();
    let space = sys.nvars();
    sys.add_ge(
        row_expr
            .checked_neg()?
            .checked_sub(&LinExpr::constant(space, 1))?,
    );
    Ok(is_empty(&sys) != Feasibility::Empty)
}

/// Can `row_expr` take exactly `value` over the context polyhedron?
fn can_be(ctx: &inl_poly::System, row_expr: &LinExpr, value: Int) -> Result<bool, InlError> {
    let mut sys = ctx.clone();
    let space = sys.nvars();
    sys.add_eq(row_expr.checked_sub(&LinExpr::constant(space, value))?);
    Ok(is_empty(&sys) != Feasibility::Empty)
}

/// Loop-slot positions of the layout, outside-in.
fn loop_slot_positions(layout: &InstanceLayout) -> Vec<usize> {
    layout
        .positions()
        .iter()
        .enumerate()
        .filter(|(_, pos)| matches!(pos, Position::Loop(_)))
        .map(|(i, _)| i)
        .collect()
}

/// Fresh per-dependence completion state for every dependence.
fn build_states<'a>(layout: &InstanceLayout, deps: &'a DependenceMatrix) -> Vec<DepState<'a>> {
    deps.deps
        .iter()
        .enumerate()
        .map(|(idx, d)| {
            let ncommon = d.common_loops();
            let mut common: Vec<usize> = d.src_loops[..ncommon]
                .iter()
                .map(|&l| layout.loop_position(l))
                .collect();
            common.sort_unstable();
            DepState {
                idx,
                dep: d,
                common,
                zero_context: Vec::new(),
                satisfied: false,
            }
        })
        .collect()
}

/// Evaluate a candidate row at `slot` against all active dependences whose
/// common slots include this slot; returns the first violated dependence's
/// index (into `deps.deps`), or `None` if the row is legal here.
fn evaluate_at(
    layout: &InstanceLayout,
    nparams: usize,
    slot: usize,
    row: &IVec,
    states: &[DepState<'_>],
) -> Result<Option<usize>, InlError> {
    for st in states.iter() {
        if st.satisfied || !st.common.contains(&slot) {
            continue;
        }
        if matches!(apply_row(layout, nparams, st, row)?, RowEffect::Invalid) {
            return Ok(Some(st.idx));
        }
    }
    Ok(None)
}

/// Commit a validated row at `slot`: mark newly satisfied dependences and
/// extend zero contexts where the row may be zero on some instances.
fn commit_at(
    layout: &InstanceLayout,
    nparams: usize,
    slot: usize,
    row: &IVec,
    states: &mut [DepState<'_>],
) -> Result<(), InlError> {
    for st in states.iter_mut() {
        if st.satisfied || !st.common.contains(&slot) {
            continue;
        }
        match apply_row(layout, nparams, st, row)? {
            RowEffect::Invalid => unreachable!("validated"),
            RowEffect::Satisfies => st.satisfied = true,
            RowEffect::NonNegative(needs_ctx) => {
                if needs_ctx {
                    st.zero_context.push(row.clone());
                }
            }
        }
    }
    Ok(())
}

/// Outcome of [`check_prefix`]: either every supplied row keeps every
/// dependence projection non-negative, or the check names the first row and
/// dependence that clash.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PrefixCheck {
    /// The prefix is extendable: no dependence projection goes negative
    /// under the supplied rows.
    Legal,
    /// Row `row` (index into `partial`) drives dependence `dep` (index
    /// into [`DependenceMatrix::deps`]) negative — every completion of
    /// this prefix is illegal, so a search can prune the whole subtree.
    Violation {
        /// Index of the offending row in `partial`.
        row: usize,
        /// Index of the violated dependence in the dependence matrix.
        dep: usize,
    },
}

/// Check whether a *prefix* of transformation rows can be extended to a
/// legal matrix, without running the completion itself.
///
/// This is the pruning predicate of the auto-scheduler (`inl-sched`): a
/// search over outer-row choices calls this at every tree node, and a
/// [`PrefixCheck::Violation`] kills the entire subtree below the node — the
/// dimension-matching idea from Acharya–Bondhugula applied to the paper's
/// dependence projections. The check is sound and complete for prefix
/// legality (it is exactly the validation pass [`complete_transform`] runs
/// over user-supplied rows), but deliberately emits **no** explain records:
/// callers running thousands of probes record their own decisions.
pub fn check_prefix(
    p: &Program,
    layout: &InstanceLayout,
    deps: &DependenceMatrix,
    partial: &[IVec],
) -> Result<PrefixCheck, CompletionError> {
    let _span = inl_obs::span("complete.prefix");
    inl_obs::counter_add!("complete.prefix_checks", 1);
    let n = layout.len();
    let nparams = p.nparams();
    let loop_slots = loop_slot_positions(layout);
    if partial.len() > loop_slots.len() {
        return Err(CompletionError::TooManyRows);
    }
    let mut states = build_states(layout, deps);
    for (slot_idx, &slot) in loop_slots.iter().take(partial.len()).enumerate() {
        let row = &partial[slot_idx];
        if row.len() != n {
            return Err(CompletionError::PartialRowBadLength {
                row: slot_idx,
                got: row.len(),
                want: n,
            });
        }
        if let Some(dep) = evaluate_at(layout, nparams, slot, row, &states)? {
            return Ok(PrefixCheck::Violation { row: slot_idx, dep });
        }
        commit_at(layout, nparams, slot, row, &mut states)?;
    }
    Ok(PrefixCheck::Legal)
}

/// Complete a partial transformation into a full legal matrix.
///
/// `partial` supplies desired rows (over source vector positions) for the
/// outermost loop slots, in order; it may be empty.
pub fn complete_transform(
    p: &Program,
    layout: &InstanceLayout,
    deps: &DependenceMatrix,
    partial: &[IVec],
) -> Result<Completion, CompletionError> {
    let _span = inl_obs::span("complete.transform");
    inl_obs::timeline::instant("stage.completion");
    let n = layout.len();
    let nparams = p.nparams();
    let loop_slots = loop_slot_positions(layout);
    if partial.len() > loop_slots.len() {
        return Err(CompletionError::TooManyRows);
    }

    // dependency state
    let mut states: Vec<DepState<'_>> = build_states(layout, deps);

    let mut chosen_rows: Vec<(usize, IVec)> = Vec::new(); // (slot, row)
    let mut used_positions: Vec<bool> = vec![false; n];
    for (slot_idx, &slot) in loop_slots.iter().enumerate() {
        // evaluate a candidate against all active deps whose common slots
        // include this slot; returns the first violated dependence's index
        let evaluate =
            |row: &IVec, states: &Vec<DepState<'_>>| -> Result<Option<usize>, InlError> {
                evaluate_at(layout, nparams, slot, row, states)
            };
        let commit = |row: &IVec, states: &mut Vec<DepState<'_>>| -> Result<(), InlError> {
            commit_at(layout, nparams, slot, row, states)
        };

        let independent = |row: &IVec, chosen: &[(usize, IVec)]| -> Result<bool, InlError> {
            let mut m = IMat::zeros(0, 0);
            for (_, r) in chosen {
                m.push_row(r);
            }
            let before = if m.nrows() == 0 { 0 } else { m.checked_rank()? };
            m.push_row(row);
            Ok(m.checked_rank()? > before)
        };

        if slot_idx < partial.len() {
            let row = partial[slot_idx].clone();
            if row.len() != n {
                return Err(CompletionError::PartialRowBadLength {
                    row: slot_idx,
                    got: row.len(),
                    want: n,
                });
            }
            if let Some(dep_idx) = evaluate(&row, &states)? {
                if inl_obs::explain_enabled() {
                    let d = &deps.deps[dep_idx];
                    inl_obs::explain::reject(
                        "complete",
                        format!(
                            "partial row {slot_idx} {}",
                            crate::provenance::row_text(&row)
                        ),
                        format!(
                            "{}: projection of row would go negative",
                            crate::provenance::dep_label(p, dep_idx, d)
                        ),
                    )
                    .detail("dep_row", crate::provenance::dep_row(d))
                    .feature("slot", slot as i64)
                    .feature("deps", deps.deps.len() as i64);
                }
                return Err(CompletionError::PartialRowIllegal(slot_idx));
            }
            if inl_obs::explain_enabled() {
                inl_obs::explain::accept(
                    "complete",
                    format!(
                        "partial row {slot_idx} {}",
                        crate::provenance::row_text(&row)
                    ),
                    "row keeps every active dependence non-negative",
                )
                .feature("slot", slot as i64);
            }
            commit(&row, &mut states)?;
            for (j, &v) in row.iter().enumerate() {
                if v != 0 {
                    used_positions[j] = true;
                }
            }
            chosen_rows.push((slot, row));
            continue;
        }
        // Candidate preference mirrors the paper's worked example: keep the
        // remaining original loops in their original order. Try the slot's
        // own selector if unused, then the unused loop selectors outside-in,
        // then reversals, then skew combinations; take the first valid,
        // linearly independent candidate.
        let mut candidates: Vec<IVec> = Vec::new();
        if !used_positions[slot] {
            candidates.push(IVec::unit(n, slot));
        }
        for &q in &loop_slots {
            if !used_positions[q] && q != slot {
                candidates.push(IVec::unit(n, q));
            }
        }
        for &q in &loop_slots {
            candidates.push(IVec::unit(n, q)); // used ones (may combine via independence)
            candidates.push(-&IVec::unit(n, q));
        }
        for &a in &loop_slots {
            for &b in &loop_slots {
                if a != b {
                    candidates.push(&IVec::unit(n, a) + &IVec::unit(n, b));
                    candidates.push(&IVec::unit(n, a) - &IVec::unit(n, b));
                }
            }
        }
        let mut picked: Option<IVec> = None;
        let mut tried = 0i64;
        for cand in &candidates {
            inl_obs::counter_add!("complete.candidates_tried", 1);
            tried += 1;
            if independent(cand, &chosen_rows)? && evaluate(cand, &states)?.is_none() {
                picked = Some(cand.clone());
                break;
            }
        }
        let Some(row) = picked else {
            if inl_obs::explain_enabled() {
                inl_obs::explain::reject(
                    "complete",
                    format!("loop slot {slot}"),
                    format!("no legal, linearly independent candidate row among {tried} tried"),
                )
                .feature("slot", slot as i64)
                .feature("candidates_tried", tried);
            }
            return Err(CompletionError::NoCandidate(slot_idx));
        };
        if inl_obs::explain_enabled() {
            inl_obs::explain::note(
                "complete",
                format!("loop slot {slot}"),
                format!(
                    "chose row {} after {tried} candidates",
                    crate::provenance::row_text(&row)
                ),
            )
            .feature("slot", slot as i64)
            .feature("candidates_tried", tried);
        }
        commit(&row, &mut states)?;
        for (j, &v) in row.iter().enumerate() {
            if v != 0 {
                used_positions[j] = true;
            }
        }
        chosen_rows.push((slot, row));
    }

    // syntactic ordering constraints from deps still active between
    // different statements
    let mut constraints: HashMap<Option<LoopId>, Vec<(usize, usize)>> = HashMap::new();
    let mut constraint_deps: HashMap<Option<LoopId>, Vec<usize>> = HashMap::new();
    for st in &states {
        if st.satisfied || st.dep.src == st.dep.dst {
            continue;
        }
        let (node, ca, cb) = divergence(p, st.dep.src, st.dep.dst);
        if ca != cb {
            constraints.entry(node).or_default().push((ca, cb));
            constraint_deps.entry(node).or_default().push(st.idx);
        }
    }
    // topological sort of each constrained node's children
    let mut perms: HashMap<Option<LoopId>, Vec<usize>> = HashMap::new();
    for (node, edges) in &constraints {
        let c = match node {
            None => p.root().len(),
            Some(l) => p.loop_decl(*l).children.len(),
        };
        let node_name = || match node {
            None => "<root>".to_string(),
            Some(l) => format!("loop {}", p.loop_decl(*l).name),
        };
        let Some(order) = topo_order(c, edges) else {
            if inl_obs::explain_enabled() {
                let evidence: Vec<String> = constraint_deps[node]
                    .iter()
                    .zip(edges)
                    .map(|(&idx, &(ca, cb))| {
                        format!(
                            "{} (row {}) needs child {ca} before child {cb}",
                            crate::provenance::dep_label(p, idx, &deps.deps[idx]),
                            crate::provenance::dep_row(&deps.deps[idx])
                        )
                    })
                    .collect();
                inl_obs::explain::reject(
                    "complete",
                    format!("child ordering at {}", node_name()),
                    "all-zero cross-statement dependences impose a cyclic child order",
                )
                .detail("constraints", evidence.join("; "))
                .feature("constraints", edges.len() as i64);
            }
            return Err(CompletionError::OrderingCycle);
        };
        // order[i] = old child at new index i  =>  perm[old] = new
        let mut perm = vec![0usize; c];
        for (newi, &old) in order.iter().enumerate() {
            perm[old] = newi;
        }
        perms.insert(*node, perm);
    }

    // assemble the matrix
    let mut m = IMat::zeros(n, n);
    for (slot, row) in &chosen_rows {
        for (j, &v) in row.iter().enumerate() {
            m[(*slot, j)] = v;
        }
    }
    for (i, pos) in layout.positions().iter().enumerate() {
        if let Position::Edge { parent, child } = *pos {
            let new_child = perms.get(&parent).map_or(child, |perm| perm[child]);
            let target = layout.edge_position(parent, new_child).expect("edge");
            m[(target, i)] = 1;
        }
    }

    let report = check_legal(p, layout, deps, &m)?;
    if !report.is_legal() {
        let why = report
            .new_ast
            .as_ref()
            .err()
            .cloned()
            .unwrap_or_else(|| format!("{:?}", report.violations));
        if inl_obs::explain_enabled() {
            // check_legal above already recorded the violating dependence
            // row; this record ties the failure to the completion attempt.
            inl_obs::explain::reject(
                "complete",
                format!("assembled matrix {}", crate::provenance::matrix_text(&m)),
                format!("final legality check failed: {why}"),
            )
            .feature("partial_rows", partial.len() as i64);
        }
        return Err(CompletionError::FinalCheckFailed(why));
    }
    if inl_obs::explain_enabled() {
        inl_obs::explain::accept(
            "complete",
            format!("assembled matrix {}", crate::provenance::matrix_text(&m)),
            format!(
                "completed {} partial rows to a legal transformation ({} self-dependences to augmentation)",
                partial.len(),
                report.unsatisfied_self.len()
            ),
        )
        .feature("partial_rows", partial.len() as i64)
        .feature("unsatisfied_self", report.unsatisfied_self.len() as i64)
        .feature("deps", deps.deps.len() as i64);
    }
    Ok(Completion { matrix: m, report })
}

/// The node at which the paths to two statements diverge, and the child
/// indices each takes there.
fn divergence(p: &Program, a: StmtId, b: StmtId) -> (Option<LoopId>, usize, usize) {
    let la = p.loops_surrounding(a);
    let lb = p.loops_surrounding(b);
    let ncommon = la.iter().zip(&lb).take_while(|(x, y)| x == y).count();
    let node: Option<LoopId> = if ncommon == 0 {
        None
    } else {
        Some(la[ncommon - 1])
    };
    let children: &[Node] = match node {
        None => p.root(),
        Some(l) => &p.loop_decl(l).children,
    };
    let towards = |s: StmtId, next: Option<LoopId>| -> usize {
        let target = match next {
            Some(l) => Node::Loop(l),
            None => Node::Stmt(s),
        };
        children
            .iter()
            .position(|&ch| crate::transform::node_contains(p, ch, target))
            .expect("child towards statement")
    };
    let ca = towards(a, la.get(ncommon).copied());
    let cb = towards(b, lb.get(ncommon).copied());
    (node, ca, cb)
}

/// Stable topological order of `0..c` under `before` edges; `None` on a
/// cycle. Prefers the smallest available original index (stability).
#[allow(clippy::question_mark)] // the let-else reads better than `?` on find()
fn topo_order(c: usize, edges: &[(usize, usize)]) -> Option<Vec<usize>> {
    let mut indeg = vec![0usize; c];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); c];
    for &(a, b) in edges {
        if a == b {
            return None;
        }
        adj[a].push(b);
        indeg[b] += 1;
    }
    let mut out = Vec::with_capacity(c);
    let mut done = vec![false; c];
    while out.len() < c {
        let Some(next) = (0..c).find(|&i| !done[i] && indeg[i] == 0) else {
            return None;
        };
        done[next] = true;
        out.push(next);
        for &t in &adj[next] {
            indeg[t] -= 1;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depend::analyze;
    use crate::perstmt::schedule_all;
    use inl_ir::zoo;

    fn looop(p: &Program, name: &str) -> LoopId {
        p.loops().find(|&l| p.loop_decl(l).name == name).unwrap()
    }

    #[test]
    fn empty_partial_completes_to_legal() {
        for p in [
            zoo::simple_cholesky(),
            zoo::cholesky_kij(),
            zoo::wavefront(),
        ] {
            let layout = InstanceLayout::new(&p);
            let deps = analyze(&p, &layout).expect("analysis");
            let c = complete_transform(&p, &layout, &deps, &[]).expect("completes");
            assert!(c.report.is_legal(), "{}", p.name());
        }
    }

    #[test]
    fn paper_section6_completion() {
        // §6: completing the one-row partial transformation on full
        // Cholesky yields a legal matrix that (a) reorders K's children to
        // [J-nest, S1, I-loop] and (b) has the left-looking per-statement
        // permutation (k,j,l) → (l,j,k) for S3, with every per-statement
        // transform non-singular (no augmentation).
        let p = zoo::cholesky_kij();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        // "make the updated-column position outermost": the unit selector
        // of the L position (see EXPERIMENTS.md E6 for why this is the
        // corrected form of the paper's printed first row)
        let l = looop(&p, "L");
        let partial = vec![IVec::unit(layout.len(), layout.loop_position(l))];
        let c = complete_transform(&p, &layout, &deps, &partial).expect("completes");
        assert!(c.report.is_legal());
        let ast = c.report.new_ast.as_ref().unwrap();
        let k = looop(&p, "K");
        assert_eq!(
            ast.child_perms[&Some(k)],
            vec![1, 2, 0],
            "children reorder to J,S1,I"
        );
        let scheds =
            schedule_all(&p, &layout, ast, &c.matrix, &deps, &c.report).expect("schedules");
        for s in &scheds {
            assert_eq!(s.n_aug, 0, "no augmentation needed (paper's claim)");
            assert!(s.n_s.is_unimodular());
        }
        let s3 = p.stmts().find(|&s| p.stmt_decl(s).name == "S3").unwrap();
        let sched = scheds.iter().find(|s| s.stmt == s3).unwrap();
        assert_eq!(
            sched.rows,
            IMat::from_rows(&[&[0, 0, 1][..], &[0, 1, 0], &[1, 0, 0]]),
            "S3 is scheduled left-looking: (k,j,l) → (l,j,k)"
        );
    }

    #[test]
    fn simple_cholesky_interchange_completion() {
        // partial: new outer = old J position. Completion must discover
        // the statement reordering (S2's loop before S1) that makes the
        // interchange legal.
        let p = zoo::simple_cholesky();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        let j = looop(&p, "J");
        let partial = vec![IVec::unit(layout.len(), layout.loop_position(j))];
        let c = complete_transform(&p, &layout, &deps, &partial).expect("completes");
        assert!(c.report.is_legal());
        let ast = c.report.new_ast.as_ref().unwrap();
        let order = ast.program.stmts_in_syntactic_order();
        assert_eq!(
            ast.program.stmt_decl(order[0]).name,
            "S2",
            "updates before sqrt"
        );
    }

    #[test]
    fn illegal_partial_row_rejected() {
        // new outer = −I reverses every I-carried dependence
        let p = zoo::simple_cholesky();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        let i = looop(&p, "I");
        let partial = vec![-&IVec::unit(layout.len(), layout.loop_position(i))];
        assert!(matches!(
            complete_transform(&p, &layout, &deps, &partial),
            Err(CompletionError::PartialRowIllegal(0))
        ));
    }

    #[test]
    fn too_many_rows_rejected() {
        let p = zoo::perfect_nest();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        let rows = vec![IVec::unit(2, 0), IVec::unit(2, 1), IVec::unit(2, 0)];
        assert!(matches!(
            complete_transform(&p, &layout, &deps, &rows),
            Err(CompletionError::TooManyRows)
        ));
    }

    #[test]
    fn prefix_check_agrees_with_completion() {
        // check_prefix is exactly the validation pass complete_transform
        // runs over partial rows: a Violation must imply
        // PartialRowIllegal, and Legal prefixes of unit rows must complete.
        let p = zoo::simple_cholesky();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        let i = looop(&p, "I");
        let j = looop(&p, "J");
        let pos = |l| layout.loop_position(l);
        let ok = vec![IVec::unit(layout.len(), pos(j))];
        assert_eq!(
            check_prefix(&p, &layout, &deps, &ok).unwrap(),
            PrefixCheck::Legal
        );
        assert!(complete_transform(&p, &layout, &deps, &ok).is_ok());
        let bad = vec![-&IVec::unit(layout.len(), pos(i))];
        let PrefixCheck::Violation { row, dep } = check_prefix(&p, &layout, &deps, &bad).unwrap()
        else {
            panic!("reversed I must violate a dependence");
        };
        assert_eq!(row, 0);
        assert!(dep < deps.deps.len());
        assert!(matches!(
            complete_transform(&p, &layout, &deps, &bad),
            Err(CompletionError::PartialRowIllegal(0))
        ));
    }

    #[test]
    fn prefix_check_validates_shape() {
        let p = zoo::perfect_nest();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        assert!(matches!(
            check_prefix(&p, &layout, &deps, &[IVec::unit(3, 0)]),
            Err(CompletionError::PartialRowBadLength { .. })
        ));
        let rows = vec![IVec::unit(2, 0), IVec::unit(2, 1), IVec::unit(2, 0)];
        assert!(matches!(
            check_prefix(&p, &layout, &deps, &rows),
            Err(CompletionError::TooManyRows)
        ));
    }

    #[test]
    fn completion_is_deterministic() {
        let p = zoo::cholesky_kij();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        let a = complete_transform(&p, &layout, &deps, &[]).unwrap();
        let b = complete_transform(&p, &layout, &deps, &[]).unwrap();
        assert_eq!(a.matrix, b.matrix);
    }
}
