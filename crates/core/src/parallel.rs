//! Parallel loop discovery (§7 of the paper).
//!
//! "The linear framework allows us to look for good transformations
//! efficiently (for example, parallelizing a loop requires finding a row in
//! the nullspace of the dependence matrix)."
//!
//! Two notions:
//!
//! * **Outer parallelism** ([`parallel_rows`]): a row `r` with `r · d = 0`
//!   for *every* dependence can be made the outermost loop and run DOALL —
//!   every dependence stays within one of its iterations. This is the
//!   nullspace computation the paper describes.
//! * **Inner parallelism** ([`parallel_slots`]): under a transformation
//!   `M`, a loop slot is parallel when every dependence is either already
//!   carried (strictly positive) by an outer slot or zero at this slot.
//!   The classic wavefront — whose dependence matrix has a trivial
//!   nullspace, so *no* outer loop can be parallel — gets an inner parallel
//!   loop after skewing the outer loop by the inner.

use crate::depend::DependenceMatrix;
use crate::instance::{InstanceLayout, Position};
use crate::legal::{common_new_positions, transformed_entry, NewAst};
use inl_linalg::{gauss, IMat, IVec, InlError};

/// Integer basis of rows `r` with `r · d = 0` for every dependence `d`
/// (outer-parallel candidate directions).
///
/// Entries that are not exact distances (directions like `+`) cannot be
/// multiplied by a nonzero coefficient and still give a guaranteed zero, so
/// positions where any dependence is inexact are pinned to zero.
pub fn parallel_rows(
    layout: &InstanceLayout,
    deps: &DependenceMatrix,
) -> Result<Vec<IVec>, InlError> {
    let n = layout.len();
    let mut constraint = IMat::zeros(0, 0);
    let mut inexact = vec![false; n];
    for d in &deps.deps {
        let mut row = IVec::zeros(n);
        for (j, e) in d.entries.iter().enumerate() {
            match e.as_dist() {
                Some(c) => row[j] = c,
                None => inexact[j] = true,
            }
        }
        constraint.push_row(&row);
    }
    for (j, &bad) in inexact.iter().enumerate() {
        if bad {
            constraint.push_row(&IVec::unit(n, j));
        }
    }
    if constraint.nrows() == 0 {
        // no dependences at all: every loop position row qualifies
        let rows: Vec<IVec> = layout
            .positions()
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p, Position::Loop(_)))
            .map(|(i, _)| IVec::unit(n, i))
            .collect();
        record_outer_rows(&rows, 0);
        return Ok(rows);
    }
    let rows: Vec<IVec> = gauss::nullspace_int(&constraint)?
        .into_iter()
        // a useful parallel row must touch at least one loop position
        .filter(|v| {
            layout
                .positions()
                .iter()
                .enumerate()
                .any(|(i, p)| matches!(p, Position::Loop(_)) && v[i] != 0)
        })
        .collect();
    record_outer_rows(&rows, deps.deps.len());
    Ok(rows)
}

/// Explain-record the outcome of the outer-DOALL nullspace search.
fn record_outer_rows(rows: &[IVec], ndeps: usize) {
    if !inl_obs::explain_enabled() {
        return;
    }
    if rows.is_empty() {
        inl_obs::explain::reject(
            "parallel",
            "outer DOALL search",
            format!(
                "the {ndeps}-dependence matrix has a trivial nullspace over the loop \
                 positions: no outer loop direction is dependence-free (wavefront candidate)"
            ),
        )
        .feature("deps", ndeps as i64)
        .feature("basis_rows", 0);
    } else {
        let basis: Vec<String> = rows.iter().map(crate::provenance::row_text).collect();
        inl_obs::explain::accept(
            "parallel",
            "outer DOALL search",
            format!(
                "{} nullspace direction(s) orthogonal to all {ndeps} dependences",
                rows.len()
            ),
        )
        .detail("basis", basis.join("; "))
        .feature("deps", ndeps as i64)
        .feature("basis_rows", rows.len() as i64);
    }
}

/// True iff `row · d = 0` for every dependence (using exact entries only).
/// Conservative: an inexact entry — or a dot product that overflows —
/// disqualifies the row.
pub fn is_parallel_row(deps: &DependenceMatrix, row: &IVec) -> bool {
    deps.deps.iter().all(|d| {
        let mut acc: inl_linalg::Int = 0;
        for (j, &c) in row.iter().enumerate() {
            if c == 0 {
                continue;
            }
            match d.entries[j]
                .as_dist()
                .and_then(|v| c.checked_mul(v))
                .and_then(|t| acc.checked_add(t))
            {
                Some(next) => acc = next,
                None => return false,
            }
        }
        acc == 0
    })
}

/// The loop slots (vector positions) that can run in parallel under the
/// legal transformation `m`: slot `q` is parallel iff every dependence
/// whose source/target share `q` is either carried strictly positive by an
/// earlier common slot or exactly zero at `q`.
///
/// Conservative: inconclusive intervals disqualify the slot.
pub fn parallel_slots(
    layout: &InstanceLayout,
    deps: &DependenceMatrix,
    ast: &NewAst,
    m: &IMat,
) -> Vec<usize> {
    let explain = inl_obs::explain_enabled();
    let mut out = Vec::new();
    'slots: for (q, pos) in layout.positions().iter().enumerate() {
        if !matches!(pos, Position::Loop(_)) {
            continue;
        }
        let mut evidence: Vec<String> = Vec::new();
        for (di, d) in deps.deps.iter().enumerate() {
            let common = common_new_positions(layout, ast, d);
            if !common.contains(&q) {
                continue;
            }
            let mut carried_at = None;
            for &row in common.iter().take_while(|&&r| r < q) {
                let e = transformed_entry(m, d, row);
                if e.is_positive() {
                    carried_at = Some(row);
                    break;
                }
                if !e.is_zero() {
                    // inconclusive earlier entry: cannot prove carrying
                    break;
                }
            }
            if let Some(r) = carried_at {
                if explain {
                    evidence.push(format!(
                        "{} carried strictly positive at earlier slot {r}",
                        crate::provenance::dep_label_short(di, d)
                    ));
                }
                continue;
            }
            if !transformed_entry(m, d, q).is_zero() {
                if explain {
                    inl_obs::explain::reject(
                        "parallel",
                        format!("new loop slot {q}"),
                        format!(
                            "{} has nonzero entry {} at this slot and no earlier slot \
                             provably carries it",
                            crate::provenance::dep_label_short(di, d),
                            transformed_entry(m, d, q)
                        ),
                    )
                    .detail("dep_row", crate::provenance::dep_row(d))
                    .feature("slot", q as i64)
                    .feature("deps", deps.deps.len() as i64);
                }
                continue 'slots;
            }
            if explain {
                evidence.push(format!(
                    "{} is exactly zero at this slot",
                    crate::provenance::dep_label_short(di, d)
                ));
            }
        }
        if explain {
            let rec = inl_obs::explain::accept(
                "parallel",
                format!("new loop slot {q}"),
                "DOALL: every dependence sharing this slot is carried strictly \
                 positive earlier or exactly zero here",
            )
            .feature("slot", q as i64)
            .feature("deps", deps.deps.len() as i64);
            if !evidence.is_empty() {
                rec.detail("evidence", evidence.join("; "));
            }
        }
        out.push(q);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depend::analyze;
    use crate::legal::check_legal;
    use crate::transform::Transform;
    use inl_ir::zoo;

    #[test]
    fn wavefront_has_no_outer_parallelism() {
        // deps (1,0) and (0,1) span the whole space: the nullspace is
        // trivial, so no single loop direction is dependence-free. This is
        // exactly why the wavefront needs skewing.
        let p = zoo::wavefront();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        assert!(parallel_rows(&layout, &deps).expect("rows").is_empty());
        assert!(!is_parallel_row(&deps, &IVec::from(vec![1, -1])));
        assert!(!is_parallel_row(&deps, &IVec::from(vec![1, 1])));
    }

    #[test]
    fn skewed_wavefront_inner_loop_is_parallel() {
        // after skewing the outer loop by the inner (outer' = i + j), both
        // unit dependences are carried at level 0 and the inner loop can
        // run DOALL — the classic wavefront schedule
        let p = zoo::wavefront();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        let loops: Vec<_> = p.loops().collect();
        let m = Transform::Skew {
            target: loops[0],
            source: loops[1],
            factor: 1,
        }
        .matrix(&p, &layout);
        let report = check_legal(&p, &layout, &deps, &m).expect("legality");
        assert!(report.is_legal());
        let ast = report.new_ast.as_ref().unwrap();
        let slots = parallel_slots(&layout, &deps, ast, &m);
        assert_eq!(slots, vec![1], "inner slot parallel, outer not");
        // without the skew, nothing is parallel
        let id = IMat::identity(2);
        let rid = check_legal(&p, &layout, &deps, &id).expect("legality");
        let ast_id = rid.new_ast.as_ref().unwrap();
        assert!(parallel_slots(&layout, &deps, ast_id, &id).is_empty());
    }

    #[test]
    fn independent_statements_fully_parallel() {
        let p = zoo::independent_pair();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        assert!(deps.deps.is_empty());
        let rows = parallel_rows(&layout, &deps).expect("rows");
        assert!(!rows.is_empty(), "dependence-free loop has parallel rows");
        let id = IMat::identity(layout.len());
        let report = check_legal(&p, &layout, &deps, &id).expect("legality");
        let ast = report.new_ast.as_ref().unwrap();
        let slots = parallel_slots(&layout, &deps, ast, &id);
        assert_eq!(slots.len(), 1, "the single loop slot is parallel");
    }

    #[test]
    fn cholesky_outer_not_parallel() {
        let p = zoo::simple_cholesky();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        let i_unit = IVec::unit(layout.len(), 0);
        assert!(!is_parallel_row(&deps, &i_unit));
        // under the identity schedule, the inner J loop IS parallel (the
        // divisions of one pivot step are independent)
        let id = IMat::identity(layout.len());
        let report = check_legal(&p, &layout, &deps, &id).expect("legality");
        let ast = report.new_ast.as_ref().unwrap();
        let slots = parallel_slots(&layout, &deps, ast, &id);
        let jpos = 3;
        assert!(slots.contains(&jpos), "inner J loop parallel: {slots:?}");
        assert!(!slots.contains(&0), "outer I loop sequential");
    }

    #[test]
    fn parallel_rows_are_orthogonal_to_exact_deps() {
        for p in [zoo::augmentation_example(), zoo::independent_pair()] {
            let layout = InstanceLayout::new(&p);
            let deps = analyze(&p, &layout).expect("analysis");
            for r in parallel_rows(&layout, &deps).expect("rows") {
                assert!(
                    is_parallel_row(&deps, &r),
                    "{}: row {r} not parallel",
                    p.name()
                );
            }
        }
    }
}
