//! Rendering helpers feeding the [`inl_obs::explain`] decision-provenance
//! layer: dependences, rows, and matrices as the compact strings the
//! explain records carry (the store must not hold `inl-core` types).
//!
//! Call sites gate on [`inl_obs::explain_enabled`] before building these
//! strings, so the disabled path pays only one relaxed atomic load.

use crate::depend::{DepKind, Dependence};
use inl_ir::Program;
use inl_linalg::{IMat, IVec};

/// Lower-case dependence-kind name.
pub fn kind_str(k: DepKind) -> &'static str {
    match k {
        DepKind::Flow => "flow",
        DepKind::Anti => "anti",
        DepKind::Output => "output",
    }
}

/// `dep 3 (flow S2->S1, level 1)`: names one column of the dependence
/// matrix by its index, kind, endpoint statements, and carrying level.
pub fn dep_label(p: &Program, idx: usize, d: &Dependence) -> String {
    format!(
        "dep {idx} ({} {}->{}, level {})",
        kind_str(d.kind),
        p.stmt_decl(d.src).name,
        p.stmt_decl(d.dst).name,
        d.level
    )
}

/// `dep 3 (flow, level 1)`: like [`dep_label`] but without statement
/// names, for call sites that hold no [`Program`].
pub fn dep_label_short(idx: usize, d: &Dependence) -> String {
    format!("dep {idx} ({}, level {})", kind_str(d.kind), d.level)
}

/// One dependence-matrix column in the paper's interval notation,
/// e.g. `[+ 0 *]`.
pub fn dep_row(d: &Dependence) -> String {
    let entries: Vec<String> = d.entries.iter().map(|e| e.to_string()).collect();
    format!("[{}]", entries.join(" "))
}

/// An integer row vector, e.g. `[0 1 0 -1]`.
pub fn row_text(row: &IVec) -> String {
    let entries: Vec<String> = row.iter().map(|v| v.to_string()).collect();
    format!("[{}]", entries.join(" "))
}

/// A whole matrix as bracketed rows, e.g. `[[1 0] [0 1]]`.
pub fn matrix_text(m: &IMat) -> String {
    let rows: Vec<String> = (0..m.nrows())
        .map(|i| {
            let entries: Vec<String> = m.row_slice(i).iter().map(|v| v.to_string()).collect();
            format!("[{}]", entries.join(" "))
        })
        .collect();
    format!("[{}]", rows.join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depend::analyze;
    use crate::instance::InstanceLayout;
    use inl_ir::zoo;

    #[test]
    fn labels_and_rows_render_compactly() {
        let p = zoo::simple_cholesky();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        let d = &deps.deps[0];
        let label = dep_label(&p, 0, d);
        assert!(label.starts_with("dep 0 ("), "{label}");
        assert!(label.contains("->"), "{label}");
        let row = dep_row(d);
        assert!(row.starts_with('[') && row.ends_with(']'), "{row}");
        assert_eq!(row.matches(' ').count(), d.entries.len() - 1, "{row}");
        let m = IMat::identity(2);
        assert_eq!(matrix_text(&m), "[[1 0] [0 1]]");
        assert_eq!(row_text(&IVec::from(vec![0, 1, -1])), "[0 1 -1]");
    }
}
