//! Dependence analysis over instance vectors (§3 of the paper).
//!
//! For every pair of accesses to the same array (at least one a write), a
//! conflict polyhedron is built over `[parameters | source iteration |
//! target iteration]`: loop bounds for both statements, subscript equality,
//! and precedence. Precedence ("read after write" etc.) is a disjunction
//! over *levels* — either the instances differ at the q-th common loop, or
//! they agree on all common loops and the source statement is syntactically
//! earlier — so each feasible level yields one dependence column.
//!
//! Each dependence records:
//!
//! * the distance/direction **entries** of the instance-vector difference
//!   (target − source), obtained by projecting the polyhedron onto each Δ
//!   with Fourier–Motzkin (this is what the paper computes with the Omega
//!   toolkit, e.g. `[0, 1, -1, +]'` for the flow dependence of §3);
//! * the **polyhedron itself**, kept for the exact legality fallback.

use crate::instance::InstanceLayout;
use inl_ir::{Guard, LoopId, Program, StmtId};
use inl_linalg::{InlError, InlErrorKind, Int};
use inl_poly::{expr_bounds, is_empty, Feasibility, LinExpr, System};
use std::fmt;

/// One entry of a dependence vector: an integer interval containing every
/// value the corresponding instance-vector difference takes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DepEntry {
    /// Greatest known lower bound (`None` = unbounded below).
    pub lo: Option<Int>,
    /// Least known upper bound (`None` = unbounded above).
    pub hi: Option<Int>,
}

impl DepEntry {
    /// An exact distance.
    pub fn dist(c: Int) -> Self {
        DepEntry {
            lo: Some(c),
            hi: Some(c),
        }
    }

    /// The `+` direction (`≥ 1`).
    pub fn plus() -> Self {
        DepEntry {
            lo: Some(1),
            hi: None,
        }
    }

    /// The `-` direction (`≤ -1`).
    pub fn minus() -> Self {
        DepEntry {
            lo: None,
            hi: Some(-1),
        }
    }

    /// The `*` direction (unknown).
    pub fn star() -> Self {
        DepEntry { lo: None, hi: None }
    }

    /// Exact distance, if the interval is a single point.
    pub fn as_dist(&self) -> Option<Int> {
        match (self.lo, self.hi) {
            (Some(a), Some(b)) if a == b => Some(a),
            _ => None,
        }
    }

    /// True iff this entry is exactly 0.
    pub fn is_zero(&self) -> bool {
        self.as_dist() == Some(0)
    }

    /// True iff every value in the interval is ≥ 1.
    pub fn is_positive(&self) -> bool {
        self.lo.is_some_and(|l| l >= 1)
    }

    /// True iff every value in the interval is ≤ -1.
    pub fn is_negative(&self) -> bool {
        self.hi.is_some_and(|h| h <= -1)
    }
}

impl fmt::Display for DepEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.lo, self.hi) {
            (Some(a), Some(b)) if a == b => write!(f, "{a}"),
            (Some(1), None) => write!(f, "+"),
            (None, Some(-1)) => write!(f, "-"),
            (Some(0), None) => write!(f, "0+"),
            (None, Some(0)) => write!(f, "0-"),
            (None, None) => write!(f, "*"),
            (Some(a), None) => write!(f, ">={a}"),
            (None, Some(b)) => write!(f, "<={b}"),
            (Some(a), Some(b)) => write!(f, "[{a},{b}]"),
        }
    }
}

/// The classic dependence kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DepKind {
    /// Write → read (true dependence).
    Flow,
    /// Read → write.
    Anti,
    /// Write → write.
    Output,
}

/// One dependence: from an instance of `src` to a later instance of `dst`.
#[derive(Clone, Debug)]
pub struct Dependence {
    /// Source statement (earlier in execution).
    pub src: StmtId,
    /// Target statement.
    pub dst: StmtId,
    /// Kind.
    pub kind: DepKind,
    /// Precedence level: the dependence is carried by the `level`-th common
    /// loop (0-based, outside-in); `level == common_loops` means the
    /// instances share all common loop values and the dependence is
    /// loop-independent (satisfied by syntactic order).
    pub level: usize,
    /// The instance-vector difference `L(dst) − L(src)`, abstracted to
    /// intervals (distances and directions).
    pub entries: Vec<DepEntry>,
    /// The conflict polyhedron over `[params | src iters | dst iters]`
    /// (plus any existential variables appended at the end).
    pub system: System,
    /// `src`'s surrounding loops, outside-in (variable slots
    /// `nparams .. nparams+k_src` of `system`).
    pub src_loops: Vec<LoopId>,
    /// `dst`'s surrounding loops (following slots).
    pub dst_loops: Vec<LoopId>,
    /// True if integer feasibility was proven (vs. conservatively assumed).
    pub certain: bool,
}

impl Dependence {
    /// Number of common loops of `src` and `dst`.
    pub fn common_loops(&self) -> usize {
        self.src_loops
            .iter()
            .zip(&self.dst_loops)
            .take_while(|(a, b)| a == b)
            .count()
    }

    /// The instance-vector difference at position `i` as a [`LinExpr`] over
    /// the dependence polyhedron's variable space.
    ///
    /// # Panics
    /// On coefficient overflow; fallible paths use
    /// [`Dependence::checked_delta_expr`].
    pub fn delta_expr(&self, layout: &InstanceLayout, nparams: usize, i: usize) -> LinExpr {
        self.checked_delta_expr(layout, nparams, i)
            .expect("delta overflow: fallible paths use checked_delta_expr")
    }

    /// Overflow-checked [`Dependence::delta_expr`].
    pub fn checked_delta_expr(
        &self,
        layout: &InstanceLayout,
        nparams: usize,
        i: usize,
    ) -> Result<LinExpr, InlError> {
        let space = self.system.nvars();
        let (es, fs) = layout.embedding(self.src);
        let (et, ft) = layout.embedding(self.dst);
        let ks = self.src_loops.len();
        let mut coeffs: Vec<Int> = vec![0; space];
        let oops = || InlError::overflow("dependence delta coefficient");
        for j in 0..self.dst_loops.len() {
            let slot = nparams + ks + j;
            coeffs[slot] = coeffs[slot].checked_add(et[(i, j)]).ok_or_else(oops)?;
        }
        for j in 0..ks {
            coeffs[nparams + j] = coeffs[nparams + j]
                .checked_sub(es[(i, j)])
                .ok_or_else(oops)?;
        }
        let c = ft[i].checked_sub(fs[i]).ok_or_else(oops)?;
        Ok(LinExpr::from_parts(coeffs, c))
    }
}

/// All dependences of a program.
#[derive(Clone, Debug)]
pub struct DependenceMatrix {
    /// Instance-vector length.
    pub n: usize,
    /// The dependences (columns of the paper's dependence matrix).
    pub deps: Vec<Dependence>,
}

impl DependenceMatrix {
    /// Self-dependences of a statement.
    pub fn self_deps(&self, s: StmtId) -> impl Iterator<Item = &Dependence> {
        self.deps.iter().filter(move |d| d.src == s && d.dst == s)
    }

    /// True iff some column has the given entries (used to compare against
    /// the paper's published matrices, which may order columns differently).
    pub fn has_column(&self, entries: &[DepEntry]) -> bool {
        self.deps.iter().any(|d| d.entries == entries)
    }

    /// Render as the paper does: one column per dependence.
    pub fn display(&self) -> String {
        let mut out = String::new();
        for i in 0..self.n {
            out.push('[');
            for (j, d) in self.deps.iter().enumerate() {
                if j > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{}", d.entries[i]));
            }
            out.push_str("]\n");
        }
        out
    }
}

/// Append `stmt`'s iteration-space constraints to `sys`, with the
/// statement's surrounding loop variables mapped to the contiguous slot
/// range starting at `base`. Returns the next free existential slot.
fn add_stmt_constraints(
    p: &Program,
    s: StmtId,
    loops: &[LoopId],
    sys: &mut System,
    base: usize,
    mut next_exist: usize,
) -> Result<usize, InlError> {
    let space = sys.nvars();
    let slot_of = |l: LoopId| -> usize {
        base + loops
            .iter()
            .position(|&x| x == l)
            .expect("loop not surrounding stmt")
    };
    let to_expr = |a: &inl_ir::Aff| -> Result<LinExpr, InlError> {
        // numerator form; divisor handled by the caller via scaling
        let mut coeffs: Vec<Int> = vec![0; space];
        for &(v, c) in a.terms() {
            let slot = match v {
                inl_ir::VarKey::Param(pr) => pr.0,
                inl_ir::VarKey::Loop(l) => slot_of(l),
            };
            coeffs[slot] = coeffs[slot]
                .checked_add(c)
                .ok_or_else(|| InlError::overflow("bound coefficient"))?;
        }
        Ok(LinExpr::from_parts(coeffs, a.constant()))
    };
    for (idx, &l) in loops.iter().enumerate() {
        let ld = p.loop_decl(l);
        let iv = LinExpr::var(space, base + idx);
        for t in &ld.lower.terms {
            sys.add_ge(iv.checked_scale(t.divisor())?.checked_sub(&to_expr(t)?)?);
        }
        for t in &ld.upper.terms {
            sys.add_ge(to_expr(t)?.checked_sub(&iv.checked_scale(t.divisor())?)?);
        }
        if ld.step != 1 {
            if ld.lower.terms.len() != 1 || ld.lower.terms[0].divisor() != 1 {
                return Err(InlError::new(
                    InlErrorKind::Unsupported,
                    format!(
                        "loop {}: non-unit step with a max/divided lower bound",
                        ld.name
                    ),
                ));
            }
            let lo = &ld.lower.terms[0];
            let q = LinExpr::var(space, next_exist);
            next_exist += 1;
            sys.add_eq(
                iv.checked_sub(&to_expr(lo)?)?
                    .checked_sub(&q.checked_scale(ld.step)?)?,
            );
        }
    }
    for g in &p.stmt_decl(s).guards {
        match g {
            Guard::Ge(a) => sys.add_ge(to_expr(a)?),
            Guard::Eq(a) => sys.add_eq(to_expr(a)?),
            Guard::Div(a, m) => {
                let q = LinExpr::var(space, next_exist);
                next_exist += 1;
                sys.add_eq(to_expr(a)?.checked_sub(&q.checked_scale(*m)?)?);
            }
        }
    }
    Ok(next_exist)
}

fn count_exists(p: &Program, s: StmtId, loops: &[LoopId]) -> usize {
    loops.iter().filter(|&&l| p.loop_decl(l).step != 1).count()
        + p.stmt_decl(s)
            .guards
            .iter()
            .filter(|g| matches!(g, Guard::Div(_, _)))
            .count()
}

/// Compute the dependence matrix of a program (the general procedure of
/// §3: "performs this analysis for all pairs of reads and writes").
///
/// Errors only when exact arithmetic on the program's constraints leaves
/// the `i128` range (or a polyhedral budget is exhausted) — dependence
/// *construction* cannot be soundly approximated, so overflow here is
/// reported rather than degraded.
pub fn analyze(p: &Program, layout: &InstanceLayout) -> Result<DependenceMatrix, InlError> {
    let _span = inl_obs::span("depend.analyze");
    inl_obs::timeline::instant("stage.dependence");
    let mut deps = Vec::new();
    let stmts: Vec<StmtId> = p.stmts().collect();
    for &src in &stmts {
        for &dst in &stmts {
            // access pairs: (kind, src subscripts, dst subscripts, array)
            let sd = p.stmt_decl(src);
            let dd = p.stmt_decl(dst);
            let mut src_reads = Vec::new();
            sd.rhs.collect_reads(&mut src_reads);
            let mut dst_reads = Vec::new();
            dd.rhs.collect_reads(&mut dst_reads);

            let mut pairs: Vec<(DepKind, &inl_ir::Access, &inl_ir::Access)> = Vec::new();
            // write -> read: flow
            for r in &dst_reads {
                if r.array == sd.write.array {
                    pairs.push((DepKind::Flow, &sd.write, r));
                }
            }
            // read -> write: anti
            for r in &src_reads {
                if r.array == dd.write.array {
                    pairs.push((DepKind::Anti, r, &dd.write));
                }
            }
            // write -> write: output
            if sd.write.array == dd.write.array {
                pairs.push((DepKind::Output, &sd.write, &dd.write));
            }

            for (kind, asrc, adst) in pairs {
                deps.extend(analyze_pair(p, layout, src, dst, kind, asrc, adst)?);
            }
        }
    }
    // Dedup: different access pairs (and kinds) often induce identical
    // columns; legality only cares about src/dst/level/entries, so collapse
    // those and keep the first kind observed.
    let mut uniq: Vec<Dependence> = Vec::new();
    for d in deps {
        if !uniq.iter().any(|u| {
            u.src == d.src && u.dst == d.dst && u.level == d.level && u.entries == d.entries
        }) {
            uniq.push(d);
        }
    }
    Ok(DependenceMatrix {
        n: layout.len(),
        deps: uniq,
    })
}

fn analyze_pair(
    p: &Program,
    layout: &InstanceLayout,
    src: StmtId,
    dst: StmtId,
    kind: DepKind,
    asrc: &inl_ir::Access,
    adst: &inl_ir::Access,
) -> Result<Vec<Dependence>, InlError> {
    inl_obs::counter_add!("depend.pairs_tested", 1);
    let nparams = p.nparams();
    let src_loops = layout.stmt_loops(src).to_vec();
    let dst_loops = layout.stmt_loops(dst).to_vec();
    let (ks, kd) = (src_loops.len(), dst_loops.len());
    let nexist = count_exists(p, src, &src_loops) + count_exists(p, dst, &dst_loops);
    let space = nparams + ks + kd + nexist;

    let mut base_sys = p.assumption_system(space);
    let mut next_exist = nparams + ks + kd;
    next_exist = add_stmt_constraints(p, src, &src_loops, &mut base_sys, nparams, next_exist)?;
    let _ = add_stmt_constraints(p, dst, &dst_loops, &mut base_sys, nparams + ks, next_exist)?;

    // subscript equality, cross-multiplying divisors
    let src_slot = |l: LoopId| nparams + src_loops.iter().position(|&x| x == l).unwrap();
    let dst_slot = |l: LoopId| nparams + ks + dst_loops.iter().position(|&x| x == l).unwrap();
    let to_expr = |a: &inl_ir::Aff, slot: &dyn Fn(LoopId) -> usize| -> Result<LinExpr, InlError> {
        let mut coeffs: Vec<Int> = vec![0; space];
        for &(v, c) in a.terms() {
            let s = match v {
                inl_ir::VarKey::Param(pr) => pr.0,
                inl_ir::VarKey::Loop(l) => slot(l),
            };
            coeffs[s] = coeffs[s]
                .checked_add(c)
                .ok_or_else(|| InlError::overflow("subscript coefficient"))?;
        }
        Ok(LinExpr::from_parts(coeffs, a.constant()))
    };
    for (is_, id_) in asrc.idxs.iter().zip(&adst.idxs) {
        let es = to_expr(is_, &|l| src_slot(l))?;
        let ed = to_expr(id_, &|l| dst_slot(l))?;
        base_sys.add_eq(
            es.checked_scale(id_.divisor())?
                .checked_sub(&ed.checked_scale(is_.divisor())?)?,
        );
    }

    // One feasibility test on the shared base system prunes every level at
    // once: each level polyhedron only adds constraints to base_sys, so an
    // empty base means an empty level system for all of them (disjoint
    // access ranges, contradictory guards, unsatisfiable subscripts).
    if is_empty(&base_sys) == Feasibility::Empty {
        inl_obs::counter_add!("depend.base_infeasible", 1);
        return Ok(Vec::new());
    }

    // precedence levels over common loops
    let ncommon = src_loops
        .iter()
        .zip(&dst_loops)
        .take_while(|(a, b)| a == b)
        .count();
    let mut out = Vec::new();
    for level in 0..=ncommon {
        if level == ncommon {
            // loop-independent: requires src strictly before dst syntactically
            if src == dst || !p.syntactically_before(src, dst) {
                continue;
            }
        }
        let mut sys = base_sys.clone();
        for &l in &src_loops[..level.min(ncommon)] {
            let e = LinExpr::var(space, dst_slot(l)) - LinExpr::var(space, src_slot(l));
            sys.add_eq(e);
        }
        if level < ncommon {
            let l = src_loops[level];
            let e = LinExpr::var(space, dst_slot(l)) - LinExpr::var(space, src_slot(l));
            sys.add_ge(e - LinExpr::constant(space, 1));
        }
        let feas = is_empty(&sys);
        if feas == Feasibility::Empty {
            inl_obs::counter_add!("depend.levels_pruned", 1);
            continue;
        }
        inl_obs::counter_add!("depend.polyhedra_retained", 1);
        // abstract each instance-vector difference position
        let mut dep = Dependence {
            src,
            dst,
            kind,
            level,
            entries: Vec::with_capacity(layout.len()),
            system: sys,
            src_loops: src_loops.clone(),
            dst_loops: dst_loops.clone(),
            certain: feas == Feasibility::NonEmpty,
        };
        for i in 0..layout.len() {
            let expr = dep.checked_delta_expr(layout, nparams, i)?;
            let (lo, hi) = expr_bounds(&dep.system, &expr)?;
            dep.entries.push(DepEntry { lo, hi });
        }
        out.push(dep);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use inl_ir::zoo;

    fn stmt(p: &Program, name: &str) -> StmtId {
        p.stmts().find(|&s| p.stmt_decl(s).name == name).unwrap()
    }

    #[test]
    fn paper_section3_matrix() {
        // The paper's §3 dependence matrix for the simplified Cholesky:
        //   [0  1  0]
        //   [1 -1  0]
        //   [-1 1  0]
        //   [+  0  1]
        // columns: three dependences (order may differ in our analysis).
        let p = zoo::simple_cholesky();
        let layout = InstanceLayout::new(&p);
        let dm = analyze(&p, &layout).expect("analysis");
        let col = |a: DepEntry, b: DepEntry, c: DepEntry, d: DepEntry| vec![a, b, c, d];
        use DepEntry as E;
        // flow S1 -> S2 through A(I): [0, 1, -1, +] — exactly the paper's
        // first column.
        assert!(
            dm.has_column(&col(E::dist(0), E::dist(1), E::dist(-1), E::plus())),
            "missing flow column; got\n{}",
            dm.display()
        );
        // paper column 2 is [1, -1, 1, 0] (S2 -> S1): the paper reports the
        // *value-based* distance 1 (only the last write of A(J) reaches the
        // read); our memory-based analysis soundly reports the subsuming
        // direction [+, -1, 1, 0].
        assert!(
            dm.has_column(&col(E::plus(), E::dist(-1), E::dist(1), E::dist(0))),
            "missing column subsuming [1,-1,1,0]; got\n{}",
            dm.display()
        );
        // paper column 3 abstracts the S2 self dependences; our analysis
        // must find an S2 self dependence carried by the I loop with the
        // same J (the A(J) write-to-write/read chain):
        assert!(
            dm.deps.iter().any(|d| d.src == d.dst
                && p.stmt_decl(d.src).name == "S2"
                && d.entries[0].is_positive()
                && d.entries[3].is_zero()),
            "missing S2 self dependence; got\n{}",
            dm.display()
        );
    }

    #[test]
    fn flow_dep_is_certain_and_carries_system() {
        let p = zoo::simple_cholesky();
        let layout = InstanceLayout::new(&p);
        let dm = analyze(&p, &layout).expect("analysis");
        let s1 = stmt(&p, "S1");
        let s2 = stmt(&p, "S2");
        let flow = dm
            .deps
            .iter()
            .find(|d| d.src == s1 && d.dst == s2 && d.kind == DepKind::Flow)
            .expect("flow dep exists");
        assert!(flow.certain);
        // its polyhedron contains (N=4, Iw=2, Ir=2, Jr=3)
        assert!(flow.system.contains(&[4, 2, 2, 3]));
        assert!(!flow.system.contains(&[4, 2, 3, 4])); // different location
    }

    #[test]
    fn no_dependence_between_disjoint_arrays() {
        let p = zoo::independent_pair();
        let layout = InstanceLayout::new(&p);
        let dm = analyze(&p, &layout).expect("analysis");
        // X and Y never conflict; each statement writes disjoint cells
        // (val(I) to X(I)): the only candidate is an output self-dep on the
        // same cell, infeasible at distinct iterations.
        assert!(
            dm.deps.is_empty(),
            "independent statements should have no deps; got\n{}",
            dm.display()
        );
    }

    #[test]
    fn wavefront_has_unit_distances() {
        let p = zoo::wavefront();
        let layout = InstanceLayout::new(&p);
        let dm = analyze(&p, &layout).expect("analysis");
        // flow deps (1,0) and (0,1)
        use DepEntry as E;
        assert!(dm.has_column(&[E::dist(1), E::dist(0)]), "{}", dm.display());
        assert!(dm.has_column(&[E::dist(0), E::dist(1)]), "{}", dm.display());
        // no negative-distance columns (all deps lexicographically positive)
        for d in &dm.deps {
            assert!(
                d.entries[0].is_positive() || d.entries[0].is_zero(),
                "dep not lexicographically positive: {}",
                dm.display()
            );
        }
    }

    #[test]
    fn cholesky_kij_has_paper_columns() {
        // §6's published 7-row dependence matrix contains (among others)
        // the column [0 0 + 1 / 0 1 0 -1 / ...]ᵀ — spot-check two.
        let p = zoo::cholesky_kij();
        let layout = InstanceLayout::new(&p);
        let dm = analyze(&p, &layout).expect("analysis");
        assert!(!dm.deps.is_empty());
        // every dependence is lexicographically non-negative as an
        // instance-vector difference (execution order!)
        for d in &dm.deps {
            let first_nonzero = d.entries.iter().find(|e| !e.is_zero());
            if let Some(e) = first_nonzero {
                assert!(
                    e.lo.is_some_and(|l| l >= 0),
                    "dependence difference not lex-positive:\n{}",
                    dm.display()
                );
            }
        }
        // S1 -> S2 flow via A[k][k] at the same k
        let s1 = stmt(&p, "S1");
        let s2 = stmt(&p, "S2");
        assert!(dm
            .deps
            .iter()
            .any(|d| d.src == s1 && d.dst == s2 && d.kind == DepKind::Flow));
    }

    #[test]
    fn levels_partition_precedence() {
        // in the wavefront nest, the (1,0) dep is carried at level 0 and
        // the (0,1) dep at level 1
        let p = zoo::wavefront();
        let layout = InstanceLayout::new(&p);
        let dm = analyze(&p, &layout).expect("analysis");
        let d10 = dm
            .deps
            .iter()
            .find(|d| d.entries[0] == DepEntry::dist(1))
            .unwrap();
        assert_eq!(d10.level, 0);
        let d01 = dm
            .deps
            .iter()
            .find(|d| d.entries[0] == DepEntry::dist(0) && d.entries[1] == DepEntry::dist(1))
            .unwrap();
        assert_eq!(d01.level, 1);
    }
}
