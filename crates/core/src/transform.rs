//! Loop transformations as matrices (§4 of the paper).
//!
//! Every transformation is an integer matrix acting on instance vectors.
//! Linear transformations (permutation, reversal, skewing, scaling) touch
//! only loop positions; AST transformations (statement reordering) permute
//! edge positions and subtree blocks; statement alignment adds an offset to
//! a loop position *conditioned on* an edge position — which is exactly a
//! matrix entry at (loop row, edge column), since edge labels are 0/1
//! indicators of "the instance lies in this subtree".
//!
//! Sequences compose by matrix product ([`Transform::compose`]); the
//! non-square distribution/jamming matrices live in [`crate::structural`].

use crate::instance::InstanceLayout;
use inl_ir::{LoopId, Node, Program, StmtId};
use inl_linalg::{IMat, InlError, Int};

/// A loop transformation expressible as a square matrix on instance vectors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Transform {
    /// Swap two loops (§4.1's permutation example).
    Interchange(LoopId, LoopId),
    /// Reverse a loop: identity with `-1` on the loop's diagonal entry.
    Reverse(LoopId),
    /// Skew `target` by `factor` times `source`: identity plus `factor` at
    /// `(target row, source column)`.
    Skew {
        /// Row: the loop being modified.
        target: LoopId,
        /// Column: the loop whose value is added.
        source: LoopId,
        /// The multiple (may be negative; the paper's §4.1 example uses -1).
        factor: Int,
    },
    /// Scale a loop by a positive factor: identity with `factor` on the
    /// diagonal. Non-unimodular (`|det| = factor`).
    Scale {
        /// The loop being scaled.
        target: LoopId,
        /// The (positive) scale factor.
        factor: Int,
    },
    /// Reorder the children of a node (`None` = virtual root): `perm[j]`
    /// is the new index of old child `j` (§4.2's statement reordering).
    ReorderChildren {
        /// The parent whose children move.
        parent: Option<LoopId>,
        /// Old index → new index.
        perm: Vec<usize>,
    },
    /// Align statement `stmt` by `offset` with respect to loop `looop`
    /// (§4.3): identity plus `offset` at (loop row, distinguishing edge
    /// column of the subtree containing `stmt`).
    Align {
        /// The statement whose instances shift.
        stmt: StmtId,
        /// The loop whose index is shifted for those instances.
        looop: LoopId,
        /// The shift amount.
        offset: Int,
    },
}

/// Errors in constructing a transformation matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransformError {
    /// `ReorderChildren`'s permutation has the wrong length or is not a
    /// permutation.
    BadPermutation,
    /// `Align` requires an edge that distinguishes the statement's subtree
    /// below the loop; with a single-child chain there is none (the shift
    /// would apply to every statement, which is loop bumping, not
    /// alignment).
    NoDistinguishingEdge,
    /// The alignment loop does not surround the statement.
    LoopNotSurrounding,
    /// Scale factors must be ≥ 1.
    BadScaleFactor,
}

impl From<TransformError> for InlError {
    #[track_caller]
    fn from(e: TransformError) -> Self {
        let reason = match e {
            TransformError::BadPermutation => "permutation is not a bijection of the children",
            TransformError::NoDistinguishingEdge => {
                "no edge distinguishes the statement's subtree below the loop"
            }
            TransformError::LoopNotSurrounding => {
                "the alignment loop does not surround the statement"
            }
            TransformError::BadScaleFactor => "scale factors must be >= 1",
        };
        InlError::invalid_target("transform", reason)
    }
}

impl Transform {
    /// Build the matrix. Panics on invalid input; see [`Transform::try_matrix`].
    pub fn matrix(&self, p: &Program, layout: &InstanceLayout) -> IMat {
        self.try_matrix(p, layout).expect("invalid transformation")
    }

    /// Build the `n × n` matrix representing this transformation for the
    /// given program layout.
    pub fn try_matrix(&self, p: &Program, layout: &InstanceLayout) -> Result<IMat, TransformError> {
        let n = layout.len();
        match self {
            Transform::Interchange(a, b) => {
                let mut m = IMat::identity(n);
                let (pa, pb) = (layout.loop_position(*a), layout.loop_position(*b));
                m[(pa, pa)] = 0;
                m[(pb, pb)] = 0;
                m[(pa, pb)] = 1;
                m[(pb, pa)] = 1;
                Ok(m)
            }
            Transform::Reverse(l) => {
                let mut m = IMat::identity(n);
                let pl = layout.loop_position(*l);
                m[(pl, pl)] = -1;
                Ok(m)
            }
            Transform::Skew {
                target,
                source,
                factor,
            } => {
                let mut m = IMat::identity(n);
                m[(layout.loop_position(*target), layout.loop_position(*source))] = *factor;
                Ok(m)
            }
            Transform::Scale { target, factor } => {
                if *factor < 1 {
                    return Err(TransformError::BadScaleFactor);
                }
                let mut m = IMat::identity(n);
                let pl = layout.loop_position(*target);
                m[(pl, pl)] = *factor;
                Ok(m)
            }
            Transform::ReorderChildren { parent, perm } => reorder_matrix(p, layout, *parent, perm),
            Transform::Align {
                stmt,
                looop,
                offset,
            } => {
                let path = p.loops_surrounding(*stmt);
                let Some(depth) = path.iter().position(|l| l == looop) else {
                    return Err(TransformError::LoopNotSurrounding);
                };
                // Find the deepest edge position on the path from `looop`
                // down to the statement whose parent has ≥ 2 children.
                let mut edge = None;
                for d in depth..path.len() {
                    let parent = path[d];
                    let children = &p.loop_decl(parent).children;
                    let target: Node = if d + 1 < path.len() {
                        Node::Loop(path[d + 1])
                    } else {
                        Node::Stmt(*stmt)
                    };
                    let child_idx = children
                        .iter()
                        .position(|&c| node_contains(p, c, target))
                        .expect("path child");
                    if let Some(e) = layout.edge_position(Some(parent), child_idx) {
                        edge = Some(e);
                    }
                }
                let Some(e) = edge else {
                    return Err(TransformError::NoDistinguishingEdge);
                };
                let mut m = IMat::identity(n);
                m[(layout.loop_position(*looop), e)] = *offset;
                Ok(m)
            }
        }
    }

    /// Compose a sequence of transformations (applied left to right: the
    /// first element of `seq` is applied first) into a single matrix.
    pub fn compose(
        p: &Program,
        layout: &InstanceLayout,
        seq: &[Transform],
    ) -> Result<IMat, TransformError> {
        let mut m = IMat::identity(layout.len());
        for t in seq {
            // matrices stack on the left as transformations compose
            m = t.try_matrix(p, layout)?.mul(&m);
        }
        Ok(m)
    }
}

pub(crate) fn node_contains(p: &Program, n: Node, target: Node) -> bool {
    if n == target {
        return true;
    }
    match n {
        Node::Stmt(_) => false,
        Node::Loop(l) => p
            .loop_decl(l)
            .children
            .iter()
            .any(|&c| node_contains(p, c, target)),
    }
}

/// Matrix for reordering the children of `parent` by `perm` (old index →
/// new index).
///
/// Statement reordering permutes only the node's **edge positions**:
/// subtree slots stay pinned (this is the convention of the paper's §6
/// matrix — the transformed AST reads its new child order from the edge
/// permutation while every loop keeps its vector position). The matrix is
/// the identity except that the row of `Edge{parent, perm[j]}` selects the
/// column of `Edge{parent, j}`.
fn reorder_matrix(
    p: &Program,
    layout: &InstanceLayout,
    parent: Option<LoopId>,
    perm: &[usize],
) -> Result<IMat, TransformError> {
    let nchildren = match parent {
        None => p.root().len(),
        Some(l) => p.loop_decl(l).children.len(),
    };
    if perm.len() != nchildren {
        return Err(TransformError::BadPermutation);
    }
    let mut seen = vec![false; nchildren];
    for &i in perm {
        if i >= nchildren || seen[i] {
            return Err(TransformError::BadPermutation);
        }
        seen[i] = true;
    }
    let n = layout.len();
    let mut m = IMat::identity(n);
    for (j, &nj) in perm.iter().enumerate() {
        // Fixed points need no matrix change — and skipping them keeps the
        // single-child identity permutation (which has no edge positions)
        // from reaching the lookups below. Moved children imply
        // nchildren >= 2, so their edge positions are present.
        if j == nj {
            continue;
        }
        let from = layout.edge_position(parent, j).expect("edge position");
        let to = layout.edge_position(parent, nj).expect("edge position");
        m[(to, to)] = 0;
        m[(to, from)] = 1;
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use inl_ir::zoo;

    fn stmt(p: &Program, name: &str) -> StmtId {
        p.stmts().find(|&s| p.stmt_decl(s).name == name).unwrap()
    }
    fn looop(p: &Program, name: &str) -> LoopId {
        p.loops().find(|&l| p.loop_decl(l).name == name).unwrap()
    }

    #[test]
    fn paper_interchange_matrix() {
        // §4.1: interchanging I and J in the simplified Cholesky nest
        let p = zoo::simple_cholesky();
        let layout = InstanceLayout::new(&p);
        let m = Transform::Interchange(looop(&p, "I"), looop(&p, "J")).matrix(&p, &layout);
        let expected = IMat::from_rows(&[
            &[0, 0, 0, 1][..],
            &[0, 1, 0, 0],
            &[0, 0, 1, 0],
            &[1, 0, 0, 0],
        ]);
        assert_eq!(m, expected);
        // action on the paper's instance vectors (I=i, J=j):
        let s1 = stmt(&p, "S1");
        let s2 = stmt(&p, "S2");
        let v1 = layout.instance_vector(s1, &[5]);
        assert_eq!(m.mul_vec(&v1), v1, "S1's vectors are coincidentally fixed");
        let v2 = layout.instance_vector(s2, &[5, 8]);
        assert_eq!(m.mul_vec(&v2).as_slice(), &[8, 1, 0, 5]);
    }

    #[test]
    fn paper_skew_matrix() {
        // §4.1: skewing the outer loop by -1 times the inner loop
        let p = zoo::simple_cholesky();
        let layout = InstanceLayout::new(&p);
        let m = Transform::Skew {
            target: looop(&p, "I"),
            source: looop(&p, "J"),
            factor: -1,
        }
        .matrix(&p, &layout);
        let expected = IMat::from_rows(&[
            &[1, 0, 0, -1][..],
            &[0, 1, 0, 0],
            &[0, 0, 1, 0],
            &[0, 0, 0, 1],
        ]);
        assert_eq!(m, expected);
        // S1 at I=i maps to outer position i - i = 0 (all instances land in
        // the first iteration of the new outer loop — the paper's point)
        let s1 = stmt(&p, "S1");
        let t = m.mul_vec(&layout.instance_vector(s1, &[7]));
        assert_eq!(t[0], 0);
        assert_eq!(t[3], 7);
    }

    #[test]
    fn paper_statement_reorder_matrix() {
        // §4.2: reorder S1 and the J loop under the I loop
        let p = zoo::simple_cholesky();
        let layout = InstanceLayout::new(&p);
        let i = looop(&p, "I");
        let m = Transform::ReorderChildren {
            parent: Some(i),
            perm: vec![1, 0],
        }
        .matrix(&p, &layout);
        let expected = IMat::from_rows(&[
            &[1, 0, 0, 0][..],
            &[0, 0, 1, 0],
            &[0, 1, 0, 0],
            &[0, 0, 0, 1],
        ]);
        assert_eq!(m, expected);
        // S1 now second: edge labels swap
        let s1 = stmt(&p, "S1");
        let v = m.mul_vec(&layout.instance_vector(s1, &[3]));
        assert_eq!(v.as_slice(), &[3, 1, 0, 3]);
    }

    #[test]
    fn paper_alignment_matrix() {
        // §4.3: align S1 by +1 with respect to the I loop. The offset
        // lands at (I's row, S1's distinguishing edge column) so that S1
        // maps to I+1 while S2 is untouched.
        let p = zoo::simple_cholesky();
        let layout = InstanceLayout::new(&p);
        let m = Transform::Align {
            stmt: stmt(&p, "S1"),
            looop: looop(&p, "I"),
            offset: 1,
        }
        .matrix(&p, &layout);
        let s1 = stmt(&p, "S1");
        let s2 = stmt(&p, "S2");
        let t1 = m.mul_vec(&layout.instance_vector(s1, &[4]));
        assert_eq!(t1[0], 5, "S1's I entry shifts by 1");
        let v2 = layout.instance_vector(s2, &[4, 6]);
        assert_eq!(m.mul_vec(&v2), v2, "S2 untouched");
    }

    #[test]
    fn reversal_and_scaling() {
        let p = zoo::simple_cholesky();
        let layout = InstanceLayout::new(&p);
        let j = looop(&p, "J");
        let r = Transform::Reverse(j).matrix(&p, &layout);
        assert_eq!(r[(3, 3)], -1);
        assert_eq!(r.det(), -1);
        let s = Transform::Scale {
            target: j,
            factor: 2,
        }
        .matrix(&p, &layout);
        assert_eq!(s[(3, 3)], 2);
        assert_eq!(s.det(), 2);
        assert!(Transform::Scale {
            target: j,
            factor: 0
        }
        .try_matrix(&p, &layout)
        .is_err());
    }

    #[test]
    fn alignment_requires_distinguishing_edge() {
        // in a perfect nest no edge distinguishes the only statement
        let p = zoo::perfect_nest();
        let layout = InstanceLayout::new(&p);
        let s = p.stmts().next().unwrap();
        let l = p.loops().next().unwrap();
        assert_eq!(
            Transform::Align {
                stmt: s,
                looop: l,
                offset: 1
            }
            .try_matrix(&p, &layout),
            Err(TransformError::NoDistinguishingEdge)
        );
    }

    #[test]
    fn compose_is_matrix_product() {
        let p = zoo::simple_cholesky();
        let layout = InstanceLayout::new(&p);
        let i = looop(&p, "I");
        let j = looop(&p, "J");
        let t1 = Transform::Interchange(i, j);
        let t2 = Transform::Reverse(i);
        let c = Transform::compose(&p, &layout, &[t1.clone(), t2.clone()]).unwrap();
        let m1 = t1.matrix(&p, &layout);
        let m2 = t2.matrix(&p, &layout);
        assert_eq!(c, m2.mul(&m1));
    }

    #[test]
    fn reorder_rejects_bad_perms() {
        let p = zoo::simple_cholesky();
        let layout = InstanceLayout::new(&p);
        let i = looop(&p, "I");
        for perm in [vec![0], vec![0, 0], vec![0, 2]] {
            assert_eq!(
                Transform::ReorderChildren {
                    parent: Some(i),
                    perm
                }
                .try_matrix(&p, &layout),
                Err(TransformError::BadPermutation)
            );
        }
    }

    #[test]
    fn interchange_preserves_entries() {
        // a permutation matrix times an instance vector permutes entries
        let p = zoo::cholesky_kij();
        let layout = InstanceLayout::new(&p);
        let k = looop(&p, "K");
        let j = looop(&p, "J");
        let m = Transform::Interchange(k, j).matrix(&p, &layout);
        assert!(m.is_permutation());
        let s3 = stmt(&p, "S3");
        let v = layout.instance_vector(s3, &[2, 5, 3]);
        let t = m.mul_vec(&v);
        let mut a = v.as_slice().to_vec();
        let mut b = t.as_slice().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}
