//! # inl-core
//!
//! The primary contribution of *Kodukula & Pingali, "Transformations for
//! Imperfectly Nested Loops" (SC 1996)*: a linear-algebraic framework in
//! which **imperfectly nested** loops — matrix factorizations being the
//! motivating family — can be permuted, skewed, reversed, scaled, aligned,
//! reordered, distributed and jammed by integer matrices, just as perfectly
//! nested loops are in the classical unimodular framework.
//!
//! The module structure follows the paper:
//!
//! * [`instance`] (§2) — **instance vectors**: dynamic statement instances
//!   of an imperfectly nested loop mapped to equal-length integer vectors
//!   whose lexicographic order is execution order, including the
//!   single-edge ε optimization and the "diagonal embedding" padding;
//! * [`depend`] (§3) — dependence analysis over instance vectors using the
//!   `inl-poly` integer-programming substrate: distance/direction vectors
//!   and the retained dependence polyhedra;
//! * [`transform`] (§4) — matrices for permutation, reversal, skewing,
//!   scaling, statement reordering and alignment;
//! * [`structural`] (§4.2) — the non-square matrices for loop distribution
//!   and jamming, together with the corresponding AST surgery;
//! * [`tiling`] — loop splitting (strip-mining), a structural pre-pass
//!   *outside* the paper's matrix framework, proved legal through the
//!   same dependence-projection machinery;
//! * [`legal`] (§5.1–5.3) — block-structure validation, recovery of the
//!   transformed AST (Fig. 6), and the legality test of Definition 6 (fast
//!   interval arithmetic over direction entries, with an exact polyhedral
//!   fallback);
//! * [`perstmt`] (§5.4) — per-statement transformations, the `Complete`
//!   augmentation procedure (Fig. 7), and non-singular per-statement
//!   transforms `N_S` (§5.5);
//! * [`complete`] (§6) — the completion procedure: extend a partial
//!   transformation (a few desired rows) to a complete legal matrix;
//! * [`parallel`] (§7) — parallel loop discovery via the nullspace of the
//!   dependence matrix;
//! * [`sink`] — the classical statement-sinking baseline the paper's §4.1
//!   contrasts against (with its two failure modes made explicit).
//!
//! # Example: permuting the simplified Cholesky nest
//!
//! ```
//! use inl_core::depend::analyze;
//! use inl_core::instance::InstanceLayout;
//! use inl_core::legal::check_legal;
//! use inl_core::transform::Transform;
//! use inl_ir::zoo;
//!
//! let p = zoo::simple_cholesky();
//! let layout = InstanceLayout::new(&p);
//! let deps = analyze(&p, &layout)?;
//! let loops: Vec<_> = p.loops().collect();
//! // §4.1's I↔J interchange, combined with statement reordering so the
//! // column updates precede the pivot (the left-looking form):
//! let m = Transform::compose(&p, &layout, &[
//!     Transform::ReorderChildren { parent: Some(loops[0]), perm: vec![1, 0] },
//!     Transform::Interchange(loops[0], loops[1]),
//! ]).unwrap();
//! let report = check_legal(&p, &layout, &deps, &m)?;
//! assert!(report.is_legal());
//! # Ok::<(), inl_linalg::InlError>(())
//! ```

pub mod complete;
pub mod depend;
pub mod instance;
pub mod legal;
pub mod parallel;
pub mod perstmt;
pub mod provenance;
pub mod sink;
pub mod structural;
pub mod tiling;
pub mod transform;

pub use depend::{analyze, DepEntry, DepKind, Dependence, DependenceMatrix};
pub use instance::{InstanceLayout, Position};
pub use legal::{check_legal, LegalityReport};
pub use transform::Transform;
