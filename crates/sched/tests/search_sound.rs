//! Soundness and completeness of the pruned search, checked differentially
//! against a brute-force enumerator that never prunes.
//!
//! The brute force visits every full-depth permutation×reversal leaf of
//! the identity shape's tree and decides legality directly on the full
//! row set (`check_prefix` on all rows, then `complete_transform`). The
//! pruned search must return *exactly* the same set of legal variant
//! labels: missing one means a `check_prefix` violation killed a subtree
//! that still contained a legal leaf (unsound pruning); an extra one
//! means the search fabricated a variant the full-row check rejects.
//! On top of the label differential, every returned variant must be
//! observationally equivalent to the source program.

use inl_core::complete::{check_prefix, complete_transform, PrefixCheck};
use inl_core::depend::analyze;
use inl_core::instance::{InstanceLayout, Position};
use inl_exec::run_fresh;
use inl_ir::{zoo, LoopId, Program};
use inl_linalg::IVec;
use inl_sched::sweep::measurement_init;
use inl_sched::{schedule_with, SchedConfig};
use proptest::prelude::*;

/// One differential target: constructor + tiny parameters for the
/// bitwise equivalence check.
type SmallTarget = (fn() -> Program, &'static [i128]);

/// Programs small enough that the exhaustive tree stays a few hundred
/// nodes (≤ 4 loops).
const SMALL_ZOO: &[SmallTarget] = &[
    (zoo::simple_cholesky, &[8]),
    (zoo::running_example, &[8]),
    (zoo::perfect_nest, &[8]),
    (zoo::cholesky_kij, &[8]),
    (zoo::wavefront, &[8]),
    (zoo::matmul, &[5]),
    (zoo::row_prefix_sums, &[8]),
    (zoo::independent_pair, &[8]),
];

/// Every legal full-depth variant label of `p`'s identity shape, found by
/// brute force: enumerate all loop permutations × sign patterns, check the
/// *complete* row set once, and attempt completion. No prefix pruning.
fn brute_force_legal(p: &Program, reversal: bool) -> Vec<String> {
    let layout = InstanceLayout::new(p);
    let deps = analyze(p, &layout).expect("analysis");
    let loops: Vec<LoopId> = p
        .loops()
        .filter(|&l| layout.positions().contains(&Position::Loop(l)))
        .collect();
    let signs: &[i64] = if reversal { &[1, -1] } else { &[1] };

    let mut legal = Vec::new();
    let mut perm: Vec<(usize, i64)> = Vec::new();
    let mut used = vec![false; loops.len()];
    enumerate(
        p, &layout, &deps, &loops, signs, &mut perm, &mut used, &mut legal,
    );
    legal.sort();
    legal
}

#[allow(clippy::too_many_arguments)]
fn enumerate(
    p: &Program,
    layout: &InstanceLayout,
    deps: &inl_core::depend::DependenceMatrix,
    loops: &[LoopId],
    signs: &[i64],
    perm: &mut Vec<(usize, i64)>,
    used: &mut [bool],
    legal: &mut Vec<String>,
) {
    if perm.len() == loops.len() {
        let rows: Vec<IVec> = perm
            .iter()
            .map(|&(i, sign)| {
                let unit = IVec::unit(layout.len(), layout.loop_position(loops[i]));
                if sign >= 0 {
                    unit
                } else {
                    -&unit
                }
            })
            .collect();
        // legality decided on the full row set in one shot — the pruned
        // search must agree without ever looking at most of these leaves
        if !matches!(
            check_prefix(p, layout, deps, &rows).expect("check"),
            PrefixCheck::Legal
        ) {
            return;
        }
        if complete_transform(p, layout, deps, &rows).is_err() {
            return;
        }
        let names: Vec<String> = perm
            .iter()
            .map(|&(i, sign)| {
                format!(
                    "{}{}",
                    p.loop_decl(loops[i]).name,
                    if sign < 0 { "'" } else { "" }
                )
            })
            .collect();
        legal.push(
            if names.iter().all(|s| s.trim_end_matches('\'').len() == 1) {
                names.concat()
            } else {
                names.join(".")
            },
        );
        return;
    }
    for i in 0..loops.len() {
        if used[i] {
            continue;
        }
        used[i] = true;
        for &sign in signs {
            perm.push((i, sign));
            enumerate(p, layout, deps, loops, signs, perm, used, legal);
            perm.pop();
        }
        used[i] = false;
    }
}

/// Identity-shape search config (the differential is per-tree; the shape
/// axis is exercised separately below).
fn tree_cfg(reversal: bool) -> SchedConfig {
    SchedConfig {
        reversal,
        shapes: false,
        tile: false,
        align: false,
        threads: 1,
        measure_reps: 1,
        ..SchedConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The pruned search finds exactly the brute-force legal set — no
    /// legal variant lost to pruning, no illegal variant returned.
    #[test]
    fn pruned_search_matches_brute_force(
        which in 0usize..SMALL_ZOO.len(),
        reversal in prop::bool::ANY,
    ) {
        let (ctor, _) = SMALL_ZOO[which];
        let p = ctor();
        let expected = brute_force_legal(&p, reversal);
        let result = schedule_with(&p, &tree_cfg(reversal)).expect("search");
        let mut found = result.legal.clone();
        found.sort();
        prop_assert_eq!(
            &found, &expected,
            "legal-set mismatch for {} (reversal={})", p.name(), reversal
        );
        // and the search genuinely skipped work whenever anything was pruned
        prop_assert!(result.stats.nodes_visited <= result.stats.nodes_exhaustive);
        if result.stats.pruned_subtrees > 0 {
            prop_assert!(result.stats.nodes_visited < result.stats.nodes_exhaustive);
        }
    }

    /// Every variant the full search (shapes + alignment on) returns is
    /// observationally equivalent to the source program.
    #[test]
    fn search_never_returns_illegal(which in 0usize..SMALL_ZOO.len()) {
        let (ctor, params) = SMALL_ZOO[which];
        let p = ctor();
        let cfg = SchedConfig { threads: 1, ..SchedConfig::default() };
        let result = schedule_with(&p, &cfg).expect("search");
        let reference = run_fresh(&p, params, &measurement_init);
        for v in &result.variants {
            let m = run_fresh(&v.program, params, &measurement_init);
            prop_assert!(
                reference.same_state(&m).is_ok(),
                "variant {} of {} diverged from the source program",
                v.label, p.name()
            );
        }
    }
}

/// The pruned search stays exact on a strip-mined program: split matmul's
/// reuse-carrying K loop and re-run the label differential. This proves
/// the non-unimodular clamp bounds a split introduces do not confuse the
/// prefix pruning — the pruned set over the 4-deep split nest equals the
/// brute-force legal set.
#[test]
fn tiled_search_matches_brute_force_on_split_program() {
    let p = zoo::matmul();
    let l = inl_core::tiling::innermost_reuse_loop(&p).expect("matmul carries reuse on K");
    let r = inl_core::tiling::split(&p, l, 4).expect("split");
    assert!(inl_core::tiling::split_legal(&r)
        .expect("legality")
        .is_legal());
    let expected = brute_force_legal(&r.program, false);
    assert!(
        !expected.is_empty(),
        "split program must keep legal variants"
    );
    let result = schedule_with(&r.program, &tree_cfg(false)).expect("search");
    let mut found = result.legal.clone();
    found.sort();
    assert_eq!(found, expected, "legal-set mismatch on the split program");
    assert!(result.stats.nodes_visited <= result.stats.nodes_exhaustive);
}

/// Deterministic spot-check that the differential actually bites: the
/// Cholesky tree must prune at least one subtree while agreeing with
/// brute force (proves the prefix test fires on interior nodes, not just
/// at leaves).
#[test]
fn cholesky_differential_prunes_interior_nodes() {
    let p = zoo::simple_cholesky();
    let expected = brute_force_legal(&p, true);
    assert!(!expected.is_empty());
    let result = schedule_with(&p, &tree_cfg(true)).expect("search");
    let mut found = result.legal.clone();
    found.sort();
    assert_eq!(found, expected);
    assert!(result.stats.pruned_subtrees > 0, "nothing was pruned");
    assert!(result.stats.nodes_visited < result.stats.nodes_exhaustive);
}
