//! `inl-sched` — run the auto-scheduler over the zoo (or one program)
//! and print what it chose and why it was cheap to find.
//!
//! ```text
//! inl-sched                                # sweep the whole zoo, print the table
//! inl-sched --program matmul --show       # one program, with chosen pseudocode
//! inl-sched --json target/BENCH_sched.json # also write the CI baseline document
//! inl-sched --explain-json target/sched-explain.json  # decision provenance
//! ```
//!
//! Search knobs come from `SchedConfig::from_env` (`INL_SCHED_BUDGET`,
//! `INL_SCHED_REVERSAL`, `INL_SCHED_ALIGN`, `INL_SCHED_SHAPES`,
//! `INL_SCHED_THREADS`, `INL_SCHED_REPS`, `INL_SCHED_TILE`,
//! `INL_SCHED_TILE_SIZES`) with `--budget`/`--reps` overriding the
//! environment. A program whose sweep fails is skipped — the table and
//! JSON cover the rest, with the failure recorded as an `errors` row —
//! and the run exits 1 at the end, as it does when any chosen variant
//! fails the bitwise-equivalence check against its source program.

use inl_sched::sweep::{bench_json_with_errors, render_table, sweep_program, SWEEP_ZOO};
use inl_sched::SchedConfig;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut cfg = SchedConfig::from_env();
    let mut json_path: Option<String> = None;
    let mut explain_path: Option<String> = None;
    let mut program: Option<String> = None;
    let mut show = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_path = args.next(),
            "--explain-json" => explain_path = args.next(),
            "--program" => program = args.next(),
            "--show" => show = true,
            "--budget" => {
                cfg.budget = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(cfg.budget)
            }
            "--reps" => {
                cfg.measure_reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(cfg.measure_reps)
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: inl-sched [--program NAME] [--json PATH] \
                     [--explain-json PATH] [--budget N] [--reps N] [--show]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    if explain_path.is_some() {
        inl_obs::set_explain_enabled(true);
    }

    let targets: Vec<_> = match &program {
        None => SWEEP_ZOO.to_vec(),
        Some(name) => {
            let Some(t) = SWEEP_ZOO.iter().find(|(n, _, _)| n == name) else {
                eprintln!("unknown program '{name}'; the zoo:");
                for (n, _, _) in SWEEP_ZOO {
                    eprintln!("  {n}");
                }
                return ExitCode::FAILURE;
            };
            vec![*t]
        }
    };

    // A failing program is recorded and skipped, never fatal mid-sweep:
    // the remaining targets still get scheduled, the table and JSON carry
    // whatever succeeded, and the failures surface as error rows plus a
    // non-zero exit at the end.
    let mut entries = Vec::with_capacity(targets.len());
    let mut failures: Vec<(String, String)> = Vec::new();
    for (name, ctor, params) in &targets {
        match sweep_program(name, &ctor(), params, &cfg) {
            Ok(e) => entries.push(e),
            Err(err) => {
                eprintln!("{name}: scheduling failed: {err}");
                failures.push((name.to_string(), err.to_string()));
            }
        }
    }

    print!("{}", render_table(&entries));
    if show {
        for (name, ctor, params) in &targets {
            // pair by name, not by position: a failed target has no entry
            let Some(e) = entries.iter().find(|e| &e.name == name) else {
                continue;
            };
            match inl_sched::schedule_with(&ctor(), &cfg) {
                Ok(r) => {
                    println!("\n{name} (params {params:?}): chosen {}", e.chosen);
                    println!("{}", r.chosen().pseudocode);
                }
                Err(err) => {
                    eprintln!("{name}: re-schedule for --show failed: {err}");
                    failures.push((name.to_string(), err.to_string()));
                    continue;
                }
            }
            println!("variants by cost:");
            for m in &e.measured {
                println!("  {:<28} {:>10} ns  [{}]", m.label, m.ns, m.cost);
            }
        }
    }

    if let Some(path) = &json_path {
        let doc = bench_json_with_errors(&entries, &failures, &cfg);
        if let Err(e) = std::fs::write(path, doc.to_pretty_string()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    if let Some(path) = &explain_path {
        if let Err(e) = inl_obs::explain::write_json(path) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }

    let broken: Vec<_> = entries
        .iter()
        .filter(|e| !e.bitwise_identical)
        .map(|e| e.name.as_str())
        .collect();
    if !broken.is_empty() {
        eprintln!("BITWISE FAILURE: chosen variant diverged for {broken:?}");
        return ExitCode::FAILURE;
    }
    if !failures.is_empty() {
        eprintln!(
            "{} of {} programs failed to schedule (see error rows above)",
            failures.len(),
            targets.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
