//! Zoo-wide scheduling sweep: run [`crate::schedule`] over every zoo
//! program, *measure* every legal variant on the VM backend, and compare
//! the cost model's choice against reality.
//!
//! This is the machinery behind the `inl-sched` CLI, the report binary's
//! `## schedule` section, and the committed `baselines/BENCH_sched.json`
//! CI gate: the search counters in each [`SweepEntry`] are deterministic
//! and diffed exactly, the `*_ns` timings are thresholded.

use crate::{schedule_with, Cost, SchedConfig, SchedError, SearchStats};
use inl_exec::{run_fresh, Machine, VmRunner};
use inl_ir::{zoo, Program};
use inl_linalg::{InlError, Int};
use inl_obs::Json;
use std::time::Instant;

/// Deterministic array initializer used for measurement and the bitwise
/// equivalence check. This is a *deliberate duplicate* of
/// `inl_bench::spd_init` — `inl-bench` depends on this crate (its report
/// prints the schedule sweep), so the init cannot be imported from there
/// without a cycle. Symmetric positive-definite-ish for 2-D arrays so
/// Cholesky-family programs stay numerically stable.
pub fn measurement_init(_: &str, idx: &[usize]) -> f64 {
    if idx.len() == 2 {
        if idx[0] == idx[1] {
            (idx[0] + 10) as f64
        } else {
            1.0 / ((idx[0] + idx[1] + 2) as f64)
        }
    } else {
        2.0 + idx[0] as f64
    }
}

/// Problem size used by the sweep: large enough that loop-order locality
/// effects are visible on the VM, small enough that measuring every legal
/// variant of every zoo program stays in CI budget.
pub const SWEEP_N: Int = 56;

/// One sweep target: wire name, constructor, measurement parameters.
pub type SweepTarget = (&'static str, fn() -> Program, &'static [Int]);

/// The programs the sweep schedules — the same list `inl-serve` exposes
/// (mirrored here because the dependency points the other way: the
/// service calls into this crate).
pub const SWEEP_ZOO: &[SweepTarget] = &[
    ("simple_cholesky", zoo::simple_cholesky, &[SWEEP_N]),
    ("running_example", zoo::running_example, &[SWEEP_N]),
    ("perfect_nest", zoo::perfect_nest, &[SWEEP_N]),
    (
        "augmentation_example",
        zoo::augmentation_example,
        &[SWEEP_N],
    ),
    ("cholesky_kij", zoo::cholesky_kij, &[SWEEP_N]),
    (
        "cholesky_left_looking",
        zoo::cholesky_left_looking,
        &[SWEEP_N],
    ),
    ("lu_kij", zoo::lu_kij, &[SWEEP_N]),
    ("wavefront", zoo::wavefront, &[SWEEP_N]),
    ("matmul", zoo::matmul, &[28]),
    ("rect_wavefront", zoo::rect_wavefront, &[28, 36]),
    ("row_prefix_sums", zoo::row_prefix_sums, &[SWEEP_N]),
    (
        "distributed_simple_cholesky",
        zoo::distributed_simple_cholesky,
        &[SWEEP_N],
    ),
    ("independent_pair", zoo::independent_pair, &[SWEEP_N]),
];

/// One measured variant: cost-rank order is the `Vec` order in
/// [`SweepEntry::measured`].
#[derive(Clone, Debug)]
pub struct MeasuredVariant {
    /// The variant's display label.
    pub label: String,
    /// Its static ranking key.
    pub cost: Cost,
    /// Minimum wall time over the configured repetitions, nanoseconds.
    pub ns: u64,
}

/// The sweep's verdict on one program.
#[derive(Clone, Debug)]
pub struct SweepEntry {
    /// Program name (zoo wire name).
    pub name: String,
    /// Search counters (deterministic, gated exactly).
    pub stats: SearchStats,
    /// Label of the chosen (cost-minimal) variant.
    pub chosen: String,
    /// Every legal variant in cost order, with its measured runtime.
    pub measured: Vec<MeasuredVariant>,
    /// Measured runtime of the chosen variant, nanoseconds.
    pub chosen_ns: u64,
    /// Fastest measured variant, nanoseconds.
    pub best_ns: u64,
    /// Label of the fastest measured variant.
    pub best_label: String,
    /// Slowest measured variant, nanoseconds.
    pub worst_ns: u64,
    /// `true` when the chosen variant lands within the noise tier of the
    /// measured best: `chosen_ns ≤ best_ns + max(best_ns/2, 250µs)`. The
    /// absolute slack floor keeps the bit deterministic for zoo programs
    /// whose whole run is a few microseconds, where any relative
    /// comparison would gate on scheduler jitter.
    pub within_tier: bool,
    /// `true` when the chosen variant's final machine state is bitwise
    /// identical to the source program's.
    pub bitwise_identical: bool,
    /// Wall time of the search itself (schedule call), nanoseconds.
    pub search_ns: u64,
    /// Wall time of measuring all variants, nanoseconds.
    pub measure_ns: u64,
    /// Variant pairs where cost order and measured order agree.
    pub concordant: u64,
    /// Variant pairs where they disagree.
    pub discordant: u64,
}

impl SweepEntry {
    /// Chosen-vs-best slowdown in percent (`0` = chosen is the measured
    /// best).
    pub fn chosen_vs_best_pct(&self) -> u64 {
        if self.best_ns == 0 {
            return 0;
        }
        (self.chosen_ns.saturating_sub(self.best_ns)) * 100 / self.best_ns
    }

    /// Rank agreement between the cost model and measurement, in percent
    /// of variant pairs (`100` = perfectly concordant).
    pub fn rank_agreement_pct(&self) -> u64 {
        let pairs = self.concordant + self.discordant;
        if pairs == 0 {
            return 100;
        }
        self.concordant * 100 / pairs
    }
}

/// Schedule one program and measure every legal variant.
pub fn sweep_program(
    name: &str,
    p: &Program,
    params: &[Int],
    cfg: &SchedConfig,
) -> Result<SweepEntry, SchedError> {
    let _span = inl_obs::span("sched.sweep");
    let t0 = Instant::now();
    let result = schedule_with(p, cfg)?;
    let search_ns = t0.elapsed().as_nanos() as u64;

    let t1 = Instant::now();
    // compile every variant once, then one untimed warmup run each: the
    // first execution pays cold caches and page faults that would
    // otherwise skew min-of-reps
    let runners: Vec<VmRunner> = result
        .variants
        .iter()
        .map(|v| VmRunner::new(&v.program))
        .collect();
    for (v, runner) in result.variants.iter().zip(&runners) {
        let mut warm = Machine::new(&v.program, params, &measurement_init);
        runner.run(&mut warm);
    }
    // interleave the timed reps across variants (rep-major, not
    // variant-major): back-to-back timing of one variant confounds its
    // runtime with drift — frequency ramp-up, cache state — and the
    // drift always lands on whichever variant runs first (the chosen
    // one, since variants are measured in cost order)
    let mut best_ns_per: Vec<u64> = vec![u64::MAX; result.variants.len()];
    for _ in 0..cfg.measure_reps.max(1) {
        for ((v, runner), best) in result.variants.iter().zip(&runners).zip(&mut best_ns_per) {
            let mut m = Machine::new(&v.program, params, &measurement_init);
            let t = Instant::now();
            runner.run(&mut m);
            *best = (*best).min(t.elapsed().as_nanos() as u64);
        }
    }
    let measured: Vec<MeasuredVariant> = result
        .variants
        .iter()
        .zip(best_ns_per)
        .map(|(v, ns)| MeasuredVariant {
            label: v.label.clone(),
            cost: v.cost.clone(),
            ns,
        })
        .collect();
    let measure_ns = t1.elapsed().as_nanos() as u64;

    let (chosen_ns, best_ns, best_label, worst_ns) = measured_extremes(name, &measured)?;
    let within_tier = chosen_ns <= best_ns.saturating_add((best_ns / 2).max(250_000));

    // cost order vs measured order: count concordant pairs, treating
    // equal-cost pairs as concordant (the tie-break label order carries
    // no performance claim)
    let mut concordant = 0u64;
    let mut discordant = 0u64;
    for i in 0..measured.len() {
        for j in (i + 1)..measured.len() {
            if measured[i].cost == measured[j].cost || measured[i].ns <= measured[j].ns {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }

    let source = run_fresh(p, params, &measurement_init);
    let transformed = run_fresh(&result.chosen().program, params, &measurement_init);
    let bitwise_identical = source.same_state(&transformed).is_ok();

    let chosen = result.chosen().label.clone();
    Ok(SweepEntry {
        name: name.to_string(),
        stats: result.stats,
        chosen,
        measured,
        chosen_ns,
        best_ns,
        best_label,
        worst_ns,
        within_tier,
        bitwise_identical,
        search_ns,
        measure_ns,
        concordant,
        discordant,
    })
}

/// Chosen/best/worst summary of a measured-variant list, as
/// `(chosen_ns, best_ns, best_label, worst_ns)`.
///
/// An empty list is a typed error, not a panic: `schedule_with`
/// guarantees at least one variant today, but the panic-free policy
/// (PR 5) applies to this path too — a future caller handing in an
/// empty measurement sweep must get an [`InlError`] it can report, not
/// an abort of the whole zoo sweep.
pub fn measured_extremes(
    name: &str,
    measured: &[MeasuredVariant],
) -> Result<(u64, u64, String, u64), SchedError> {
    let (Some(first), Some(best)) = (measured.first(), measured.iter().min_by_key(|m| m.ns)) else {
        return Err(SchedError::Analysis(InlError::invalid_target(
            format!("sweep of {name}"),
            "no measured variants: the schedule produced an empty variant list",
        )));
    };
    let worst_ns = measured.iter().map(|m| m.ns).max().unwrap_or(best.ns);
    Ok((first.ns, best.ns, best.label.clone(), worst_ns))
}

/// Run [`sweep_program`] over the whole [`SWEEP_ZOO`].
pub fn sweep_zoo(cfg: &SchedConfig) -> Result<Vec<SweepEntry>, SchedError> {
    let mut entries = Vec::with_capacity(SWEEP_ZOO.len());
    for (name, ctor, params) in SWEEP_ZOO {
        entries.push(sweep_program(name, &ctor(), params, cfg)?);
    }
    Ok(entries)
}

/// Render the sweep as the markdown table shared by the `inl-sched` CLI
/// and the report binary's `## schedule` section.
pub fn render_table(entries: &[SweepEntry]) -> String {
    let mut out = String::new();
    out.push_str(
        "| program | visited | exhaustive | prune% | legal | chosen | vs best | rank agree | bitwise |\n",
    );
    out.push_str(
        "|---------|---------|------------|--------|-------|--------|---------|------------|--------|\n",
    );
    for e in entries {
        out.push_str(&format!(
            "| {} | {} | {} | {}% | {} | {} | +{}% | {}% | {} |\n",
            e.name,
            e.stats.nodes_visited,
            e.stats.nodes_exhaustive,
            e.stats.prune_rate_pct(),
            e.measured.len(),
            e.chosen,
            e.chosen_vs_best_pct(),
            e.rank_agreement_pct(),
            if e.bitwise_identical { "yes" } else { "NO" },
        ));
    }
    out
}

/// Serialize the sweep in the bench-baseline format
/// (`{"version": 1, "programs": [...]}`) consumed by `inl-obs-diff`:
/// integer counters are compared exactly, `*_ns` fields against the
/// threshold, `bitwise_identical` must never flip to `false`. The
/// nondeterministic rank-concordance pairs are deliberately *excluded* —
/// they depend on measurement noise and belong in the printed table only.
pub fn bench_json(entries: &[SweepEntry], cfg: &SchedConfig) -> Json {
    bench_json_with_errors(entries, &[], cfg)
}

/// [`bench_json`] plus an `errors` array recording programs whose sweep
/// failed (one `{name, error}` row each). A partial sweep still produces
/// a document: CI gates on the successful rows and the caller signals the
/// failures through its exit code.
pub fn bench_json_with_errors(
    entries: &[SweepEntry],
    errors: &[(String, String)],
    cfg: &SchedConfig,
) -> Json {
    let mut programs = Vec::with_capacity(entries.len());
    for e in entries {
        let mut o = Json::object();
        o.insert("name", Json::Str(e.name.clone()));
        o.insert("nodes_visited", Json::Int(e.stats.nodes_visited));
        o.insert("nodes_exhaustive", Json::Int(e.stats.nodes_exhaustive));
        o.insert("pruned_subtrees", Json::Int(e.stats.pruned_subtrees));
        o.insert("pruned_nodes", Json::Int(e.stats.pruned_nodes));
        o.insert("legal_variants", Json::Int(e.stats.legal_variants));
        o.insert("shapes", Json::Int(e.stats.shapes));
        o.insert(
            "completion_failures",
            Json::Int(e.stats.completion_failures),
        );
        o.insert("within_tier", Json::Int(e.within_tier as u64));
        o.insert("bitwise_identical", Json::Bool(e.bitwise_identical));
        o.insert("chosen", Json::Str(e.chosen.clone()));
        o.insert("search_ns", Json::Int(e.search_ns));
        o.insert("measure_ns", Json::Int(e.measure_ns));
        o.insert("chosen_ns", Json::Int(e.chosen_ns));
        o.insert("best_ns", Json::Int(e.best_ns));
        o.insert("worst_ns", Json::Int(e.worst_ns));
        programs.push(o);
    }
    let mut doc = Json::object();
    doc.insert("version", Json::Int(1));
    doc.insert("reps", Json::Int(cfg.measure_reps as u64));
    doc.insert("programs", Json::Array(programs));
    let rows = errors
        .iter()
        .map(|(name, error)| {
            let mut o = Json::object();
            o.insert("name", Json::Str(name.clone()));
            o.insert("error", Json::Str(error.clone()));
            o
        })
        .collect();
    doc.insert("errors", Json::Array(rows));
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_cfg() -> SchedConfig {
        SchedConfig {
            threads: 1,
            measure_reps: 1,
            ..SchedConfig::default()
        }
    }

    #[test]
    fn sweep_entry_is_bitwise_and_in_tier() {
        let e = sweep_program(
            "simple_cholesky",
            &zoo::simple_cholesky(),
            &[12],
            &quiet_cfg(),
        )
        .expect("sweeps");
        assert!(e.bitwise_identical, "chosen variant diverged");
        assert!(e.stats.pruned_subtrees > 0);
        assert!(!e.measured.is_empty());
        assert_eq!(e.chosen, e.measured[0].label);
        assert!(e.worst_ns >= e.best_ns);
    }

    #[test]
    fn empty_measured_list_is_a_typed_error_not_a_panic() {
        let err = measured_extremes("ghost", &[]).expect_err("empty list must not rank");
        let msg = err.to_string();
        assert!(msg.contains("sweep of ghost"), "names the sweep: {msg}");
        assert!(
            msg.contains("no measured variants"),
            "states the cause: {msg}"
        );
    }

    #[test]
    fn bench_json_has_gated_counters() {
        let e = sweep_program("matmul", &zoo::matmul(), &[6], &quiet_cfg()).expect("sweeps");
        let doc = bench_json(&[e], &quiet_cfg());
        let s = doc.to_pretty_string();
        let parsed = Json::parse(&s).expect("round-trips");
        let progs = match parsed.get("programs") {
            Some(Json::Array(a)) => a,
            _ => panic!("programs array"),
        };
        assert_eq!(progs.len(), 1);
        for key in [
            "nodes_visited",
            "nodes_exhaustive",
            "pruned_subtrees",
            "legal_variants",
            "within_tier",
            "chosen_ns",
        ] {
            assert!(progs[0].get(key).is_some(), "missing gated field {key}");
        }
        assert!(
            matches!(parsed.get("errors"), Some(Json::Array(a)) if a.is_empty()),
            "clean sweep carries an empty errors array"
        );
    }

    #[test]
    fn failed_programs_become_error_rows() {
        let errs = vec![("ghost".to_string(), "no measured variants".to_string())];
        let doc = bench_json_with_errors(&[], &errs, &quiet_cfg());
        let parsed = Json::parse(&doc.to_pretty_string()).expect("round-trips");
        let rows = match parsed.get("errors") {
            Some(Json::Array(a)) => a,
            _ => panic!("errors array"),
        };
        assert_eq!(rows.len(), 1);
        assert!(matches!(rows[0].get("name"), Some(Json::Str(s)) if s == "ghost"));
        assert!(
            matches!(rows[0].get("error"), Some(Json::Str(s)) if s.contains("no measured variants"))
        );
    }

    #[test]
    fn table_renders_every_program() {
        let e = sweep_program("wavefront", &zoo::wavefront(), &[10], &quiet_cfg()).expect("sweeps");
        let table = render_table(&[e]);
        assert!(table.contains("| wavefront |"));
        assert!(table.contains("rank agree"));
    }
}
