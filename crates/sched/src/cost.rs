//! The variant-ranking key.
//!
//! [`Cost`] projects [`inl_codegen::CostFeatures`] onto an ordered tuple;
//! variants compare lexicographically, field by field, smaller is better:
//!
//! 1. `neg_tile_reuse` — blocked-reuse credit (stored negated so more
//!    confined slabs sort first). This must lead: a split deepens the
//!    nest, so the depth-weighted `reuse_penalty` *grows* under tiling
//!    even when the tile confines a row-jumped slab to cache — the one
//!    effect tiling exists for. Every untiled variant scores 0 here, so
//!    their relative order is decided by the remaining fields exactly as
//!    before;
//! 2. `reuse_penalty` — depth-weighted locality penalty (dominant among
//!    untiled variants: it separates unit-stride inner loops from
//!    row-jumping ones, the effect the paper's "performance can be quite
//!    different" remark is about);
//! 3. `max_write_stride` — prefer dense, unit-stride stores;
//! 4. `guards` — each surviving guard is a per-instance branch;
//! 5. `neg_parallel_slots` — with everything else equal, prefer the
//!    variant certifying more DOALL loop slots.
//!
//! Ties after all five fields are broken on the variant label, making the
//! chosen variant deterministic for a given program and configuration.

use inl_codegen::CostFeatures;
use std::fmt;

/// Lexicographic ranking key of one variant (see the module docs; field
/// order is the comparison order).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Cost {
    /// Negated blocked-reuse credit ([`CostFeatures::tile_reuse`]).
    pub neg_tile_reuse: i64,
    /// Depth-weighted locality penalty ([`CostFeatures::reuse_penalty`]).
    pub reuse_penalty: i64,
    /// Largest write-subscript loop coefficient.
    pub max_write_stride: i64,
    /// Guards surviving simplification.
    pub guards: i64,
    /// Negated count of certified DOALL slots.
    pub neg_parallel_slots: i64,
}

impl Cost {
    /// Project the features onto the ranking key.
    pub fn of(f: &CostFeatures) -> Cost {
        Cost {
            neg_tile_reuse: -f.tile_reuse,
            reuse_penalty: f.reuse_penalty,
            max_write_stride: f.max_write_stride,
            guards: f.guards,
            neg_parallel_slots: -f.parallel_slots(),
        }
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tile={} reuse={} stride={} guards={} doall={}",
            -self.neg_tile_reuse,
            self.reuse_penalty,
            self.max_write_stride,
            self.guards,
            -self.neg_parallel_slots
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_lexicographic() {
        let base = Cost {
            neg_tile_reuse: 0,
            reuse_penalty: 10,
            max_write_stride: 1,
            guards: 0,
            neg_parallel_slots: 0,
        };
        let worse_locality = Cost {
            neg_tile_reuse: 0,
            reuse_penalty: 11,
            max_write_stride: 0,
            guards: 0,
            neg_parallel_slots: -3,
        };
        assert!(base < worse_locality, "locality dominates everything");
        let more_parallel = Cost {
            neg_parallel_slots: -1,
            ..base.clone()
        };
        assert!(more_parallel < base, "parallelism breaks exact ties");
        // blocked reuse outranks even a much smaller locality penalty:
        // the deeper tiled nest necessarily inflates reuse_penalty
        let tiled = Cost {
            neg_tile_reuse: -1,
            reuse_penalty: 1_000_000,
            ..base.clone()
        };
        assert!(tiled < base, "tile reuse dominates the ranking");
    }
}
