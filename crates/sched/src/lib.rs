//! # inl-sched
//!
//! The auto-scheduler: given a program, *search* the legal transformation
//! space and *choose* a variant — the step the paper's framework stops
//! short of. Where `inl-core` can prove that a transformation is legal,
//! this crate decides which legal transformation to use.
//!
//! The search space is the product of five axes (ROADMAP items 1 and 4):
//!
//! * **shape** — legal one-level loop distributions and fusions (§4.2),
//!   each producing a structurally different program;
//! * **tile** — strip-mined shapes: the innermost reuse-carrying loop
//!   split by each candidate tile size (`inl_core::tiling`), proved
//!   legal through the dependence projections of the split program and
//!   then searched like any other shape;
//! * **permutation** — the order in which loop selector rows fill the
//!   outer slots of the transformation matrix;
//! * **reversal** — each selector row may enter negated (§4.1);
//! * **alignment** — statement-alignment offsets (§4.3) refined onto the
//!   front-running variant;
//!
//! with statement reordering (the edge rows) supplied by the completion
//! procedure's topological sort, so it never has to be searched.
//!
//! Illegal *prefixes* are pruned with
//! [`inl_core::complete::check_prefix`]: the first dependence whose
//! projection goes lexicographically negative kills the entire subtree,
//! which is what keeps the tree far below the `Σ_d P(L,d)·2^d` exhaustive
//! node count (see [`SearchStats::prune_rate_pct`]). Surviving variants
//! are compiled through [`inl_codegen::compile_batch`] — a cache-warm
//! batched sweep, not N cold compiles — and ranked by the static
//! [`Cost`] key computed from each variant's
//! [`inl_codegen::CostFeatures`]. Every decision (pruned subtree,
//! dominated variant, chosen variant) is recorded as `inl_obs::explain`
//! evidence under a `sched/<program>` session, so `inl-explain query` can
//! answer *why this order*.
//!
//! ```
//! use inl_ir::zoo;
//!
//! let result = inl_sched::schedule(&zoo::simple_cholesky()).expect("schedules");
//! // pruning beat brute force, and something legal was chosen
//! assert!(result.stats.nodes_visited < result.stats.nodes_exhaustive);
//! assert!(result.stats.pruned_subtrees > 0);
//! assert!(result.legal.contains(&result.chosen().label));
//! println!("chosen: {}", result.chosen().label);
//! ```

#![warn(missing_docs)]

mod cost;
mod search;
pub mod sweep;

pub use cost::Cost;
pub use search::SearchStats;

use inl_codegen::{compile_batch, generate, CostFeatures};
use inl_core::complete::CompletionError;
use inl_core::depend::analyze;
use inl_core::instance::InstanceLayout;
use inl_core::transform::Transform;
use inl_ir::Program;
use inl_linalg::{IMat, InlError};
use std::fmt;

/// Why scheduling failed.
#[derive(Clone, Debug)]
pub enum SchedError {
    /// Dependence analysis or a structural transformation failed.
    Analysis(InlError),
    /// A prefix-legality probe failed (arithmetic overflow or a
    /// polyhedral budget, not an illegal prefix — those are pruned).
    Prefix(CompletionError),
    /// The search found no legal variant (the identity shape's identity
    /// order is always legal for well-formed programs, so this signals a
    /// malformed input or an exhausted budget).
    NoLegalVariant,
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::Analysis(e) => write!(f, "analysis failed: {e}"),
            SchedError::Prefix(e) => write!(f, "prefix check failed: {e:?}"),
            SchedError::NoLegalVariant => write!(f, "no legal variant found"),
        }
    }
}

impl std::error::Error for SchedError {}

/// Tuning knobs of the search, all overridable from the environment (see
/// [`SchedConfig::from_env`] and the README operations reference).
#[derive(Clone, Debug)]
pub struct SchedConfig {
    /// Maximum search-tree nodes to visit across all shapes
    /// (`INL_SCHED_BUDGET`, default 10 000). The search stops early —
    /// keeping what it found — when the budget is exhausted.
    pub budget: u64,
    /// Include reversed loop selectors (`INL_SCHED_REVERSAL`, default on;
    /// `0` disables).
    pub reversal: bool,
    /// Refine the front-runner with statement-alignment offsets
    /// (`INL_SCHED_ALIGN`, default on; `0` disables).
    pub align: bool,
    /// Enumerate jam/distribute shapes (`INL_SCHED_SHAPES`, default on;
    /// `0` disables).
    pub shapes: bool,
    /// Enumerate strip-mined (tiled) shapes on the innermost
    /// reuse-carrying loop (`INL_SCHED_TILE`, default on; `0` disables).
    pub tile: bool,
    /// Candidate tile sizes for the tile axis (`INL_SCHED_TILE_SIZES`,
    /// comma-separated, default `16,32,64`; sizes below 2 are ignored).
    pub tile_sizes: Vec<inl_ir::Int>,
    /// Worker threads for the candidate compile sweep
    /// (`INL_SCHED_THREADS`, default 0 = one per core).
    pub threads: usize,
    /// Repetitions per variant when the sweep *measures* execution
    /// (`INL_SCHED_REPS`, default 3; the minimum is kept).
    pub measure_reps: usize,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            budget: 10_000,
            reversal: true,
            align: true,
            shapes: true,
            tile: true,
            tile_sizes: vec![16, 32, 64],
            threads: 0,
            measure_reps: 3,
        }
    }
}

impl SchedConfig {
    /// Read the configuration from `INL_SCHED_*` environment variables,
    /// falling back to the defaults.
    pub fn from_env() -> SchedConfig {
        let mut cfg = SchedConfig::default();
        let flag = |name: &str, default: bool| -> bool {
            match std::env::var(name) {
                Ok(v) => v != "0" && !v.is_empty(),
                Err(_) => default,
            }
        };
        if let Ok(v) = std::env::var("INL_SCHED_BUDGET") {
            if let Ok(n) = v.parse::<u64>() {
                cfg.budget = n;
            }
        }
        cfg.reversal = flag("INL_SCHED_REVERSAL", cfg.reversal);
        cfg.align = flag("INL_SCHED_ALIGN", cfg.align);
        cfg.shapes = flag("INL_SCHED_SHAPES", cfg.shapes);
        cfg.tile = flag("INL_SCHED_TILE", cfg.tile);
        if let Ok(v) = std::env::var("INL_SCHED_TILE_SIZES") {
            let sizes: Vec<inl_ir::Int> = v
                .split(',')
                .filter_map(|s| s.trim().parse::<inl_ir::Int>().ok())
                .filter(|&t| t >= 2)
                .collect();
            if !sizes.is_empty() {
                cfg.tile_sizes = sizes;
            }
        }
        if let Ok(v) = std::env::var("INL_SCHED_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                cfg.threads = n;
            }
        }
        if let Ok(v) = std::env::var("INL_SCHED_REPS") {
            if let Ok(n) = v.parse::<usize>() {
                cfg.measure_reps = n.max(1);
            }
        }
        cfg
    }
}

/// One legal variant the search produced, fully compiled.
#[derive(Clone, Debug)]
pub struct ScheduledVariant {
    /// Display label: optional shape prefix, loop order with `'` marking
    /// reversed loops, optional `+align(..)` suffix — e.g.
    /// `"dist(K@1)/KJ'LI"`.
    pub label: String,
    /// The shape this variant lives in (`""` = identity shape).
    pub shape: String,
    /// The completed transformation matrix over the shape's program.
    pub matrix: IMat,
    /// The generated program (runnable through `inl-exec`).
    pub program: Program,
    /// Pseudocode of the generated program.
    pub pseudocode: String,
    /// The variant's static cost features.
    pub features: CostFeatures,
    /// Its ranking key.
    pub cost: Cost,
}

/// The outcome of a [`schedule`] run.
#[derive(Clone, Debug)]
pub struct ScheduleResult {
    /// Every legal variant, sorted by cost (best first — `variants[0]`
    /// is the chosen one).
    pub variants: Vec<ScheduledVariant>,
    /// Search counters (deterministic; CI-gated).
    pub stats: SearchStats,
    /// Labels of all legal variants in cost order (convenience mirror of
    /// `variants`).
    pub legal: Vec<String>,
}

impl ScheduleResult {
    /// The chosen (cost-minimal) variant.
    pub fn chosen(&self) -> &ScheduledVariant {
        &self.variants[0]
    }
}

/// Search the transformation space of `p` with the default
/// (environment-supplied) configuration and return every legal variant,
/// best first. See the crate docs for the search structure.
pub fn schedule(p: &Program) -> Result<ScheduleResult, SchedError> {
    schedule_with(p, &SchedConfig::from_env())
}

/// [`schedule`] with an explicit configuration.
pub fn schedule_with(p: &Program, cfg: &SchedConfig) -> Result<ScheduleResult, SchedError> {
    let _span = inl_obs::span("sched.schedule");
    inl_obs::counter_add!("sched.programs", 1);
    let explain = inl_obs::explain_enabled();
    if explain {
        inl_obs::explain::begin_session(&format!("sched/{}", p.name()));
    }

    let mut stats = SearchStats::default();
    let shapes = search::enumerate_shapes(p, cfg)?;
    stats.shapes = shapes.len() as u64;

    let mut variants: Vec<ScheduledVariant> = Vec::new();
    for shape in &shapes {
        let found = search::search_shape(&shape.label, &shape.program, cfg, &mut stats)?;
        if found.is_empty() {
            continue;
        }
        let compiled = compile_batch(&shape.program, &found, cfg.threads);
        for (cv, (_, matrix)) in compiled.into_iter().zip(found) {
            let label = format!("{}{}", search::shape_prefix(&shape.label), cv.label);
            let cost = Cost::of(&cv.features);
            variants.push(ScheduledVariant {
                label,
                shape: shape.label.clone(),
                matrix,
                program: cv.program,
                pseudocode: cv.pseudocode,
                features: cv.features,
                cost,
            });
        }
    }
    if variants.is_empty() {
        return Err(SchedError::NoLegalVariant);
    }
    // ties: prefer fewer reversed loops (a reversal buys nothing when the
    // cost is identical), then the lexicographically first label
    variants.sort_by(|a, b| {
        a.cost
            .cmp(&b.cost)
            .then_with(|| {
                a.label
                    .matches('\'')
                    .count()
                    .cmp(&b.label.matches('\'').count())
            })
            .then_with(|| a.label.cmp(&b.label))
    });

    if cfg.align {
        let shape_program = shapes
            .iter()
            .find(|s| s.label == variants[0].shape)
            .map(|s| s.program.clone())
            .expect("chosen variant's shape");
        refine_alignment(&shape_program, &mut variants[0], cfg, &mut stats)?;
    }

    if explain {
        let chosen = &variants[0];
        inl_obs::explain::accept(
            "sched",
            format!("variant {} of {}", chosen.label, p.name()),
            format!(
                "chosen: minimal cost ({}) among {} legal variants, {} of {} tree nodes visited",
                chosen.cost,
                variants.len(),
                stats.nodes_visited,
                stats.nodes_exhaustive
            ),
        )
        .feature("legal_variants", variants.len() as i64)
        .feature("nodes_visited", stats.nodes_visited as i64)
        .feature("nodes_pruned", stats.pruned_nodes as i64)
        .feature("reuse_penalty", chosen.features.reuse_penalty);
        for v in variants.iter().skip(1) {
            inl_obs::explain::note(
                "sched",
                format!("variant {} of {}", v.label, p.name()),
                format!(
                    "legal but dominated: cost ({}) vs chosen ({})",
                    v.cost, variants[0].cost
                ),
            )
            .feature("reuse_penalty", v.features.reuse_penalty)
            .feature("guards", v.features.guards);
        }
    }

    let legal = variants.iter().map(|v| v.label.clone()).collect();
    Ok(ScheduleResult {
        variants,
        stats,
        legal,
    })
}

/// Try statement-alignment offsets (§4.3) on the front-runner: compose
/// `Align(stmt, loop, ±1)` with the chosen matrix and adopt the result
/// only when it generates legally *and* strictly improves the cost.
fn refine_alignment(
    shape_p: &Program,
    chosen: &mut ScheduledVariant,
    _cfg: &SchedConfig,
    stats: &mut SearchStats,
) -> Result<(), SchedError> {
    let _span = inl_obs::span("sched.align");
    let layout = InstanceLayout::new(shape_p);
    let deps = analyze(shape_p, &layout).map_err(SchedError::Analysis)?;
    let explain = inl_obs::explain_enabled();
    for s in shape_p.stmts() {
        for &l in &shape_p.loops_surrounding(s) {
            for offset in [1i128, -1] {
                let t = Transform::Align {
                    stmt: s,
                    looop: l,
                    offset,
                };
                // statements without a distinguishing edge can't be aligned
                let Ok(am) = t.try_matrix(shape_p, &layout) else {
                    continue;
                };
                let Ok(m2) = am.checked_mul(&chosen.matrix) else {
                    continue;
                };
                stats.align_tried += 1;
                let Ok(r) = generate(shape_p, &layout, &deps, &m2) else {
                    continue; // illegal alignment: not an improvement
                };
                let cost = Cost::of(&r.features);
                if cost < chosen.cost {
                    stats.align_adopted += 1;
                    let suffix = format!(
                        "+align({},{},{offset:+})",
                        shape_p.stmt_decl(s).name,
                        shape_p.loop_decl(l).name
                    );
                    if explain {
                        inl_obs::explain::note(
                            "sched",
                            format!("alignment {} of {}", suffix, shape_p.name()),
                            format!("adopted: improves cost ({}) -> ({})", chosen.cost, cost),
                        );
                    }
                    chosen.label.push_str(&suffix);
                    chosen.pseudocode = r.program.to_pseudocode();
                    chosen.program = r.program;
                    chosen.features = r.features;
                    chosen.matrix = m2;
                    chosen.cost = cost;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use inl_ir::zoo;

    fn quiet_cfg() -> SchedConfig {
        SchedConfig {
            threads: 1,
            ..SchedConfig::default()
        }
    }

    #[test]
    fn cholesky_search_is_pinned_and_pruned() {
        // the end-to-end pin: full Cholesky with the default axes visits
        // exactly this many nodes (deterministic DFS), prunes most of the
        // exhaustive tree, and finds the 12 hand-enumerated legal orders
        // among its unreversed variants.
        let r = schedule_with(&zoo::cholesky_kij(), &quiet_cfg()).expect("schedules");
        assert!(
            r.stats.nodes_visited <= 3200,
            "search widened: {} nodes (was pinned <= 3200 with the tile axis on)",
            r.stats.nodes_visited
        );
        assert!(r.stats.nodes_visited < r.stats.nodes_exhaustive);
        assert!(r.stats.pruned_subtrees > 0);
        assert!(r.stats.pruned_nodes > 0);
        let unreversed = r
            .variants
            .iter()
            .filter(|v| v.shape.is_empty() && !v.label.contains('\''))
            .count();
        assert_eq!(unreversed, 12, "the 12 legal Cholesky orders");
    }

    #[test]
    fn every_variant_is_legal_and_equivalent() {
        // every returned variant must execute bitwise-identically to the
        // source program — across shapes, reversals, and alignment.
        let p = zoo::simple_cholesky();
        let r = schedule_with(&p, &quiet_cfg()).expect("schedules");
        let init = crate::sweep::measurement_init;
        for v in &r.variants {
            let src = inl_exec::run_fresh(&p, &[8], &init);
            let got = inl_exec::run_fresh(&v.program, &[8], &init);
            src.same_state(&got)
                .unwrap_or_else(|e| panic!("variant {} diverged: {e}", v.label));
        }
    }

    #[test]
    fn reversal_axis_off_shrinks_tree() {
        let mut cfg = quiet_cfg();
        cfg.reversal = false;
        let with = schedule_with(&zoo::matmul(), &quiet_cfg()).expect("schedules");
        let without = schedule_with(&zoo::matmul(), &cfg).expect("schedules");
        assert!(without.stats.nodes_exhaustive < with.stats.nodes_exhaustive);
        assert!(without.variants.len() <= with.variants.len());
    }

    #[test]
    fn matmul_chooses_unit_stride_inner() {
        // the canonical cost-model sanity check: of the 6 matmul loop
        // orders, the chosen one must walk B and C unit-stride in the
        // innermost loop (J innermost, K middle or outer — the `ikj`
        // family), not the row-jumping `ijk`/`jik` family.
        let r = schedule_with(&zoo::matmul(), &quiet_cfg()).expect("schedules");
        let inner = r
            .chosen()
            .label
            .trim_end_matches('\'')
            .chars()
            .last()
            .unwrap();
        assert_eq!(inner, 'J', "chosen {}", r.chosen().label);
    }

    #[test]
    fn matmul_tile_axis_confines_the_reuse_slab() {
        // with the tile axis on, matmul's winner strip-mines K so B's
        // row-jumped slab is confined and re-swept by the invariant I
        // loop; with it off the classic untiled ikj-family order returns
        let r = schedule_with(&zoo::matmul(), &quiet_cfg()).expect("schedules");
        assert!(
            r.chosen().label.starts_with("tile(K@"),
            "chosen {}",
            r.chosen().label
        );
        assert_eq!(r.chosen().features.tile_reuse, 1);
        let mut cfg = quiet_cfg();
        cfg.tile = false;
        let untiled = schedule_with(&zoo::matmul(), &cfg).expect("schedules");
        assert!(
            !untiled.chosen().label.contains("tile("),
            "chosen {}",
            untiled.chosen().label
        );
        assert_eq!(untiled.chosen().features.tile_reuse, 0);
    }

    #[test]
    fn degenerate_tile_orders_never_win() {
        // orders that sink the tile-number loop inside its tile loop run
        // the split as a no-op with pure overhead; the single-trip skip
        // in reuse_penalty keeps them behind the untiled winner
        for ctor in [zoo::simple_cholesky, zoo::perfect_nest] {
            let r = schedule_with(&ctor(), &quiet_cfg()).expect("schedules");
            assert!(
                r.chosen().shape.is_empty(),
                "{}: chosen {}",
                r.variants[0].program.name(),
                r.chosen().label
            );
        }
    }

    #[test]
    fn budget_stops_search_gracefully() {
        let mut cfg = quiet_cfg();
        cfg.budget = 3;
        cfg.align = false;
        match schedule_with(&zoo::cholesky_kij(), &cfg) {
            Ok(r) => {
                assert!(r.stats.budget_exhausted);
                assert!(r.stats.nodes_visited <= 3 + 1);
            }
            Err(SchedError::NoLegalVariant) => {} // budget too small to reach a leaf
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn explain_records_pruned_subtrees() {
        // serialize against other explain-sweeping tests via the store
        // itself: reset, run, inspect
        let _guard = EXPLAIN_LOCK.lock().unwrap();
        inl_obs::set_explain_enabled(true);
        inl_obs::explain::reset();
        let r = schedule_with(&zoo::simple_cholesky(), &quiet_cfg()).expect("schedules");
        let records = inl_obs::explain::snapshot();
        inl_obs::set_explain_enabled(false);
        inl_obs::explain::reset();
        let rejects: Vec<_> = records
            .iter()
            .filter(|rec| rec.stage == "sched" && rec.verdict == inl_obs::explain::Verdict::Reject)
            .collect();
        assert_eq!(
            rejects.len() as u64,
            r.stats.pruned_subtrees + r.stats.completion_failures + 1,
            "one reject per pruned subtree / failed completion, plus the illegal distribution"
        );
        assert!(
            rejects
                .iter()
                .any(|rec| rec.reason.contains("dep ") && rec.details.contains_key("dep_row")),
            "at least one pruning decision names the killing dependence"
        );
        assert!(records.iter().any(|rec| rec.stage == "sched"
            && rec.verdict == inl_obs::explain::Verdict::Accept
            && rec.subject.contains(&r.chosen().label)));
    }

    pub(crate) static EXPLAIN_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
}
