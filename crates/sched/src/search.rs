//! The pruned search over the transformation space.
//!
//! The search tree over one program shape assigns one *signed loop
//! selector row* per level: a node at depth `d` is a prefix of `d` rows,
//! each `±e_pos(ℓ)` for a distinct loop `ℓ` (reversal contributes the
//! sign). Every node is tested with [`inl_core::complete::check_prefix`];
//! a [`PrefixCheck::Violation`] proves that *no* extension of the prefix
//! is legal (the violated dependence projection is already
//! lexicographically negative), so the entire subtree dies on the spot —
//! the dimension-matching pruning of Acharya–Bondhugula, driven by the
//! paper's dependence projections. Full-depth legal prefixes are handed
//! to [`inl_core::complete::complete_transform`], whose syntactic-ordering
//! topological sort supplies the statement-order (edge-row) part of the
//! matrix — the statement-permutation axis of the space comes for free.
//!
//! On top of the per-shape permutation×reversal tree, the *shape* axis
//! (jam/distribute, §4.2 of the paper) is enumerated first:
//! [`enumerate_shapes`] yields the identity shape plus every legal
//! one-level loop distribution and loop fusion, each a distinct program
//! whose own tree is searched; costs compare globally across shapes.

use crate::{SchedConfig, SchedError};
use inl_core::complete::{check_prefix, complete_transform, PrefixCheck};
use inl_core::depend::{analyze, DependenceMatrix};
use inl_core::instance::{InstanceLayout, Position};
use inl_core::provenance;
use inl_core::structural::{distribute, distribution_legal, jam, jamming_legal};
use inl_ir::{LoopId, Node, Program};
use inl_linalg::{IMat, IVec};

/// Counters describing one [`crate::schedule`] run. All integers are
/// deterministic for a given program and configuration — they are gated
/// exactly by the `BENCH_sched.json` CI baseline.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Search-tree nodes actually tested with `check_prefix`, summed over
    /// shapes.
    pub nodes_visited: u64,
    /// Nodes a brute-force enumeration of the same trees would test
    /// (`Σ_d P(L,d)·r^d` per shape, `r` = 2 with reversal, 1 without).
    pub nodes_exhaustive: u64,
    /// Prefixes whose violation killed a whole subtree.
    pub pruned_subtrees: u64,
    /// Strict descendants of pruned prefixes — nodes never visited.
    pub pruned_nodes: u64,
    /// Full-depth prefixes that completed into legal variants.
    pub legal_variants: u64,
    /// Full-depth legal prefixes whose completion still failed (e.g. a
    /// cyclic statement order).
    pub completion_failures: u64,
    /// Program shapes searched (identity + legal jams/distributions).
    pub shapes: u64,
    /// Alignment refinements attempted on the front-runner.
    pub align_tried: u64,
    /// Alignment refinements that strictly improved the cost.
    pub align_adopted: u64,
    /// `true` when the node budget stopped the search early.
    pub budget_exhausted: bool,
}

impl SearchStats {
    /// Fraction of the exhaustive tree never visited, in percent
    /// (`0` when nothing was pruned).
    pub fn prune_rate_pct(&self) -> u64 {
        if self.nodes_exhaustive == 0 {
            return 0;
        }
        let skipped = self.nodes_exhaustive.saturating_sub(self.nodes_visited);
        skipped * 100 / self.nodes_exhaustive
    }
}

/// One program shape: the structural-transformation axis of the space.
#[derive(Clone, Debug)]
pub struct Shape {
    /// `""` for the identity shape, else e.g. `"dist(K@1)"` / `"jam(I+I2)"`.
    pub label: String,
    /// The shaped program (the identity shape is the source program).
    pub program: Program,
}

/// `n·(n-1)·…·(n-k+1)` — permutations of `k` out of `n`.
fn falling(n: u64, k: u64) -> u64 {
    (0..k).map(|i| n - i).product()
}

/// Nodes of the full tree over `nloops` loops with `r` signs per loop
/// (every non-empty prefix counts as one node).
pub(crate) fn exhaustive_nodes(nloops: u64, r: u64) -> u64 {
    (1..=nloops)
        .map(|d| falling(nloops, d).saturating_mul(r.saturating_pow(d as u32)))
        .sum()
}

/// Strict descendants of a node that still has `remaining` unused loops.
fn subtree_nodes(remaining: u64, r: u64) -> u64 {
    exhaustive_nodes(remaining, r)
}

/// Enumerate the shape axis: identity, plus every legal one-level loop
/// distribution and loop fusion. Illegal candidates are recorded as
/// explain rejections (stage `sched`).
pub(crate) fn enumerate_shapes(p: &Program, cfg: &SchedConfig) -> Result<Vec<Shape>, SchedError> {
    let mut shapes = vec![Shape {
        label: String::new(),
        program: p.clone(),
    }];
    let explain = inl_obs::explain_enabled();
    if cfg.tile {
        enumerate_tiles(p, cfg, explain, &mut shapes)?;
    }
    if !cfg.shapes {
        return Ok(shapes);
    }
    let layout = InstanceLayout::new(p);
    let deps = analyze(p, &layout).map_err(SchedError::Analysis)?;

    // one-level distributions: split any loop with >= 2 children
    for l in p.loops() {
        let ld = p.loop_decl(l);
        for split in 1..ld.children.len() {
            let legal = distribution_legal(p, &deps, l, split).map_err(SchedError::Analysis)?;
            let label = format!("dist({}@{split})", ld.name);
            if legal {
                let r = distribute(p, &layout, l, split).map_err(SchedError::Analysis)?;
                shapes.push(Shape {
                    label,
                    program: r.target,
                });
            } else if explain {
                inl_obs::explain::reject(
                    "sched",
                    format!("shape {label} of {}", p.name()),
                    format!(
                        "distribution of loop {} at child {split} is illegal: a dependence \
                         carried by the loop crosses the split backwards",
                        ld.name
                    ),
                );
            }
        }
    }

    // one-level fusions: jam adjacent sibling loops anywhere in the tree
    let parents: Vec<Option<LoopId>> = std::iter::once(None).chain(p.loops().map(Some)).collect();
    for parent in parents {
        let siblings: &[Node] = match parent {
            None => p.root(),
            Some(q) => &p.loop_decl(q).children,
        };
        for idx in 0..siblings.len().saturating_sub(1) {
            let (Node::Loop(a), Node::Loop(b)) = (siblings[idx], siblings[idx + 1]) else {
                continue;
            };
            let label = format!("jam({}+{})", p.loop_decl(a).name, p.loop_decl(b).name);
            // structurally un-jammable pairs (mismatched bounds/steps) are
            // not candidates at all; only a *dependence* veto is a decision
            match jamming_legal(p, &deps, parent, idx) {
                Ok(true) => {
                    let r = jam(p, &layout, parent, idx).map_err(SchedError::Analysis)?;
                    shapes.push(Shape {
                        label,
                        program: r.target,
                    });
                }
                Ok(false) => {
                    if explain {
                        inl_obs::explain::reject(
                            "sched",
                            format!("shape {label} of {}", p.name()),
                            "jamming is illegal: fusing would reverse a dependence between \
                             the two loops",
                        );
                    }
                }
                Err(_) => {}
            }
        }
    }
    Ok(shapes)
}

/// The tile axis: strip-mine the innermost reuse-carrying loop by each
/// candidate size. Each admitted split becomes a shape whose own
/// permutation×reversal tree is prefix-pruned like every other shape's.
/// `inl_core::tiling::split_legal` records the per-split accept/reject
/// explain evidence under the `tile` stage; the no-candidate case is
/// rejected here.
fn enumerate_tiles(
    p: &Program,
    cfg: &SchedConfig,
    explain: bool,
    shapes: &mut Vec<Shape>,
) -> Result<(), SchedError> {
    let Some(l) = inl_core::tiling::innermost_reuse_loop(p) else {
        if explain {
            inl_obs::explain::reject(
                "tile",
                format!("tiling of {}", p.name()),
                "no loop carries temporal reuse: every access varies with every \
                 surrounding loop, so strip-mining cannot shrink any reuse distance",
            );
        }
        return Ok(());
    };
    for &t in &cfg.tile_sizes {
        let label = format!("tile({}@{t})", p.loop_decl(l).name);
        let r = inl_core::tiling::split(p, l, t).map_err(SchedError::Analysis)?;
        let report = inl_core::tiling::split_legal(&r).map_err(SchedError::Analysis)?;
        if report.is_legal() {
            shapes.push(Shape {
                label,
                program: r.program,
            });
        }
    }
    Ok(())
}

/// A legal full-depth variant of one shape: display label (loop order,
/// `'` marking reversed loops) and its completed transformation matrix.
pub(crate) type ShapeVariant = (String, IMat);

/// Search one shape's permutation×reversal tree. Returns the legal
/// variants; updates `stats` (including `nodes_exhaustive` for this
/// shape's tree).
pub(crate) fn search_shape(
    shape_label: &str,
    p: &Program,
    cfg: &SchedConfig,
    stats: &mut SearchStats,
) -> Result<Vec<ShapeVariant>, SchedError> {
    let _span = inl_obs::span("sched.search");
    let layout = InstanceLayout::new(p);
    let deps = analyze(p, &layout).map_err(SchedError::Analysis)?;
    // `p.loops()` enumerates the decl table; a jammed shape keeps the
    // fused-away loop as an orphan decl with no layout position, so only
    // loops the layout actually embeds are searchable
    let loops: Vec<LoopId> = p
        .loops()
        .filter(|&l| layout.positions().contains(&Position::Loop(l)))
        .collect();
    let signs: &[i64] = if cfg.reversal { &[1, -1] } else { &[1] };
    stats.nodes_exhaustive += exhaustive_nodes(loops.len() as u64, signs.len() as u64);

    let mut ctx = Dfs {
        shape_label,
        p,
        layout: &layout,
        deps: &deps,
        cfg,
        stats,
        signs,
        explain: inl_obs::explain_enabled(),
        legal: Vec::new(),
    };
    let mut rows: Vec<IVec> = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    let mut used = vec![false; loops.len()];
    ctx.descend(&loops, &mut rows, &mut labels, &mut used)?;
    Ok(ctx.legal)
}

/// DFS state for one shape's tree.
struct Dfs<'a> {
    shape_label: &'a str,
    p: &'a Program,
    layout: &'a InstanceLayout,
    deps: &'a DependenceMatrix,
    cfg: &'a SchedConfig,
    stats: &'a mut SearchStats,
    signs: &'a [i64],
    explain: bool,
    legal: Vec<ShapeVariant>,
}

impl Dfs<'_> {
    /// Human label of a prefix: loop names in order, `'` after reversed
    /// ones, separated only when a loop name has several characters.
    fn prefix_label(&self, labels: &[String]) -> String {
        if labels.iter().all(|s| s.trim_end_matches('\'').len() == 1) {
            labels.concat()
        } else {
            labels.join(".")
        }
    }

    fn descend(
        &mut self,
        loops: &[LoopId],
        rows: &mut Vec<IVec>,
        labels: &mut Vec<String>,
        used: &mut [bool],
    ) -> Result<(), SchedError> {
        for i in 0..loops.len() {
            if used[i] {
                continue;
            }
            for &sign in self.signs {
                if self.stats.budget_exhausted {
                    return Ok(());
                }
                if self.stats.nodes_visited >= self.cfg.budget {
                    self.stats.budget_exhausted = true;
                    return Ok(());
                }
                self.stats.nodes_visited += 1;
                let l = loops[i];
                let pos = self.layout.loop_position(l);
                let row = if sign >= 0 {
                    IVec::unit(self.layout.len(), pos)
                } else {
                    -&IVec::unit(self.layout.len(), pos)
                };
                rows.push(row);
                labels.push(format!(
                    "{}{}",
                    self.p.loop_decl(l).name,
                    if sign < 0 { "'" } else { "" }
                ));
                used[i] = true;
                match check_prefix(self.p, self.layout, self.deps, rows)
                    .map_err(SchedError::Prefix)?
                {
                    PrefixCheck::Violation { row: vr, dep } => {
                        let remaining = (loops.len() - rows.len()) as u64;
                        let killed = subtree_nodes(remaining, self.signs.len() as u64);
                        self.stats.pruned_subtrees += 1;
                        self.stats.pruned_nodes += killed;
                        if self.explain {
                            let d = &self.deps.deps[dep];
                            let prefix = self.prefix_label(labels);
                            inl_obs::explain::reject(
                                "sched",
                                format!(
                                    "prefix {}{prefix} of {}",
                                    shape_prefix(self.shape_label),
                                    self.p.name()
                                ),
                                format!(
                                    "{}: row {vr} drives the projection negative — pruned the \
                                     {killed}-node subtree",
                                    provenance::dep_label(self.p, dep, d)
                                ),
                            )
                            .detail("dep_row", provenance::dep_row(d))
                            .feature("depth", rows.len() as i64)
                            .feature("nodes_pruned", killed as i64);
                        }
                    }
                    PrefixCheck::Legal => {
                        if rows.len() == loops.len() {
                            self.complete_leaf(rows, labels)?;
                        } else {
                            self.descend(loops, rows, labels, used)?;
                        }
                    }
                }
                rows.pop();
                labels.pop();
                used[i] = false;
            }
        }
        Ok(())
    }

    /// A full-depth legal prefix: complete it (statement order falls out
    /// of the completion's topological sort) into a full matrix.
    fn complete_leaf(&mut self, rows: &[IVec], labels: &[String]) -> Result<(), SchedError> {
        let label = self.prefix_label(labels);
        match complete_transform(self.p, self.layout, self.deps, rows) {
            Ok(c) => {
                self.stats.legal_variants += 1;
                self.legal.push((label, c.matrix));
            }
            Err(e) => {
                self.stats.completion_failures += 1;
                if self.explain {
                    inl_obs::explain::reject(
                        "sched",
                        format!(
                            "variant {}{label} of {}",
                            shape_prefix(self.shape_label),
                            self.p.name()
                        ),
                        format!("legal prefix failed to complete: {e:?}"),
                    );
                }
            }
        }
        Ok(())
    }
}

/// `"dist(K@1)/"` for a named shape, `""` for the identity shape.
pub(crate) fn shape_prefix(shape_label: &str) -> String {
    if shape_label.is_empty() {
        String::new()
    } else {
        format!("{shape_label}/")
    }
}
