//! The pipeline-wide structured error type.
//!
//! Every fallible operation in the framework — exact arithmetic that can
//! overflow, polyhedral queries that can blow up, transformation requests
//! that name the wrong node — reports an [`InlError`] instead of panicking.
//! The error carries a machine-matchable [`InlErrorKind`], a human-readable
//! message, and the source location that constructed it (captured via
//! `#[track_caller]`), so a failure deep in Fourier–Motzkin elimination
//! still points at the line that gave up.
//!
//! Rejection is a first-class outcome: callers are expected to match on
//! [`InlError::kind`] and recover (try a different transformation, fall
//! back to the untransformed program), never to treat an error as fatal.

use std::fmt;
use std::panic::Location;

/// Machine-matchable classification of an [`InlError`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum InlErrorKind {
    /// Exact integer or rational arithmetic exceeded the `i128` range.
    Overflow,
    /// A constraint system is infeasible where a solution was required.
    Infeasible,
    /// A constraint system or matrix is structurally ill-formed
    /// (arity mismatch, zero denominator, non-positive divisor, …).
    IllFormed,
    /// A resource budget was exhausted (e.g. the Fourier–Motzkin
    /// inequality budget) before the query could be answered.
    Budget,
    /// A matrix completion or rank computation failed (dependent rows,
    /// singular per-statement transform, …).
    RankDeficient,
    /// A transformation names a target node it cannot apply to.
    InvalidTarget,
    /// A program violates the structural rules of the IR.
    MalformedProgram,
    /// The input is valid but uses a feature this implementation does not
    /// handle (non-unit steps, complex bounds, …).
    Unsupported,
}

impl fmt::Display for InlErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InlErrorKind::Overflow => "overflow",
            InlErrorKind::Infeasible => "infeasible",
            InlErrorKind::IllFormed => "ill-formed",
            InlErrorKind::Budget => "budget exhausted",
            InlErrorKind::RankDeficient => "rank-deficient",
            InlErrorKind::InvalidTarget => "invalid target",
            InlErrorKind::MalformedProgram => "malformed program",
            InlErrorKind::Unsupported => "unsupported",
        };
        f.write_str(s)
    }
}

/// A structured, recoverable pipeline error.
///
/// Equality compares kind and message but *not* the source location, so
/// tests can assert on reconstructed errors.
#[derive(Clone, Debug)]
pub struct InlError {
    kind: InlErrorKind,
    message: String,
    location: &'static Location<'static>,
}

impl InlError {
    /// Build an error of `kind`, capturing the caller's source location.
    #[track_caller]
    pub fn new(kind: InlErrorKind, message: impl Into<String>) -> Self {
        InlError {
            kind,
            message: message.into(),
            location: Location::caller(),
        }
    }

    /// Shorthand for [`InlErrorKind::Overflow`] in the named operation.
    #[track_caller]
    pub fn overflow(op: &str) -> Self {
        InlError::new(InlErrorKind::Overflow, format!("{op} exceeds i128 range"))
    }

    /// Shorthand for [`InlErrorKind::InvalidTarget`], naming the offending
    /// node path so the caller can see *which* request was malformed.
    #[track_caller]
    pub fn invalid_target(path: impl fmt::Display, reason: impl fmt::Display) -> Self {
        InlError::new(InlErrorKind::InvalidTarget, format!("{path}: {reason}"))
    }

    /// The error's classification.
    pub fn kind(&self) -> InlErrorKind {
        self.kind
    }

    /// The human-readable detail message.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Source file/line that constructed the error.
    pub fn location(&self) -> &'static Location<'static> {
        self.location
    }
}

impl PartialEq for InlError {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind && self.message == other.message
    }
}

impl Eq for InlError {}

impl fmt::Display for InlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} (at {}:{})",
            self.kind,
            self.message,
            self.location.file(),
            self.location.line()
        )
    }
}

impl std::error::Error for InlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_message_and_location() {
        let e = InlError::overflow("lcm");
        assert_eq!(e.kind(), InlErrorKind::Overflow);
        let s = e.to_string();
        assert!(s.contains("overflow"), "{s}");
        assert!(s.contains("lcm exceeds i128 range"), "{s}");
        assert!(s.contains("error.rs"), "location missing: {s}");
    }

    #[test]
    fn equality_ignores_location() {
        let a = InlError::new(InlErrorKind::Budget, "fm blow-up");
        let b = InlError::new(InlErrorKind::Budget, "fm blow-up");
        assert_eq!(a, b);
        assert_ne!(a, InlError::new(InlErrorKind::Budget, "other"));
    }

    #[test]
    fn invalid_target_names_the_path() {
        let e = InlError::invalid_target("root[2]", "expected a loop, found a statement");
        assert_eq!(e.kind(), InlErrorKind::InvalidTarget);
        assert!(e.message().starts_with("root[2]: expected a loop"));
    }
}
