//! Exact elimination: rank, determinant, solving, inverses and nullspaces.
//!
//! These are the primitives behind the paper's machinery: `rank` drives the
//! augmentation procedure (§5.4), `inverse_rational` drives loop-bound
//! generation for non-singular per-statement transforms (§5.5),
//! `nullspace_int` finds candidate parallel loops (§7: "parallelizing a loop
//! requires finding a row in the nullspace of the dependence matrix"), and
//! `express_in_row_space` recovers the coefficients `m_1..m_l` that define the
//! guard of a *singular loop* (§5.5).
//!
//! Every elimination here is overflow-checked: entry growth during exact
//! elimination is input-dependent, so each public routine reports
//! [`InlError`] rather than panicking when `i128` is exhausted.

use crate::{IMat, IVec, InlError, Int, Rational};

/// A matrix of rationals, used internally for elimination and returned where
/// exact non-integer results are meaningful (e.g. `M⁻¹`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QMat {
    /// Row-major entries.
    pub rows: Vec<Vec<Rational>>,
}

impl QMat {
    /// Convert from an integer matrix.
    pub fn from_imat(m: &IMat) -> Self {
        QMat {
            rows: (0..m.nrows())
                .map(|i| m.row_slice(i).iter().map(|&x| Rational::int(x)).collect())
                .collect(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.rows.first().map_or(0, |r| r.len())
    }

    /// Multiply by a rational vector; convenience wrapper over
    /// [`QMat::checked_mul_vec`] for trusted (small-entry) inputs.
    ///
    /// # Panics
    /// On overflow; fallible paths use [`QMat::checked_mul_vec`].
    pub fn mul_vec(&self, v: &[Rational]) -> Vec<Rational> {
        self.checked_mul_vec(v)
            .expect("rational mul_vec overflow: fallible paths use checked_mul_vec")
    }

    /// Overflow-checked multiplication by a rational vector.
    pub fn checked_mul_vec(&self, v: &[Rational]) -> Result<Vec<Rational>, InlError> {
        self.rows
            .iter()
            .map(|r| {
                let mut acc = Rational::ZERO;
                for (&a, &b) in r.iter().zip(v) {
                    acc = acc.checked_add(a.checked_mul(b)?)?;
                }
                Ok(acc)
            })
            .collect()
    }

    /// If every entry is an integer, convert to an `IMat`.
    pub fn to_imat(&self) -> Option<IMat> {
        if self.rows.iter().all(|r| r.iter().all(|x| x.is_integer())) {
            Some(IMat::from_fn(self.nrows(), self.ncols(), |i, j| {
                self.rows[i][j].num()
            }))
        } else {
            None
        }
    }
}

/// Reduced row echelon form in place; returns pivot column of each pivot row.
fn rref(m: &mut QMat) -> Result<Vec<usize>, InlError> {
    let (nr, nc) = (m.nrows(), m.ncols());
    let mut pivots = Vec::new();
    let mut r = 0;
    for c in 0..nc {
        if r == nr {
            break;
        }
        // find a pivot
        let Some(p) = (r..nr).find(|&i| !m.rows[i][c].is_zero()) else {
            continue;
        };
        m.rows.swap(r, p);
        let inv = m.rows[r][c].recip();
        for x in m.rows[r].iter_mut() {
            *x = x.checked_mul(inv)?;
        }
        for i in 0..nr {
            if i != r && !m.rows[i][c].is_zero() {
                let f = m.rows[i][c];
                for j in 0..nc {
                    let sub = m.rows[r][j].checked_mul(f)?;
                    m.rows[i][j] = m.rows[i][j].checked_sub(sub)?;
                }
            }
        }
        pivots.push(c);
        r += 1;
    }
    Ok(pivots)
}

/// Rank of an integer matrix over the rationals; convenience wrapper over
/// [`checked_rank`] for trusted (small-entry) inputs.
///
/// # Panics
/// On overflow; fallible paths use [`checked_rank`].
pub fn rank(m: &IMat) -> usize {
    checked_rank(m).expect("rank overflow: fallible paths use checked_rank")
}

/// Overflow-checked rank of an integer matrix over the rationals.
pub fn checked_rank(m: &IMat) -> Result<usize, InlError> {
    let mut q = QMat::from_imat(m);
    Ok(rref(&mut q)?.len())
}

/// Determinant via fraction-free (Bareiss) elimination; convenience wrapper
/// over [`checked_det`] for trusted (small-entry) inputs.
///
/// # Panics
/// If `m` is not square, or on overflow; fallible paths use [`checked_det`].
pub fn det(m: &IMat) -> Int {
    checked_det(m).expect("determinant overflow: fallible paths use checked_det")
}

/// Overflow-checked determinant via fraction-free (Bareiss) elimination.
///
/// # Panics
/// If `m` is not square (a programming error, not an input condition).
pub fn checked_det(m: &IMat) -> Result<Int, InlError> {
    assert!(m.is_square(), "det of non-square matrix");
    let n = m.nrows();
    if n == 0 {
        return Ok(1);
    }
    let mut a: Vec<Vec<Int>> = (0..n).map(|i| m.row_slice(i).to_vec()).collect();
    let mut sign: Int = 1;
    let mut prev: Int = 1;
    for k in 0..n - 1 {
        if a[k][k] == 0 {
            let Some(p) = (k + 1..n).find(|&i| a[i][k] != 0) else {
                return Ok(0);
            };
            a.swap(k, p);
            sign = -sign;
        }
        for i in k + 1..n {
            for j in k + 1..n {
                let num = a[k][k]
                    .checked_mul(a[i][j])
                    .and_then(|x| a[i][k].checked_mul(a[k][j]).map(|y| (x, y)))
                    .and_then(|(x, y)| x.checked_sub(y))
                    .ok_or_else(|| InlError::overflow("bareiss elimination"))?;
                a[i][j] = num / prev; // exact by Bareiss' theorem
            }
            a[i][k] = 0;
        }
        prev = a[k][k];
    }
    Ok(sign * a[n - 1][n - 1])
}

/// Solve `A·x = b` over the rationals. `Ok(None)` if inconsistent; if
/// underdetermined, returns one particular solution (free variables = 0).
/// Fails with [`InlError`] only on arithmetic overflow.
pub fn solve_rational(a: &IMat, b: &IVec) -> Result<Option<Vec<Rational>>, InlError> {
    assert_eq!(a.nrows(), b.len(), "solve: dimension mismatch");
    let (nr, nc) = (a.nrows(), a.ncols());
    let mut aug = QMat {
        rows: (0..nr)
            .map(|i| {
                let mut row: Vec<Rational> =
                    a.row_slice(i).iter().map(|&x| Rational::int(x)).collect();
                row.push(Rational::int(b[i]));
                row
            })
            .collect(),
    };
    let pivots = rref(&mut aug)?;
    // inconsistent iff a pivot lands in the augmented column
    if pivots.last() == Some(&nc) {
        return Ok(None);
    }
    let mut x = vec![Rational::ZERO; nc];
    for (r, &c) in pivots.iter().enumerate() {
        x[c] = aug.rows[r][nc];
    }
    Ok(Some(x))
}

/// Exact inverse of a square integer matrix, as rationals.
/// `Ok(None)` if singular; [`InlError`] on arithmetic overflow.
pub fn inverse_rational(m: &IMat) -> Result<Option<QMat>, InlError> {
    assert!(m.is_square(), "inverse of non-square matrix");
    let n = m.nrows();
    let mut aug = QMat {
        rows: (0..n)
            .map(|i| {
                let mut row: Vec<Rational> =
                    m.row_slice(i).iter().map(|&x| Rational::int(x)).collect();
                for j in 0..n {
                    row.push(if i == j {
                        Rational::ONE
                    } else {
                        Rational::ZERO
                    });
                }
                row
            })
            .collect(),
    };
    let pivots = rref(&mut aug)?;
    // All n pivots must land in the left (coefficient) block; a singular
    // matrix pushes a pivot into the appended identity columns.
    if pivots.iter().filter(|&&c| c < n).count() != n {
        return Ok(None);
    }
    Ok(Some(QMat {
        rows: aug.rows.into_iter().map(|r| r[n..].to_vec()).collect(),
    }))
}

/// An integer basis of the (right) nullspace of `m`: vectors `v` with
/// `m·v = 0`. Each basis vector is primitive (content 1). Empty if the
/// nullspace is trivial. Fails with [`InlError`] on arithmetic overflow.
pub fn nullspace_int(m: &IMat) -> Result<Vec<IVec>, InlError> {
    let nc = m.ncols();
    let mut q = QMat::from_imat(m);
    let pivots = rref(&mut q)?;
    let pivot_set: std::collections::HashSet<usize> = pivots.iter().copied().collect();
    let free: Vec<usize> = (0..nc).filter(|c| !pivot_set.contains(c)).collect();
    let mut basis = Vec::with_capacity(free.len());
    for &f in &free {
        // x[f] = 1, other free vars 0, pivot vars from rref rows
        let mut x = vec![Rational::ZERO; nc];
        x[f] = Rational::ONE;
        for (r, &c) in pivots.iter().enumerate() {
            x[c] = q.rows[r][f].checked_neg()?;
        }
        // clear denominators
        let mut den: Int = 1;
        for v in &x {
            den = crate::lcm(den, v.den())?.max(1);
        }
        let iv: IVec = x
            .iter()
            .map(|v| {
                v.num()
                    .checked_mul(den / v.den())
                    .ok_or_else(|| InlError::overflow("nullspace denominator clearing"))
            })
            .collect::<Result<Vec<Int>, InlError>>()?
            .into();
        basis.push(iv.primitive());
    }
    Ok(basis)
}

/// If `target` lies in the row space of `rows`, return coefficients `m_j`
/// with `target = Σ m_j · rows[j]` (`Ok(None)` if it does not). Used to
/// derive the guards of singular loops in §5.5.
pub fn express_in_row_space(
    rows: &[IVec],
    target: &IVec,
) -> Result<Option<Vec<Rational>>, InlError> {
    if rows.is_empty() {
        return Ok(if target.is_zero() { Some(vec![]) } else { None });
    }
    // Solve Rᵀ · m = target where Rᵀ has the rows as columns.
    let n = rows[0].len();
    let a = IMat::from_fn(n, rows.len(), |i, j| rows[j][i]);
    solve_rational(&a, target)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[&[Int]]) -> IMat {
        IMat::from_rows(rows)
    }

    #[test]
    fn det_small() {
        assert_eq!(det(&IMat::identity(3)), 1);
        assert_eq!(det(&m(&[&[2, 0], &[0, 3]])), 6);
        assert_eq!(det(&m(&[&[1, 2], &[2, 4]])), 0);
        assert_eq!(det(&m(&[&[0, 1], &[1, 0]])), -1);
        // needs a pivot swap mid-way (expansion: 1·1 − 2·(−3) + 3·(−2) = 1)
        assert_eq!(det(&m(&[&[1, 2, 3], &[2, 4, 7], &[3, 5, 9]])), 1);
    }

    #[test]
    fn det_paper_interchange() {
        // interchange matrix from §4.1: permutation, det = -1
        let t = m(&[&[0, 0, 0, 1], &[0, 1, 0, 0], &[0, 0, 1, 0], &[1, 0, 0, 0]]);
        assert_eq!(det(&t), -1);
    }

    #[test]
    fn det_overflow_is_typed() {
        let big = Int::MAX / 2;
        let a = m(&[&[big, big], &[big, -big]]);
        assert_eq!(
            checked_det(&a).unwrap_err().kind(),
            crate::InlErrorKind::Overflow
        );
    }

    #[test]
    fn rank_cases() {
        assert_eq!(rank(&IMat::identity(4)), 4);
        assert_eq!(rank(&m(&[&[1, 2], &[2, 4]])), 1);
        assert_eq!(rank(&m(&[&[0, 0], &[0, 0]])), 0);
        assert_eq!(rank(&m(&[&[1, 0, 1], &[0, 1, 1]])), 2);
        // the paper's rank-0 per-statement transform for S1 under skewing: [0]
        assert_eq!(rank(&m(&[&[0]])), 0);
    }

    #[test]
    fn solve_consistent() {
        let a = m(&[&[1, 1], &[1, -1]]);
        let x = solve_rational(&a, &IVec::from(vec![3, 1]))
            .unwrap()
            .unwrap();
        assert_eq!(x, vec![Rational::int(2), Rational::int(1)]);
    }

    #[test]
    fn solve_inconsistent() {
        let a = m(&[&[1, 1], &[2, 2]]);
        assert!(solve_rational(&a, &IVec::from(vec![1, 3]))
            .unwrap()
            .is_none());
    }

    #[test]
    fn solve_underdetermined() {
        let a = m(&[&[1, 1, 0]]);
        let x = solve_rational(&a, &IVec::from(vec![5])).unwrap().unwrap();
        // particular solution must satisfy the equation
        assert_eq!(x[0] + x[1], Rational::int(5));
    }

    #[test]
    fn inverse_roundtrip() {
        let a = m(&[&[1, -1], &[0, 1]]); // skew
        let inv = inverse_rational(&a).unwrap().unwrap().to_imat().unwrap();
        assert_eq!(a.mul(&inv), IMat::identity(2));
        // non-unimodular: inverse has fractions
        let s = m(&[&[2, 0], &[0, 1]]);
        let sinv = inverse_rational(&s).unwrap().unwrap();
        assert_eq!(sinv.rows[0][0], Rational::new(1, 2));
        assert!(sinv.to_imat().is_none());
        assert!(inverse_rational(&m(&[&[1, 2], &[2, 4]])).unwrap().is_none());
    }

    #[test]
    fn nullspace_simple() {
        // x + y = 0 has nullspace spanned by (1, -1)
        let ns = nullspace_int(&m(&[&[1, 1]])).unwrap();
        assert_eq!(ns.len(), 1);
        let v = &ns[0];
        assert_eq!(v[0] + v[1], 0);
        assert_ne!(v[0], 0);
        // full-rank square matrix: trivial nullspace
        assert!(nullspace_int(&IMat::identity(3)).unwrap().is_empty());
        // zero matrix: full nullspace
        assert_eq!(nullspace_int(&m(&[&[0, 0, 0]])).unwrap().len(), 3);
    }

    #[test]
    fn nullspace_is_nullspace() {
        let a = m(&[&[1, 2, 3], &[0, 1, 1]]);
        for v in nullspace_int(&a).unwrap() {
            assert!(a.mul_vec(&v).is_zero(), "not in nullspace: {v}");
        }
        assert_eq!(nullspace_int(&a).unwrap().len(), 1);
    }

    #[test]
    fn express_rows() {
        let rows = vec![IVec::from(vec![1, 0, 1]), IVec::from(vec![0, 1, 1])];
        let target = IVec::from(vec![2, 3, 5]);
        let c = express_in_row_space(&rows, &target).unwrap().unwrap();
        assert_eq!(c, vec![Rational::int(2), Rational::int(3)]);
        assert!(express_in_row_space(&rows, &IVec::from(vec![0, 0, 1]))
            .unwrap()
            .is_none());
        assert_eq!(
            express_in_row_space(&[], &IVec::zeros(3)).unwrap(),
            Some(vec![])
        );
        assert!(express_in_row_space(&[], &IVec::from(vec![1, 0]))
            .unwrap()
            .is_none());
    }
}
