//! Hermite normal form (column style) and completion of partial matrices.
//!
//! Two uses in the framework:
//!
//! * **Non-unimodular code generation** (§5.5, following Li & Pingali \[10\]):
//!   when the non-singular per-statement transform `N_S` has `|det| > 1`,
//!   the image of the iteration lattice is a proper sublattice; the column
//!   HNF `N_S · U = H` (lower triangular) yields the loop *steps* (diagonal
//!   of `H`) of the transformed loops.
//! * **Completion** (§6): extending a partial transformation (a few
//!   linearly independent rows) to a full non-singular — preferably
//!   unimodular — matrix.

use crate::{ext_gcd, floor_div, gauss, IMat, IVec, InlError, InlErrorKind, Int};

/// Result of [`column_hnf`]: `a * u == h` with `u` unimodular and `h` in
/// column-style (lower-triangular) Hermite form.
#[derive(Clone, Debug)]
pub struct HnfResult {
    /// The Hermite form: pivot entries positive, entries left of each pivot
    /// reduced into `[0, pivot)`.
    pub h: IMat,
    /// The unimodular column-operation matrix.
    pub u: IMat,
    /// For each row of `a`, the pivot column in `h` (if the row introduced
    /// a new pivot).
    pub pivots: Vec<Option<usize>>,
}

/// Column-style Hermite normal form: find unimodular `U` such that
/// `A · U = H` is lower triangular (in echelon sense) with positive pivots.
///
/// Works for any `k × n` matrix, including rank-deficient ones. Entry
/// growth during the gcd column operations is input-dependent, so the
/// computation is overflow-checked and reports [`InlError`] rather than
/// panicking.
pub fn column_hnf(a: &IMat) -> Result<HnfResult, InlError> {
    let (k, n) = (a.nrows(), a.ncols());
    let mut h: Vec<Vec<Int>> = (0..k).map(|i| a.row_slice(i).to_vec()).collect();
    let mut u: Vec<Vec<Int>> = (0..n)
        .map(|i| (0..n).map(|j| Int::from(i == j)).collect())
        .collect();
    let mut pivots = vec![None; k];
    let mut col = 0usize;

    // Apply the 2x2 unimodular column operation to columns c1, c2 of both
    // h and u: [c1, c2] := [a*c1 + b*c2, c*c1 + d*c2].
    let combine = |m: &mut Vec<Vec<Int>>,
                   c1: usize,
                   c2: usize,
                   a2: Int,
                   b2: Int,
                   c2f: Int,
                   d2: Int|
     -> Result<(), InlError> {
        for row in m.iter_mut() {
            let (x, y) = (row[c1], row[c2]);
            let err = || InlError::overflow("hnf column operation");
            row[c1] = a2
                .checked_mul(x)
                .and_then(|p| b2.checked_mul(y).and_then(|q| p.checked_add(q)))
                .ok_or_else(err)?;
            row[c2] = c2f
                .checked_mul(x)
                .and_then(|p| d2.checked_mul(y).and_then(|q| p.checked_add(q)))
                .ok_or_else(err)?;
        }
        Ok(())
    };

    for r in 0..k {
        if col >= n {
            break;
        }
        // Bring a nonzero entry to (r, col) if possible.
        let Some(j0) = (col..n).find(|&j| h[r][j] != 0) else {
            continue;
        };
        if j0 != col {
            for row in h.iter_mut() {
                row.swap(col, j0);
            }
            for row in u.iter_mut() {
                row.swap(col, j0);
            }
        }
        // Zero out the rest of the row to the right using gcd steps.
        for j in col + 1..n {
            if h[r][j] == 0 {
                continue;
            }
            let (g, x, y) = ext_gcd(h[r][col], h[r][j]);
            let (p, q) = (h[r][col] / g, h[r][j] / g);
            // column op [c1', c2'] = [x·c1 + y·c2, -q·c1 + p·c2];
            // det = x·p + y·q = (x·a + y·b)/g = 1, so it is unimodular, and
            // the new row-r entries are (g, 0).
            let nq = q
                .checked_neg()
                .ok_or_else(|| InlError::overflow("hnf column operation"))?;
            combine(&mut h, col, j, x, y, nq, p)?;
            combine(&mut u, col, j, x, y, nq, p)?;
        }
        // Make the pivot positive.
        if h[r][col] < 0 {
            for row in h.iter_mut().chain(u.iter_mut()) {
                row[col] = row[col]
                    .checked_neg()
                    .ok_or_else(|| InlError::overflow("hnf pivot negation"))?;
            }
        }
        // Reduce entries to the left of the pivot into [0, pivot).
        let pivot = h[r][col];
        for j in 0..col {
            let q = floor_div(h[r][j], pivot);
            if q != 0 {
                for row in h.iter_mut().chain(u.iter_mut()) {
                    row[j] = q
                        .checked_mul(row[col])
                        .and_then(|sub| row[j].checked_sub(sub))
                        .ok_or_else(|| InlError::overflow("hnf pivot reduction"))?;
                }
            }
        }
        pivots[r] = Some(col);
        col += 1;
    }

    Ok(HnfResult {
        h: IMat::from_rows(&h),
        u: IMat::from_rows(&u),
        pivots,
    })
}

/// Complete a set of linearly independent rows to a full `n × n`
/// non-singular integer matrix whose first rows are exactly `rows`.
///
/// If the rows span a *primitive* lattice (their HNF pivots are all 1), the
/// result is unimodular; otherwise `|det|` equals the product of the HNF
/// pivots. Fails with [`InlErrorKind::RankDeficient`] if the rows are
/// linearly dependent, [`InlErrorKind::Overflow`] on range exhaustion.
pub fn complete_unimodular(rows: &[IVec], n: usize) -> Result<IMat, InlError> {
    let k = rows.len();
    assert!(k <= n, "more rows than dimensions");
    if k == 0 {
        return Ok(IMat::identity(n));
    }
    let a = IMat::from_rows(
        &rows
            .iter()
            .map(|r| r.as_slice().to_vec())
            .collect::<Vec<_>>(),
    );
    assert_eq!(a.ncols(), n, "row length mismatch");
    if gauss::checked_rank(&a)? != k {
        return Err(InlError::new(
            InlErrorKind::RankDeficient,
            "completion rows are linearly dependent",
        ));
    }
    let hnf = column_hnf(&a)?;
    // a * u = h  =>  a = h * u⁻¹. Build m = [h; 0 I] * u⁻¹ so that the first
    // k rows of m are exactly a, and det m = det(h_kxk) * det(u⁻¹) = ±Πpivots.
    // U is unimodular by construction, so the inverse exists and is
    // integral; only overflow can fail here.
    let uinv = gauss::inverse_rational(&hnf.u)?
        .and_then(|q| q.to_imat())
        .ok_or_else(|| {
            InlError::new(
                InlErrorKind::RankDeficient,
                "hnf column-operation matrix lost unimodularity",
            )
        })?;
    let mut block = IMat::zeros(n, n);
    for i in 0..k {
        for j in 0..n {
            block[(i, j)] = hnf.h[(i, j)];
        }
    }
    for i in k..n {
        block[(i, i)] = 1;
    }
    block.checked_mul(&uinv)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn im(rows: &[&[Int]]) -> IMat {
        IMat::from_rows(rows)
    }

    #[test]
    fn hnf_identity() {
        let a = IMat::identity(3);
        let r = column_hnf(&a).unwrap();
        assert_eq!(r.h, a);
        assert!(r.u.is_unimodular());
    }

    #[test]
    fn hnf_property() {
        let cases = vec![
            im(&[&[2, 4], &[-1, 3]]),
            im(&[&[1, -1], &[0, 1]]),
            im(&[&[6, 4, 2], &[3, 2, 1]]), // rank 1 second row dependent
            im(&[&[0, 0], &[0, 0]]),
            im(&[&[5]]),
            im(&[&[0, 3, 0], &[1, 1, 1]]),
        ];
        for a in cases {
            let r = column_hnf(&a).unwrap();
            assert!(r.u.is_unimodular(), "u not unimodular for {a}");
            assert_eq!(a.mul(&r.u), r.h, "A*U != H for {a}");
            // echelon: each pivot's row is zero to the right of the pivot
            for (row, piv) in r.pivots.iter().enumerate() {
                if let Some(c) = piv {
                    for j in c + 1..r.h.ncols() {
                        assert_eq!(r.h[(row, j)], 0, "nonzero right of pivot in {}", r.h);
                    }
                    assert!(r.h[(row, *c)] > 0, "pivot not positive");
                }
            }
        }
    }

    #[test]
    fn hnf_skew_is_unimodular_pivot() {
        // unimodular input => all pivots 1 after reduction of a triangular det ±1 matrix
        let a = im(&[&[1, -1], &[0, 1]]);
        let r = column_hnf(&a).unwrap();
        assert_eq!(r.h[(0, 0)], 1);
        assert_eq!(r.h[(1, 1)], 1);
    }

    #[test]
    fn hnf_nonunimodular_steps() {
        // scaling by 2: the image lattice has stride 2 in the first dimension
        let a = im(&[&[2, 0], &[0, 1]]);
        let r = column_hnf(&a).unwrap();
        assert_eq!(r.h[(0, 0)], 2);
        assert_eq!(r.h[(1, 1)], 1);
    }

    #[test]
    fn complete_from_one_row() {
        // the paper's §6 partial transform: first row selects the j loop
        let row = IVec::from(vec![0, 0, 0, 0, 1, 0, 0]);
        let m = complete_unimodular(std::slice::from_ref(&row), 7).unwrap();
        assert_eq!(m.row(0), row);
        assert!(m.is_unimodular());
    }

    #[test]
    fn complete_preserves_rows_and_nonsingular() {
        let rows = vec![IVec::from(vec![1, 1, 0]), IVec::from(vec![0, 1, 1])];
        let m = complete_unimodular(&rows, 3).unwrap();
        assert_eq!(m.row(0), rows[0]);
        assert_eq!(m.row(1), rows[1]);
        assert!(m.det().abs() >= 1);
        assert!(
            m.is_unimodular(),
            "primitive rows should give unimodular completion, got {m}"
        );
    }

    #[test]
    fn complete_dependent_rows_fails() {
        let rows = vec![IVec::from(vec![1, 2]), IVec::from(vec![2, 4])];
        assert_eq!(
            complete_unimodular(&rows, 2).unwrap_err().kind(),
            InlErrorKind::RankDeficient
        );
    }

    #[test]
    fn complete_empty() {
        assert_eq!(complete_unimodular(&[], 3).unwrap(), IMat::identity(3));
    }

    #[test]
    fn complete_nonprimitive_rows() {
        // row (2,0): sublattice of index 2; completion is nonsingular with |det| 2
        let rows = vec![IVec::from(vec![2, 0])];
        let m = complete_unimodular(&rows, 2).unwrap();
        assert_eq!(m.row(0).as_slice(), &[2, 0]);
        assert_eq!(m.det().abs(), 2);
    }
}
