//! Exact rational numbers over [`Int`].
//!
//! Used wherever the framework needs non-integer intermediate values:
//! rational matrix inverses for loop-bound generation, Fourier–Motzkin
//! pivoting, and the per-statement transformation algebra. The denominator is
//! kept positive and the fraction fully reduced, so equality is structural.

use crate::{gcd, InlError, InlErrorKind, Int};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// An exact rational number `num / den` with `den > 0` and `gcd(num, den) == 1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: Int,
    den: Int,
}

impl Rational {
    /// Zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// One.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Construct `num / den`, reducing to lowest terms.
    ///
    /// # Panics
    /// If `den == 0`.
    pub fn new(num: Int, den: Int) -> Self {
        assert!(den != 0, "rational with zero denominator");
        let g = gcd(num, den);
        if g == 0 {
            return Rational { num: 0, den: 1 };
        }
        let (mut num, mut den) = (num / g, den / g);
        if den < 0 {
            num = -num;
            den = -den;
        }
        Rational { num, den }
    }

    /// An integer as a rational.
    #[inline]
    pub fn int(n: Int) -> Self {
        Rational { num: n, den: 1 }
    }

    /// Numerator (sign-carrying).
    #[inline]
    pub fn num(&self) -> Int {
        self.num
    }

    /// Denominator (always positive).
    #[inline]
    pub fn den(&self) -> Int {
        self.den
    }

    /// True iff the value is an integer.
    #[inline]
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// True iff the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Sign: -1, 0 or 1.
    #[inline]
    pub fn signum(&self) -> Int {
        self.num.signum()
    }

    /// Floor to the nearest integer towards negative infinity.
    pub fn floor(&self) -> Int {
        crate::floor_div(self.num, self.den)
    }

    /// Ceiling to the nearest integer towards positive infinity.
    pub fn ceil(&self) -> Int {
        crate::ceil_div(self.num, self.den)
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// If the value is zero.
    pub fn recip(&self) -> Self {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }

    /// Absolute value.
    ///
    /// # Panics
    /// In debug builds if the numerator is `Int::MIN` (magnitude `2^127`
    /// unrepresentable); boundary validation keeps such values out of the
    /// pipeline. Use [`Ord`] for magnitude comparisons instead — it never
    /// overflows.
    pub fn abs(&self) -> Self {
        debug_assert!(self.num != Int::MIN, "rational abs overflow");
        Rational {
            num: self.num.wrapping_abs(),
            den: self.den,
        }
    }

    /// Construct `num / den` like [`Rational::new`], but report a typed
    /// [`InlErrorKind::IllFormed`] error on a zero denominator instead of
    /// panicking.
    pub fn checked_new(num: Int, den: Int) -> Result<Self, InlError> {
        if den == 0 {
            return Err(InlError::new(
                InlErrorKind::IllFormed,
                "rational with zero denominator",
            ));
        }
        Ok(Rational::new(num, den))
    }

    /// Overflow-checked addition; the fallible counterpart of `+`.
    pub fn checked_add(self, rhs: Rational) -> Result<Rational, InlError> {
        let num = self
            .num
            .checked_mul(rhs.den)
            .and_then(|a| rhs.num.checked_mul(self.den).and_then(|b| a.checked_add(b)))
            .ok_or_else(|| InlError::overflow("rational add"))?;
        let den = self
            .den
            .checked_mul(rhs.den)
            .ok_or_else(|| InlError::overflow("rational add"))?;
        Ok(Rational::new(num, den))
    }

    /// Overflow-checked subtraction; the fallible counterpart of `-`.
    pub fn checked_sub(self, rhs: Rational) -> Result<Rational, InlError> {
        self.checked_add(rhs.checked_neg()?)
    }

    /// Overflow-checked multiplication; the fallible counterpart of `*`.
    pub fn checked_mul(self, rhs: Rational) -> Result<Rational, InlError> {
        // Cross-reduce first to keep intermediates small.
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        let num = (self.num / g1)
            .checked_mul(rhs.num / g2)
            .ok_or_else(|| InlError::overflow("rational mul"))?;
        let den = (self.den / g2)
            .checked_mul(rhs.den / g1)
            .ok_or_else(|| InlError::overflow("rational mul"))?;
        Ok(Rational::new(num, den))
    }

    /// Overflow-checked division. Fails with [`InlErrorKind::IllFormed`] on
    /// division by zero, [`InlErrorKind::Overflow`] on range exhaustion.
    pub fn checked_div(self, rhs: Rational) -> Result<Rational, InlError> {
        if rhs.num == 0 {
            return Err(InlError::new(
                InlErrorKind::IllFormed,
                "rational division by zero",
            ));
        }
        if rhs.num == Int::MIN {
            // recip would need den = |MIN|.
            return Err(InlError::overflow("rational div"));
        }
        self.checked_mul(rhs.recip())
    }

    /// Overflow-checked negation (fails only on a numerator of `Int::MIN`).
    pub fn checked_neg(self) -> Result<Rational, InlError> {
        let num = self
            .num
            .checked_neg()
            .ok_or_else(|| InlError::overflow("rational neg"))?;
        Ok(Rational { num, den: self.den })
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<Int> for Rational {
    fn from(n: Int) -> Self {
        Rational::int(n)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        self.checked_add(rhs)
            .expect("rational add overflow: fallible paths use checked_add")
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        self.checked_mul(rhs)
            .expect("rational mul overflow: fallible paths use checked_mul")
    }
}

impl Div for Rational {
    type Output = Rational;
    #[allow(clippy::suspicious_arithmetic_impl)] // a/b = a * b⁻¹ is the definition
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        self.checked_neg()
            .expect("rational neg overflow: fallible paths use checked_neg")
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    /// Total order, overflow-immune for every representable pair.
    ///
    /// Naive cross-multiplication `num·den'` exceeds `i128` for large but
    /// perfectly comparable values, so magnitudes are compared by
    /// continued-fraction descent instead: compare integer parts, and when
    /// they tie, compare the reciprocal remainder fractions with the order
    /// flipped (Euclid's algorithm on the two fractions in lock-step). No
    /// intermediate ever exceeds the inputs.
    fn cmp(&self, other: &Self) -> Ordering {
        let (ls, rs) = (self.num.signum(), other.num.signum());
        if ls != rs {
            return ls.cmp(&rs);
        }
        if ls == 0 {
            return Ordering::Equal;
        }
        let mag = cmp_pos_frac(
            self.num.unsigned_abs(),
            self.den.unsigned_abs(),
            other.num.unsigned_abs(),
            other.den.unsigned_abs(),
        );
        if ls > 0 {
            mag
        } else {
            mag.reverse()
        }
    }
}

/// Compare `a/b` with `c/d` for positive `a, b, c, d` without widening.
fn cmp_pos_frac(mut a: u128, mut b: u128, mut c: u128, mut d: u128) -> Ordering {
    loop {
        let (q1, r1) = (a / b, a % b);
        let (q2, r2) = (c / d, c % d);
        if q1 != q2 {
            return q1.cmp(&q2);
        }
        match (r1 == 0, r2 == 0) {
            (true, true) => return Ordering::Equal,
            (true, false) => return Ordering::Less,
            (false, true) => return Ordering::Greater,
            // a/b = q + r1/b and c/d = q + r2/d: the comparison reduces to
            // r1/b vs r2/d, i.e. d/r2 vs b/r1 with the order flipped.
            (false, false) => (a, b, c, d) = (d, r2, b, r1),
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_reduces() {
        let r = Rational::new(6, -4);
        assert_eq!(r.num(), -3);
        assert_eq!(r.den(), 2);
        assert_eq!(Rational::new(0, -7), Rational::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(a + b, Rational::new(5, 6));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 6));
        assert_eq!(a / b, Rational::new(3, 2));
        assert_eq!(-a, Rational::new(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::new(-1, 3));
        assert!(Rational::new(2, 4) == Rational::new(1, 2));
    }

    #[test]
    fn cmp_large_values_no_overflow() {
        // Cross-multiplication of these overflows i128; the
        // continued-fraction comparison must still order them correctly.
        let a = Rational::new(Int::MAX, 2);
        let b = Rational::new(Int::MAX - 1, 2);
        assert!(b < a);
        assert!(a > b);
        assert_eq!(a.cmp(&a), Ordering::Equal);

        let c = Rational::new(Int::MAX, 3);
        assert!(c < a, "MAX/3 < MAX/2");

        let d = Rational::new(-(Int::MAX), 2);
        let e = Rational::new(-(Int::MAX - 1), 2);
        assert!(d < e, "more negative is smaller");

        // Mixed signs and zero never even reach magnitude comparison.
        assert!(d < Rational::ZERO);
        assert!(Rational::ZERO < a);
        assert!(d < c);

        // Huge numerators against huge denominators.
        let f = Rational::new(Int::MAX, Int::MAX - 2);
        let g = Rational::new(Int::MAX - 1, Int::MAX - 2);
        assert!(g < f);
        assert!(f > Rational::ONE && g > Rational::ONE);

        // MIN numerator (reduced) participates safely.
        let h = Rational::new(Int::MIN, 2);
        let i = Rational::new(Int::MIN / 2 + 1, 1);
        assert!(h < i);
    }

    #[test]
    fn cmp_agrees_with_cross_multiplication_when_small() {
        let vals: Vec<Rational> = [-7, -3, -1, 0, 1, 2, 5]
            .iter()
            .flat_map(|&n| [1, 2, 3, 7].iter().map(move |&d| Rational::new(n, d)))
            .collect();
        for x in &vals {
            for y in &vals {
                let expect = (x.num() * y.den()).cmp(&(y.num() * x.den()));
                assert_eq!(x.cmp(y), expect, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn checked_arithmetic_reports_overflow() {
        let big = Rational::new(Int::MAX, 1);
        assert_eq!(
            big.checked_add(big).unwrap_err().kind(),
            crate::InlErrorKind::Overflow
        );
        assert_eq!(
            big.checked_mul(big).unwrap_err().kind(),
            crate::InlErrorKind::Overflow
        );
        assert_eq!(
            Rational::new(Int::MIN, 1).checked_neg().unwrap_err().kind(),
            crate::InlErrorKind::Overflow
        );
        assert_eq!(
            Rational::ONE
                .checked_div(Rational::ZERO)
                .unwrap_err()
                .kind(),
            crate::InlErrorKind::IllFormed
        );
        assert_eq!(
            Rational::checked_new(1, 0).unwrap_err().kind(),
            crate::InlErrorKind::IllFormed
        );
        assert_eq!(Rational::checked_new(6, -4), Ok(Rational::new(-3, 2)));
        assert_eq!(
            Rational::new(1, 2).checked_sub(Rational::new(1, 3)),
            Ok(Rational::new(1, 6))
        );
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rational::new(7, 2).floor(), 3);
        assert_eq!(Rational::new(7, 2).ceil(), 4);
        assert_eq!(Rational::new(-7, 2).floor(), -4);
        assert_eq!(Rational::new(-7, 2).ceil(), -3);
        assert_eq!(Rational::new(6, 3).floor(), 2);
        assert_eq!(Rational::new(6, 3).ceil(), 2);
    }

    #[test]
    fn recip_and_int() {
        assert_eq!(Rational::new(3, 4).recip(), Rational::new(4, 3));
        assert!(Rational::int(5).is_integer());
        assert!(!Rational::new(5, 2).is_integer());
        assert_eq!(Rational::new(-3, 4).signum(), -1);
    }
}
