//! Exact rational numbers over [`Int`].
//!
//! Used wherever the framework needs non-integer intermediate values:
//! rational matrix inverses for loop-bound generation, Fourier–Motzkin
//! pivoting, and the per-statement transformation algebra. The denominator is
//! kept positive and the fraction fully reduced, so equality is structural.

use crate::{gcd, Int};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// An exact rational number `num / den` with `den > 0` and `gcd(num, den) == 1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: Int,
    den: Int,
}

impl Rational {
    /// Zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// One.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Construct `num / den`, reducing to lowest terms.
    ///
    /// # Panics
    /// If `den == 0`.
    pub fn new(num: Int, den: Int) -> Self {
        assert!(den != 0, "rational with zero denominator");
        let g = gcd(num, den);
        if g == 0 {
            return Rational { num: 0, den: 1 };
        }
        let (mut num, mut den) = (num / g, den / g);
        if den < 0 {
            num = -num;
            den = -den;
        }
        Rational { num, den }
    }

    /// An integer as a rational.
    #[inline]
    pub fn int(n: Int) -> Self {
        Rational { num: n, den: 1 }
    }

    /// Numerator (sign-carrying).
    #[inline]
    pub fn num(&self) -> Int {
        self.num
    }

    /// Denominator (always positive).
    #[inline]
    pub fn den(&self) -> Int {
        self.den
    }

    /// True iff the value is an integer.
    #[inline]
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// True iff the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Sign: -1, 0 or 1.
    #[inline]
    pub fn signum(&self) -> Int {
        self.num.signum()
    }

    /// Floor to the nearest integer towards negative infinity.
    pub fn floor(&self) -> Int {
        crate::floor_div(self.num, self.den)
    }

    /// Ceiling to the nearest integer towards positive infinity.
    pub fn ceil(&self) -> Int {
        crate::ceil_div(self.num, self.den)
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// If the value is zero.
    pub fn recip(&self) -> Self {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    fn checked(num: Option<Int>, den: Option<Int>) -> Self {
        Rational::new(
            num.expect("rational numerator overflow"),
            den.expect("rational denominator overflow"),
        )
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<Int> for Rational {
    fn from(n: Int) -> Self {
        Rational::int(n)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        let num = self
            .num
            .checked_mul(rhs.den)
            .and_then(|a| rhs.num.checked_mul(self.den).and_then(|b| a.checked_add(b)));
        Rational::checked(num, self.den.checked_mul(rhs.den))
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        // Cross-reduce first to keep intermediates small.
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        Rational::checked(
            (self.num / g1).checked_mul(rhs.num / g2),
            (self.den / g2).checked_mul(rhs.den / g1),
        )
    }
}

impl Div for Rational {
    type Output = Rational;
    #[allow(clippy::suspicious_arithmetic_impl)] // a/b = a * b⁻¹ is the definition
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Denominators are positive, so cross-multiplication preserves order.
        let lhs = self
            .num
            .checked_mul(other.den)
            .expect("rational cmp overflow");
        let rhs = other
            .num
            .checked_mul(self.den)
            .expect("rational cmp overflow");
        lhs.cmp(&rhs)
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_reduces() {
        let r = Rational::new(6, -4);
        assert_eq!(r.num(), -3);
        assert_eq!(r.den(), 2);
        assert_eq!(Rational::new(0, -7), Rational::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(a + b, Rational::new(5, 6));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 6));
        assert_eq!(a / b, Rational::new(3, 2));
        assert_eq!(-a, Rational::new(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::new(-1, 3));
        assert!(Rational::new(2, 4) == Rational::new(1, 2));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rational::new(7, 2).floor(), 3);
        assert_eq!(Rational::new(7, 2).ceil(), 4);
        assert_eq!(Rational::new(-7, 2).floor(), -4);
        assert_eq!(Rational::new(-7, 2).ceil(), -3);
        assert_eq!(Rational::new(6, 3).floor(), 2);
        assert_eq!(Rational::new(6, 3).ceil(), 2);
    }

    #[test]
    fn recip_and_int() {
        assert_eq!(Rational::new(3, 4).recip(), Rational::new(4, 3));
        assert!(Rational::int(5).is_integer());
        assert!(!Rational::new(5, 2).is_integer());
        assert_eq!(Rational::new(-3, 4).signum(), -1);
    }
}
