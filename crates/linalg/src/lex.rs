//! Lexicographic order on integer vectors.
//!
//! Execution order of dynamic instances corresponds to lexicographic order on
//! instance vectors (Theorem 1 of the paper), and the legality condition
//! (Definition 6) requires projected transformed dependence vectors to be
//! lexicographically positive or zero.

use crate::{IVec, Int};
use std::cmp::Ordering;

/// The lexicographic sign of a vector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LexSign {
    /// First nonzero entry is positive.
    Positive,
    /// All entries are zero.
    Zero,
    /// First nonzero entry is negative.
    Negative,
}

impl LexSign {
    /// Classify a slice.
    pub fn of(v: &[Int]) -> LexSign {
        for &x in v {
            match x.cmp(&0) {
                Ordering::Greater => return LexSign::Positive,
                Ordering::Less => return LexSign::Negative,
                Ordering::Equal => {}
            }
        }
        LexSign::Zero
    }
}

/// Lexicographic comparison of two equal-length vectors.
///
/// # Panics
/// If lengths differ (comparing instance vectors of different programs is a
/// bug).
pub fn lex_cmp(a: &IVec, b: &IVec) -> Ordering {
    assert_eq!(a.len(), b.len(), "lex_cmp: length mismatch");
    for (x, y) in a.iter().zip(b.iter()) {
        match x.cmp(y) {
            Ordering::Equal => {}
            other => return other,
        }
    }
    Ordering::Equal
}

/// The lexicographic sign of a vector.
pub fn lex_sign(v: &IVec) -> LexSign {
    LexSign::of(v.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signs() {
        assert_eq!(LexSign::of(&[0, 0, 1, -5]), LexSign::Positive);
        assert_eq!(LexSign::of(&[0, -1, 9]), LexSign::Negative);
        assert_eq!(LexSign::of(&[0, 0, 0]), LexSign::Zero);
        assert_eq!(LexSign::of(&[]), LexSign::Zero);
    }

    #[test]
    fn cmp_order() {
        let a = IVec::from(vec![1, 2, 3]);
        let b = IVec::from(vec![1, 3, 0]);
        assert_eq!(lex_cmp(&a, &b), Ordering::Less);
        assert_eq!(lex_cmp(&b, &a), Ordering::Greater);
        assert_eq!(lex_cmp(&a, &a), Ordering::Equal);
    }

    #[test]
    fn execution_order_matches_difference_sign() {
        // b - a lexicographically positive iff a < b
        let a = IVec::from(vec![2, 0, 1, 2]);
        let b = IVec::from(vec![2, 1, 0, 3]);
        assert_eq!(lex_cmp(&a, &b), Ordering::Less);
        assert_eq!(lex_sign(&(&b - &a)), LexSign::Positive);
    }
}
