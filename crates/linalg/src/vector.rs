//! Dense integer vectors.
//!
//! Instance vectors, dependence vectors and matrix rows are all [`IVec`]s.

use crate::{gcd, InlError, Int};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense integer vector.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct IVec(Vec<Int>);

impl IVec {
    /// The zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        IVec(vec![0; n])
    }

    /// The `i`-th unit vector of length `n`.
    pub fn unit(n: usize, i: usize) -> Self {
        let mut v = vec![0; n];
        v[i] = 1;
        IVec(v)
    }

    /// Length.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// View as a slice.
    pub fn as_slice(&self) -> &[Int] {
        &self.0
    }

    /// View as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [Int] {
        &mut self.0
    }

    /// Consume into the underlying `Vec`.
    pub fn into_vec(self) -> Vec<Int> {
        self.0
    }

    /// Iterate over entries.
    pub fn iter(&self) -> std::slice::Iter<'_, Int> {
        self.0.iter()
    }

    /// True iff all entries are zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&x| x == 0)
    }

    /// Dot product; convenience wrapper over [`IVec::checked_dot`] for
    /// trusted (small-entry) inputs.
    ///
    /// # Panics
    /// If lengths differ or the product overflows; fallible paths use
    /// [`IVec::checked_dot`].
    pub fn dot(&self, other: &IVec) -> Int {
        self.checked_dot(other)
            .expect("dot overflow: fallible paths use checked_dot")
    }

    /// Overflow-checked dot product.
    ///
    /// # Panics
    /// If lengths differ (an arity mismatch is a programming error, not an
    /// input condition).
    pub fn checked_dot(&self, other: &IVec) -> Result<Int, InlError> {
        assert_eq!(self.len(), other.len(), "dot: length mismatch");
        let mut acc: Int = 0;
        for (&a, &b) in self.0.iter().zip(&other.0) {
            acc = a
                .checked_mul(b)
                .and_then(|x| acc.checked_add(x))
                .ok_or_else(|| InlError::overflow("dot product"))?;
        }
        Ok(acc)
    }

    /// Index of the first non-zero entry ("height" in the paper's
    /// `Complete` procedure, Fig. 7), or `None` for the zero vector.
    pub fn height(&self) -> Option<usize> {
        self.0.iter().position(|&x| x != 0)
    }

    /// Gcd of all entries (non-negative; 0 for the zero vector).
    pub fn content(&self) -> Int {
        self.0.iter().fold(0, |acc, &x| gcd(acc, x))
    }

    /// Divide out the gcd of all entries, making the vector primitive.
    /// The zero vector is returned unchanged.
    pub fn primitive(&self) -> IVec {
        let g = self.content();
        if g <= 1 {
            self.clone()
        } else {
            IVec(self.0.iter().map(|&x| x / g).collect())
        }
    }

    /// Keep only the entries at `positions` (in the given order).
    pub fn project(&self, positions: &[usize]) -> IVec {
        IVec(positions.iter().map(|&p| self.0[p]).collect())
    }

    /// Concatenate with another vector.
    pub fn concat(&self, other: &IVec) -> IVec {
        let mut v = self.0.clone();
        v.extend_from_slice(&other.0);
        IVec(v)
    }

    /// Scale by a constant; convenience wrapper over
    /// [`IVec::checked_scale`] for trusted (small-entry) inputs.
    ///
    /// # Panics
    /// On overflow; fallible paths use [`IVec::checked_scale`].
    pub fn scale(&self, k: Int) -> IVec {
        self.checked_scale(k)
            .expect("scale overflow: fallible paths use checked_scale")
    }

    /// Overflow-checked scaling by a constant.
    pub fn checked_scale(&self, k: Int) -> Result<IVec, InlError> {
        self.0
            .iter()
            .map(|&x| {
                x.checked_mul(k)
                    .ok_or_else(|| InlError::overflow("vector scale"))
            })
            .collect::<Result<Vec<Int>, InlError>>()
            .map(IVec)
    }
}

impl From<Vec<Int>> for IVec {
    fn from(v: Vec<Int>) -> Self {
        IVec(v)
    }
}

impl From<&[Int]> for IVec {
    fn from(v: &[Int]) -> Self {
        IVec(v.to_vec())
    }
}

impl FromIterator<Int> for IVec {
    fn from_iter<T: IntoIterator<Item = Int>>(iter: T) -> Self {
        IVec(iter.into_iter().collect())
    }
}

impl Index<usize> for IVec {
    type Output = Int;
    fn index(&self, i: usize) -> &Int {
        &self.0[i]
    }
}

impl IndexMut<usize> for IVec {
    fn index_mut(&mut self, i: usize) -> &mut Int {
        &mut self.0[i]
    }
}

impl Add for &IVec {
    type Output = IVec;
    fn add(self, rhs: &IVec) -> IVec {
        assert_eq!(self.len(), rhs.len(), "add: length mismatch");
        IVec(self.0.iter().zip(&rhs.0).map(|(&a, &b)| a + b).collect())
    }
}

impl Sub for &IVec {
    type Output = IVec;
    fn sub(self, rhs: &IVec) -> IVec {
        assert_eq!(self.len(), rhs.len(), "sub: length mismatch");
        IVec(self.0.iter().zip(&rhs.0).map(|(&a, &b)| a - b).collect())
    }
}

impl Neg for &IVec {
    type Output = IVec;
    fn neg(self) -> IVec {
        IVec(self.0.iter().map(|&a| -a).collect())
    }
}

impl Mul<Int> for &IVec {
    type Output = IVec;
    fn mul(self, k: Int) -> IVec {
        self.scale(k)
    }
}

impl fmt::Debug for IVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl fmt::Display for IVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, x) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let v = IVec::from(vec![1, 0, -2]);
        assert_eq!(v.len(), 3);
        assert!(!v.is_zero());
        assert!(IVec::zeros(4).is_zero());
        assert_eq!(IVec::unit(3, 1).as_slice(), &[0, 1, 0]);
    }

    #[test]
    fn dot_and_arith() {
        let a = IVec::from(vec![1, 2, 3]);
        let b = IVec::from(vec![4, -5, 6]);
        assert_eq!(a.dot(&b), 4 - 10 + 18);
        assert_eq!((&a + &b).as_slice(), &[5, -3, 9]);
        assert_eq!((&a - &b).as_slice(), &[-3, 7, -3]);
        assert_eq!((-&a).as_slice(), &[-1, -2, -3]);
        assert_eq!((&a * 3).as_slice(), &[3, 6, 9]);
    }

    #[test]
    fn height() {
        assert_eq!(IVec::from(vec![0, 0, 5, 1]).height(), Some(2));
        assert_eq!(IVec::zeros(3).height(), None);
        assert_eq!(IVec::from(vec![-1]).height(), Some(0));
    }

    #[test]
    fn primitive() {
        assert_eq!(
            IVec::from(vec![4, -6, 8]).primitive().as_slice(),
            &[2, -3, 4]
        );
        assert_eq!(IVec::from(vec![0, 0]).primitive().as_slice(), &[0, 0]);
        assert_eq!(IVec::from(vec![3, 5]).primitive().as_slice(), &[3, 5]);
    }

    #[test]
    fn project_concat() {
        let v = IVec::from(vec![10, 20, 30, 40]);
        assert_eq!(v.project(&[3, 0]).as_slice(), &[40, 10]);
        assert_eq!(v.project(&[]).len(), 0);
        let w = IVec::from(vec![1, 2]);
        assert_eq!(v.concat(&w).as_slice(), &[10, 20, 30, 40, 1, 2]);
    }
}
