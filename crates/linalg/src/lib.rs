//! # inl-linalg
//!
//! Exact integer and rational linear algebra for the `inl` loop-transformation
//! framework.
//!
//! Loop transformations are represented by integer matrices acting on integer
//! instance vectors (Kodukula & Pingali, SC 1996). Everything the framework
//! does with those matrices — legality tests, rank computations for the
//! augmentation procedure, non-singular per-statement transforms, Hermite
//! normal forms for non-unimodular loop bounds — must be *exact*: a rounding
//! error of 1 changes which iterations a loop executes. This crate therefore
//! provides:
//!
//! * [`InlError`] — the structured, recoverable error type shared by the
//!   whole pipeline; fallible operations report it rather than panicking;
//! * [`Rational`] — exact rationals over `i128` (sufficient for the matrix
//!   sizes that arise from loop nests; all operations are overflow-checked
//!   and the fallible entry points report [`InlError`] rather than wrap);
//! * [`IMat`] / [`IVec`] — dense integer matrices/vectors with exact
//!   elimination: rank, determinant, rational inverse, solving, integer
//!   nullspace bases;
//! * [`hnf`] — column-style Hermite normal form and unimodular completion,
//!   used for non-unimodular code generation and the completion procedure;
//! * [`lex`] — lexicographic order utilities on integer vectors.
//!
//! # Example
//!
//! ```
//! use inl_linalg::{IMat, IVec};
//!
//! // The paper's loop-interchange matrix for the simplified Cholesky nest.
//! let m = IMat::from_rows(&[
//!     &[0, 0, 0, 1][..],
//!     &[0, 1, 0, 0],
//!     &[0, 0, 1, 0],
//!     &[1, 0, 0, 0],
//! ]);
//! assert_eq!(m.det(), -1); // a permutation: unimodular
//! let v = IVec::from(vec![2, 0, 1, 2]); // instance vector of S1 at I=2
//! assert_eq!(m.mul_vec(&v).as_slice(), &[2, 0, 1, 2]);
//! ```

pub mod error;
pub mod gauss;
pub mod hnf;
pub mod lex;
pub mod matrix;
pub mod rational;
pub mod vector;

pub use error::{InlError, InlErrorKind};
pub use gauss::{inverse_rational, nullspace_int, rank, solve_rational};
pub use hnf::{column_hnf, complete_unimodular, HnfResult};
pub use lex::{lex_cmp, LexSign};
pub use matrix::IMat;
pub use rational::Rational;
pub use vector::IVec;

/// The integer type used throughout the framework.
///
/// `i128` gives comfortable headroom for the products that appear in
/// fraction-free elimination of loop-transformation matrices (whose entries
/// are small: skew factors, ±1, alignment offsets).
pub type Int = i128;

/// Greatest common divisor (always non-negative; `gcd(0, 0) == 0`).
///
/// Computed on unsigned magnitudes, so `Int::MIN` inputs are handled
/// exactly: `gcd(Int::MIN, 1) == 1`, `gcd(Int::MIN, 2) == 2`. The single
/// unrepresentable case — a mathematical gcd of `2^127`, reachable only
/// from `{Int::MIN, 0}` and `{Int::MIN, Int::MIN}` — degrades to `1`
/// (skipping normalization is always sound; dividing by a wrong gcd is
/// not). Downstream products involving such magnitudes then hit checked
/// arithmetic and report [`InlErrorKind::Overflow`] rather than silently
/// mis-normalizing.
#[inline]
pub fn gcd(a: Int, b: Int) -> Int {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    Int::try_from(a).unwrap_or(1)
}

/// Least common multiple (non-negative; `lcm(x, 0) == Ok(0)`).
///
/// Fails with [`InlErrorKind::Overflow`] when the magnitude of the result
/// exceeds `Int::MAX` — including `lcm(Int::MIN, 1)`, whose mathematical
/// value `2^127` is one past the representable range.
#[inline]
pub fn lcm(a: Int, b: Int) -> Result<Int, InlError> {
    if a == 0 || b == 0 {
        return Ok(0);
    }
    (a / gcd(a, b))
        .checked_mul(b)
        .and_then(Int::checked_abs)
        .ok_or_else(|| InlError::overflow("lcm"))
}

/// Extended Euclid: returns `(g, x, y)` with `a*x + b*y == g == gcd(a, b)`,
/// `g >= 0`.
///
/// `Int::MIN` inputs are handled whenever the gcd itself is representable
/// (e.g. `ext_gcd(Int::MIN, 3)`); the unrepresentable gcd-of-`2^127`
/// corner degrades like [`gcd`], returning `(1, 0, 0)` with no valid
/// Bézout identity — callers that divide by the gcd skip the reduction.
pub fn ext_gcd(a: Int, b: Int) -> (Int, Int, Int) {
    if b == 0 {
        match a.checked_abs() {
            Some(g) => {
                if a < 0 {
                    (g, -1, 0)
                } else {
                    (g, 1, 0)
                }
            }
            // a == Int::MIN: gcd 2^127 unrepresentable, same corner as `gcd`.
            None => (1, 0, 0),
        }
    } else {
        let (g, x, y) = ext_gcd(b, a % b);
        // g = b*x + (a % b)*y = a*y + b*(x - (a/b)*y)
        (g, y, x - (a / b) * y)
    }
}

/// Floor division (rounds towards negative infinity), as needed for integer
/// loop bounds: `floor_div(-3, 2) == -2`.
#[inline]
pub fn floor_div(a: Int, b: Int) -> Int {
    debug_assert!(b != 0, "floor_div by zero");
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Ceiling division (rounds towards positive infinity): `ceil_div(3, 2) == 2`.
#[inline]
pub fn ceil_div(a: Int, b: Int) -> Int {
    debug_assert!(b != 0, "ceil_div by zero");
    let q = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

/// Mathematical modulus: result is in `[0, |b|)`.
#[inline]
pub fn modulo(a: Int, b: Int) -> Int {
    let r = a % b;
    if r < 0 {
        r + b.abs()
    } else {
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(12, -18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(1, 1), 1);
        assert_eq!(gcd(17, 13), 1);
    }

    #[test]
    fn lcm_basic() {
        assert_eq!(lcm(4, 6), Ok(12));
        assert_eq!(lcm(-4, 6), Ok(12));
        assert_eq!(lcm(0, 6), Ok(0));
        assert_eq!(lcm(7, 7), Ok(7));
    }

    #[test]
    fn gcd_min_edges() {
        // |Int::MIN| is not representable, but every gcd against MIN with a
        // representable result must be exact.
        assert_eq!(gcd(Int::MIN, 1), 1);
        assert_eq!(gcd(1, Int::MIN), 1);
        assert_eq!(gcd(Int::MIN, 2), 2);
        assert_eq!(gcd(Int::MIN, 3), 1);
        assert_eq!(gcd(Int::MIN, Int::MAX), 1);
        assert_eq!(gcd(Int::MIN, 1 << 20), 1 << 20);
    }

    #[test]
    fn lcm_min_edges() {
        // lcm(MIN, 1) = 2^127 is one past Int::MAX: typed overflow, not a
        // wrapped `.abs()`.
        assert_eq!(lcm(Int::MIN, 1).unwrap_err().kind(), InlErrorKind::Overflow);
        assert_eq!(lcm(1, Int::MIN).unwrap_err().kind(), InlErrorKind::Overflow);
        assert_eq!(
            lcm(Int::MIN, Int::MIN).unwrap_err().kind(),
            InlErrorKind::Overflow
        );
        assert_eq!(lcm(Int::MIN, 0), Ok(0));
        assert_eq!(lcm(Int::MAX, Int::MAX), Ok(Int::MAX));
        assert_eq!(lcm(Int::MIN / 2, 2), Ok(Int::MIN / -2));
        assert_eq!(
            lcm(Int::MIN / 2, 3).unwrap_err().kind(),
            InlErrorKind::Overflow
        );
    }

    #[test]
    fn ext_gcd_min_edges() {
        for b in [1, 2, 3, 5, Int::MAX] {
            let (g, x, y) = ext_gcd(Int::MIN, b);
            assert_eq!(g, gcd(Int::MIN, b), "gcd mismatch for (MIN,{b})");
            assert_eq!(
                Int::MIN.wrapping_mul(x).wrapping_add(b.wrapping_mul(y)),
                g,
                "bezout identity fails for (MIN,{b})"
            );
        }
    }

    #[test]
    fn ext_gcd_identity() {
        for (a, b) in [
            (12, 18),
            (-12, 18),
            (0, 7),
            (7, 0),
            (1, 1),
            (240, 46),
            (-5, -15),
        ] {
            let (g, x, y) = ext_gcd(a, b);
            assert_eq!(g, gcd(a, b), "gcd mismatch for ({a},{b})");
            assert_eq!(a * x + b * y, g, "bezout identity fails for ({a},{b})");
        }
    }

    #[test]
    fn floor_ceil_div() {
        assert_eq!(floor_div(7, 2), 3);
        assert_eq!(floor_div(-7, 2), -4);
        assert_eq!(floor_div(7, -2), -4);
        assert_eq!(floor_div(-7, -2), 3);
        assert_eq!(floor_div(6, 3), 2);
        assert_eq!(ceil_div(7, 2), 4);
        assert_eq!(ceil_div(-7, 2), -3);
        assert_eq!(ceil_div(7, -2), -3);
        assert_eq!(ceil_div(-7, -2), 4);
        assert_eq!(ceil_div(6, 3), 2);
    }

    #[test]
    fn modulo_range() {
        assert_eq!(modulo(7, 3), 1);
        assert_eq!(modulo(-7, 3), 2);
        assert_eq!(modulo(-7, -3), 2);
        assert_eq!(modulo(6, 3), 0);
    }
}
