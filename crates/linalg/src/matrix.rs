//! Dense integer matrices.
//!
//! Transformation matrices, dependence matrices and embedding matrices are
//! all [`IMat`]s. Entries are [`Int`] (`i128`); elimination routines that
//! need fractions live in [`crate::gauss`].

use crate::{IVec, InlError, Int};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major integer matrix.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IMat {
    rows: usize,
    cols: usize,
    data: Vec<Int>,
}

impl IMat {
    /// The `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        IMat {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = IMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1;
        }
        m
    }

    /// Build from row slices.
    ///
    /// # Panics
    /// If rows have unequal lengths.
    pub fn from_rows<R: AsRef<[Int]>>(rows: &[R]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.as_ref().len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            assert_eq!(r.as_ref().len(), ncols, "from_rows: ragged rows");
            data.extend_from_slice(r.as_ref());
        }
        IMat {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Build an `rows × cols` matrix from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Int) -> Self {
        let mut m = IMat::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// The permutation matrix `P` with `P * e_j = e_{perm[j]}`; i.e. applying
    /// `P` to a vector moves the entry at position `j` to position `perm[j]`.
    ///
    /// # Panics
    /// If `perm` is not a permutation of `0..n`.
    pub fn permutation(perm: &[usize]) -> Self {
        let n = perm.len();
        let mut seen = vec![false; n];
        let mut m = IMat::zeros(n, n);
        for (j, &i) in perm.iter().enumerate() {
            assert!(i < n && !seen[i], "not a permutation");
            seen[i] = true;
            m[(i, j)] = 1;
        }
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// True iff square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Copy of row `i`.
    pub fn row(&self, i: usize) -> IVec {
        IVec::from(&self.data[i * self.cols..(i + 1) * self.cols])
    }

    /// Row `i` as a slice.
    pub fn row_slice(&self, i: usize) -> &[Int] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j`.
    pub fn col(&self, j: usize) -> IVec {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Iterate over rows as `IVec`s.
    pub fn rows_iter(&self) -> impl Iterator<Item = IVec> + '_ {
        (0..self.rows).map(move |i| self.row(i))
    }

    /// Append a row.
    ///
    /// # Panics
    /// If the row length differs from `ncols` (unless the matrix is empty).
    pub fn push_row(&mut self, row: &IVec) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "push_row: length mismatch");
        self.data.extend_from_slice(row.as_slice());
        self.rows += 1;
    }

    /// Matrix × vector; convenience wrapper over
    /// [`IMat::checked_mul_vec`] for trusted (small-entry) inputs.
    ///
    /// # Panics
    /// If `v.len() != ncols` or the product overflows; fallible paths use
    /// [`IMat::checked_mul_vec`].
    pub fn mul_vec(&self, v: &IVec) -> IVec {
        self.checked_mul_vec(v)
            .expect("mul_vec overflow: fallible paths use checked_mul_vec")
    }

    /// Overflow-checked matrix × vector.
    ///
    /// # Panics
    /// If `v.len() != ncols` (an arity mismatch is a programming error).
    pub fn checked_mul_vec(&self, v: &IVec) -> Result<IVec, InlError> {
        assert_eq!(v.len(), self.cols, "mul_vec: dimension mismatch");
        (0..self.rows).map(|i| self.row(i).checked_dot(v)).collect()
    }

    /// Matrix × matrix; convenience wrapper over [`IMat::checked_mul`] for
    /// trusted (small-entry) inputs.
    ///
    /// # Panics
    /// If inner dimensions disagree or the product overflows; fallible
    /// paths use [`IMat::checked_mul`].
    pub fn mul(&self, rhs: &IMat) -> IMat {
        self.checked_mul(rhs)
            .expect("matmul overflow: fallible paths use checked_mul")
    }

    /// Overflow-checked matrix × matrix.
    ///
    /// # Panics
    /// If inner dimensions disagree (a programming error).
    pub fn checked_mul(&self, rhs: &IMat) -> Result<IMat, InlError> {
        assert_eq!(self.cols, rhs.rows, "mul: dimension mismatch");
        let mut out = IMat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] = a
                        .checked_mul(rhs[(k, j)])
                        .and_then(|prod| out[(i, j)].checked_add(prod))
                        .ok_or_else(|| InlError::overflow("matrix multiply"))?;
                }
            }
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> IMat {
        IMat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// The submatrix with the given rows and columns (in the given orders).
    pub fn submatrix(&self, rows: &[usize], cols: &[usize]) -> IMat {
        IMat::from_fn(rows.len(), cols.len(), |i, j| self[(rows[i], cols[j])])
    }

    /// Determinant via fraction-free (Bareiss) elimination; convenience
    /// wrapper over [`IMat::checked_det`] for trusted (small-entry) inputs.
    ///
    /// # Panics
    /// If the matrix is not square, or on overflow; fallible paths use
    /// [`IMat::checked_det`].
    pub fn det(&self) -> Int {
        self.checked_det()
            .expect("determinant overflow: fallible paths use checked_det")
    }

    /// Overflow-checked determinant.
    ///
    /// # Panics
    /// If the matrix is not square (a programming error).
    pub fn checked_det(&self) -> Result<Int, InlError> {
        crate::gauss::checked_det(self)
    }

    /// Rank over the rationals; convenience wrapper over
    /// [`IMat::checked_rank`] for trusted (small-entry) inputs.
    ///
    /// # Panics
    /// On overflow; fallible paths use [`IMat::checked_rank`].
    pub fn rank(&self) -> usize {
        self.checked_rank()
            .expect("rank overflow: fallible paths use checked_rank")
    }

    /// Overflow-checked rank over the rationals.
    pub fn checked_rank(&self) -> Result<usize, InlError> {
        crate::gauss::checked_rank(self)
    }

    /// True iff square with determinant ±1.
    ///
    /// Panic-free: a determinant whose computation overflows cannot be
    /// proven unimodular, so the answer is conservatively `false`.
    pub fn is_unimodular(&self) -> bool {
        self.is_square() && matches!(self.checked_det(), Ok(1) | Ok(-1))
    }

    /// True iff this is a permutation matrix.
    pub fn is_permutation(&self) -> bool {
        if !self.is_square() {
            return false;
        }
        let n = self.rows;
        let mut col_seen = vec![false; n];
        for i in 0..n {
            let mut ones = 0;
            for j in 0..n {
                match self[(i, j)] {
                    0 => {}
                    1 => {
                        if col_seen[j] {
                            return false;
                        }
                        col_seen[j] = true;
                        ones += 1;
                    }
                    _ => return false,
                }
            }
            if ones != 1 {
                return false;
            }
        }
        true
    }

    /// If this is a permutation matrix, return `perm` with
    /// `self * e_j = e_{perm[j]}`.
    pub fn as_permutation(&self) -> Option<Vec<usize>> {
        if !self.is_permutation() {
            return None;
        }
        let n = self.rows;
        let mut perm = vec![0; n];
        for j in 0..n {
            for i in 0..n {
                if self[(i, j)] == 1 {
                    perm[j] = i;
                }
            }
        }
        Some(perm)
    }

    /// Vertically stack `self` on top of `other`.
    ///
    /// # Panics
    /// If column counts differ.
    pub fn vstack(&self, other: &IMat) -> IMat {
        assert_eq!(self.cols, other.cols, "vstack: column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        IMat {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Index<(usize, usize)> for IMat {
    type Output = Int;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Int {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for IMat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Int {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for IMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for IMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[")?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_mul() {
        let i3 = IMat::identity(3);
        let m = IMat::from_rows(&[&[1, 2, 3][..], &[4, 5, 6], &[7, 8, 9]]);
        assert_eq!(i3.mul(&m), m);
        assert_eq!(m.mul(&i3), m);
        let v = IVec::from(vec![1, 0, -1]);
        assert_eq!(m.mul_vec(&v).as_slice(), &[-2, -2, -2]);
    }

    #[test]
    fn permutation_roundtrip() {
        let perm = vec![2, 0, 1];
        let p = IMat::permutation(&perm);
        assert!(p.is_permutation());
        assert_eq!(p.as_permutation().unwrap(), perm);
        // applying p moves entry j to position perm[j]
        let v = IVec::from(vec![10, 20, 30]);
        let pv = p.mul_vec(&v);
        assert_eq!(pv.as_slice(), &[20, 30, 10]);
        assert_eq!(pv[perm[0]], v[0]);
    }

    #[test]
    fn not_a_permutation() {
        assert!(!IMat::from_rows(&[&[1, 1][..], &[0, 0]]).is_permutation());
        assert!(!IMat::from_rows(&[&[2, 0][..], &[0, 1]]).is_permutation());
        assert!(!IMat::from_rows(&[&[1, 0, 0][..], &[0, 1, 0]]).is_permutation());
        assert!(IMat::identity(4).is_permutation());
    }

    #[test]
    fn transpose_submatrix() {
        let m = IMat::from_rows(&[&[1, 2][..], &[3, 4], &[5, 6]]);
        assert_eq!(
            m.transpose(),
            IMat::from_rows(&[&[1, 3, 5][..], &[2, 4, 6]])
        );
        assert_eq!(
            m.submatrix(&[2, 0], &[1]),
            IMat::from_rows(&[&[6][..], &[2]])
        );
    }

    #[test]
    fn unimodular() {
        assert!(IMat::identity(3).is_unimodular());
        assert!(IMat::from_rows(&[&[1, 1][..], &[0, 1]]).is_unimodular()); // skew
        assert!(!IMat::from_rows(&[&[2, 0][..], &[0, 1]]).is_unimodular()); // scale
    }

    #[test]
    fn push_row_and_vstack() {
        let mut m = IMat::zeros(0, 0);
        m.push_row(&IVec::from(vec![1, 2]));
        m.push_row(&IVec::from(vec![3, 4]));
        assert_eq!(m, IMat::from_rows(&[&[1, 2][..], &[3, 4]]));
        let s = m.vstack(&IMat::from_rows(&[&[5, 6][..]]));
        assert_eq!(s.nrows(), 3);
        assert_eq!(s.row(2).as_slice(), &[5, 6]);
    }
}
