//! Property-based tests for the exact linear-algebra substrate. The
//! framework's soundness rests on these identities holding exactly, so we
//! hammer them with random small matrices (the size regime loop
//! transformations live in).

use inl_linalg::{
    column_hnf, complete_unimodular, ext_gcd, gauss, gcd, lcm, IMat, IVec, Int, Rational,
};
use proptest::prelude::*;

fn small_matrix(n: usize) -> impl Strategy<Value = IMat> {
    prop::collection::vec(-4i64..=4, n * n)
        .prop_map(move |v| IMat::from_fn(n, n, |i, j| v[i * n + j] as Int))
}

fn small_vec(n: usize) -> impl Strategy<Value = IVec> {
    prop::collection::vec(-6i64..=6, n).prop_map(|v| v.into_iter().map(|x| x as Int).collect())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 200, ..ProptestConfig::default() })]

    #[test]
    fn gcd_divides_and_bezout(a in -100i64..=100, b in -100i64..=100) {
        let (a, b) = (a as Int, b as Int);
        let g = gcd(a, b);
        if g != 0 {
            prop_assert_eq!(a % g, 0);
            prop_assert_eq!(b % g, 0);
        }
        let (g2, x, y) = ext_gcd(a, b);
        prop_assert_eq!(g2, g);
        prop_assert_eq!(a * x + b * y, g);
        if a != 0 && b != 0 {
            let l = lcm(a, b).expect("small inputs cannot overflow");
            prop_assert_eq!(l % a, 0);
            prop_assert_eq!(l % b, 0);
            prop_assert_eq!(g * l, (a * b).abs());
        }
    }

    #[test]
    fn det_is_multiplicative(a in small_matrix(3), b in small_matrix(3)) {
        prop_assert_eq!(a.mul(&b).det(), a.det() * b.det());
    }

    #[test]
    fn det_of_transpose(a in small_matrix(4)) {
        prop_assert_eq!(a.det(), a.transpose().det());
    }

    #[test]
    fn inverse_roundtrip(a in small_matrix(3)) {
        match gauss::inverse_rational(&a).expect("small entries cannot overflow") {
            None => prop_assert_eq!(a.det(), 0),
            Some(inv) => {
                prop_assert_ne!(a.det(), 0);
                // A · A⁻¹ = I over the rationals
                let qa = gauss::QMat::from_imat(&a);
                for col in 0..3 {
                    let col_v: Vec<Rational> =
                        (0..3).map(|r| inv.rows[r][col]).collect();
                    let prod = qa.mul_vec(&col_v);
                    for (r, x) in prod.iter().enumerate() {
                        let expect = if r == col { Rational::ONE } else { Rational::ZERO };
                        prop_assert_eq!(*x, expect);
                    }
                }
            }
        }
    }

    #[test]
    fn nullspace_vectors_annihilate(a in small_matrix(3)) {
        let ns = gauss::nullspace_int(&a).expect("small entries cannot overflow");
        prop_assert_eq!(ns.len(), 3 - gauss::rank(&a));
        for v in ns {
            prop_assert!(a.mul_vec(&v).is_zero());
            prop_assert!(!v.is_zero());
            prop_assert_eq!(v.content(), 1);
        }
    }

    #[test]
    fn rank_bounds(a in small_matrix(4)) {
        let r = gauss::rank(&a);
        prop_assert!(r <= 4);
        prop_assert_eq!(r == 4, a.det() != 0);
    }

    #[test]
    fn hnf_invariants(a in small_matrix(3)) {
        let r = column_hnf(&a).expect("small entries cannot overflow");
        prop_assert!(r.u.is_unimodular());
        prop_assert_eq!(a.mul(&r.u), r.h.clone());
        for (row, piv) in r.pivots.iter().enumerate() {
            if let Some(c) = piv {
                prop_assert!(r.h[(row, *c)] > 0);
                for j in c + 1..3 {
                    prop_assert_eq!(r.h[(row, j)], 0);
                }
            }
        }
    }

    #[test]
    fn completion_preserves_rows(v in small_vec(4)) {
        prop_assume!(!v.is_zero());
        let m = complete_unimodular(std::slice::from_ref(&v), 4).expect("independent");
        prop_assert_eq!(m.row(0), v.clone());
        prop_assert_ne!(m.det(), 0);
        // primitive row ⇒ unimodular completion
        if v.content() == 1 {
            prop_assert!(m.is_unimodular());
        } else {
            prop_assert_eq!(m.det().abs(), v.content());
        }
    }

    #[test]
    fn solve_satisfies_system(a in small_matrix(3), b in small_vec(3)) {
        if let Ok(Some(x)) = gauss::solve_rational(&a, &b) {
            for i in 0..3 {
                let mut acc = Rational::ZERO;
                for (j, xv) in x.iter().enumerate() {
                    acc += Rational::int(a[(i, j)]) * *xv;
                }
                prop_assert_eq!(acc, Rational::int(b[i]));
            }
        }
    }

    #[test]
    fn rational_field_axioms(
        an in -20i64..=20, ad in 1i64..=9,
        bn in -20i64..=20, bd in 1i64..=9,
        cn in -20i64..=20, cd in 1i64..=9,
    ) {
        let a = Rational::new(an as Int, ad as Int);
        let b = Rational::new(bn as Int, bd as Int);
        let c = Rational::new(cn as Int, cd as Int);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a + Rational::ZERO, a);
        prop_assert_eq!(a * Rational::ONE, a);
        if !b.is_zero() {
            prop_assert_eq!((a / b) * b, a);
        }
        // floor/ceil sandwich
        prop_assert!(Rational::int(a.floor()) <= a);
        prop_assert!(a <= Rational::int(a.ceil()));
        prop_assert!(a.ceil() - a.floor() <= 1);
    }

    #[test]
    fn lex_cmp_is_total_order(a in small_vec(4), b in small_vec(4), c in small_vec(4)) {
        use inl_linalg::lex::lex_cmp;
        use std::cmp::Ordering;
        // antisymmetry
        prop_assert_eq!(lex_cmp(&a, &b), lex_cmp(&b, &a).reverse());
        // transitivity (via sorting consistency)
        let mut v = [a.clone(), b.clone(), c.clone()];
        v.sort_by(lex_cmp);
        prop_assert_ne!(lex_cmp(&v[0], &v[1]), Ordering::Greater);
        prop_assert_ne!(lex_cmp(&v[1], &v[2]), Ordering::Greater);
        prop_assert_ne!(lex_cmp(&v[0], &v[2]), Ordering::Greater);
    }
}
