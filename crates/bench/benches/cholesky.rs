//! E7 — "All six permutations of these three loops compute the same
//! result, but their performance, even on sequential machines, can be
//! quite different" (§1).
//!
//! Three tiers:
//! * every *legal* framework-derived loop order, executed through the
//!   reference interpreter on the generated program;
//! * the same variants through the `inl-vm` bytecode backend (compiled
//!   once per variant, run per iteration) — the backend speedup the
//!   report binary records in `BENCH_exec.json`;
//! * hand-compiled kernels for the three canonical schedules (right-
//!   looking, left-looking, KJLI), where cache behaviour dominates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use inl_bench::{
    cholesky_variants, kernel_cholesky_kjli, kernel_cholesky_left, kernel_cholesky_right, spd_init,
};
use inl_codegen::generate;
use inl_exec::{Interpreter, Machine, VmRunner};
use std::hint::black_box;

fn interpreter_variants(c: &mut Criterion) {
    let (p, variants) = cholesky_variants();
    let (layout, deps) = inl_bench::deps_of(&p);
    let mut group = c.benchmark_group("cholesky_variants_interp");
    group.sample_size(10);
    let n: i128 = 60;
    for (label, m) in &variants {
        let result = generate(&p, &layout, &deps, m).expect("codegen");
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &result.program,
            |b, prog| {
                b.iter(|| {
                    let mut machine = Machine::new(prog, &[n], &spd_init);
                    Interpreter::new(prog).run(&mut machine);
                    black_box(machine.array_by_name("A").unwrap()[3]);
                })
            },
        );
    }
    group.finish();
}

fn vm_variants(c: &mut Criterion) {
    let (p, variants) = cholesky_variants();
    let (layout, deps) = inl_bench::deps_of(&p);
    let mut group = c.benchmark_group("cholesky_variants_vm");
    group.sample_size(10);
    let n: i128 = 60;
    for (label, m) in &variants {
        let result = generate(&p, &layout, &deps, m).expect("codegen");
        let runner = VmRunner::new(&result.program); // compile once, run many
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &result.program,
            |b, prog| {
                b.iter(|| {
                    let mut machine = Machine::new(prog, &[n], &spd_init);
                    runner.run(&mut machine);
                    black_box(machine.array_by_name("A").unwrap()[3]);
                })
            },
        );
    }
    group.finish();
}

fn compiled_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("cholesky_kernels");
    group.sample_size(10);
    for n in [128usize, 384, 768] {
        let w = n + 1;
        let mut base = vec![0.0; w * w];
        for i in 0..w {
            for j in 0..w {
                base[i * w + j] = spd_init("A", &[i, j]);
            }
        }
        for (name, kern) in [
            ("right_KIJL", kernel_cholesky_right as fn(&mut [f64], usize)),
            ("right_KJLI", kernel_cholesky_kjli),
            ("left_LKJI", kernel_cholesky_left),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &base, |b, base| {
                b.iter(|| {
                    let mut a = base.clone();
                    kern(&mut a, n);
                    black_box(a[w + 1]);
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, interpreter_variants, vm_variants, compiled_kernels);
criterion_main!(benches);
