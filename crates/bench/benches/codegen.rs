//! E5/E6/E9 — end-to-end compilation costs: code generation for the
//! paper's worked examples (the §5 skewing example with augmentation and
//! the §6 left-looking completion), the full pipeline down to executable
//! `inl-vm` bytecode, and the Fourier–Motzkin substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use inl_bench::deps_of;
use inl_codegen::{generate, generate_seq};
use inl_core::transform::Transform;
use inl_ir::zoo;
use inl_linalg::IMat;
use inl_poly::{fm, LinExpr, System};
use std::hint::black_box;

fn codegen_examples(c: &mut Criterion) {
    let mut group = c.benchmark_group("E5_E6_codegen");
    group.sample_size(10);
    // §5: skew with augmentation
    {
        let p = zoo::augmentation_example();
        let loops: Vec<_> = p.loops().collect();
        group.bench_function("section5_skew", |b| {
            b.iter(|| {
                black_box(
                    generate_seq(
                        &p,
                        &[Transform::Skew {
                            target: loops[0],
                            source: loops[1],
                            factor: -1,
                        }],
                    )
                    .unwrap(),
                )
            })
        });
    }
    // §6: left-looking Cholesky
    {
        let p = zoo::cholesky_kij();
        let (layout, deps) = deps_of(&p);
        let m = IMat::from_rows(&[
            &[0, 0, 0, 0, 0, 1, 0][..],
            &[0, 0, 1, 0, 0, 0, 0],
            &[0, 0, 0, 1, 0, 0, 0],
            &[0, 1, 0, 0, 0, 0, 0],
            &[0, 0, 0, 0, 1, 0, 0],
            &[1, 0, 0, 0, 0, 0, 0],
            &[0, 0, 0, 0, 0, 0, 1],
        ]);
        group.bench_function("section6_left_looking", |b| {
            b.iter(|| black_box(generate(&p, &layout, &deps, &m).unwrap()))
        });
        // the whole pipeline: transformed source → generated program →
        // flat bytecode ready to bind and run
        group.bench_function("section6_left_looking_to_bytecode", |b| {
            b.iter(|| {
                let r = generate(&p, &layout, &deps, &m).unwrap();
                black_box(inl_vm::compile(&r.program))
            })
        });
    }
    group.finish();
}

fn fourier_motzkin(c: &mut Criterion) {
    // E9: FM projection cost vs. variable count on triangular systems
    let mut group = c.benchmark_group("E9_fourier_motzkin");
    for nvars in [4usize, 8, 12] {
        // chain: 1 <= x0 <= N; x_{i-1} <= x_i <= N
        let space = nvars + 1;
        let mut sys = System::new(space);
        sys.add_ge(LinExpr::var(space, 1) - LinExpr::constant(space, 1));
        for i in 1..nvars {
            sys.add_ge(LinExpr::var(space, i + 1) - LinExpr::var(space, i));
        }
        for i in 0..nvars {
            sys.add_ge(LinExpr::var(space, 0) - LinExpr::var(space, i + 1));
        }
        group.bench_function(format!("project_to_last_of_{nvars}"), |b| {
            b.iter(|| black_box(fm::project(&sys, &[0, nvars])))
        });
        group.bench_function(format!("feasibility_of_{nvars}"), |b| {
            b.iter(|| black_box(fm::is_empty(&sys)))
        });
    }
    group.finish();
}

criterion_group!(benches, codegen_examples, fourier_motzkin);
criterion_main!(benches);
