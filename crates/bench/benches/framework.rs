//! E1/E3/E9 — costs of the framework itself: instance-vector operations,
//! dependence analysis, legality checking (abstract interval tier vs the
//! exact polyhedral tier — the ablation DESIGN.md calls out), the
//! completion procedure as the nest grows, and bytecode compilation
//! (`inl-vm`) — the one-time cost the VM backend pays before its runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use inl_bench::{deep_nest, deps_of};
use inl_core::complete::complete_transform;
use inl_core::depend::analyze;
use inl_core::instance::InstanceLayout;
use inl_core::legal::check_legal;
use inl_core::transform::Transform;
use inl_ir::zoo;
use inl_linalg::IMat;
use std::hint::black_box;

fn instance_vectors(c: &mut Criterion) {
    let p = zoo::cholesky_kij();
    let layout = InstanceLayout::new(&p);
    let s3 = p.stmts().find(|&s| p.stmt_decl(s).name == "S3").unwrap();
    c.bench_function("E1_instance_vector_encode", |b| {
        b.iter(|| black_box(layout.instance_vector(s3, &[2, 7, 4])))
    });
    let iv = layout.instance_vector(s3, &[2, 7, 4]);
    c.bench_function("E1_instance_vector_decode", |b| {
        b.iter(|| black_box(layout.decode(&p, &iv)))
    });
    c.bench_function("E1_layout_construction", |b| {
        b.iter(|| black_box(InstanceLayout::new(&p)))
    });
}

fn dependence_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("E3_dependence_analysis");
    group.sample_size(10);
    for (name, p) in [
        ("simple_cholesky", zoo::simple_cholesky()),
        ("cholesky_kij", zoo::cholesky_kij()),
        ("lu_kij", zoo::lu_kij()),
    ] {
        let layout = InstanceLayout::new(&p);
        group.bench_function(name, |b| b.iter(|| black_box(analyze(&p, &layout))));
    }
    for depth in [2usize, 4, 6] {
        let p = deep_nest(depth);
        let layout = InstanceLayout::new(&p);
        group.bench_with_input(BenchmarkId::new("deep_nest", depth), &p, |b, p| {
            b.iter(|| black_box(analyze(p, &layout)))
        });
    }
    group.finish();
}

fn legality_tiers(c: &mut Criterion) {
    // ablation: the fast interval tier suffices for exact-distance
    // dependences; direction entries force the exact polyhedral fallback
    let mut group = c.benchmark_group("E9_legality");
    group.sample_size(20);
    // interval-only path: wavefront (exact distances)
    {
        let p = zoo::wavefront();
        let (layout, deps) = deps_of(&p);
        let loops: Vec<_> = p.loops().collect();
        let m = Transform::Skew {
            target: loops[0],
            source: loops[1],
            factor: 1,
        }
        .matrix(&p, &layout);
        group.bench_function("interval_tier_wavefront_skew", |b| {
            b.iter(|| black_box(check_legal(&p, &layout, &deps, &m)))
        });
    }
    // exact-fallback path: full Cholesky left-looking (direction entries)
    {
        let p = zoo::cholesky_kij();
        let (layout, deps) = deps_of(&p);
        let m = IMat::from_rows(&[
            &[0, 0, 0, 0, 0, 1, 0][..],
            &[0, 0, 1, 0, 0, 0, 0],
            &[0, 0, 0, 1, 0, 0, 0],
            &[0, 1, 0, 0, 0, 0, 0],
            &[0, 0, 0, 0, 1, 0, 0],
            &[1, 0, 0, 0, 0, 0, 0],
            &[0, 0, 0, 0, 0, 0, 1],
        ]);
        group.bench_function("exact_tier_cholesky_left", |b| {
            b.iter(|| black_box(check_legal(&p, &layout, &deps, &m)))
        });
    }
    group.finish();
}

fn completion(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9_completion");
    group.sample_size(10);
    for (name, p) in [
        ("simple_cholesky", zoo::simple_cholesky()),
        ("cholesky_kij", zoo::cholesky_kij()),
    ] {
        let (layout, deps) = deps_of(&p);
        group.bench_function(name, |b| {
            b.iter(|| black_box(complete_transform(&p, &layout, &deps, &[])))
        });
    }
    group.finish();
}

fn vm_compilation(c: &mut Criterion) {
    // E9-companion: lowering IR to bytecode is cheap (microseconds) next
    // to a single N=100 execution (milliseconds) — the "compile once,
    // run per parameter binding" amortization argument
    let mut group = c.benchmark_group("E9_vm_compile");
    for (name, p) in [
        ("simple_cholesky", zoo::simple_cholesky()),
        ("cholesky_kij", zoo::cholesky_kij()),
        ("matmul", zoo::matmul()),
        ("deep_nest_6", deep_nest(6)),
    ] {
        group.bench_function(name, |b| b.iter(|| black_box(inl_vm::compile(&p))));
        let cp = inl_vm::compile(&p);
        let params: Vec<i128> = vec![32; p.nparams()];
        group.bench_function(format!("{name}_bind"), |b| {
            b.iter(|| black_box(cp.bind(&params)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    instance_vectors,
    dependence_analysis,
    legality_tiers,
    completion,
    vm_compilation
);
criterion_main!(benches);
