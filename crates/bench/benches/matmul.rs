//! E7-companion — the clean permutation case: matrix multiplication, where
//! the framework proves all six loop orders legal and the machine shows
//! why a compiler wants to choose among them (row-streaming `ikj` vs
//! column-striding `jki` in row-major storage). A third group runs the IR
//! program through both execution backends (tree-walking interpreter vs
//! `inl-vm` bytecode) to place the VM between the interpreter and the
//! hand-compiled kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use inl_bench::{kernel_matmul_ijk, kernel_matmul_ikj, kernel_matmul_jki};
use inl_exec::{Interpreter, Machine, VmRunner};
use inl_ir::zoo;
use std::hint::black_box;

type Kernel = fn(&mut [f64], &[f64], &[f64], usize);

fn matmul_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7_matmul_orders");
    group.sample_size(10);
    for n in [128usize, 384] {
        let w = n + 1;
        let a: Vec<f64> = (0..w * w).map(|x| (x % 17) as f64 * 0.25).collect();
        let b: Vec<f64> = (0..w * w).map(|x| (x % 13) as f64 * 0.5).collect();
        for (name, kern) in [
            ("ijk", kernel_matmul_ijk as Kernel),
            ("ikj", kernel_matmul_ikj),
            ("jki", kernel_matmul_jki),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &(&a, &b), |bch, (a, b)| {
                bch.iter(|| {
                    let mut cm = vec![0.0; w * w];
                    kern(&mut cm, a, b, n);
                    black_box(cm[w + 1]);
                })
            });
        }
    }
    group.finish();
}

fn matmul_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7_matmul_backends");
    group.sample_size(10);
    let p = zoo::matmul();
    let runner = VmRunner::new(&p); // compile once, run many
    let n: i128 = 64;
    let init = |_: &str, idx: &[usize]| (idx[0] * 3 + idx[1]) as f64 * 0.25;
    group.bench_function("interp", |b| {
        b.iter(|| {
            let mut m = Machine::new(&p, &[n], &init);
            Interpreter::new(&p).run(&mut m);
            black_box(m.array_by_name("C").unwrap()[1]);
        })
    });
    group.bench_function("vm", |b| {
        b.iter(|| {
            let mut m = Machine::new(&p, &[n], &init);
            runner.run(&mut m);
            black_box(m.array_by_name("C").unwrap()[1]);
        })
    });
    group.finish();
}

criterion_group!(benches, matmul_kernels, matmul_backends);
criterion_main!(benches);
