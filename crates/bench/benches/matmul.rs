//! E7-companion — the clean permutation case: matrix multiplication, where
//! the framework proves all six loop orders legal and the machine shows
//! why a compiler wants to choose among them (row-streaming `ikj` vs
//! column-striding `jki` in row-major storage).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use inl_bench::{kernel_matmul_ijk, kernel_matmul_ikj, kernel_matmul_jki};
use std::hint::black_box;

type Kernel = fn(&mut [f64], &[f64], &[f64], usize);

fn matmul_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7_matmul_orders");
    group.sample_size(10);
    for n in [128usize, 384] {
        let w = n + 1;
        let a: Vec<f64> = (0..w * w).map(|x| (x % 17) as f64 * 0.25).collect();
        let b: Vec<f64> = (0..w * w).map(|x| (x % 13) as f64 * 0.5).collect();
        for (name, kern) in [
            ("ijk", kernel_matmul_ijk as Kernel),
            ("ikj", kernel_matmul_ikj),
            ("jki", kernel_matmul_jki),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &(&a, &b), |bch, (a, b)| {
                bch.iter(|| {
                    let mut cm = vec![0.0; w * w];
                    kern(&mut cm, a, b, n);
                    black_box(cm[w + 1]);
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, matmul_kernels);
criterion_main!(benches);
