//! E8 — parallelization via the framework (§7): the wavefront recurrence,
//! sequential vs. the skewed schedule with a parallel inner loop, as
//! hand-compiled kernels; plus the interpreter-level outer-parallel
//! speedup on row-wise prefix sums (both the tree-walking and the
//! `inl-vm` bytecode path), and interp-vs-VM on the sequential wavefront.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use inl_bench::{kernel_wavefront_sqrt_seq, kernel_wavefront_sqrt_skewed_parallel};
use inl_exec::{Interpreter, Machine, ParallelExecutor, VmRunner};
use inl_ir::zoo;
use std::hint::black_box;

fn wavefront_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("E8_wavefront_kernels");
    group.sample_size(10);
    let max_threads = std::thread::available_parallelism().map_or(2, |x| x.get());
    for n in [512usize, 2048] {
        let w = n + 1;
        let mut base = vec![0.0; w * w];
        for i in 0..w {
            for j in 0..w {
                base[i * w + j] = if i == 0 || j == 0 { 1.0 } else { 0.0 };
            }
        }
        group.bench_with_input(
            BenchmarkId::new("sequential_row_major", n),
            &base,
            |b, base| {
                b.iter(|| {
                    let mut a = base.clone();
                    kernel_wavefront_sqrt_seq(&mut a, n);
                    black_box(a[w + 1]);
                })
            },
        );
        let mut thread_counts = vec![1usize, 2, max_threads];
        thread_counts.dedup();
        for threads in thread_counts {
            group.bench_with_input(
                BenchmarkId::new(format!("skewed_parallel_{threads}t"), n),
                &base,
                |b, base| {
                    b.iter(|| {
                        let mut a = base.clone();
                        kernel_wavefront_sqrt_skewed_parallel(&mut a, n, threads);
                        black_box(a[w + 1]);
                    })
                },
            );
        }
    }
    group.finish();
}

fn outer_parallel_interpreter(c: &mut Criterion) {
    let mut group = c.benchmark_group("E8_outer_parallel_interp");
    group.sample_size(10);
    let q = zoo::row_prefix_sums();
    let mut qpar = q.clone();
    let outer = qpar.loops().next().unwrap();
    qpar.set_loop_parallel(outer, true);
    let n: i128 = 400;
    let init = |_: &str, idx: &[usize]| (idx[0] + idx[1]) as f64 * 0.001;
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut m = Machine::new(&q, &[n], &init);
            Interpreter::new(&q).run(&mut m);
            black_box(m.array_by_name("B").unwrap()[5]);
        })
    });
    {
        let threads = 2usize;
        group.bench_function(format!("parallel_{threads}t"), |b| {
            b.iter(|| {
                let mut m = Machine::new(&qpar, &[n], &init);
                ParallelExecutor::new(&qpar, threads).run(&mut m);
                black_box(m.array_by_name("B").unwrap()[5]);
            })
        });
        group.bench_function(format!("parallel_vm_{threads}t"), |b| {
            b.iter(|| {
                let mut m = Machine::new(&qpar, &[n], &init);
                ParallelExecutor::new(&qpar, threads).run_vm(&mut m);
                black_box(m.array_by_name("B").unwrap()[5]);
            })
        });
    }
    group.finish();
}

fn wavefront_backends(c: &mut Criterion) {
    // the dependence-carrying wavefront itself through both sequential
    // backends — the VM's win on a nest the parallel path can't split
    let mut group = c.benchmark_group("E8_wavefront_backends");
    group.sample_size(10);
    let p = zoo::wavefront();
    let runner = VmRunner::new(&p);
    let n: i128 = 200;
    let init = |_: &str, idx: &[usize]| {
        if idx[0] == 0 || idx[1] == 0 {
            1.0
        } else {
            0.0
        }
    };
    group.bench_function("interp", |b| {
        b.iter(|| {
            let mut m = Machine::new(&p, &[n], &init);
            Interpreter::new(&p).run(&mut m);
            black_box(m.array_by_name("A").unwrap()[3]);
        })
    });
    group.bench_function("vm", |b| {
        b.iter(|| {
            let mut m = Machine::new(&p, &[n], &init);
            runner.run(&mut m);
            black_box(m.array_by_name("A").unwrap()[3]);
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    wavefront_kernels,
    outer_parallel_interpreter,
    wavefront_backends
);
criterion_main!(benches);
