//! # inl-bench
//!
//! Benchmark harnesses reproducing the paper's worked examples and its
//! motivating performance claims. See `EXPERIMENTS.md` at the workspace
//! root for the experiment index (E1–E9) and recorded results.
//!
//! Two kinds of measurements:
//!
//! * **framework costs** — instance-vector construction, dependence
//!   analysis, legality checking (abstract vs. exact ablation), completion
//!   and code generation, over nests of growing depth/width;
//! * **schedule quality** — the six legal Cholesky loop orders and the
//!   wavefront schedules, executed both through the reference interpreter
//!   (framework-generated programs) and as hand-compiled Rust kernels
//!   (what a compiler's backend would emit), where cache behaviour makes
//!   the paper's "performance can be quite different" visible.

// The parallel batch driver moved to `inl_codegen::batch` (the
// auto-scheduler drives it without depending on this crate); re-exported
// here so the report binary and older callers keep their import paths.
pub use inl_codegen::batch::{compile_batch, CompiledVariant};

use inl_core::complete::complete_transform;
use inl_core::depend::{analyze, DependenceMatrix};
use inl_core::instance::InstanceLayout;
use inl_ir::{zoo, Program};
use inl_linalg::{IMat, IVec};

/// Symmetric positive-definite-ish initializer for factorizations.
pub fn spd_init(_: &str, idx: &[usize]) -> f64 {
    if idx.len() == 2 {
        if idx[0] == idx[1] {
            (idx[0] + 10) as f64
        } else {
            1.0 / ((idx[0] + idx[1] + 2) as f64)
        }
    } else {
        2.0 + idx[0] as f64
    }
}

/// The legal Cholesky loop-order variants: `(label, matrix)` pairs
/// discovered by enumerating slot assignments and completing each.
pub fn cholesky_variants() -> (Program, Vec<(String, IMat)>) {
    let p = zoo::cholesky_kij();
    let layout = InstanceLayout::new(&p);
    let deps = analyze(&p, &layout).expect("analysis");
    let names = ["K", "J", "L", "I"];
    let positions: Vec<usize> = names
        .iter()
        .map(|nm| {
            let l = p.loops().find(|&l| p.loop_decl(l).name == *nm).unwrap();
            layout.loop_position(l)
        })
        .collect();
    let mut out = Vec::new();
    for pm in permutations(&[0usize, 1, 2, 3]) {
        let label: String = pm.iter().map(|&i| names[i]).collect::<Vec<_>>().join("");
        if inl_obs::explain_enabled() {
            inl_obs::explain::begin_session(&format!("cholesky/{label}"));
        }
        let rows: Vec<IVec> = pm
            .iter()
            .map(|&i| IVec::unit(layout.len(), positions[i]))
            .collect();
        if let Ok(c) = complete_transform(&p, &layout, &deps, &rows) {
            out.push((label, c.matrix));
        }
    }
    (p, out)
}

/// Render the report binary's `## explain` section from the current
/// decision-provenance store: one line per `cholesky/<ORDER>` session,
/// naming the verdict and its evidence — the proving legality check for
/// legal orders, the killing dependence (with its row) for rejected ones.
pub fn explain_section() -> String {
    use inl_obs::explain::Verdict;
    use std::fmt::Write as _;
    let records = inl_obs::explain::snapshot();
    let mut out = String::new();
    for (id, label) in inl_obs::explain::sessions() {
        let Some(order) = label.strip_prefix("cholesky/") else {
            continue;
        };
        let recs: Vec<_> = records.iter().filter(|r| r.session == id).collect();
        let legal_accept = recs
            .iter()
            .find(|r| r.stage == "legal" && r.verdict == Verdict::Accept);
        let line = if let Some(acc) = legal_accept {
            format!("legal     {}", acc.reason)
        } else if let Some(rej) = recs.iter().find(|r| r.verdict == Verdict::Reject) {
            let row = rej
                .details
                .get("dep_row")
                .map(|r| format!(" with row {r}"))
                .unwrap_or_default();
            format!("rejected  {}{row}", rej.reason)
        } else {
            "no decision recorded".to_string()
        };
        writeln!(out, "{order}  {line}").expect("string write");
    }
    out
}

/// All permutations of a small slice.
pub fn permutations(v: &[usize]) -> Vec<Vec<usize>> {
    if v.len() <= 1 {
        return vec![v.to_vec()];
    }
    let mut out = Vec::new();
    for i in 0..v.len() {
        let mut rest = v.to_vec();
        let x = rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, x);
            out.push(tail);
        }
    }
    out
}

/// A deep imperfect nest with `depth` loops and one statement per level —
/// used to measure how framework costs scale.
pub fn deep_nest(depth: usize) -> Program {
    use inl_ir::{Aff, ProgramBuilder};
    let mut b = ProgramBuilder::new(format!("deep{depth}"));
    let n = b.param("N");
    let ext = Aff::param(n) + Aff::konst(2);
    let a = b.array("A", std::slice::from_ref(&ext));
    fn nest(
        b: &mut ProgramBuilder,
        level: usize,
        depth: usize,
        a: inl_ir::ArrayId,
        n: inl_ir::ParamId,
    ) {
        use inl_ir::{Aff, Expr};
        let name = format!("i{level}");
        b.hloop(name.clone(), Aff::konst(1), Aff::param(n), move |b| {
            let iv = b.loop_var(&name);
            b.stmt(
                format!("S{level}"),
                a,
                vec![Aff::var(iv)],
                Expr::add(Expr::read(a, vec![Aff::var(iv)]), Expr::konst(1.0)),
            );
            if level + 1 < depth {
                nest(b, level + 1, depth, a, n);
            }
        });
    }
    nest(&mut b, 0, depth, a, n);
    b.finish()
}

/// Dependence matrix of a zoo program (helper for benches).
pub fn deps_of(p: &Program) -> (InstanceLayout, DependenceMatrix) {
    let layout = InstanceLayout::new(p);
    let deps = analyze(p, &layout).expect("analysis");
    (layout, deps)
}

// ---------------------------------------------------------------------
// Hand-compiled kernels: what a backend would emit for the schedules the
// framework derives. Dense row-major N+1 × N+1 matrices, 1-based indices.
// ---------------------------------------------------------------------

/// Right-looking (KIJ) Cholesky, the zoo source program compiled by hand.
pub fn kernel_cholesky_right(a: &mut [f64], n: usize) {
    let w = n + 1;
    for k in 1..=n {
        a[k * w + k] = a[k * w + k].sqrt();
        for i in k + 1..=n {
            a[i * w + k] /= a[k * w + k];
        }
        for j in k + 1..=n {
            for l in k + 1..=j {
                a[j * w + l] -= a[j * w + k] * a[l * w + k];
            }
        }
    }
}

/// Left-looking (§6's completion result) Cholesky, compiled by hand.
pub fn kernel_cholesky_left(a: &mut [f64], n: usize) {
    let w = n + 1;
    for k in 1..=n {
        for j in k..=n {
            for l in 1..k {
                a[j * w + k] -= a[j * w + l] * a[k * w + l];
            }
        }
        a[k * w + k] = a[k * w + k].sqrt();
        for i in k + 1..=n {
            a[i * w + k] /= a[k * w + k];
        }
    }
}

/// The KJLI variant (update loops interchanged: J outer walks rows,
/// L inner walks the row) — same family, different cache behaviour.
pub fn kernel_cholesky_kjli(a: &mut [f64], n: usize) {
    let w = n + 1;
    for k in 1..=n {
        a[k * w + k] = a[k * w + k].sqrt();
        for i in k + 1..=n {
            a[i * w + k] /= a[k * w + k];
        }
        for l in k + 1..=n {
            for j in l..=n {
                a[j * w + l] -= a[j * w + k] * a[l * w + k];
            }
        }
    }
}

/// Matrix-multiply kernels for the three canonical orders (all legal per
/// the framework; wildly different cache behaviour).
pub fn kernel_matmul_ijk(c: &mut [f64], a: &[f64], b: &[f64], n: usize) {
    let w = n + 1;
    for i in 1..=n {
        for j in 1..=n {
            let mut acc = c[i * w + j];
            for k in 1..=n {
                acc += a[i * w + k] * b[k * w + j];
            }
            c[i * w + j] = acc;
        }
    }
}

/// `ikj` order: innermost loop streams rows of `B` and `C` (cache-friendly
/// row-major).
pub fn kernel_matmul_ikj(c: &mut [f64], a: &[f64], b: &[f64], n: usize) {
    for i in 1..=n {
        matmul_k_range(c, a, b, n, i, 1, n);
    }
}

/// The shared inner K×J sweep of the `ikj`-family kernels: accumulate
/// `C[i,·] += Σ_{k=klo..=khi} A[i,k]·B[k,·]`.
///
/// K is unrolled by 4 with *sequential* per-element adds, so every
/// `C[i,j]` still accumulates in ascending-K order — the unroll (and any
/// SIMD the compiler applies across the independent `j` lanes) changes no
/// floating-point association, keeping results bitwise identical to the
/// scalar loop. Rows are sliced up front so the J sweep is
/// bounds-check-free and vectorizable; both the untiled and the tiled
/// kernel route through this helper, so they differ only in B locality.
fn matmul_k_range(c: &mut [f64], a: &[f64], b: &[f64], n: usize, i: usize, klo: usize, khi: usize) {
    let w = n + 1;
    let crow = &mut c[i * w + 1..i * w + 1 + n];
    let mut k = klo;
    while k + 3 <= khi {
        let ak = [
            a[i * w + k],
            a[i * w + k + 1],
            a[i * w + k + 2],
            a[i * w + k + 3],
        ];
        let b0 = &b[k * w + 1..k * w + 1 + n];
        let b1 = &b[(k + 1) * w + 1..(k + 1) * w + 1 + n];
        let b2 = &b[(k + 2) * w + 1..(k + 2) * w + 1 + n];
        let b3 = &b[(k + 3) * w + 1..(k + 3) * w + 1 + n];
        for (j, cv) in crow.iter_mut().enumerate() {
            let mut v = *cv;
            v += ak[0] * b0[j];
            v += ak[1] * b1[j];
            v += ak[2] * b2[j];
            v += ak[3] * b3[j];
            *cv = v;
        }
        k += 4;
    }
    while k <= khi {
        let aik = a[i * w + k];
        let brow = &b[k * w + 1..k * w + 1 + n];
        for (cv, bv) in crow.iter_mut().zip(brow) {
            *cv += aik * *bv;
        }
        k += 1;
    }
}

/// Strip-mined `ikj`: the `tile(K@T)/Ko.I.K.J` schedule family the
/// auto-scheduler derives by splitting the reuse-carrying K loop (see
/// `inl_core::tiling`). A slab of `T` rows of `B` is reused across the
/// whole I sweep instead of the full matrix, so past the cache cliff the
/// slab stays resident while untiled `ikj` re-streams all of `B` per row
/// of `C`. Per-cell accumulation order over K is unchanged (each (I,J)
/// cell still sees K ascending: the tiles partition K in order), so the
/// result is bitwise identical to the untiled kernels.
pub fn kernel_matmul_tiled(c: &mut [f64], a: &[f64], b: &[f64], n: usize, t: usize) {
    assert!(t >= 2, "tile size {t} must be at least 2");
    for ko in 1 / t..=n / t {
        let kbase = ko * t;
        // clamp pair the split introduces: T·Ko ≤ K ≤ T·Ko + T − 1,
        // intersected with the original 1..=N range (the tail guard)
        let klo = kbase.max(1);
        let khi = (kbase + t - 1).min(n);
        if klo > khi {
            continue;
        }
        for i in 1..=n {
            matmul_k_range(c, a, b, n, i, klo, khi);
        }
    }
}

/// `jki` order: innermost loop strides down columns (cache-hostile in
/// row-major storage).
pub fn kernel_matmul_jki(c: &mut [f64], a: &[f64], b: &[f64], n: usize) {
    let w = n + 1;
    for j in 1..=n {
        for k in 1..=n {
            let bkj = b[k * w + j];
            for i in 1..=n {
                c[i * w + j] += a[i * w + k] * bkj;
            }
        }
    }
}

/// Sequential wavefront recurrence (row-major sweep).
pub fn kernel_wavefront_seq(a: &mut [f64], n: usize) {
    let w = n + 1;
    for i in 1..=n {
        for j in 1..=n {
            a[i * w + j] = a[(i - 1) * w + j] + a[i * w + (j - 1)];
        }
    }
}

/// A sense-reversing spin barrier: wavefront synchronization happens once
/// per anti-diagonal (thousands of times per run), so the microseconds of
/// a futex-based barrier dominate; spinning costs tens of nanoseconds.
pub struct SpinBarrier {
    count: std::sync::atomic::AtomicUsize,
    generation: std::sync::atomic::AtomicUsize,
    total: usize,
}

impl SpinBarrier {
    /// A barrier for `total` participants.
    pub fn new(total: usize) -> Self {
        SpinBarrier {
            count: std::sync::atomic::AtomicUsize::new(0),
            generation: std::sync::atomic::AtomicUsize::new(0),
            total,
        }
    }

    /// Block (spinning) until all participants arrive.
    pub fn wait(&self) {
        use std::sync::atomic::Ordering;
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            self.count.store(0, Ordering::Release);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                std::hint::spin_loop();
                spins += 1;
                if spins > 1 << 12 {
                    // oversubscribed (more workers than cores): let the
                    // straggler run instead of burning its cycles
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// The wavefront update used by the E8 kernels. A bare add is below the
/// synchronization cost of any per-diagonal schedule; a sqrt-weighted
/// update models a Gauss–Seidel-like sweep with realistic per-cell work.
#[inline]
fn wf_update(up: f64, left: f64) -> f64 {
    // three dependent square roots ≈ the per-point cost of a small
    // Gauss–Seidel-style kernel; enough work to amortize one barrier per
    // anti-diagonal
    let a = (up * up + left * left + 1.0e-6).sqrt();
    let b = (a + up.abs()).sqrt();
    (b + left.abs()).sqrt()
}

/// Sequential sqrt-weighted wavefront (for the parallel speedup benches).
pub fn kernel_wavefront_sqrt_seq(a: &mut [f64], n: usize) {
    let w = n + 1;
    for i in 1..=n {
        for j in 1..=n {
            a[i * w + j] = wf_update(a[(i - 1) * w + j], a[i * w + (j - 1)]);
        }
    }
}

/// Skewed sqrt-weighted wavefront across `threads` persistent workers that
/// advance the outer (anti-diagonal) loop in lockstep through a spin
/// barrier — the schedule the framework derives in E8.
pub fn kernel_wavefront_sqrt_skewed_parallel(a: &mut [f64], n: usize, threads: usize) {
    let w = n + 1;
    struct Shared(*mut f64);
    unsafe impl Sync for Shared {}
    let ptr = Shared(a.as_mut_ptr());
    let shared = &ptr;
    let barrier = SpinBarrier::new(threads);
    let barrier = &barrier;
    std::thread::scope(|scope| {
        for tid in 0..threads {
            scope.spawn(move || {
                for t in 2..=2 * n {
                    let jlo = t.saturating_sub(n).max(1);
                    let jhi = (t - 1).min(n);
                    if jhi >= jlo {
                        let count = jhi - jlo + 1;
                        let chunk = count.div_ceil(threads);
                        let start = jlo + tid * chunk;
                        let end = (start + chunk).min(jhi + 1);
                        // anti-diagonal t: cells (t - j, j) are independent
                        for j in start..end {
                            let i = t - j;
                            unsafe {
                                *shared.0.add(i * w + j) = wf_update(
                                    *shared.0.add((i - 1) * w + j),
                                    *shared.0.add(i * w + (j - 1)),
                                );
                            }
                        }
                    }
                    barrier.wait();
                }
            });
        }
    });
}

/// Plain-add skewed wavefront (kept for bit-exact correctness checks
/// against [`kernel_wavefront_seq`]; grain is too fine for speedup).
pub fn kernel_wavefront_skewed_parallel(a: &mut [f64], n: usize, threads: usize) {
    let w = n + 1;
    struct Shared(*mut f64);
    unsafe impl Sync for Shared {}
    let ptr = Shared(a.as_mut_ptr());
    let shared = &ptr;
    let barrier = SpinBarrier::new(threads);
    let barrier = &barrier;
    std::thread::scope(|scope| {
        for tid in 0..threads {
            scope.spawn(move || {
                for t in 2..=2 * n {
                    let jlo = t.saturating_sub(n).max(1);
                    let jhi = (t - 1).min(n);
                    if jhi >= jlo {
                        let count = jhi - jlo + 1;
                        let chunk = count.div_ceil(threads);
                        let start = jlo + tid * chunk;
                        let end = (start + chunk).min(jhi + 1);
                        for j in start..end {
                            let i = t - j;
                            unsafe {
                                *shared.0.add(i * w + j) =
                                    *shared.0.add((i - 1) * w + j) + *shared.0.add(i * w + (j - 1));
                            }
                        }
                    }
                    barrier.wait();
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The explain flag is process-global: serialize the tests that sweep
    /// Cholesky orders so one test's sessions don't interleave another's.
    static EXPLAIN_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn parallel_batch_matches_serial() {
        let _guard = EXPLAIN_LOCK.lock().unwrap();
        let (p, variants) = cholesky_variants();
        let serial = compile_batch(&p, &variants, 1);
        let parallel = compile_batch(&p, &variants, 4);
        assert_eq!(serial.len(), variants.len());
        for (s, q) in serial.iter().zip(&parallel) {
            assert_eq!(s.label, q.label);
            assert_eq!(
                s.pseudocode, q.pseudocode,
                "variant {} generated different code in parallel",
                s.label
            );
        }
    }

    #[test]
    fn variants_include_both_families() {
        let _guard = EXPLAIN_LOCK.lock().unwrap();
        let (_p, variants) = cholesky_variants();
        assert_eq!(variants.len(), 12);
        assert!(variants.iter().any(|(l, _)| l == "KJLI"));
        assert!(variants.iter().any(|(l, _)| l.starts_with('L')));
    }

    #[test]
    fn explain_section_covers_all_24_orders() {
        let _guard = EXPLAIN_LOCK.lock().unwrap();
        inl_obs::set_explain_enabled(true);
        inl_obs::explain::reset();
        let (_p, variants) = cholesky_variants();
        let section = explain_section();
        inl_obs::set_explain_enabled(false);
        inl_obs::explain::reset();

        assert_eq!(
            section.lines().count(),
            24,
            "one line per order:\n{section}"
        );
        let legal: std::collections::BTreeSet<&str> =
            variants.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(legal.len(), 12);
        let names = ["K", "J", "L", "I"];
        for pm in permutations(&[0usize, 1, 2, 3]) {
            let order: String = pm.iter().map(|&i| names[i]).collect::<Vec<_>>().join("");
            let line = section
                .lines()
                .find(|l| l.starts_with(&format!("{order}  ")))
                .unwrap_or_else(|| panic!("no line for {order}:\n{section}"));
            if legal.contains(order.as_str()) {
                assert!(
                    line.starts_with(&format!("{order}  legal")),
                    "{order} should be legal: {line}"
                );
            } else {
                assert!(
                    line.starts_with(&format!("{order}  rejected")),
                    "{order} should reject: {line}"
                );
                assert!(
                    line.contains("dep "),
                    "{order} rejection must name the killing dependence: {line}"
                );
            }
        }
    }

    #[test]
    fn kernels_agree_with_interpreter() {
        let n = 24usize;
        let p = zoo::cholesky_kij();
        let m = inl_exec::run_fresh(&p, &[n as i128], &spd_init);
        let reference = m.array_by_name("A").unwrap();
        for (name, kern) in [
            ("right", kernel_cholesky_right as fn(&mut [f64], usize)),
            ("left", kernel_cholesky_left),
            ("kjli", kernel_cholesky_kjli),
        ] {
            let w = n + 1;
            let mut a = vec![0.0; w * w];
            for i in 0..w {
                for j in 0..w {
                    a[i * w + j] = spd_init("A", &[i, j]);
                }
            }
            kern(&mut a, n);
            for (x, y) in a.iter().zip(reference) {
                assert_eq!(x.to_bits(), y.to_bits(), "kernel {name} diverges");
            }
        }
    }

    #[test]
    fn matmul_kernels_agree() {
        let n = 16usize;
        let w = n + 1;
        let a: Vec<f64> = (0..w * w).map(|x| (x % 17) as f64 * 0.25).collect();
        let b: Vec<f64> = (0..w * w).map(|x| (x % 13) as f64 * 0.5).collect();
        let mut ref_c = vec![0.0; w * w];
        kernel_matmul_ijk(&mut ref_c, &a, &b, n);
        // ikj is a pure (I,J,K)->(I,K,J) interchange: per-cell accumulation
        // order over K is unchanged, so results are bitwise equal
        let mut c2 = vec![0.0; w * w];
        kernel_matmul_ikj(&mut c2, &a, &b, n);
        assert_eq!(ref_c, c2);
        let mut c3 = vec![0.0; w * w];
        kernel_matmul_jki(&mut c3, &a, &b, n);
        assert_eq!(ref_c, c3);
        // and against the interpreted zoo program
        let p = zoo::matmul();
        let m = inl_exec::run_fresh(&p, &[n as i128], &|name, idx| match name {
            "A" => a[idx[0] * w + idx[1]],
            "B" => b[idx[0] * w + idx[1]],
            _ => 0.0,
        });
        let interp_c = m.array_by_name("C").unwrap();
        for (x, y) in ref_c.iter().zip(interp_c) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn tiled_matmul_kernel_agrees_bitwise() {
        // n deliberately not a multiple of any tile size: the min-guard
        // tail tile must cover exactly the leftover K range
        let n = 50usize;
        let w = n + 1;
        let a: Vec<f64> = (0..w * w).map(|x| (x % 17) as f64 * 0.25).collect();
        let b: Vec<f64> = (0..w * w).map(|x| (x % 13) as f64 * 0.5).collect();
        let mut ref_c = vec![0.0; w * w];
        kernel_matmul_ijk(&mut ref_c, &a, &b, n);
        for t in [2usize, 16, 32, 64] {
            let mut ct = vec![0.0; w * w];
            kernel_matmul_tiled(&mut ct, &a, &b, n, t);
            for (x, y) in ref_c.iter().zip(&ct) {
                assert_eq!(x.to_bits(), y.to_bits(), "tile {t} diverges");
            }
        }
        // and against the interpreted split program (the transformation
        // the kernel hand-compiles)
        let p = zoo::matmul();
        let l = inl_core::tiling::innermost_reuse_loop(&p).expect("reuse loop");
        let r = inl_core::tiling::split(&p, l, 16).expect("split");
        let m = inl_exec::run_fresh(&r.program, &[n as i128], &|name, idx| match name {
            "A" => a[idx[0] * w + idx[1]],
            "B" => b[idx[0] * w + idx[1]],
            _ => 0.0,
        });
        let interp_c = m.array_by_name("C").unwrap();
        for (x, y) in ref_c.iter().zip(interp_c) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn wavefront_kernels_agree() {
        let n = 64usize;
        let w = n + 1;
        let init = |i: usize, j: usize| if i == 0 || j == 0 { 1.0 } else { 0.0 };
        let mut seq = vec![0.0; w * w];
        let mut par = vec![0.0; w * w];
        for i in 0..w {
            for j in 0..w {
                seq[i * w + j] = init(i, j);
                par[i * w + j] = init(i, j);
            }
        }
        kernel_wavefront_seq(&mut seq, n);
        kernel_wavefront_skewed_parallel(&mut par, n, 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn deep_nest_scales() {
        for d in [1, 3, 5] {
            let p = deep_nest(d);
            assert_eq!(p.loops().count(), d);
            assert!(p.validate().is_ok());
            let (layout, deps) = deps_of(&p);
            // each non-innermost loop contributes its position + 2 edges
            assert_eq!(layout.len(), 3 * d - 2);
            // a single level writes each cell once (no deps); deeper nests
            // conflict across levels
            assert_eq!(deps.deps.is_empty(), d == 1);
        }
    }
}
