//! `inl-obs-diff`: compare two telemetry or bench JSON files and fail on
//! regression — the CI regression gate.
//!
//! ```sh
//! cargo run -p inl-bench --bin inl-obs-diff -- \
//!     <old.json> <new.json> \
//!     [--threshold <rel>] [--floor-ns <ns>] [--strict] [--top <n>]
//! ```
//!
//! Both files must be the same kind: telemetry reports (`inl-obs.json`,
//! detected by a `counters` object) or bench documents
//! (`BENCH_exec.json`, detected by a `programs` array). Counters compare
//! exactly (except `*_ns` timing counters), timings with the relative
//! `--threshold` (default 0.5 = ±50 %) above the `--floor-ns` noise
//! floor (default 1 ms); `--strict` turns one-sided keys from warnings
//! into regressions. On failure the gate lists the `--top <n>` (default
//! 10) largest regressions by relative delta before the full table, so
//! the most damaging change leads the CI log rather than the
//! alphabetically first failing key.
//!
//! Exit status: 0 when clean, 1 on any regression, 2 on usage or parse
//! errors.

use inl_obs::diff::{diff_documents, DiffOptions};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: inl-obs-diff <old.json> <new.json> \
         [--threshold <rel>] [--floor-ns <ns>] [--strict] [--top <n>]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut paths: Vec<String> = Vec::new();
    let mut opts = DiffOptions::default();
    let mut top = 10usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--top" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) if v > 0 => top = v,
                _ => return usage(),
            },
            "--threshold" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v >= 0.0 => opts.time_rel = v,
                _ => return usage(),
            },
            "--floor-ns" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => opts.floor_ns = v,
                None => return usage(),
            },
            "--strict" => opts.strict_keys = true,
            _ if a.starts_with('-') => return usage(),
            _ => paths.push(a),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        return usage();
    };

    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let outcome = read(old_path)
        .and_then(|old| read(new_path).map(|new| (old, new)))
        .and_then(|(old, new)| diff_documents(&old, &new, &opts));
    let outcome = match outcome {
        Ok(o) => o,
        Err(e) => {
            eprintln!("inl-obs-diff: {e}");
            return ExitCode::from(2);
        }
    };

    println!(
        "inl-obs-diff {old_path} -> {new_path} (threshold {:.0}%, floor {}ns{})",
        opts.time_rel * 100.0,
        opts.floor_ns,
        if opts.strict_keys { ", strict" } else { "" }
    );
    let regressions = outcome.regressions();
    if regressions > 0 {
        let worst = outcome.top_regressions(top);
        println!(
            "top {} of {} regression(s) by relative delta:",
            worst.len(),
            regressions
        );
        for line in worst {
            println!("  {:<9}  {}  {}", line.status, line.name, line.detail);
        }
        println!();
    }
    print!("{}", outcome.to_table());
    if regressions > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
