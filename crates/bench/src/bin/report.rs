//! Regenerates the paper-vs-measured tables recorded in `EXPERIMENTS.md`.
//!
//! ```sh
//! cargo run --release -p inl-bench --bin report
//! ```

use inl_bench::{
    cholesky_variants, kernel_cholesky_kjli, kernel_cholesky_left, kernel_cholesky_right,
    kernel_wavefront_sqrt_seq, kernel_wavefront_sqrt_skewed_parallel, spd_init,
};
use inl_codegen::generate;
use inl_core::depend::analyze;
use inl_core::instance::InstanceLayout;
use inl_exec::{run_fresh, Interpreter, Machine};
use inl_ir::zoo;
use std::time::Instant;

fn time<F: FnMut()>(mut f: F, reps: usize) -> std::time::Duration {
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed() / reps as u32
}

fn main() {
    println!("# inl experiment report\n");

    // ------------------------------------------------- E3: dep matrices
    println!("## E3 — dependence matrices\n");
    for p in [zoo::simple_cholesky(), zoo::cholesky_kij()] {
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout);
        println!(
            "{} ({} positions, {} columns):\n{}",
            p.name(),
            layout.len(),
            deps.deps.len(),
            deps.display()
        );
    }

    // ------------------------------------------------- E7: variants
    println!("## E7 — legal Cholesky loop orders (interpreted, N = 100)\n");
    let (p, variants) = cholesky_variants();
    let layout = InstanceLayout::new(&p);
    let deps = analyze(&p, &layout);
    let n: i128 = 100;
    let reference = run_fresh(&p, &[n], &spd_init);
    println!("| order | time | verified |");
    println!("|-------|------|----------|");
    for (label, m) in &variants {
        let result = generate(&p, &layout, &deps, m).expect("codegen");
        let mut machine = Machine::new(&result.program, &[n], &spd_init);
        Interpreter::new(&result.program).run(&mut machine);
        let ok = reference.same_state(&machine).is_ok();
        let dt = time(
            || {
                let mut m2 = Machine::new(&result.program, &[n], &spd_init);
                Interpreter::new(&result.program).run(&mut m2);
            },
            3,
        );
        println!("| {label} | {dt:.2?} | {} |", if ok { "yes" } else { "NO" });
    }

    // ------------------------------------------------- E7: kernels
    println!("\n## E7 — compiled kernels (N = 768)\n");
    let nk = 768usize;
    let w = nk + 1;
    let mut base = vec![0.0; w * w];
    for i in 0..w {
        for j in 0..w {
            base[i * w + j] = spd_init("A", &[i, j]);
        }
    }
    println!("| kernel | time |");
    println!("|--------|------|");
    for (name, kern) in [
        ("right-looking KIJL", kernel_cholesky_right as fn(&mut [f64], usize)),
        ("right-looking KJLI", kernel_cholesky_kjli),
        ("left-looking  LKJI", kernel_cholesky_left),
    ] {
        let dt = time(
            || {
                let mut a = base.clone();
                kern(&mut a, nk);
            },
            3,
        );
        println!("| {name} | {dt:.2?} |");
    }

    // ------------------------------------------------- E8: wavefront
    println!("\n## E8 — wavefront kernels (N = 4096)\n");
    let nw = 4096usize;
    let ww = nw + 1;
    let mut wbase = vec![0.0; ww * ww];
    for i in 0..ww {
        wbase[i * ww] = 1.0;
        wbase[i] = 1.0;
    }
    let dt_seq = time(
        || {
            let mut a = wbase.clone();
            kernel_wavefront_sqrt_seq(&mut a, nw);
        },
        3,
    );
    println!("| schedule | time | speedup |");
    println!("|----------|------|---------|");
    println!("| sequential row-major | {dt_seq:.2?} | 1.00x |");
    let max_threads = std::thread::available_parallelism().map_or(2, |x| x.get());
    for threads in [1usize, max_threads] {
        let dt = time(
            || {
                let mut a = wbase.clone();
                kernel_wavefront_sqrt_skewed_parallel(&mut a, nw, threads);
            },
            3,
        );
        println!(
            "| skewed, {threads} thread(s) | {dt:.2?} | {:.2}x |",
            dt_seq.as_secs_f64() / dt.as_secs_f64()
        );
    }
}
