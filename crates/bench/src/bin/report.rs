//! Regenerates the paper-vs-measured tables recorded in `EXPERIMENTS.md`,
//! and emits the pipeline telemetry report (`inl-obs`) as a table plus JSON.
//!
//! ```sh
//! cargo run --release -p inl-bench --bin report -- \
//!     [--obs-json <path>] [--bench-json <path>] [--explain-json <path>] \
//!     [--sched-json <path>]
//! ```
//!
//! The telemetry JSON lands at `target/inl-obs.json` unless `--obs-json`
//! overrides it. The interpreter-vs-VM wall-time comparison additionally
//! lands in `BENCH_exec.json` (override with `--bench-json`) so the
//! executor's perf trajectory is tracked across PRs. The report runs with
//! the decision-provenance layer on: an `## explain` section summarizes
//! why each of the 24 Cholesky loop orders was accepted or rejected, and
//! the full record store lands at `target/inl-explain.json` (override with
//! `--explain-json`) for the `inl-explain` query tool. The `## schedule`
//! section sweeps the auto-scheduler over the zoo and writes its gated
//! counters to `BENCH_sched.json` (override with `--sched-json`).

use inl_bench::{
    cholesky_variants, compile_batch, explain_section, kernel_cholesky_kjli, kernel_cholesky_left,
    kernel_cholesky_right, kernel_matmul_ikj, kernel_matmul_tiled, kernel_wavefront_sqrt_seq,
    kernel_wavefront_sqrt_skewed_parallel, spd_init,
};
use inl_codegen::generate;
use inl_core::depend::analyze;
use inl_core::instance::InstanceLayout;
use inl_core::transform::Transform;
use inl_exec::{run_fresh, run_traced, Interpreter, Machine, ParallelExecutor, VmRunner};
use inl_ir::zoo;
use inl_obs::{Json, PipelineReport};
use std::time::{Duration, Instant};

/// Time `reps` runs of `f` under an `inl-obs` span and return the mean.
///
/// This is the report's only timing primitive: every number in the tables
/// below is also a span in the telemetry JSON, under the same name.
fn timed<F: FnMut()>(name: &str, reps: usize, mut f: F) -> Duration {
    let name: &'static str = Box::leak(name.to_string().into_boxed_str());
    for _ in 0..reps {
        let _g = inl_obs::span(name);
        f();
    }
    let snap = PipelineReport::capture();
    Duration::from_nanos(snap.spans[name].mean_ns())
}

fn flag_path(flag: &str, default: &str) -> std::path::PathBuf {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == flag {
            return args
                .next()
                .unwrap_or_else(|| panic!("{flag} needs a path"))
                .into();
        }
    }
    default.into()
}

fn main() {
    let json_path = flag_path("--obs-json", "target/inl-obs.json");
    let bench_path = flag_path("--bench-json", "BENCH_exec.json");
    let pipeline_path = flag_path("--pipeline-json", "BENCH_pipeline.json");
    let trace_path = flag_path("--trace-json", "target/inl-trace.json");
    let explain_path = flag_path("--explain-json", "target/inl-explain.json");
    let sched_path = flag_path("--sched-json", "BENCH_sched.json");
    inl_obs::set_enabled(true);
    inl_obs::set_timeline_enabled(true);
    inl_obs::set_explain_enabled(true);

    println!("# inl experiment report\n");

    // ------------------------------------------------- E3: dep matrices
    println!("## E3 — dependence matrices\n");
    for p in [zoo::simple_cholesky(), zoo::cholesky_kij()] {
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        println!(
            "{} ({} positions, {} columns):\n{}",
            p.name(),
            layout.len(),
            deps.deps.len(),
            deps.display()
        );
    }

    // ----------------------------------- explain: decision provenance
    // The 24-permutation sweep records one explain session per order;
    // render the why-legal/why-rejected summary before later phases add
    // their own sessions.
    let (p, variants) = cholesky_variants();
    println!("## explain — decision provenance (24 Cholesky orders)\n");
    print!("{}", explain_section());

    // ------------------------------------------------- E7: variants
    println!("\n## E7 — legal Cholesky loop orders (interpreter vs VM, N = 100)\n");
    inl_obs::explain::begin_session("report/e7-codegen");
    let layout = InstanceLayout::new(&p);
    let deps = analyze(&p, &layout).expect("analysis");
    let n: i128 = 100;
    let reference = run_fresh(&p, &[n], &spd_init);
    println!("| order | interp | vm | speedup | verified |");
    println!("|-------|--------|----|---------|----------|");
    for (label, m) in &variants {
        let result = generate(&p, &layout, &deps, m).expect("codegen");
        let runner = VmRunner::new(&result.program); // compile once per variant
        let mut machine = Machine::new(&result.program, &[n], &spd_init);
        Interpreter::new(&result.program).run(&mut machine);
        let mut vm_machine = Machine::new(&result.program, &[n], &spd_init);
        runner.run(&mut vm_machine);
        // verified = interpreter matches the reference AND the VM matches
        // the interpreter, bitwise
        let ok = reference.same_state(&machine).is_ok() && machine.same_state(&vm_machine).is_ok();
        let dt = timed(&format!("report.e7.variant/{label}"), 3, || {
            let mut m2 = Machine::new(&result.program, &[n], &spd_init);
            Interpreter::new(&result.program).run(&mut m2);
        });
        let dtv = timed(&format!("report.e7.vm/{label}"), 3, || {
            let mut m2 = Machine::new(&result.program, &[n], &spd_init);
            runner.run(&mut m2);
        });
        println!(
            "| {label} | {dt:.2?} | {dtv:.2?} | {:.2}x | {} |",
            dt.as_secs_f64() / dtv.as_secs_f64(),
            if ok { "yes" } else { "NO" }
        );
    }

    // ------------------------------------- pipeline compile batch driver
    // Compile the full 12-variant sweep three ways: serially with the poly
    // query cache disabled (the seed pipeline), serially with the cache
    // enabled, and across a thread pool on the warm cache. The third run
    // issuing only cache hits keeps the telemetry counters deterministic
    // despite the parallelism. Generated code must be identical in all
    // three, and the timings land in BENCH_pipeline.json for the CI diff
    // gate.
    println!("\n## pipeline compile batch — 12 Cholesky variants\n");
    inl_obs::explain::begin_session("report/pipeline-batch");
    let batch_threads = std::thread::available_parallelism().map_or(2, |x| x.get());
    inl_poly::cache::set_cache_enabled(false);
    inl_poly::cache::clear();
    let t0 = Instant::now();
    let cold = compile_batch(&p, &variants, 1);
    let serial_cold = t0.elapsed();
    inl_poly::cache::set_cache_enabled(true);
    inl_poly::cache::clear();
    let pre_warm = inl_poly::cache::stats();
    let t0 = Instant::now();
    let warm = compile_batch(&p, &variants, 1);
    let serial_warm = t0.elapsed();
    let post_warm = inl_poly::cache::stats();
    let t0 = Instant::now();
    let par = compile_batch(&p, &variants, batch_threads);
    let parallel = t0.elapsed();
    let post_par = inl_poly::cache::stats();
    let batch_bitwise = cold
        .iter()
        .zip(&warm)
        .zip(&par)
        .all(|((c, w), q)| c.pseudocode == w.pseudocode && c.pseudocode == q.pseudocode);
    let warm_hit_rate = {
        let (h, m) = (
            post_warm.hits - pre_warm.hits,
            post_warm.misses - pre_warm.misses,
        );
        h as f64 / (h + m).max(1) as f64
    };
    let par_hit_rate = {
        let (h, m) = (
            post_par.hits - post_warm.hits,
            post_par.misses - post_warm.misses,
        );
        h as f64 / (h + m).max(1) as f64
    };
    println!("| variant | serial no-cache | serial cached | speedup |");
    println!("|---------|-----------------|---------------|---------|");
    let mut pipeline_entries: Vec<Json> = Vec::new();
    for (c, w) in cold.iter().zip(&warm) {
        println!(
            "| {} | {:.2?} | {:.2?} | {:.2}x |",
            c.label,
            Duration::from_nanos(c.wall_ns),
            Duration::from_nanos(w.wall_ns),
            c.wall_ns as f64 / w.wall_ns.max(1) as f64
        );
        let mut e = Json::object();
        e.insert("name", Json::Str(c.label.clone()));
        e.insert("serial_cold_ns", Json::Int(c.wall_ns));
        e.insert("serial_warm_ns", Json::Int(w.wall_ns));
        pipeline_entries.push(e);
    }
    let batch_speedup = serial_cold.as_secs_f64() / parallel.as_secs_f64().max(1e-9);
    println!(
        "\ntotal: serial no-cache {serial_cold:.2?}, serial cached {serial_warm:.2?} \
         (hit rate {:.1}%), parallel x{batch_threads} cached {parallel:.2?} \
         (hit rate {:.1}%) — {batch_speedup:.2}x vs seed serial, generated code {}",
        warm_hit_rate * 100.0,
        par_hit_rate * 100.0,
        if batch_bitwise {
            "bitwise identical"
        } else {
            "MISMATCH"
        }
    );
    let mut total = Json::object();
    total.insert("name", Json::Str("total".to_string()));
    total.insert("serial_cold_ns", Json::Int(serial_cold.as_nanos() as u64));
    total.insert("serial_warm_ns", Json::Int(serial_warm.as_nanos() as u64));
    total.insert("parallel_ns", Json::Int(parallel.as_nanos() as u64));
    total.insert("speedup", Json::Float(batch_speedup));
    total.insert("cache_hit_rate", Json::Float(par_hit_rate));
    total.insert("bitwise_identical", Json::Bool(batch_bitwise));
    pipeline_entries.push(total);
    let mut pipeline_json = Json::object();
    pipeline_json.insert("version", Json::Int(1));
    pipeline_json.insert("sweep", Json::Str("cholesky12".to_string()));
    pipeline_json.insert("threads", Json::Int(batch_threads as u64));
    pipeline_json.insert("programs", Json::Array(pipeline_entries));
    std::fs::write(&pipeline_path, pipeline_json.to_pretty_string())
        .expect("write BENCH_pipeline.json");
    println!("pipeline batch -> {}", pipeline_path.display());

    // --------------------------------- exec backends: interpreter vs VM
    // Wall-clock comparison of the two backends per program, recorded in
    // BENCH_exec.json so the executor's perf trajectory is tracked across
    // PRs. cholesky_kij N=100 is the acceptance benchmark.
    inl_obs::explain::begin_session("report/exec-backends");
    println!("\n## exec backends — interpreter vs bytecode VM\n");
    println!("| program | interp | vm compile | vm run | speedup | bitwise |");
    println!("|---------|--------|------------|--------|---------|---------|");
    let mut bench_entries: Vec<Json> = Vec::new();
    for (name, prog, params) in [
        ("cholesky_kij", zoo::cholesky_kij(), vec![100i128]),
        ("matmul", zoo::matmul(), vec![100]),
        ("wavefront", zoo::wavefront(), vec![300]),
        ("row_prefix_sums", zoo::row_prefix_sums(), vec![300]),
    ] {
        let t0 = Instant::now();
        let runner = VmRunner::new(&prog);
        let compile_ns = t0.elapsed();
        let interp_m = run_fresh(&prog, &params, &spd_init);
        let mut vm_m = Machine::new(&prog, &params, &spd_init);
        runner.run(&mut vm_m);
        let bitwise = interp_m.same_state(&vm_m).is_ok();
        let dti = timed(&format!("report.backends.interp/{name}"), 3, || {
            let mut m2 = Machine::new(&prog, &params, &spd_init);
            Interpreter::new(&prog).run(&mut m2);
        });
        let dtv = timed(&format!("report.backends.vm/{name}"), 3, || {
            let mut m2 = Machine::new(&prog, &params, &spd_init);
            runner.run(&mut m2);
        });
        let speedup = dti.as_secs_f64() / dtv.as_secs_f64();
        println!(
            "| {name} N={} | {dti:.2?} | {compile_ns:.2?} | {dtv:.2?} | {speedup:.2}x | {} |",
            params[0],
            if bitwise { "yes" } else { "NO" }
        );
        let mut e = Json::object();
        e.insert("name", Json::Str(name.to_string()));
        e.insert(
            "params",
            Json::Array(params.iter().map(|&v| Json::Int(v as u64)).collect()),
        );
        e.insert("interp_ns", Json::Int(dti.as_nanos() as u64));
        e.insert("vm_ns", Json::Int(dtv.as_nanos() as u64));
        e.insert("vm_compile_ns", Json::Int(compile_ns.as_nanos() as u64));
        e.insert("speedup", Json::Float(speedup));
        e.insert("bitwise_identical", Json::Bool(bitwise));
        bench_entries.push(e);
    }
    // BENCH_exec.json is written after the tiling section below, which
    // contributes the strip-mined-matmul entry to `bench_entries`.

    // --------------------------------- VM opcode profile (hot opcodes)
    // Re-run the acceptance benchmark under the VM's profiling mode and
    // print where the instruction budget actually goes.
    println!("\n## VM opcode profile (cholesky_kij, N = 100)\n");
    let prof_prog = zoo::cholesky_kij();
    let prof_runner = VmRunner::new(&prof_prog);
    inl_vm::profile::reset();
    inl_vm::profile::set_enabled(true);
    {
        let mut m2 = Machine::new(&prof_prog, &[n], &spd_init);
        prof_runner.run(&mut m2);
    }
    inl_vm::profile::set_enabled(false);
    print!(
        "{}",
        inl_vm::profile::render_tables(prof_runner.compiled(), Some(&prof_prog))
    );
    let vm_profile_json = inl_vm::profile::to_json(prof_runner.compiled(), Some(&prof_prog));

    // ------------------------------------------------- E7: kernels
    println!("\n## E7 — compiled kernels (N = 768)\n");
    let nk = 768usize;
    let w = nk + 1;
    let mut base = vec![0.0; w * w];
    for i in 0..w {
        for j in 0..w {
            base[i * w + j] = spd_init("A", &[i, j]);
        }
    }
    println!("| kernel | time |");
    println!("|--------|------|");
    for (name, kern) in [
        (
            "right-looking KIJL",
            kernel_cholesky_right as fn(&mut [f64], usize),
        ),
        ("right-looking KJLI", kernel_cholesky_kjli),
        ("left-looking  LKJI", kernel_cholesky_left),
    ] {
        let dt = timed(&format!("report.e7.kernel/{}", name.trim()), 3, || {
            let mut a = base.clone();
            kern(&mut a, nk);
        });
        println!("| {name} | {dt:.2?} |");
    }

    // ------------------------------------------------- tiling
    // Strip-mined matmul: the `tile(K@T)/Ko.I.K.J` family the scheduler
    // derives by splitting the reuse-carrying K loop. Two checks:
    //
    // * the *generated* split program (the real transformation, through
    //   `inl_core::tiling`) is bitwise identical to its untiled source on
    //   both backends at a modest N;
    // * the hand-compiled tiled kernel beats the best untiled scheduled
    //   variant (`ikj`, unit-stride inner J) at an N past the cache
    //   cliff, where B no longer fits L2 but one K-slab does.
    println!("\n## tiling — strip-mined matmul, split K (schedule Ko.I.K.J)\n");
    inl_obs::explain::begin_session("report/tiling");
    let mp = zoo::matmul();
    let ml = inl_core::tiling::innermost_reuse_loop(&mp).expect("matmul carries reuse on K");
    let msplit = inl_core::tiling::split(&mp, ml, 16).expect("split");
    let nsmall: i128 = 64;
    let src = run_fresh(&mp, &[nsmall], &spd_init);
    let tiled_interp = run_fresh(&msplit.program, &[nsmall], &spd_init);
    let tiled_vm = {
        let runner = VmRunner::new(&msplit.program);
        let mut m = Machine::new(&msplit.program, &[nsmall], &spd_init);
        runner.run(&mut m);
        m
    };
    let gen_bitwise =
        src.same_state(&tiled_interp).is_ok() && tiled_interp.same_state(&tiled_vm).is_ok();
    println!(
        "generated split program (tile 16) at N = {nsmall}: interp and VM vs \
         untiled source — {}",
        if gen_bitwise {
            "bitwise identical"
        } else {
            "MISMATCH"
        }
    );
    // N=4096: B is 134 MB — past this machine's last-level cache even
    // quiet — while a T=32 K-slab (~1 MB) stays L2-resident.
    let nt = 4096usize;
    let wt = nt + 1;
    let ta: Vec<f64> = (0..wt * wt).map(|x| (x % 17) as f64 * 0.25).collect();
    let tb: Vec<f64> = (0..wt * wt).map(|x| (x % 13) as f64 * 0.5).collect();
    // min-of-reps with plain Instant (not `timed`): each run is tens of
    // seconds, far above timer noise, and keeping the result buffer lets
    // the timing runs double as the bitwise check at full size.
    let run_kernel = |f: &dyn Fn(&mut [f64]), reps: usize| -> (Duration, Vec<f64>) {
        let mut best = Duration::MAX;
        let mut out = Vec::new();
        for _ in 0..reps {
            let mut c = vec![0.0; wt * wt];
            let t0 = Instant::now();
            f(&mut c);
            best = best.min(t0.elapsed());
            out = c;
        }
        (best, out)
    };
    let (untiled_dt, untiled_c) = run_kernel(&|c| kernel_matmul_ikj(c, &ta, &tb, nt), 2);
    let (tiled32_dt, tiled32_c) = run_kernel(&|c| kernel_matmul_tiled(c, &ta, &tb, nt, 32), 2);
    let (tiled64_dt, tiled64_c) = run_kernel(&|c| kernel_matmul_tiled(c, &ta, &tb, nt, 64), 1);
    let kern_bitwise = untiled_c
        .iter()
        .zip(&tiled32_c)
        .zip(&tiled64_c)
        .all(|((x, y), z)| x.to_bits() == y.to_bits() && x.to_bits() == z.to_bits());
    let tile_speedup = untiled_dt.as_secs_f64() / tiled32_dt.as_secs_f64();
    println!("\n| kernel (N = {nt}) | time | speedup | bitwise |");
    println!("|--------|------|---------|---------|");
    println!("| untiled ikj (best untiled variant) | {untiled_dt:.2?} | 1.00x | ref |");
    println!(
        "| tile(K@32)/Ko.I.K.J | {tiled32_dt:.2?} | {tile_speedup:.2}x | {} |",
        if kern_bitwise { "yes" } else { "NO" }
    );
    println!(
        "| tile(K@64)/Ko.I.K.J | {tiled64_dt:.2?} | {:.2}x | {} |",
        untiled_dt.as_secs_f64() / tiled64_dt.as_secs_f64(),
        if kern_bitwise { "yes" } else { "NO" }
    );
    let mut te = Json::object();
    te.insert("name", Json::Str("matmul_tiled_native".to_string()));
    te.insert("params", Json::Array(vec![Json::Int(nt as u64)]));
    te.insert("untiled_ikj_ns", Json::Int(untiled_dt.as_nanos() as u64));
    te.insert("tiled_t32_ns", Json::Int(tiled32_dt.as_nanos() as u64));
    te.insert("tiled_t64_ns", Json::Int(tiled64_dt.as_nanos() as u64));
    te.insert("speedup", Json::Float(tile_speedup));
    te.insert("bitwise_identical", Json::Bool(gen_bitwise && kern_bitwise));
    bench_entries.push(te);
    let mut bench_json = Json::object();
    bench_json.insert("version", Json::Int(1));
    bench_json.insert("reps", Json::Int(3));
    bench_json.insert("programs", Json::Array(bench_entries.clone()));
    std::fs::write(&bench_path, bench_json.to_pretty_string()).expect("write BENCH_exec.json");
    println!("\nbackend comparison -> {}", bench_path.display());

    // ------------------------------------------------- E8: wavefront
    println!("\n## E8 — wavefront kernels (N = 4096)\n");
    let nw = 4096usize;
    let ww = nw + 1;
    let mut wbase = vec![0.0; ww * ww];
    for i in 0..ww {
        wbase[i * ww] = 1.0;
        wbase[i] = 1.0;
    }
    let dt_seq = timed("report.e8.kernel/sequential", 3, || {
        let mut a = wbase.clone();
        kernel_wavefront_sqrt_seq(&mut a, nw);
    });
    println!("| schedule | time | speedup |");
    println!("|----------|------|---------|");
    println!("| sequential row-major | {dt_seq:.2?} | 1.00x |");
    let max_threads = std::thread::available_parallelism().map_or(2, |x| x.get());
    for threads in [1usize, max_threads] {
        let dt = timed(&format!("report.e8.kernel/skewed-{threads}t"), 3, || {
            let mut a = wbase.clone();
            kernel_wavefront_sqrt_skewed_parallel(&mut a, nw, threads);
        });
        println!(
            "| skewed, {threads} thread(s) | {dt:.2?} | {:.2}x |",
            dt_seq.as_secs_f64() / dt.as_secs_f64()
        );
    }

    // --------------------------------- E8: framework parallel executor
    // Run the framework's own skewed wavefront through ParallelExecutor so
    // the exec.par.* telemetry reflects a real generated schedule, not just
    // the hand kernels above.
    println!("\n## E8 — generated wavefront through ParallelExecutor (N = 200)\n");
    inl_obs::explain::begin_session("report/e8-wavefront");
    let wp = zoo::wavefront();
    let wlayout = InstanceLayout::new(&wp);
    let wdeps = analyze(&wp, &wlayout).expect("analysis");
    let wloops: Vec<_> = wp.loops().collect();
    let skew = Transform::Skew {
        target: wloops[0],
        source: wloops[1],
        factor: 1,
    }
    .matrix(&wp, &wlayout);
    let mut skewed = generate(&wp, &wlayout, &wdeps, &skew).expect("codegen");
    let inner = skewed
        .program
        .loops()
        .find(|&l| {
            !skewed.program.loop_decl(l).children.is_empty()
                && skewed.program.loops_surrounding_loop(l).len() == 1
        })
        .expect("inner loop");
    skewed.program.set_loop_parallel(inner, true);
    let winit = |_: &str, idx: &[usize]| if idx[0] == 0 || idx[1] == 0 { 1.0 } else { 0.0 };
    let nwf: i128 = 200;
    let wseq = run_fresh(&wp, &[nwf], &winit);
    for threads in [2usize, max_threads.max(2)] {
        let mut par = Machine::new(&skewed.program, &[nwf], &winit);
        let dt = timed(&format!("report.e8.framework/{threads}t"), 1, || {
            ParallelExecutor::new(&skewed.program, threads).run(&mut par);
        });
        let ok = wseq.same_state(&par).is_ok();
        println!(
            "skewed + inner DOALL, {threads} threads: {dt:.2?}, {}",
            if ok { "bitwise identical" } else { "MISMATCH" }
        );
    }

    // ------------------------------------------------- auto-scheduler
    // Schedule every zoo program, measure every legal variant, and compare
    // the cost model's choice against the measured best/worst. The search
    // counters land in BENCH_sched.json for the CI diff gate; the sweep's
    // explain sessions (sched/<program>) join the record store written at
    // the end of the report. Single compile thread + fixed config so the
    // counters match the committed baseline byte-for-byte.
    println!("\n## schedule — cost-driven search over the zoo\n");
    let sched_cfg = inl_sched::SchedConfig {
        threads: 1,
        ..inl_sched::SchedConfig::default()
    };
    let sweep = inl_sched::sweep::sweep_zoo(&sched_cfg).expect("schedule sweep");
    print!("{}", inl_sched::sweep::render_table(&sweep));
    let (mut in_tier, mut agree_sum) = (0usize, 0u64);
    let (mut visited_sum, mut exhaustive_sum) = (0u64, 0u64);
    let mut worst_spread = (0u64, "");
    for e in &sweep {
        in_tier += e.within_tier as usize;
        agree_sum += e.rank_agreement_pct();
        visited_sum += e.stats.nodes_visited;
        exhaustive_sum += e.stats.nodes_exhaustive;
        // chosen-vs-worst: how much the search saved over the worst legal
        // order, tracked on the program with the widest spread
        let spread = (e.worst_ns * 100).checked_div(e.chosen_ns).unwrap_or(0);
        if spread > worst_spread.0 {
            worst_spread = (spread, &e.name);
        }
    }
    println!(
        "\nvisited {visited_sum}/{exhaustive_sum} tree nodes over {} programs \
         ({} within the measured-best tier), mean cost-vs-measured rank agreement \
         {}%, widest chosen-vs-worst spread {}% ({})",
        sweep.len(),
        in_tier,
        agree_sum / sweep.len() as u64,
        worst_spread.0,
        worst_spread.1
    );
    let sweep_json = inl_sched::sweep::bench_json(&sweep, &sched_cfg);
    std::fs::write(&sched_path, sweep_json.to_pretty_string()).expect("write BENCH_sched.json");
    println!("schedule sweep -> {}", sched_path.display());

    // ------------------------------------------------- trace summary
    let (_, trace) = run_traced(&p, &[20], &spd_init);
    let trace_summary = trace.summary(&p);

    // ------------------------------------------------- overhead
    // Enabled-vs-disabled instrumentation cost on the interpreted Cholesky
    // run, with BOTH layers (aggregate telemetry + timeline) toggled
    // together. Uses plain `Instant` because half the measurement runs
    // with the telemetry layer off.
    let reps = 7usize;
    let one_run = |prog: &inl_ir::Program| {
        let t0 = Instant::now();
        let mut m2 = Machine::new(prog, &[n], &spd_init);
        Interpreter::new(prog).run(&mut m2);
        t0.elapsed()
    };
    one_run(&p); // warmup
                 // Alternate modes per rep and keep the per-mode minimum: back-to-back
                 // block timings confound instrumentation cost with drift (frequency
                 // scaling, cache state); the min over interleaved reps does not.
    let (mut on, mut off) = (Duration::MAX, Duration::MAX);
    for _ in 0..reps {
        inl_obs::set_enabled(true);
        inl_obs::set_timeline_enabled(true);
        inl_obs::set_explain_enabled(true);
        on = on.min(one_run(&p));
        inl_obs::set_enabled(false);
        inl_obs::set_timeline_enabled(false);
        inl_obs::set_explain_enabled(false);
        off = off.min(one_run(&p));
    }
    inl_obs::set_enabled(true);
    inl_obs::set_timeline_enabled(true);
    inl_obs::set_explain_enabled(true);
    let overhead_pct = (on.as_secs_f64() / off.as_secs_f64() - 1.0) * 100.0;
    println!("\n## instrumentation overhead (interpreted Cholesky, N = {n}, {reps} reps)\n");
    println!("enabled {on:.2?}, disabled {off:.2?}: {overhead_pct:+.2}%");

    // ------------------------------------------------- telemetry report
    let mut report = PipelineReport::capture();
    report.attach("trace", trace_summary.to_json());
    let mut oh = Json::object();
    oh.insert(
        "benchmark",
        Json::Str(format!("interpreted cholesky N={n}")),
    );
    oh.insert("reps", Json::Int(reps as u64));
    oh.insert("enabled_ns", Json::Int(on.as_nanos() as u64));
    oh.insert("disabled_ns", Json::Int(off.as_nanos() as u64));
    oh.insert("overhead_pct", Json::Float(overhead_pct));
    report.attach("overhead", oh);
    let mut vmj = Json::object();
    vmj.insert("programs", Json::Array(bench_entries));
    report.attach("vm", vmj);
    report.attach("vm_profile", vm_profile_json);
    // Poly query-cache stats, cumulative over the whole report run. The
    // keys render name-ordered (Json objects are BTreeMaps), matching the
    // report's deterministic-output convention; evictions/entries let the
    // diff gate watch for unbounded growth.
    let cs = inl_poly::cache::stats();
    let pc = inl_poly::cache::stats_json();
    println!("\n## poly query cache\n");
    println!(
        "hits {}, misses {}, insertions {}, evictions {}, resident entries {} (hit rate {:.1}%)",
        cs.hits,
        cs.misses,
        cs.insertions,
        cs.evictions,
        cs.entries,
        cs.hit_rate() * 100.0
    );
    report.attach("poly_cache", pc);

    println!("\n## pipeline telemetry\n");
    println!("{}", report.to_table());
    report.write_json(&json_path).expect("write telemetry JSON");
    println!(
        "telemetry: {} counters, {} histograms, {} spans -> {}",
        report.counters.len(),
        report.histograms.len(),
        report.spans.len(),
        json_path.display()
    );

    // ------------------------------------------------- explain artifact
    inl_obs::explain::write_json(&explain_path).expect("write explain JSON");
    println!(
        "explain provenance: {} record(s), {} session(s), {} dropped -> {}",
        inl_obs::explain::len(),
        inl_obs::explain::sessions().len(),
        inl_obs::explain::dropped_total(),
        explain_path.display()
    );

    // ------------------------------------------------- timeline trace
    inl_obs::timeline::write_chrome_trace(&trace_path).expect("write trace JSON");
    println!(
        "timeline trace ({} dropped events) -> {} (open in Perfetto / chrome://tracing)",
        inl_obs::timeline::dropped_total(),
        trace_path.display()
    );
}
