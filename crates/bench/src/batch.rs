//! Parallel compile-side batch driver: run the full analysis + codegen
//! pipeline over many transformation variants across a thread pool.
//!
//! Each job is self-contained — layout, dependence analysis, legality,
//! code generation — so the driver parallelizes trivially; the poly query
//! cache (`inl_poly::cache`) is what makes the repeated sub-systems cheap
//! across jobs. Workers pull jobs from a shared atomic index (the same
//! work-stealing-free queue idiom as `inl_exec::ParallelExecutor`) and
//! every job records a `batch.compile` timeline slice tagged with its
//! variant index, so a Chrome trace shows the per-variant schedule across
//! worker threads.

use inl_codegen::generate;
use inl_core::depend::analyze;
use inl_core::instance::InstanceLayout;
use inl_ir::Program;
use inl_linalg::IMat;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One compiled variant out of [`compile_batch`].
#[derive(Clone, Debug)]
pub struct CompiledVariant {
    /// The variant's label (e.g. its loop order, `"KJLI"`).
    pub label: String,
    /// Pseudocode of the generated program — the batch drivers compare
    /// this text across runs to assert bitwise-identical output.
    pub pseudocode: String,
    /// Wall time of this job alone (analysis through codegen).
    pub wall_ns: u64,
}

/// Compile every `(label, matrix)` variant of `p` on `threads` worker
/// threads (`0` = one per available core). Results come back in variant
/// order regardless of which worker ran which job. Panics if any variant
/// fails to generate — callers pass matrices already proven legal.
pub fn compile_batch(
    p: &Program,
    variants: &[(String, IMat)],
    threads: usize,
) -> Vec<CompiledVariant> {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    };
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<CompiledVariant>>> =
        variants.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(variants.len().max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= variants.len() {
                    break;
                }
                let (label, m) = &variants[i];
                let _slice =
                    inl_obs::timeline::scope_args("batch.compile", &[("variant", i as i64)]);
                let _span = inl_obs::span("batch.compile");
                let t0 = Instant::now();
                let layout = InstanceLayout::new(p);
                let deps =
                    analyze(p, &layout).unwrap_or_else(|e| panic!("batch analyze of {label}: {e}"));
                let result = generate(p, &layout, &deps, m)
                    .unwrap_or_else(|e| panic!("batch compile of {label}: {e:?}"));
                let wall_ns = t0.elapsed().as_nanos() as u64;
                *results[i].lock().unwrap() = Some(CompiledVariant {
                    label: label.clone(),
                    pseudocode: result.program.to_pseudocode(),
                    wall_ns,
                });
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("batch job completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky_variants;

    #[test]
    fn parallel_batch_matches_serial() {
        let (p, variants) = cholesky_variants();
        let serial = compile_batch(&p, &variants, 1);
        let parallel = compile_batch(&p, &variants, 4);
        assert_eq!(serial.len(), variants.len());
        for (s, q) in serial.iter().zip(&parallel) {
            assert_eq!(s.label, q.label);
            assert_eq!(
                s.pseudocode, q.pseudocode,
                "variant {} generated different code in parallel",
                s.label
            );
        }
    }
}
