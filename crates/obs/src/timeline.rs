//! Timeline tracing: timestamped events in bounded per-thread ring
//! buffers, exported as Chrome trace-event JSON (open the file in
//! Perfetto or `chrome://tracing`).
//!
//! # Design
//!
//! * **Hot path is lock-free.** Each thread records into its own ring via
//!   a thread-local — no atomics, no locks, no allocation past the ring's
//!   capacity. While the layer is disabled every probe is one relaxed
//!   atomic load (the flag byte shared with the aggregate layer).
//! * **Bounded.** A ring holds at most [`capacity`] events (default
//!   16384, `INL_TRACE_CAP` or [`set_capacity`] override). On overflow
//!   the *oldest* event is dropped and counted — recording never blocks,
//!   never reallocates, never panics.
//! * **Rings retire on thread exit.** When a thread finishes (e.g. the
//!   parallel executor's scoped workers), its ring moves into a global
//!   retired list, and its timeline id returns to a pool so short-lived
//!   workers reuse display rows instead of growing the trace unboundedly.
//!   [`export_chrome_trace`] sees every retired ring plus the calling thread's live
//!   ring; live events on *other* still-running threads are not visible
//!   until those threads exit. The retired list itself is bounded
//!   ([`RETAIN_EVENT_BUDGET`]); beyond it whole oldest rings are dropped
//!   and counted.
//!
//! Durations are recorded as Chrome "complete" events (`ph: "X"` — one
//! ring slot per slice, immune to begin/end unpairing under overflow);
//! point-in-time marks are "instant" events (`ph: "i"`). Pipeline stages
//! record instants (`stage.dependence`, `stage.legality`,
//! `stage.completion`, `stage.codegen`, `stage.vm-compile`), spans record
//! slices automatically, and the parallel executor records one
//! `exec.par.wavefront` slice per wavefront plus an `exec.par.chunk`
//! slice per worker chunk.

use crate::json::Json;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Default per-thread ring capacity (events).
pub const DEFAULT_CAPACITY: usize = 16_384;

/// Total events kept across retired rings before whole oldest rings are
/// dropped (bounds memory across many short-lived worker threads).
pub const RETAIN_EVENT_BUDGET: usize = 1 << 20;

/// Maximum args attached to one event.
pub const MAX_ARGS: usize = 2;

/// Chrome trace-event phase of a recorded event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// A duration slice (`ph: "X"`, start timestamp + duration).
    Complete,
    /// A point-in-time mark (`ph: "i"`, thread scope).
    Instant,
}

/// One recorded timeline event. Names and arg keys are `&'static str` so
/// the recording hot path never allocates.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Event name (shown as the slice label in trace viewers).
    pub name: &'static str,
    /// Chrome trace-event phase of this record.
    pub phase: Phase,
    /// Nanoseconds since the process epoch (first timeline use).
    pub ts_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Up to [`MAX_ARGS`] integer arguments (e.g. a chunk's bounds).
    pub args: [Option<(&'static str, i64)>; MAX_ARGS],
}

/// The monotonic zero point all event timestamps are relative to
/// (initialized by the first instrument or flag access in the process).
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn instant_ns(at: Instant) -> u64 {
    at.checked_duration_since(epoch())
        .map_or(0, |d| d.as_nanos() as u64)
}

// ------------------------------------------------------------------ rings

/// One thread's bounded event buffer.
#[derive(Clone, Debug)]
struct Ring {
    tid: u32,
    thread_name: String,
    events: VecDeque<Event>,
    cap: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, ev: Event) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }
}

#[derive(Default)]
struct Retired {
    rings: VecDeque<Ring>,
    /// Total events currently held across `rings`.
    held: usize,
    /// Events lost to ring overflow or retired-ring eviction, beyond what
    /// surviving rings still report themselves.
    evicted: u64,
    /// Timeline ids of exited threads, free for reuse.
    free_tids: Vec<u32>,
}

fn retired() -> MutexGuard<'static, Retired> {
    static RETIRED: OnceLock<Mutex<Retired>> = OnceLock::new();
    RETIRED
        .get_or_init(|| Mutex::new(Retired::default()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn capacity_cell() -> &'static AtomicUsize {
    static CAP: OnceLock<AtomicUsize> = OnceLock::new();
    CAP.get_or_init(|| AtomicUsize::new(crate::env_usize("INL_TRACE_CAP", DEFAULT_CAPACITY)))
}

/// Per-thread ring capacity currently applied to *newly created* rings.
pub fn capacity() -> usize {
    capacity_cell().load(Ordering::Relaxed)
}

/// Override the ring capacity for rings created after this call
/// (existing rings keep their size). Zero is clamped to 1.
pub fn set_capacity(cap: usize) {
    capacity_cell().store(cap.max(1), Ordering::Relaxed);
}

fn next_tid() -> u32 {
    if let Some(tid) = retired().free_tids.pop() {
        return tid;
    }
    static NEXT: AtomicU32 = AtomicU32::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Thread-local ring wrapper whose drop (at thread exit) retires the ring
/// into the global list.
struct LocalRing(Option<Ring>);

impl Drop for LocalRing {
    fn drop(&mut self) {
        if let Some(ring) = self.0.take() {
            retire(ring);
        }
    }
}

fn retire(ring: Ring) {
    let mut r = retired();
    r.free_tids.push(ring.tid);
    if !ring.events.is_empty() {
        r.held += ring.events.len();
        r.rings.push_back(ring);
        while r.held > RETAIN_EVENT_BUDGET {
            let Some(old) = r.rings.pop_front() else {
                break;
            };
            r.held -= old.events.len();
            r.evicted += old.dropped + old.events.len() as u64;
        }
    } else {
        r.evicted += ring.dropped;
    }
}

thread_local! {
    static RING: RefCell<LocalRing> = const { RefCell::new(LocalRing(None)) };
}

fn record(ev: Event) {
    RING.with(|cell| {
        let mut local = cell.borrow_mut();
        let ring = local.0.get_or_insert_with(|| {
            let tid = next_tid();
            let thread_name = std::thread::current()
                .name()
                .map(str::to_owned)
                .unwrap_or_else(|| format!("worker-{tid}"));
            let cap = capacity();
            Ring {
                tid,
                thread_name,
                events: VecDeque::with_capacity(cap.min(1024)),
                cap,
                dropped: 0,
            }
        });
        ring.push(ev);
    });
}

// ------------------------------------------------------------- public API

const NO_ARGS: [Option<(&'static str, i64)>; MAX_ARGS] = [None, None];

fn pack_args(args: &[(&'static str, i64)]) -> [Option<(&'static str, i64)>; MAX_ARGS] {
    let mut packed = NO_ARGS;
    for (slot, &arg) in packed.iter_mut().zip(args) {
        *slot = Some(arg);
    }
    packed
}

/// Record an instant event (a point-in-time mark on the current thread's
/// track). No-op while the timeline is disabled.
#[inline]
pub fn instant(name: &'static str) {
    if crate::timeline_enabled() {
        record(Event {
            name,
            phase: Phase::Instant,
            ts_ns: now_ns(),
            dur_ns: 0,
            args: NO_ARGS,
        });
    }
}

/// [`instant`] with up to [`MAX_ARGS`] integer arguments (extra args are
/// silently ignored).
#[inline]
pub fn instant_args(name: &'static str, args: &[(&'static str, i64)]) {
    if crate::timeline_enabled() {
        record(Event {
            name,
            phase: Phase::Instant,
            ts_ns: now_ns(),
            dur_ns: 0,
            args: pack_args(args),
        });
    }
}

/// RAII guard recording a complete (duration) event for its scope.
#[must_use = "a timeline scope measures the region it is bound to"]
pub struct ScopeGuard {
    start: Option<Instant>,
    name: &'static str,
    args: [Option<(&'static str, i64)>; MAX_ARGS],
}

/// Open a timeline slice covering the guard's lifetime. No-op (no
/// timestamp taken) while the timeline is disabled.
#[inline]
pub fn scope(name: &'static str) -> ScopeGuard {
    scope_args(name, &[])
}

/// [`scope`] with up to [`MAX_ARGS`] integer arguments.
#[inline]
pub fn scope_args(name: &'static str, args: &[(&'static str, i64)]) -> ScopeGuard {
    if !crate::timeline_enabled() {
        return ScopeGuard {
            start: None,
            name,
            args: NO_ARGS,
        };
    }
    ScopeGuard {
        start: Some(Instant::now()),
        name,
        args: pack_args(args),
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let dur_ns = start.elapsed().as_nanos() as u64;
            record(Event {
                name: self.name,
                phase: Phase::Complete,
                ts_ns: instant_ns(start),
                dur_ns,
                args: self.args,
            });
        }
    }
}

/// Record a complete event from an already-measured interval (used by
/// [`crate::SpanGuard`] so spans double as timeline slices).
pub(crate) fn complete_from(name: &'static str, start: Instant, dur_ns: u64) {
    record(Event {
        name,
        phase: Phase::Complete,
        ts_ns: instant_ns(start),
        dur_ns,
        args: NO_ARGS,
    });
}

/// Drop every recorded event: retired rings, the calling thread's live
/// ring, and the eviction tally. Rings on other live threads are cleared
/// when those threads exit their next event is recorded into a fresh ring
/// — for deterministic tests, reset from the only recording thread.
pub fn reset() {
    {
        let mut r = retired();
        r.rings.clear();
        r.held = 0;
        r.evicted = 0;
    }
    RING.with(|cell| {
        if let Some(ring) = cell.borrow_mut().0.as_mut() {
            ring.events.clear();
            ring.dropped = 0;
        }
    });
}

/// Total events dropped so far (ring overflow on retired rings and the
/// current thread, plus whole-ring evictions from the retired list).
pub fn dropped_total() -> u64 {
    let mut total = {
        let r = retired();
        r.evicted + r.rings.iter().map(|ring| ring.dropped).sum::<u64>()
    };
    RING.with(|cell| {
        if let Some(ring) = cell.borrow().0.as_ref() {
            total += ring.dropped;
        }
    });
    total
}

// ---------------------------------------------------------------- export

fn snapshot() -> (Vec<Ring>, u64) {
    let (mut rings, evicted) = {
        let r = retired();
        (r.rings.iter().cloned().collect::<Vec<_>>(), r.evicted)
    };
    RING.with(|cell| {
        if let Some(ring) = cell.borrow().0.as_ref() {
            if !ring.events.is_empty() {
                rings.push(ring.clone());
            }
        }
    });
    rings.sort_by_key(|r| r.tid);
    (rings, evicted)
}

fn event_json(ev: &Event, tid: u32) -> Json {
    let mut obj = Json::object();
    obj.insert("name", Json::Str(ev.name.to_string()));
    obj.insert("cat", Json::Str("inl".into()));
    obj.insert("pid", Json::Int(1));
    obj.insert("tid", Json::Int(tid as u64));
    // Chrome trace timestamps are microseconds; keep sub-µs precision.
    obj.insert("ts", Json::Float(ev.ts_ns as f64 / 1000.0));
    match ev.phase {
        Phase::Complete => {
            obj.insert("ph", Json::Str("X".into()));
            obj.insert("dur", Json::Float(ev.dur_ns as f64 / 1000.0));
        }
        Phase::Instant => {
            obj.insert("ph", Json::Str("i".into()));
            obj.insert("s", Json::Str("t".into()));
        }
    }
    if ev.args.iter().any(Option::is_some) {
        let mut args = Json::object();
        for (key, value) in ev.args.iter().flatten() {
            let v = *value;
            if v >= 0 {
                args.insert(*key, Json::Int(v as u64));
            } else {
                args.insert(*key, Json::Float(v as f64));
            }
        }
        obj.insert("args", args);
    }
    obj
}

/// Export everything visible from the calling thread as a Chrome
/// trace-event JSON object (`traceEvents` array plus thread-name metadata
/// and drop statistics in `otherData`). Non-destructive: successive
/// exports see accumulated events; use [`reset`] to start over.
pub fn export_chrome_trace() -> Json {
    let (rings, evicted) = snapshot();
    let mut events = Vec::new();
    let mut total_dropped = evicted;
    let mut named: Vec<u32> = Vec::new();
    for ring in &rings {
        total_dropped += ring.dropped;
        // Rings of reused tids share a display row; name it once.
        if !named.contains(&ring.tid) {
            named.push(ring.tid);
            let mut meta = Json::object();
            meta.insert("name", Json::Str("thread_name".into()));
            meta.insert("ph", Json::Str("M".into()));
            meta.insert("pid", Json::Int(1));
            meta.insert("tid", Json::Int(ring.tid as u64));
            let mut args = Json::object();
            args.insert("name", Json::Str(ring.thread_name.clone()));
            meta.insert("args", args);
            events.push(meta);
        }
        for ev in &ring.events {
            events.push(event_json(ev, ring.tid));
        }
    }
    let mut root = Json::object();
    root.insert("traceEvents", Json::Array(events));
    root.insert("displayTimeUnit", Json::Str("ms".into()));
    let mut other = Json::object();
    other.insert("dropped_events", Json::Int(total_dropped));
    other.insert("rings", Json::Int(rings.len() as u64));
    root.insert("otherData", other);
    root
}

/// Write the Chrome trace JSON to `path`, creating parent directories.
pub fn write_chrome_trace(path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, export_chrome_trace().to_pretty_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Timeline unit tests share the process-global flag byte and rings
    // with the rest of the crate's tests; serialize on the same lock.
    fn begin() -> std::sync::MutexGuard<'static, ()> {
        let g = crate::tests::TEST_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        crate::set_timeline_enabled(true);
        reset();
        g
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = crate::tests::TEST_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        crate::set_timeline_enabled(false);
        reset();
        instant("tl.test.off");
        let _s = scope("tl.test.off.scope");
        drop(_s);
        let trace = export_chrome_trace();
        let Some(Json::Array(events)) = trace.get("traceEvents") else {
            panic!("missing traceEvents")
        };
        assert!(events.is_empty(), "disabled timeline recorded events");
    }

    #[test]
    fn scopes_and_instants_export_as_chrome_events() {
        let _g = begin();
        {
            let _s = scope_args("tl.test.slice", &[("lo", 3), ("hi", 9)]);
            instant("tl.test.mark");
        }
        let trace = export_chrome_trace();
        let Some(Json::Array(events)) = trace.get("traceEvents") else {
            panic!("missing traceEvents")
        };
        let phs: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(Json::as_str))
            .collect();
        assert!(phs.contains(&"M"), "thread metadata missing: {phs:?}");
        assert!(phs.contains(&"X"), "complete event missing: {phs:?}");
        assert!(phs.contains(&"i"), "instant event missing: {phs:?}");
        let slice = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("tl.test.slice"))
            .expect("slice exported");
        assert!(matches!(slice.get("ts"), Some(Json::Float(_))));
        assert!(matches!(slice.get("dur"), Some(Json::Float(_))));
        assert_eq!(
            slice
                .get("args")
                .and_then(|a| a.get("lo"))
                .and_then(Json::as_u64),
            Some(3)
        );
        crate::set_timeline_enabled(false);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let _g = begin();
        let old_cap = capacity();
        set_capacity(8);
        // Force a fresh ring at the new capacity on a scoped thread.
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..30 {
                    instant("tl.test.flood");
                }
            });
        });
        set_capacity(old_cap);
        assert_eq!(dropped_total(), 30 - 8);
        let trace = export_chrome_trace();
        assert_eq!(
            trace
                .get("otherData")
                .and_then(|o| o.get("dropped_events"))
                .and_then(Json::as_u64),
            Some(30 - 8)
        );
        let Some(Json::Array(events)) = trace.get("traceEvents") else {
            panic!("missing traceEvents")
        };
        let flood = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("tl.test.flood"))
            .count();
        assert_eq!(flood, 8, "ring must retain exactly its capacity");
        crate::set_timeline_enabled(false);
    }

    #[test]
    fn worker_rings_retire_with_distinct_tids() {
        let _g = begin();
        // Both workers record *before* either exits (tids are pooled on
        // thread exit, so a fully-sequential pair could share one).
        //
        // Retried: ring retirement runs at *thread exit*, outside
        // TEST_LOCK, so a harness thread from an already-finished test
        // can retire a stale ring mid-attempt and evict one of ours
        // from the bounded retired list.
        let mut tids: Vec<u64> = Vec::new();
        for _ in 0..3 {
            reset();
            instant("tl.test.main");
            let barrier = std::sync::Barrier::new(2);
            std::thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| {
                        {
                            let _sl = scope("tl.test.worker");
                            std::hint::black_box(0);
                        }
                        barrier.wait();
                    });
                }
            });
            let trace = export_chrome_trace();
            let Some(Json::Array(events)) = trace.get("traceEvents") else {
                panic!("missing traceEvents")
            };
            tids = events
                .iter()
                .filter(|e| e.get("ph").and_then(Json::as_str) != Some("M"))
                .filter_map(|e| e.get("tid").and_then(Json::as_u64))
                .collect();
            tids.sort_unstable();
            tids.dedup();
            if tids.len() >= 3 {
                break;
            }
        }
        assert!(tids.len() >= 3, "main + 2 workers expected: {tids:?}");
        crate::set_timeline_enabled(false);
    }
}
