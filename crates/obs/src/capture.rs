//! Request-scoped telemetry capture: a thread-local delta of counters,
//! span durations, and explain verdicts attributable to **one logical
//! operation** (one compile-service request, one batch item), on top of
//! the process-global sinks.
//!
//! The global registry answers "how much work has this *process* done";
//! a [`Capture`] answers "how much work did *this request* cost" — the
//! per-request cost record the compile service streams back to clients
//! and the auto-scheduler will consume as its calibrated signal.
//!
//! # Design
//!
//! * **Thread-local.** A capture collects the instruments fired *on the
//!   capturing thread* between [`with`]'s entry and exit. The compile
//!   service handles one request per worker thread, so this attributes
//!   exactly the request's own pipeline work; instruments fired on other
//!   threads (e.g. parallel-executor workers) stay global-only.
//! * **Disabled stays one relaxed load.** Capture shares the process
//!   flag byte with the other layers (`FLAG_OBS` & friends):
//!   while no capture is active anywhere, every instrument still checks
//!   a single relaxed atomic and is otherwise untouched. While at least
//!   one capture runs, counter bumps and span exits additionally consult
//!   one thread-local cell (a `None` check on non-capturing threads).
//! * **Independent of the global layer.** A capture records even while
//!   aggregate telemetry ([`crate::enabled`]) is off — the capture bit
//!   alone arms the instruments — and the global registry is only
//!   written when the obs bit is also up, so enabling per-request
//!   telemetry does not silently turn on process-global collection.
//! * **Nesting suspends.** A capture opened inside another capture
//!   records alone; the outer capture resumes (and misses the inner
//!   scope's work) when the inner one finishes. The compile service
//!   never nests captures; the rule exists so reentrancy is defined.
//!
//! # Determinism
//!
//! A capture mixes deterministic evidence (which pipeline stages ran and
//! how often, semantic counter deltas) with machine- and state-dependent
//! measurements (nanosecond durations, poly-cache hit/miss splits that
//! depend on what earlier requests warmed). [`deterministic_projection`]
//! extracts the former — it strips every `*_ns` value and every
//! `poly.`-prefixed name — so two captures of the same request in
//! different processes can be compared **bitwise** on their canonical
//! JSON. `inl-load --telemetry` and the serve integration tests do
//! exactly that.

use crate::json::Json;
use crate::{flags_cell, FLAG_CAPTURE};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::Mutex;

/// Schema version of [`Capture::to_json`] (the wire `telemetry` section).
pub const SCHEMA_VERSION: u64 = 1;

/// Aggregate for one span path inside a capture window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageStat {
    /// Number of times the span closed during the capture.
    pub count: u64,
    /// Total wall time across those closes, in nanoseconds.
    pub total_ns: u64,
    /// Shortest single duration in nanoseconds.
    pub min_ns: u64,
    /// Longest single duration in nanoseconds.
    pub max_ns: u64,
}

/// Explain-record tallies inside a capture window (populated only while
/// the explain layer is enabled — see [`crate::explain_enabled`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExplainSummary {
    /// `accept` records committed during the capture.
    pub accepts: u64,
    /// `reject` records committed during the capture.
    pub rejects: u64,
    /// `info` records committed during the capture.
    pub notes: u64,
}

/// Everything one capture window collected. Maps are `BTreeMap`s so the
/// JSON rendering is canonical (sorted keys) and byte-comparable.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Capture {
    /// Counter deltas by name, for counters bumped on this thread during
    /// the window (zero-delta counters never appear).
    pub counters: BTreeMap<&'static str, u64>,
    /// Span statistics by nesting path (`outer/inner`), for spans closed
    /// on this thread during the window. Paths are **relative to the
    /// capture**: spans already open when the capture began (e.g. the
    /// server's `serve.request` envelope) do not prefix them, so the
    /// same request captured under different envelopes yields the same
    /// stage paths.
    pub stages: BTreeMap<String, StageStat>,
    /// Explain verdict tallies (all zero while the explain layer is off).
    pub explain: ExplainSummary,
    /// Span-stack depth on this thread when the capture began; enclosing
    /// path segments up to this depth are stripped from `stages` keys.
    base_depth: usize,
}

impl Capture {
    /// Render as the versioned `telemetry` JSON section:
    ///
    /// ```json
    /// {
    ///   "version": 1,
    ///   "stages":  { "serve.compile": { "count": 1, "total_ns": 812345,
    ///                                   "min_ns": 812345, "max_ns": 812345 } },
    ///   "counters": { "exec.instances": 385, "poly.cache.hit": 12 },
    ///   "poly_cache": { "hits": 12, "misses": 0, "insertions": 0, "evictions": 0 },
    ///   "explain":  { "accepts": 0, "rejects": 0, "notes": 0 }
    /// }
    /// ```
    ///
    /// `poly_cache` is derived from the `poly.cache.*` counter deltas for
    /// convenience (the keys mirror `inl_poly::cache::CacheStats`).
    pub fn to_json(&self) -> Json {
        let mut root = Json::object();
        root.insert("version", Json::Int(SCHEMA_VERSION));

        let mut stages = Json::object();
        for (path, s) in &self.stages {
            let mut obj = Json::object();
            obj.insert("count", Json::Int(s.count));
            obj.insert("total_ns", Json::Int(s.total_ns));
            obj.insert("min_ns", Json::Int(s.min_ns));
            obj.insert("max_ns", Json::Int(s.max_ns));
            stages.insert(path.clone(), obj);
        }
        root.insert("stages", stages);

        let mut counters = Json::object();
        for (&name, &v) in &self.counters {
            counters.insert(name, Json::Int(v));
        }
        root.insert("counters", counters);

        let delta = |name: &str| self.counters.get(name).copied().unwrap_or(0);
        let mut cache = Json::object();
        cache.insert("hits", Json::Int(delta("poly.cache.hit")));
        cache.insert("misses", Json::Int(delta("poly.cache.miss")));
        cache.insert("insertions", Json::Int(delta("poly.cache.insertions")));
        cache.insert("evictions", Json::Int(delta("poly.cache.evictions")));
        root.insert("poly_cache", cache);

        let mut explain = Json::object();
        explain.insert("accepts", Json::Int(self.explain.accepts));
        explain.insert("rejects", Json::Int(self.explain.rejects));
        explain.insert("notes", Json::Int(self.explain.notes));
        root.insert("explain", explain);
        root
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Capture>> = const { RefCell::new(None) };
}

/// Count of live captures process-wide; guards the [`FLAG_CAPTURE`] bit
/// transitions so the bit is up exactly while any capture is active.
fn active_count() -> &'static Mutex<usize> {
    static COUNT: Mutex<usize> = Mutex::new(0);
    &COUNT
}

fn raise_capture_flag() {
    let mut n = active_count().lock().unwrap_or_else(|e| e.into_inner());
    *n += 1;
    if *n == 1 {
        flags_cell().fetch_or(FLAG_CAPTURE, Ordering::Relaxed);
    }
}

fn lower_capture_flag() {
    let mut n = active_count().lock().unwrap_or_else(|e| e.into_inner());
    *n = n.saturating_sub(1);
    if *n == 0 {
        flags_cell().fetch_and(!FLAG_CAPTURE, Ordering::Relaxed);
    }
}

/// Restores the previous thread-local capture and lowers the process
/// flag even if the captured closure unwinds.
struct Scope {
    prev: Option<Capture>,
    done: bool,
}

impl Drop for Scope {
    fn drop(&mut self) {
        if !self.done {
            // Unwound: discard the partial capture, restore the outer one.
            CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
            lower_capture_flag();
        }
    }
}

/// Run `f` under a fresh capture on this thread; return its result and
/// everything the thread's instruments recorded while it ran.
///
/// ```
/// let (sum, capture) = inl_obs::capture::with(|| {
///     inl_obs::counter_add!("doc.capture.widgets", 3);
///     1 + 2
/// });
/// assert_eq!(sum, 3);
/// assert_eq!(capture.counters.get("doc.capture.widgets"), Some(&3));
/// ```
pub fn with<T>(f: impl FnOnce() -> T) -> (T, Capture) {
    let fresh = Capture {
        base_depth: crate::span_stack_depth(),
        ..Capture::default()
    };
    let prev = CURRENT.with(|c| c.borrow_mut().replace(fresh));
    raise_capture_flag();
    let mut scope = Scope { prev, done: false };
    let out = f();
    scope.done = true;
    let capture = CURRENT.with(|c| {
        let mut cell = c.borrow_mut();
        let capture = cell.take().unwrap_or_default();
        *cell = scope.prev.take();
        capture
    });
    lower_capture_flag();
    (out, capture)
}

/// True iff a capture is active **on this thread**.
pub fn active() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Record a counter bump into this thread's capture, if one is active.
/// Called from [`crate::counter_add!`]; harmless to call directly.
#[inline]
pub fn record_counter(name: &'static str, n: u64) {
    CURRENT.with(|c| {
        if let Some(cap) = c.borrow_mut().as_mut() {
            *cap.counters.entry(name).or_insert(0) += n;
        }
    });
}

/// Record a span close into this thread's capture, if one is active.
/// The leading `base_depth` segments (spans that were already open when
/// the capture began) are stripped; a span fully outside the capture's
/// own nesting is ignored.
#[inline]
pub(crate) fn record_span(path: &str, ns: u64) {
    CURRENT.with(|c| {
        if let Some(cap) = c.borrow_mut().as_mut() {
            let mut rel = path;
            for _ in 0..cap.base_depth {
                match rel.split_once('/') {
                    Some((_, rest)) => rel = rest,
                    None => return, // opened before the capture began
                }
            }
            let s = cap.stages.entry(rel.to_string()).or_insert(StageStat {
                count: 0,
                total_ns: 0,
                min_ns: u64::MAX,
                max_ns: 0,
            });
            s.count += 1;
            s.total_ns += ns;
            s.min_ns = s.min_ns.min(ns);
            s.max_ns = s.max_ns.max(ns);
        }
    });
}

/// Record one committed explain record into this thread's capture, if
/// one is active.
#[inline]
pub(crate) fn record_explain(verdict: crate::explain::Verdict) {
    CURRENT.with(|c| {
        if let Some(cap) = c.borrow_mut().as_mut() {
            match verdict {
                crate::explain::Verdict::Accept => cap.explain.accepts += 1,
                crate::explain::Verdict::Reject => cap.explain.rejects += 1,
                crate::explain::Verdict::Info => cap.explain.notes += 1,
            }
        }
    });
}

/// True iff every `/`-separated segment of a span path is outside the
/// cache-dependent `poly.` namespace.
fn path_is_deterministic(path: &str) -> bool {
    path.split('/').all(|seg| !seg.starts_with("poly."))
}

/// The machine-independent projection of a `telemetry` JSON section
/// (as produced by [`Capture::to_json`]): stage **counts** without any
/// nanosecond field, counter deltas without the warmth-dependent
/// `poly.*` family or `*_ns` accumulators, and the explain summary.
/// Two captures of the same request — taken in different processes, at
/// different cache temperatures — project to byte-identical canonical
/// JSON; `inl-load --telemetry` compares exactly this.
pub fn deterministic_projection(telemetry: &Json) -> Json {
    let mut root = Json::object();
    if let Some(v) = telemetry.get("version") {
        root.insert("version", v.clone());
    }
    let mut stages = Json::object();
    if let Some(Json::Object(map)) = telemetry.get("stages") {
        for (path, stat) in map {
            if !path_is_deterministic(path) {
                continue;
            }
            if let Some(count) = stat.get("count") {
                stages.insert(path.clone(), count.clone());
            }
        }
    }
    root.insert("stages", stages);
    let mut counters = Json::object();
    if let Some(Json::Object(map)) = telemetry.get("counters") {
        for (name, v) in map {
            if name.starts_with("poly.") || name.ends_with("_ns") {
                continue;
            }
            counters.insert(name.clone(), v.clone());
        }
    }
    root.insert("counters", counters);
    if let Some(e) = telemetry.get("explain") {
        root.insert("explain", e.clone());
    }
    root
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::TEST_LOCK;

    #[test]
    fn capture_collects_counters_and_spans_without_global_obs() {
        let _l = TEST_LOCK.lock().unwrap();
        crate::set_enabled(false);
        crate::reset();
        let ((), cap) = with(|| {
            let _s = crate::span("obs.test.capture.stage");
            crate::counter_add!("obs.test.capture.counter", 7);
        });
        assert_eq!(cap.counters.get("obs.test.capture.counter"), Some(&7));
        let stage = cap.stages.get("obs.test.capture.stage").expect("stage");
        assert_eq!(stage.count, 1);
        assert!(stage.max_ns >= stage.min_ns);
        // Global layer stayed off: nothing leaked into the registry.
        assert_eq!(crate::counter_value("obs.test.capture.counter"), 0);
        assert!(!crate::registry()
            .spans
            .lock()
            .unwrap()
            .contains_key("obs.test.capture.stage"));
    }

    #[test]
    fn capture_and_global_layer_record_together_when_both_on() {
        let _l = TEST_LOCK.lock().unwrap();
        crate::set_enabled(true);
        crate::reset();
        let ((), cap) = with(|| {
            crate::counter_add!("obs.test.capture.both", 2);
        });
        crate::counter_add!("obs.test.capture.both", 5); // outside the window
        assert_eq!(cap.counters.get("obs.test.capture.both"), Some(&2));
        assert_eq!(crate::counter_value("obs.test.capture.both"), 7);
        crate::set_enabled(false);
    }

    #[test]
    fn nested_capture_suspends_the_outer_one() {
        let _l = TEST_LOCK.lock().unwrap();
        crate::set_enabled(false);
        let ((), outer) = with(|| {
            crate::counter_add!("obs.test.capture.outer", 1);
            let ((), inner) = with(|| {
                crate::counter_add!("obs.test.capture.inner", 1);
            });
            assert_eq!(inner.counters.get("obs.test.capture.inner"), Some(&1));
            assert!(!inner.counters.contains_key("obs.test.capture.outer"));
        });
        assert_eq!(outer.counters.get("obs.test.capture.outer"), Some(&1));
        assert!(!outer.counters.contains_key("obs.test.capture.inner"));
        assert!(!active());
    }

    #[test]
    fn stage_paths_are_relative_to_the_capture_envelope() {
        let _l = TEST_LOCK.lock().unwrap();
        crate::set_enabled(true);
        crate::reset();
        // Bare capture: path is the bare stage name.
        let ((), bare) = with(|| {
            let _s = crate::span("obs.test.capture.rel");
        });
        // Same work under an already-open envelope span (the server's
        // `serve.request` shape): the envelope must not prefix the path,
        // and its own close (outside the capture) must not be recorded.
        let (cap, _env_json) = {
            let _env = crate::span("obs.test.capture.envelope");
            let ((), cap) = with(|| {
                let _s = crate::span("obs.test.capture.rel");
            });
            (cap, ())
        };
        assert_eq!(
            bare.stages.keys().collect::<Vec<_>>(),
            cap.stages.keys().collect::<Vec<_>>()
        );
        assert!(cap.stages.contains_key("obs.test.capture.rel"), "{cap:?}");
        assert!(
            !cap.stages.keys().any(|k| k.contains("envelope")),
            "{cap:?}"
        );
        crate::set_enabled(false);
    }

    #[test]
    fn captures_are_thread_local() {
        let _l = TEST_LOCK.lock().unwrap();
        crate::set_enabled(false);
        let ((), cap) = with(|| {
            // A sibling thread's instruments must not land in this capture.
            std::thread::spawn(|| {
                crate::counter_add!("obs.test.capture.sibling", 9);
            })
            .join()
            .unwrap();
            crate::counter_add!("obs.test.capture.mine", 1);
        });
        assert_eq!(cap.counters.get("obs.test.capture.mine"), Some(&1));
        assert!(!cap.counters.contains_key("obs.test.capture.sibling"));
    }

    #[test]
    fn capture_json_is_versioned_and_derives_poly_cache() {
        let mut cap = Capture::default();
        cap.counters.insert("poly.cache.hit", 4);
        cap.counters.insert("poly.cache.miss", 1);
        cap.counters.insert("exec.instances", 99);
        cap.stages.insert(
            "serve.compile".into(),
            StageStat {
                count: 1,
                total_ns: 1000,
                min_ns: 1000,
                max_ns: 1000,
            },
        );
        let j = cap.to_json();
        assert_eq!(j.get("version").and_then(Json::as_u64), Some(1));
        let pc = j.get("poly_cache").unwrap();
        assert_eq!(pc.get("hits").and_then(Json::as_u64), Some(4));
        assert_eq!(pc.get("misses").and_then(Json::as_u64), Some(1));
        assert_eq!(pc.get("evictions").and_then(Json::as_u64), Some(0));
        let stage = j.get("stages").unwrap().get("serve.compile").unwrap();
        assert_eq!(stage.get("count").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn projection_strips_nondeterministic_evidence() {
        let mut cap = Capture::default();
        cap.counters.insert("poly.cache.hit", 4);
        cap.counters.insert("exec.instances", 99);
        cap.counters.insert("exec.par.thread_busy_ns", 123_456);
        cap.stages.insert(
            "serve.compile".into(),
            StageStat {
                count: 1,
                total_ns: 7777,
                min_ns: 7777,
                max_ns: 7777,
            },
        );
        cap.stages.insert(
            "serve.compile/poly.feasibility".into(),
            StageStat {
                count: 3,
                total_ns: 10,
                min_ns: 1,
                max_ns: 8,
            },
        );
        let proj = deterministic_projection(&cap.to_json());
        let text = proj.to_pretty_string();
        assert!(!text.contains("_ns"), "{text}");
        assert!(!text.contains("poly."), "{text}");
        assert_eq!(
            proj.get("counters")
                .unwrap()
                .get("exec.instances")
                .and_then(Json::as_u64),
            Some(99)
        );
        assert_eq!(
            proj.get("stages")
                .unwrap()
                .get("serve.compile")
                .and_then(Json::as_u64),
            Some(1)
        );
        // Identical captures at different cache temperatures project equal.
        let mut warm = cap.clone();
        warm.counters.insert("poly.cache.hit", 400);
        warm.stages.get_mut("serve.compile").unwrap().total_ns = 999;
        warm.stages.remove("serve.compile/poly.feasibility");
        assert_eq!(
            deterministic_projection(&warm.to_json()).to_pretty_string(),
            text
        );
    }
}
