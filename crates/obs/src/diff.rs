//! Telemetry and benchmark diffing: compare two JSON documents produced
//! by this workspace (a [`PipelineReport`] telemetry dump or the report
//! binary's `BENCH_exec.json`) and classify every metric as OK,
//! improved, warning, or **regressed** — the engine behind the
//! `inl-obs-diff` binary and the CI regression gate.
//!
//! Comparison rules:
//!
//! * **Counters** are semantic event counts (instances executed, pairs
//!   tested) and must match *exactly* — any drift means behaviour
//!   changed, not just speed. Exception: counters named `*_ns` hold
//!   accumulated wall time (e.g. `exec.par.thread_busy_ns`) and are
//!   compared like timings.
//! * **Timings** (span `mean_ns`, bench `*_ns` medians) are machine- and
//!   load-dependent; they compare with a relative threshold
//!   ([`DiffOptions::time_rel`]) and an absolute noise floor
//!   ([`DiffOptions::floor_ns`]) below which changes never count.
//!   Getting *faster* beyond the threshold reports as improved.
//! * **Histograms** summarise distributions whose shape may shift
//!   without a behaviour change; mismatches are warnings.
//! * **One-sided keys** (present in only one file) are warnings by
//!   default — span paths can embed machine-dependent details such as
//!   worker-thread counts — and regressions under
//!   [`DiffOptions::strict_keys`].
//! * A bench program whose `bitwise_identical` flips to `false` is
//!   always a regression: that is a correctness bit, not a timing.

use std::fmt;

use crate::json::Json;
use crate::report::{fmt_ns, PipelineReport};

/// Thresholds and strictness for a diff run.
#[derive(Clone, Copy, Debug)]
pub struct DiffOptions {
    /// Maximum allowed relative change for timing metrics before the
    /// line regresses (0.5 = +50 %).
    pub time_rel: f64,
    /// Timings where both sides are below this many nanoseconds never
    /// regress (measurement noise dominates down there).
    pub floor_ns: u64,
    /// Treat keys present on only one side as regressions instead of
    /// warnings.
    pub strict_keys: bool,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            time_rel: 0.5,
            floor_ns: 1_000_000,
            strict_keys: false,
        }
    }
}

/// Verdict for one compared metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Status {
    /// Within threshold of the baseline.
    Ok,
    /// Meaningfully better than the baseline (faster / fewer).
    Improved,
    /// Present in only one report, or a non-fatal anomaly.
    Warn,
    /// Worse than the baseline beyond the threshold — fails the gate.
    Regressed,
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            Status::Ok => "ok",
            Status::Improved => "improved",
            Status::Warn => "WARN",
            Status::Regressed => "REGRESSED",
        })
    }
}

/// One line of the verdict table.
#[derive(Clone, Debug)]
pub struct DiffLine {
    /// Verdict for this metric.
    pub status: Status,
    /// Metric name (counter/span/histogram path, or bench field).
    pub name: String,
    /// Human-readable explanation (values, percent change).
    pub detail: String,
    /// Signed relative change `(new - old) / old` where the metric is
    /// numeric; `f64::INFINITY` for growth from zero and for correctness
    /// flips (always the worst), `0.0` where no delta applies (one-sided
    /// keys, histogram shape warnings).
    pub rel: f64,
}

/// Full diff result.
#[derive(Clone, Debug, Default)]
pub struct DiffOutcome {
    /// One verdict line per compared metric.
    pub lines: Vec<DiffLine>,
}

impl DiffOutcome {
    fn push(&mut self, status: Status, name: impl Into<String>, detail: impl Into<String>) {
        self.push_rel(status, name, detail, 0.0);
    }

    fn push_rel(
        &mut self,
        status: Status,
        name: impl Into<String>,
        detail: impl Into<String>,
        rel: f64,
    ) {
        self.lines.push(DiffLine {
            status,
            name: name.into(),
            detail: detail.into(),
            rel,
        });
    }

    /// Number of regressed lines.
    pub fn regressions(&self) -> usize {
        self.lines
            .iter()
            .filter(|l| l.status == Status::Regressed)
            .count()
    }

    /// The `n` worst regressions, sorted by relative delta descending
    /// (correctness flips and growth-from-zero sort first as infinite;
    /// one-sided keys, which have no delta, sort last). CI gates print
    /// this so the most damaging change leads the log instead of the
    /// alphabetically first failing key.
    pub fn top_regressions(&self, n: usize) -> Vec<&DiffLine> {
        let mut worst: Vec<&DiffLine> = self
            .lines
            .iter()
            .filter(|l| l.status == Status::Regressed)
            .collect();
        worst.sort_by(|a, b| b.rel.total_cmp(&a.rel).then_with(|| a.name.cmp(&b.name)));
        worst.truncate(n);
        worst
    }

    /// Number of warning lines.
    pub fn warnings(&self) -> usize {
        self.lines
            .iter()
            .filter(|l| l.status == Status::Warn)
            .count()
    }

    /// Render the verdict table: regressions first, then warnings and
    /// improvements, then a one-line summary. Unchanged (`Ok`) lines are
    /// folded into the summary count to keep CI logs short.
    pub fn to_table(&self) -> String {
        let mut shown: Vec<&DiffLine> = self
            .lines
            .iter()
            .filter(|l| l.status != Status::Ok)
            .collect();
        shown.sort_by(|a, b| b.status.cmp(&a.status).then(a.name.cmp(&b.name)));
        let mut out = String::new();
        let width = shown.iter().map(|l| l.name.len()).max().unwrap_or(0);
        for line in shown {
            out.push_str(&format!(
                "{:<9}  {:<width$}  {}\n",
                line.status, line.name, line.detail
            ));
        }
        out.push_str(&format!(
            "{} metrics compared: {} regressed, {} warnings, {} ok\n",
            self.lines.len(),
            self.regressions(),
            self.warnings(),
            self.lines.len()
                - self.regressions()
                - self.warnings()
                - self
                    .lines
                    .iter()
                    .filter(|l| l.status == Status::Improved)
                    .count(),
        ));
        out
    }
}

fn rel_change(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        if new == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (new - old) / old
    }
}

fn diff_timing(out: &mut DiffOutcome, opts: &DiffOptions, name: &str, old_ns: f64, new_ns: f64) {
    if old_ns < opts.floor_ns as f64 && new_ns < opts.floor_ns as f64 {
        out.push(
            Status::Ok,
            name,
            format!("both below {} noise floor", fmt_ns(opts.floor_ns)),
        );
        return;
    }
    let rel = rel_change(old_ns, new_ns);
    let detail = format!(
        "{} -> {} ({:+.1}%)",
        fmt_ns(old_ns as u64),
        fmt_ns(new_ns as u64),
        rel * 100.0
    );
    if rel > opts.time_rel {
        out.push_rel(Status::Regressed, name, detail, rel);
    } else if rel < -opts.time_rel {
        out.push_rel(Status::Improved, name, detail, rel);
    } else {
        out.push_rel(Status::Ok, name, detail, rel);
    }
}

fn one_sided(out: &mut DiffOutcome, opts: &DiffOptions, name: &str, which: &str) {
    let status = if opts.strict_keys {
        Status::Regressed
    } else {
        Status::Warn
    };
    out.push(status, name, format!("only in {which} file"));
}

/// True iff this counter name holds accumulated nanoseconds rather than a
/// semantic event count.
fn is_timing_counter(name: &str) -> bool {
    name.ends_with("_ns")
}

/// Diff two [`PipelineReport`]s.
pub fn diff_reports(old: &PipelineReport, new: &PipelineReport, opts: &DiffOptions) -> DiffOutcome {
    let mut out = DiffOutcome::default();

    for (name, &old_v) in &old.counters {
        let key = format!("counter:{name}");
        match new.counters.get(name) {
            None => one_sided(&mut out, opts, &key, "old"),
            Some(&new_v) if is_timing_counter(name) => {
                diff_timing(&mut out, opts, &key, old_v as f64, new_v as f64);
            }
            Some(&new_v) if new_v == old_v => {
                out.push(Status::Ok, &key, format!("{old_v}"));
            }
            Some(&new_v) => {
                out.push_rel(
                    Status::Regressed,
                    &key,
                    format!("{old_v} -> {new_v} (counters must match exactly)"),
                    rel_change(old_v as f64, new_v as f64).abs(),
                );
            }
        }
    }
    for name in new.counters.keys() {
        if !old.counters.contains_key(name) {
            one_sided(&mut out, opts, &format!("counter:{name}"), "new");
        }
    }

    for (name, old_h) in &old.histograms {
        let key = format!("histogram:{name}");
        match new.histograms.get(name) {
            None => one_sided(&mut out, opts, &key, "old"),
            Some(new_h) if new_h == old_h => {
                out.push(Status::Ok, &key, format!("count={}", old_h.count));
            }
            Some(new_h) => {
                out.push(
                    Status::Warn,
                    &key,
                    format!(
                        "distribution changed: count {} -> {}, p95 {} -> {}",
                        old_h.count,
                        new_h.count,
                        old_h.p95(),
                        new_h.p95()
                    ),
                );
            }
        }
    }
    for name in new.histograms.keys() {
        if !old.histograms.contains_key(name) {
            one_sided(&mut out, opts, &format!("histogram:{name}"), "new");
        }
    }

    for (path, old_s) in &old.spans {
        let key = format!("span:{path}");
        match new.spans.get(path) {
            None => one_sided(&mut out, opts, &key, "old"),
            Some(new_s) => {
                if new_s.count != old_s.count {
                    out.push(
                        Status::Warn,
                        &key,
                        format!("count {} -> {}", old_s.count, new_s.count),
                    );
                }
                diff_timing(
                    &mut out,
                    opts,
                    &key,
                    old_s.mean_ns() as f64,
                    new_s.mean_ns() as f64,
                );
            }
        }
    }
    for path in new.spans.keys() {
        if !old.spans.contains_key(path) {
            one_sided(&mut out, opts, &format!("span:{path}"), "new");
        }
    }

    out
}

fn num(value: Option<&Json>) -> Option<f64> {
    match value {
        Some(Json::Int(n)) => Some(*n as f64),
        Some(Json::Float(f)) => Some(*f),
        _ => None,
    }
}

/// Diff two bench documents (the report binary's `BENCH_exec.json`):
/// programs matched by name, `*_ns` fields thresholded like timings, a
/// `bitwise_identical` flip to `false` always regresses.
pub fn diff_bench(old: &Json, new: &Json, opts: &DiffOptions) -> Result<DiffOutcome, String> {
    let programs = |doc: &Json| -> Result<Vec<(String, Json)>, String> {
        match doc.get("programs") {
            Some(Json::Array(items)) => items
                .iter()
                .map(|p| {
                    p.get("name")
                        .and_then(Json::as_str)
                        .map(|n| (n.to_string(), p.clone()))
                        .ok_or_else(|| "bench program without 'name'".to_string())
                })
                .collect(),
            _ => Err("missing 'programs' array".into()),
        }
    };
    let old_programs = programs(old)?;
    let new_programs = programs(new)?;
    let mut out = DiffOutcome::default();

    for (name, old_p) in &old_programs {
        let Some((_, new_p)) = new_programs.iter().find(|(n, _)| n == name) else {
            one_sided(&mut out, opts, &format!("bench:{name}"), "old");
            continue;
        };
        if let Some(Json::Bool(new_ok)) = new_p.get("bitwise_identical") {
            let key = format!("bench:{name}:bitwise_identical");
            if *new_ok {
                out.push(Status::Ok, &key, "true");
            } else {
                out.push_rel(
                    Status::Regressed,
                    &key,
                    "false (correctness, not timing)",
                    f64::INFINITY,
                );
            }
        }
        if let Json::Object(fields) = old_p {
            for (field, old_v) in fields {
                let key = format!("bench:{name}:{field}");
                if field.ends_with("_ns") {
                    match (num(Some(old_v)), num(new_p.get(field))) {
                        (Some(old_ns), Some(new_ns)) => {
                            diff_timing(&mut out, opts, &key, old_ns, new_ns);
                        }
                        _ => one_sided(&mut out, opts, &key, "old"),
                    }
                    continue;
                }
                // non-timing integers are semantic counters (work done,
                // variants found, error tallies): exact match required,
                // same contract as telemetry counters. Strings, floats,
                // and bools other than `bitwise_identical` stay untyped
                // metadata and are not diffed.
                let Json::Int(old_n) = old_v else { continue };
                match new_p.get(field) {
                    Some(Json::Int(new_n)) if new_n == old_n => {
                        out.push(Status::Ok, &key, format!("{old_n}"));
                    }
                    Some(Json::Int(new_n)) => {
                        out.push_rel(
                            Status::Regressed,
                            &key,
                            format!("{old_n} -> {new_n} (counters must match exactly)"),
                            rel_change(*old_n as f64, *new_n as f64).abs(),
                        );
                    }
                    _ => one_sided(&mut out, opts, &key, "old"),
                }
            }
        }
    }
    for (name, _) in &new_programs {
        if !old_programs.iter().any(|(n, _)| n == name) {
            one_sided(&mut out, opts, &format!("bench:{name}"), "new");
        }
    }
    Ok(out)
}

/// Diff two documents, auto-detecting their kind: a `programs` array
/// means a bench file, a `counters` object means a telemetry report.
/// Both files must be of the same kind.
pub fn diff_documents(
    old_text: &str,
    new_text: &str,
    opts: &DiffOptions,
) -> Result<DiffOutcome, String> {
    let old_json = Json::parse(old_text).map_err(|e| format!("old file: {e}"))?;
    let new_json = Json::parse(new_text).map_err(|e| format!("new file: {e}"))?;
    let kind = |j: &Json| {
        if j.get("programs").is_some() {
            "bench"
        } else if j.get("counters").is_some() {
            "telemetry"
        } else {
            "unknown"
        }
    };
    match (kind(&old_json), kind(&new_json)) {
        ("bench", "bench") => diff_bench(&old_json, &new_json, opts),
        ("telemetry", "telemetry") => {
            let old =
                PipelineReport::from_json_str(old_text).map_err(|e| format!("old file: {e}"))?;
            let new =
                PipelineReport::from_json_str(new_text).map_err(|e| format!("new file: {e}"))?;
            Ok(diff_reports(&old, &new, opts))
        }
        (a, b) if a == b => {
            Err("unrecognised document kind (need 'programs' or 'counters')".into())
        }
        (a, b) => Err(format!("cannot diff a {a} file against a {b} file")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{HistogramSnapshot, SpanSnapshot};

    fn report() -> PipelineReport {
        let mut r = PipelineReport {
            enabled: true,
            ..Default::default()
        };
        r.counters.insert("exec.instances".into(), 385);
        r.counters
            .insert("exec.par.thread_busy_ns".into(), 9_000_000);
        r.histograms.insert(
            "poly.fm.constraints".into(),
            HistogramSnapshot {
                count: 4,
                sum: 31,
                min: 2,
                max: 17,
                buckets: vec![(3, 1), (7, 2), (31, 1)],
            },
        );
        r.spans.insert(
            "exec.interpret".into(),
            SpanSnapshot {
                count: 10,
                total_ns: 200_000_000,
                min_ns: 1,
                max_ns: 30_000_000,
            },
        );
        r
    }

    #[test]
    fn self_compare_is_clean() {
        let r = report();
        let out = diff_reports(&r, &r, &DiffOptions::default());
        assert_eq!(out.regressions(), 0);
        assert_eq!(out.warnings(), 0);
        assert!(!out.lines.is_empty());
    }

    #[test]
    fn counter_drift_regresses_exactly() {
        let old = report();
        let mut new = report();
        *new.counters.get_mut("exec.instances").unwrap() += 1;
        let out = diff_reports(&old, &new, &DiffOptions::default());
        assert_eq!(out.regressions(), 1);
        assert!(out.to_table().contains("counter:exec.instances"));
    }

    #[test]
    fn timing_counters_use_thresholds_not_exactness() {
        let old = report();
        let mut new = report();
        // +11% busy time: within the 50% threshold, so OK.
        *new.counters.get_mut("exec.par.thread_busy_ns").unwrap() = 10_000_000;
        let out = diff_reports(&old, &new, &DiffOptions::default());
        assert_eq!(out.regressions(), 0);
        // +400%: beyond threshold → regression.
        *new.counters.get_mut("exec.par.thread_busy_ns").unwrap() = 45_000_000;
        let out = diff_reports(&old, &new, &DiffOptions::default());
        assert_eq!(out.regressions(), 1);
    }

    #[test]
    fn span_slowdown_respects_threshold_and_floor() {
        let old = report();
        let mut new = report();
        new.spans.get_mut("exec.interpret").unwrap().total_ns = 400_000_000; // 2x mean
        let out = diff_reports(&old, &new, &DiffOptions::default());
        assert_eq!(out.regressions(), 1);
        // Same ratio below the noise floor: fine.
        let mut old_small = report();
        let mut new_small = report();
        old_small.spans.get_mut("exec.interpret").unwrap().total_ns = 4_000;
        new_small.spans.get_mut("exec.interpret").unwrap().total_ns = 8_000;
        let out = diff_reports(&old_small, &new_small, &DiffOptions::default());
        assert_eq!(out.regressions(), 0);
        // Big speedup reports as improved, not regressed.
        new.spans.get_mut("exec.interpret").unwrap().total_ns = 20_000_000;
        let out = diff_reports(&old, &new, &DiffOptions::default());
        assert_eq!(out.regressions(), 0);
        assert!(out.lines.iter().any(|l| l.status == Status::Improved));
    }

    #[test]
    fn top_regressions_sort_by_relative_delta_and_truncate() {
        let old = report();
        let mut new = report();
        // Three regressions of different severity: a 2x span slowdown
        // (+100%), a 5x timing-counter blowup (+400%), and an exact-match
        // counter drift (+~0.3%). Largest relative delta must lead.
        new.spans.get_mut("exec.interpret").unwrap().total_ns = 400_000_000;
        *new.counters.get_mut("exec.par.thread_busy_ns").unwrap() = 45_000_000;
        *new.counters.get_mut("exec.instances").unwrap() += 1;
        let out = diff_reports(&old, &new, &DiffOptions::default());
        assert_eq!(out.regressions(), 3);
        let top = out.top_regressions(10);
        let names: Vec<&str> = top.iter().map(|l| l.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "counter:exec.par.thread_busy_ns",
                "span:exec.interpret",
                "counter:exec.instances"
            ],
            "sorted by relative delta descending"
        );
        assert!(top[0].rel > top[1].rel && top[1].rel > top[2].rel);
        // truncation keeps only the worst
        let top1 = out.top_regressions(1);
        assert_eq!(top1.len(), 1);
        assert_eq!(top1[0].name, "counter:exec.par.thread_busy_ns");
        // a correctness flip outranks any timing delta
        let base = bench_doc(10_000_000, true);
        let wrong = bench_doc(90_000_000, false);
        let out = diff_documents(&base, &wrong, &DiffOptions::default()).unwrap();
        let top = out.top_regressions(10);
        assert_eq!(top[0].name, "bench:cholesky-kij:bitwise_identical");
        assert!(top[0].rel.is_infinite());
    }

    #[test]
    fn one_sided_keys_warn_or_regress_by_strictness() {
        let old = report();
        let mut new = report();
        new.spans.insert(
            "report.e8.kernel/skewed-8t".into(),
            SpanSnapshot {
                count: 1,
                total_ns: 5,
                min_ns: 5,
                max_ns: 5,
            },
        );
        let lax = diff_reports(&old, &new, &DiffOptions::default());
        assert_eq!(lax.regressions(), 0);
        assert_eq!(lax.warnings(), 1);
        let strict = diff_reports(
            &old,
            &new,
            &DiffOptions {
                strict_keys: true,
                ..Default::default()
            },
        );
        assert_eq!(strict.regressions(), 1);
    }

    fn bench_doc(vm_ns: u64, bitwise: bool) -> String {
        format!(
            r#"{{"version": 1, "programs": [
                {{"name": "cholesky-kij", "interp_ns": 90000000,
                  "vm_ns": {vm_ns}, "vm_compile_ns": 200000,
                  "speedup": 9.0, "bitwise_identical": {bitwise}}}
            ]}}"#
        )
    }

    #[test]
    fn bench_diff_detects_regression_and_self_compares_clean() {
        let opts = DiffOptions::default();
        let base = bench_doc(10_000_000, true);
        let out = diff_documents(&base, &base, &opts).unwrap();
        assert_eq!(out.regressions(), 0);
        // 3x slower VM: regression.
        let slow = bench_doc(30_000_000, true);
        let out = diff_documents(&base, &slow, &opts).unwrap();
        assert_eq!(out.regressions(), 1);
        // Bitwise mismatch: regression even with identical timings.
        let wrong = bench_doc(10_000_000, false);
        let out = diff_documents(&base, &wrong, &opts).unwrap();
        assert_eq!(out.regressions(), 1);
        assert!(out.to_table().contains("bitwise_identical"));
    }

    #[test]
    fn bench_diff_gates_semantic_integers_exactly() {
        let opts = DiffOptions::default();
        let doc = |visited: u64| {
            format!(
                r#"{{"version": 1, "programs": [
                    {{"name": "matmul", "nodes_visited": {visited},
                      "chosen": "IKJ", "speedup": 9.0,
                      "search_ns": 1000000}}
                ]}}"#
            )
        };
        let base = doc(58);
        let out = diff_documents(&base, &base, &opts).unwrap();
        assert_eq!(out.regressions(), 0);
        // a drifted search counter is a regression no matter how small,
        // while strings ("chosen") and floats ("speedup") are metadata
        let drifted = doc(59);
        let out = diff_documents(&base, &drifted, &opts).unwrap();
        assert_eq!(out.regressions(), 1);
        assert!(out.to_table().contains("bench:matmul:nodes_visited"));
    }

    #[test]
    fn mismatched_kinds_error() {
        let bench = bench_doc(1, true);
        let telemetry = report();
        let text = crate::PipelineReport::to_json_string(&telemetry);
        assert!(diff_documents(&bench, &text, &DiffOptions::default()).is_err());
    }
}
