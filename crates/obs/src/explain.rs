//! Decision-provenance records: *why* each candidate transformation was
//! accepted or rejected, with the dependence evidence and cost features
//! behind every verdict.
//!
//! The aggregate layer ([`crate::counter_add!`] & friends) answers "how
//! much work happened"; the timeline answers "when". This third,
//! independently-gated layer answers the question the paper's decision
//! procedure actually settles: for each candidate transformation, which
//! dependence row killed it, or which projected rows prove it legal.
//!
//! # Design
//!
//! * **Disabled is one relaxed load.** The explain flag shares the flag
//!   byte with the other two layers; [`crate::explain_enabled`] is a
//!   single relaxed atomic load, and every recording call site checks it
//!   before building any strings.
//! * **Bounded.** Records land in one global store capped at
//!   [`DEFAULT_CAPACITY`] records (`INL_EXPLAIN_CAP` or [`set_capacity`]
//!   override). On overflow the oldest record is dropped and counted —
//!   recording never reallocates past the cap and never panics.
//! * **Sessions group one compile.** [`begin_session`] stamps a fresh
//!   compile-session id (and a human label such as `cholesky/KJLI`);
//!   every subsequent record carries the current session id, so one
//!   artifact can hold a whole 24-permutation sweep and still be queried
//!   per variant.
//!
//! Records serialize through the hand-rolled [`Json`] layer. Setting
//! `INL_EXPLAIN_JSON=<path>` dumps the store at process exit from any
//! binary (and implies `INL_EXPLAIN=1`), mirroring `INL_OBS_JSON` /
//! `INL_TRACE_JSON`; the `report` binary writes `target/inl-explain.json`.
//!
//! # Record schema (`version: 1`)
//!
//! ```json
//! {
//!   "version": 1,
//!   "dropped": 0,
//!   "sessions": [ { "id": 1, "label": "cholesky/KJLI" } ],
//!   "records": [
//!     {
//!       "session": 1, "seq": 0,
//!       "stage": "legal", "subject": "dep 3 (flow S2->S1)",
//!       "verdict": "reject",
//!       "reason": "projected entry 1 is negative (-)",
//!       "details": { "dep_row": "[0 - *]" },
//!       "features": { "deps": 7 }
//!     }
//!   ]
//! }
//! ```
//!
//! `stage` is the verdict point (`legal`, `complete`, `sink`,
//! `structural`, `parallel`, `codegen`, `exec`); `verdict` is `accept`,
//! `reject`, or `info`; `details` carries string evidence (dependence
//! rows rendered in the paper's interval notation) and `features`
//! integer cost features (dependence counts, strides, wavefront widths,
//! instance counts).

use crate::json::Json;
use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Default store capacity (records) before the oldest are dropped.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// Explain artifact schema version.
pub const SCHEMA_VERSION: u64 = 1;

/// Verdict attached to one decision record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The candidate passed this verdict point.
    Accept,
    /// The candidate was killed at this verdict point.
    Reject,
    /// Context that is not itself a pass/fail decision (cost features,
    /// certified-parallel evidence, chosen completion rows).
    Info,
}

impl Verdict {
    /// Canonical lower-case name used in JSON and query filters.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Accept => "accept",
            Verdict::Reject => "reject",
            Verdict::Info => "info",
        }
    }
}

/// One decision record. String fields are owned so the store never
/// borrows from the pipeline.
#[derive(Clone, Debug)]
pub struct Record {
    /// Compile-session id (0 if no session was begun).
    pub session: u64,
    /// Process-wide record sequence number (stable sort key).
    pub seq: u64,
    /// Verdict point: `legal`, `complete`, `sink`, `structural`,
    /// `parallel`, `codegen`, `exec`.
    pub stage: &'static str,
    /// What was judged (a candidate transformation, a dependence, a
    /// loop, a completion slot, ...).
    pub subject: String,
    /// The outcome.
    pub verdict: Verdict,
    /// Why: the violating dependence row, the proving projection, the
    /// chosen row — always human-readable.
    pub reason: String,
    /// Additional string evidence keyed by name (deterministic order).
    pub details: BTreeMap<String, String>,
    /// Integer cost features keyed by name (deterministic order).
    pub features: BTreeMap<String, i64>,
}

impl Record {
    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.insert("session", Json::Int(self.session));
        obj.insert("seq", Json::Int(self.seq));
        obj.insert("stage", Json::Str(self.stage.to_string()));
        obj.insert("subject", Json::Str(self.subject.clone()));
        obj.insert("verdict", Json::Str(self.verdict.as_str().to_string()));
        obj.insert("reason", Json::Str(self.reason.clone()));
        if !self.details.is_empty() {
            let mut details = Json::object();
            for (k, v) in &self.details {
                details.insert(k.clone(), Json::Str(v.clone()));
            }
            obj.insert("details", details);
        }
        if !self.features.is_empty() {
            let mut features = Json::object();
            for (k, &v) in &self.features {
                if v >= 0 {
                    features.insert(k.clone(), Json::Int(v as u64));
                } else {
                    features.insert(k.clone(), Json::Float(v as f64));
                }
            }
            obj.insert("features", features);
        }
        obj
    }
}

#[derive(Default)]
struct Store {
    records: VecDeque<Record>,
    dropped: u64,
    next_seq: u64,
    /// `(id, label)` in begin order.
    sessions: Vec<(u64, String)>,
}

fn store() -> MutexGuard<'static, Store> {
    static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
    STORE
        .get_or_init(|| Mutex::new(Store::default()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn capacity_cell() -> &'static AtomicUsize {
    static CAP: OnceLock<AtomicUsize> = OnceLock::new();
    CAP.get_or_init(|| {
        AtomicUsize::new(crate::env_usize("INL_EXPLAIN_CAP", DEFAULT_CAPACITY).max(1))
    })
}

/// Store capacity currently in force.
pub fn capacity() -> usize {
    capacity_cell().load(Ordering::Relaxed)
}

/// Override the store capacity. Zero is clamped to 1. Shrinking below
/// the current record count drops the oldest records at the next push.
pub fn set_capacity(cap: usize) {
    capacity_cell().store(cap.max(1), Ordering::Relaxed);
}

static CURRENT_SESSION: AtomicU64 = AtomicU64::new(0);

/// Begin a new compile session with a human label (e.g. the variant name
/// `cholesky/KJLI`). Returns the session id; all records emitted until
/// the next `begin_session` carry it. No-op (returns the current id)
/// while the explain layer is disabled.
pub fn begin_session(label: &str) -> u64 {
    if !crate::explain_enabled() {
        return CURRENT_SESSION.load(Ordering::Relaxed);
    }
    let mut s = store();
    let id = s.sessions.last().map_or(0, |(id, _)| *id) + 1;
    s.sessions.push((id, label.to_string()));
    CURRENT_SESSION.store(id, Ordering::Relaxed);
    id
}

/// The current compile-session id (0 before any [`begin_session`]).
pub fn current_session() -> u64 {
    CURRENT_SESSION.load(Ordering::Relaxed)
}

/// Builder for one decision record; created by [`accept`], [`reject`],
/// or [`note`]. The record is committed to the store when the builder
/// drops, so a bare `explain::reject(...).detail(...)` statement emits.
#[derive(Debug)]
pub struct RecordBuilder {
    inner: Option<Record>,
}

impl RecordBuilder {
    fn new(stage: &'static str, subject: String, verdict: Verdict, reason: String) -> Self {
        if !crate::explain_enabled() {
            return RecordBuilder { inner: None };
        }
        RecordBuilder {
            inner: Some(Record {
                session: current_session(),
                seq: 0,
                stage,
                subject,
                verdict,
                reason,
                details: BTreeMap::new(),
                features: BTreeMap::new(),
            }),
        }
    }

    /// Attach a string evidence entry.
    pub fn detail(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        if let Some(rec) = self.inner.as_mut() {
            rec.details.insert(key.into(), value.into());
        }
        self
    }

    /// Attach an integer cost feature.
    pub fn feature(mut self, key: impl Into<String>, value: i64) -> Self {
        if let Some(rec) = self.inner.as_mut() {
            rec.features.insert(key.into(), value);
        }
        self
    }
}

impl Drop for RecordBuilder {
    fn drop(&mut self) {
        let Some(mut rec) = self.inner.take() else {
            return;
        };
        // A request-scoped capture tallies committed verdicts; records
        // exist only while the explain layer is on, so a capture's
        // explain summary is empty unless both are enabled.
        crate::capture::record_explain(rec.verdict);
        let cap = capacity();
        let mut s = store();
        rec.seq = s.next_seq;
        s.next_seq += 1;
        while s.records.len() >= cap {
            s.records.pop_front();
            s.dropped += 1;
        }
        s.records.push_back(rec);
    }
}

/// Record that `subject` passed the `stage` verdict point, with the
/// proving evidence in `reason`. No-op while the layer is disabled, but
/// call sites should still gate string construction on
/// [`crate::explain_enabled`].
pub fn accept(
    stage: &'static str,
    subject: impl Into<String>,
    reason: impl Into<String>,
) -> RecordBuilder {
    RecordBuilder::new(stage, subject.into(), Verdict::Accept, reason.into())
}

/// Record that `subject` was killed at the `stage` verdict point, with
/// the killing evidence (e.g. the violating dependence row) in `reason`.
pub fn reject(
    stage: &'static str,
    subject: impl Into<String>,
    reason: impl Into<String>,
) -> RecordBuilder {
    RecordBuilder::new(stage, subject.into(), Verdict::Reject, reason.into())
}

/// Record non-verdict context (cost features, certified-parallel
/// evidence, chosen completion rows).
pub fn note(
    stage: &'static str,
    subject: impl Into<String>,
    reason: impl Into<String>,
) -> RecordBuilder {
    RecordBuilder::new(stage, subject.into(), Verdict::Info, reason.into())
}

/// Number of records currently held.
pub fn len() -> usize {
    store().records.len()
}

/// Records dropped to the capacity bound so far.
pub fn dropped_total() -> u64 {
    store().dropped
}

/// Clone the current records (oldest first) for inspection in tests and
/// renderers.
pub fn snapshot() -> Vec<Record> {
    store().records.iter().cloned().collect()
}

/// Clone the `(id, label)` session list, in begin order.
pub fn sessions() -> Vec<(u64, String)> {
    store().sessions.clone()
}

/// Drop every record, session, and the drop tally, and reset the session
/// id to 0. Sequence numbers keep counting (they are process-unique).
pub fn reset() {
    let mut s = store();
    s.records.clear();
    s.sessions.clear();
    s.dropped = 0;
    CURRENT_SESSION.store(0, Ordering::Relaxed);
}

/// Serialize the store as a versioned JSON artifact (see the module docs
/// for the schema).
pub fn to_json() -> Json {
    let s = store();
    let mut root = Json::object();
    root.insert("version", Json::Int(SCHEMA_VERSION));
    root.insert("dropped", Json::Int(s.dropped));
    root.insert(
        "sessions",
        Json::Array(
            s.sessions
                .iter()
                .map(|(id, label)| {
                    let mut obj = Json::object();
                    obj.insert("id", Json::Int(*id));
                    obj.insert("label", Json::Str(label.clone()));
                    obj
                })
                .collect(),
        ),
    );
    root.insert(
        "records",
        Json::Array(s.records.iter().map(Record::to_json).collect()),
    );
    root
}

/// Write the JSON artifact to `path`, creating parent directories.
pub fn write_json(path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, to_json().to_pretty_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn begin() -> std::sync::MutexGuard<'static, ()> {
        let g = crate::tests::TEST_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        crate::set_explain_enabled(true);
        reset();
        g
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = crate::tests::TEST_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        crate::set_explain_enabled(false);
        reset();
        let before = len();
        reject("legal", "dep 0", "off");
        begin_session("off");
        assert_eq!(len(), before);
        assert!(store().sessions.is_empty());
    }

    #[test]
    fn records_carry_session_verdict_and_evidence() {
        let _g = begin();
        let sid = begin_session("cholesky/KJLI");
        accept("legal", "T=[[1,0],[0,1]]", "all 3 deps satisfied")
            .detail("proof", "dep 0: level 1, projected [+ 0]")
            .feature("deps", 3);
        reject(
            "legal",
            "dep 1 (flow S2->S1)",
            "projected entry 0 is negative (-)",
        )
        .detail("dep_row", "[- *]");
        let recs = snapshot();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].session, sid);
        assert_eq!(recs[0].verdict, Verdict::Accept);
        assert_eq!(recs[0].features["deps"], 3);
        assert_eq!(recs[1].verdict, Verdict::Reject);
        assert_eq!(recs[1].details["dep_row"], "[- *]");
        assert!(recs[1].seq > recs[0].seq);
        crate::set_explain_enabled(false);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let _g = begin();
        let old_cap = capacity();
        set_capacity(4);
        for i in 0..10 {
            note("legal", format!("r{i}"), "flood");
        }
        assert_eq!(len(), 4);
        assert_eq!(dropped_total(), 6);
        let subjects: Vec<String> = snapshot().into_iter().map(|r| r.subject).collect();
        assert_eq!(subjects, ["r6", "r7", "r8", "r9"]);
        set_capacity(old_cap);
        crate::set_explain_enabled(false);
    }

    #[test]
    fn json_artifact_round_trips() {
        let _g = begin();
        begin_session("unit/one");
        reject("complete", "slot 2", "no legal candidate row")
            .detail("tried", "selector j; -j; i+j")
            .feature("candidates_tried", 3);
        let text = to_json().to_pretty_string();
        let parsed = Json::parse(&text).expect("artifact parses");
        assert_eq!(
            parsed.get("version").and_then(Json::as_u64),
            Some(SCHEMA_VERSION)
        );
        let Some(Json::Array(sessions)) = parsed.get("sessions") else {
            panic!("missing sessions")
        };
        assert_eq!(
            sessions[0].get("label").and_then(Json::as_str),
            Some("unit/one")
        );
        let Some(Json::Array(records)) = parsed.get("records") else {
            panic!("missing records")
        };
        assert_eq!(records.len(), 1);
        assert_eq!(
            records[0].get("verdict").and_then(Json::as_str),
            Some("reject")
        );
        assert_eq!(
            records[0]
                .get("features")
                .and_then(|f| f.get("candidates_tried"))
                .and_then(Json::as_u64),
            Some(3)
        );
        crate::set_explain_enabled(false);
    }
}
