//! Snapshotting the live registry into a [`PipelineReport`] and rendering
//! it as a human-readable table or a JSON telemetry document.
//!
//! The JSON schema (stable; version bumped on breaking change):
//!
//! ```json
//! {
//!   "version": 1,
//!   "enabled": true,
//!   "counters":   { "depend.pairs_tested": 9, ... },
//!   "histograms": { "poly.fm.constraints": {
//!       "count": 4, "sum": 31, "min": 2, "max": 17,
//!       "buckets": [[3, 1], [7, 2], [31, 1]] }, ... },
//!   "spans": { "codegen.generate/poly.feasibility": {
//!       "count": 12, "total_ns": 83120, "min_ns": 401, "max_ns": 22010 }, ... },
//!   "sections": { "trace": { ... } }
//! }
//! ```
//!
//! Histogram `buckets` are `[upper_bound, count]` pairs over log₂ buckets;
//! a value `v` lands in the bucket whose upper bound is the smallest
//! `2^k - 1 >= v`. `sections` holds free-form JSON attached by callers
//! (e.g. the executor's trace summary) so domain crates can surface
//! structured data without this crate depending on them.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use crate::json::Json;
use crate::registry;

/// Schema version written into every JSON report.
pub const SCHEMA_VERSION: u64 = 1;

/// Aggregate statistics for one histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation; 0 when `count == 0`.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// `(upper_bound, count)` per non-empty log₂ bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound on the `q`-th percentile (0 < `q` <= 100), or 0 when
    /// empty. Resolution is the log₂ bucket width: the returned value is
    /// the bucket upper bound containing the rank-`ceil(q/100·count)`
    /// observation, clamped to the exact recorded `max`.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(ub, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return ub.min(self.max);
            }
        }
        self.max
    }

    /// Median upper bound (see [`percentile`](Self::percentile)).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 95th-percentile upper bound.
    pub fn p95(&self) -> u64 {
        self.percentile(95.0)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }
}

/// Aggregate statistics for one span path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Number of times the span closed.
    pub count: u64,
    /// Total wall time across all closes, in nanoseconds.
    pub total_ns: u64,
    /// Shortest single duration in nanoseconds.
    pub min_ns: u64,
    /// Longest single duration in nanoseconds.
    pub max_ns: u64,
}

impl SpanSnapshot {
    /// Mean duration in nanoseconds, or 0 when empty.
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// A point-in-time snapshot of all telemetry, plus caller-attached
/// sections. Counters and histograms that never fired are omitted.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PipelineReport {
    /// Whether telemetry was enabled when the snapshot was taken.
    pub enabled: bool,
    /// Counter values by name (zero-valued counters omitted).
    pub counters: BTreeMap<String, u64>,
    /// Histogram snapshots by name (empty histograms omitted).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Span statistics by nesting path (`outer/inner`).
    pub spans: BTreeMap<String, SpanSnapshot>,
    /// Free-form JSON sections attached via [`PipelineReport::attach`].
    pub sections: BTreeMap<String, Json>,
}

impl PipelineReport {
    /// Snapshot the global registry.
    ///
    /// ```
    /// inl_obs::set_enabled(true);
    /// inl_obs::counter_add!("doc.example.widgets", 3);
    /// let report = inl_obs::PipelineReport::capture();
    /// assert_eq!(report.counters["doc.example.widgets"], 3);
    /// ```
    pub fn capture() -> Self {
        let reg = registry();
        let counters = reg
            .counters
            .lock()
            .unwrap()
            .iter()
            .filter_map(|(name, c)| {
                let v = c.load(std::sync::atomic::Ordering::Relaxed);
                (v > 0).then(|| (name.to_string(), v))
            })
            .collect();
        let histograms = reg
            .histograms
            .lock()
            .unwrap()
            .iter()
            .filter_map(|(name, h)| {
                let snap = h.snapshot();
                (snap.count > 0).then(|| (name.to_string(), snap))
            })
            .collect();
        let spans = reg
            .spans
            .lock()
            .unwrap()
            .iter()
            .map(|(path, st)| {
                (
                    path.clone(),
                    SpanSnapshot {
                        count: st.count,
                        total_ns: st.total_ns,
                        min_ns: st.min_ns,
                        max_ns: st.max_ns,
                    },
                )
            })
            .collect();
        PipelineReport {
            enabled: crate::enabled(),
            counters,
            histograms,
            spans,
            sections: BTreeMap::new(),
        }
    }

    /// Attach a free-form JSON section (overwrites an existing one).
    pub fn attach(&mut self, name: impl Into<String>, value: Json) {
        self.sections.insert(name.into(), value);
    }

    /// Convert to the JSON schema documented at module level.
    pub fn to_json(&self) -> Json {
        let mut root = Json::object();
        root.insert("version", Json::Int(SCHEMA_VERSION));
        root.insert("enabled", Json::Bool(self.enabled));

        let mut counters = Json::object();
        for (name, v) in &self.counters {
            counters.insert(name.clone(), Json::Int(*v));
        }
        root.insert("counters", counters);

        let mut histograms = Json::object();
        for (name, h) in &self.histograms {
            let mut obj = Json::object();
            obj.insert("count", Json::Int(h.count));
            obj.insert("sum", Json::Int(h.sum));
            obj.insert("min", Json::Int(h.min));
            obj.insert("max", Json::Int(h.max));
            obj.insert(
                "buckets",
                Json::Array(
                    h.buckets
                        .iter()
                        .map(|&(ub, c)| Json::Array(vec![Json::Int(ub), Json::Int(c)]))
                        .collect(),
                ),
            );
            histograms.insert(name.clone(), obj);
        }
        root.insert("histograms", histograms);

        let mut spans = Json::object();
        for (path, s) in &self.spans {
            let mut obj = Json::object();
            obj.insert("count", Json::Int(s.count));
            obj.insert("total_ns", Json::Int(s.total_ns));
            obj.insert("min_ns", Json::Int(s.min_ns));
            obj.insert("max_ns", Json::Int(s.max_ns));
            spans.insert(path.clone(), obj);
        }
        root.insert("spans", spans);

        let mut sections = Json::object();
        for (name, value) in &self.sections {
            sections.insert(name.clone(), value.clone());
        }
        root.insert("sections", sections);
        root
    }

    /// Pretty-printed JSON document.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty_string()
    }

    /// Parse a report previously produced by [`to_json_string`]
    /// (`attach`ed sections round-trip as raw [`Json`]).
    ///
    /// [`to_json_string`]: PipelineReport::to_json_string
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let root = Json::parse(text)?;
        let version = root
            .get("version")
            .and_then(Json::as_u64)
            .ok_or("missing 'version'")?;
        if version != SCHEMA_VERSION {
            return Err(format!("unsupported schema version {version}"));
        }
        let enabled = matches!(root.get("enabled"), Some(Json::Bool(true)));

        let get_u64 = |obj: &Json, key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing integer field '{key}'"))
        };

        let mut counters = BTreeMap::new();
        if let Some(Json::Object(map)) = root.get("counters") {
            for (name, v) in map {
                counters.insert(
                    name.clone(),
                    v.as_u64()
                        .ok_or_else(|| format!("counter '{name}' not an integer"))?,
                );
            }
        }

        let mut histograms = BTreeMap::new();
        if let Some(Json::Object(map)) = root.get("histograms") {
            for (name, obj) in map {
                let mut buckets = Vec::new();
                if let Some(Json::Array(items)) = obj.get("buckets") {
                    for pair in items {
                        match pair {
                            Json::Array(p) if p.len() == 2 => buckets.push((
                                p[0].as_u64().ok_or("bad bucket bound")?,
                                p[1].as_u64().ok_or("bad bucket count")?,
                            )),
                            _ => return Err(format!("bad bucket entry in '{name}'")),
                        }
                    }
                }
                histograms.insert(
                    name.clone(),
                    HistogramSnapshot {
                        count: get_u64(obj, "count")?,
                        sum: get_u64(obj, "sum")?,
                        min: get_u64(obj, "min")?,
                        max: get_u64(obj, "max")?,
                        buckets,
                    },
                );
            }
        }

        let mut spans = BTreeMap::new();
        if let Some(Json::Object(map)) = root.get("spans") {
            for (path, obj) in map {
                spans.insert(
                    path.clone(),
                    SpanSnapshot {
                        count: get_u64(obj, "count")?,
                        total_ns: get_u64(obj, "total_ns")?,
                        min_ns: get_u64(obj, "min_ns")?,
                        max_ns: get_u64(obj, "max_ns")?,
                    },
                );
            }
        }

        let mut sections = BTreeMap::new();
        if let Some(Json::Object(map)) = root.get("sections") {
            for (name, value) in map {
                sections.insert(name.clone(), value.clone());
            }
        }

        Ok(PipelineReport {
            enabled,
            counters,
            histograms,
            spans,
            sections,
        })
    }

    /// Write the JSON document to `path`, creating parent directories.
    pub fn write_json(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json_string())
    }

    /// Render a human-readable table (counters, then histograms with
    /// percentile summaries, then spans — every section in name order, so
    /// output is byte-stable across runs with identical metrics).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "inl-obs pipeline report (telemetry {})\n",
            if self.enabled { "enabled" } else { "disabled" }
        ));

        if !self.counters.is_empty() {
            out.push_str("\ncounters\n");
            let width = self.counters.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<width$}  {v}\n"));
            }
        }

        if !self.histograms.is_empty() {
            out.push_str("\nhistograms\n");
            let width = self.histograms.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "  {name:<width$}  count={} sum={} min={} mean={:.1} p50≤{} p95≤{} p99≤{} max={}\n",
                    h.count,
                    h.sum,
                    h.min,
                    h.mean(),
                    h.p50(),
                    h.p95(),
                    h.p99(),
                    h.max
                ));
            }
        }

        if !self.spans.is_empty() {
            // Sorted by path (not by total time) so the rendering is
            // stable across runs and diffs cleanly, like the JSON.
            out.push_str("\nspans\n");
            let rows: Vec<_> = self.spans.iter().collect();
            let width = rows.iter().map(|(p, _)| p.len()).max().unwrap_or(0);
            for (path, s) in rows {
                out.push_str(&format!(
                    "  {path:<width$}  n={:<6} total={:<10} mean={:<10} max={}\n",
                    s.count,
                    fmt_ns(s.total_ns),
                    fmt_ns(s.mean_ns()),
                    fmt_ns(s.max_ns)
                ));
            }
        }

        for name in self.sections.keys() {
            out.push_str(&format!("\nsection '{name}' attached (see JSON output)\n"));
        }
        out
    }
}

/// Format nanoseconds with an adaptive unit (`412ns`, `13.2µs`, `4.7ms`,
/// `1.23s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> PipelineReport {
        let mut report = PipelineReport {
            enabled: true,
            ..Default::default()
        };
        report.counters.insert("depend.pairs_tested".into(), 9);
        report.counters.insert("legal.fast_path_hits".into(), 4);
        report.histograms.insert(
            "poly.fm.constraints".into(),
            HistogramSnapshot {
                count: 4,
                sum: 31,
                min: 2,
                max: 17,
                buckets: vec![(3, 1), (7, 2), (31, 1)],
            },
        );
        report.spans.insert(
            "codegen.generate/poly.feasibility".into(),
            SpanSnapshot {
                count: 12,
                total_ns: 83_120,
                min_ns: 401,
                max_ns: 22_010,
            },
        );
        let mut trace = Json::object();
        trace.insert("instances", Json::Int(385));
        report.attach("trace", trace);
        report
    }

    #[test]
    fn json_round_trip_is_exact() {
        let report = sample_report();
        let text = report.to_json_string();
        let back = PipelineReport::from_json_str(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn rejects_unknown_schema_version() {
        let text = sample_report()
            .to_json_string()
            .replace("\"version\": 1", "\"version\": 99");
        assert!(PipelineReport::from_json_str(&text).is_err());
    }

    #[test]
    fn table_lists_every_metric() {
        let table = sample_report().to_table();
        assert!(table.contains("depend.pairs_tested"));
        assert!(table.contains("poly.fm.constraints"));
        assert!(table.contains("codegen.generate/poly.feasibility"));
        assert!(table.contains("section 'trace'"));
    }

    #[test]
    fn capture_skips_never_fired_metrics() {
        let _l = crate::tests::TEST_LOCK.lock().unwrap();
        crate::set_enabled(true);
        crate::reset();
        let c = crate::counter("obs.test.capture.fired");
        let _zero = crate::counter("obs.test.capture.zero");
        c.add(2);
        let report = PipelineReport::capture();
        assert_eq!(report.counters.get("obs.test.capture.fired"), Some(&2));
        assert!(!report.counters.contains_key("obs.test.capture.zero"));
    }

    #[test]
    fn percentiles_walk_buckets() {
        let h = HistogramSnapshot {
            count: 100,
            sum: 0,
            min: 1,
            max: 1000,
            // 60 observations ≤ 7, 35 in (7, 127], 5 in (127, 1023]
            buckets: vec![(7, 60), (127, 35), (1023, 5)],
        };
        assert_eq!(h.p50(), 7);
        assert_eq!(h.p95(), 127);
        assert_eq!(h.p99(), 1000); // clamped from bucket ub 1023 to max
        assert_eq!(h.percentile(100.0), 1000);
        assert_eq!(HistogramSnapshot::default().p50(), 0);
        // Single observation: every percentile is that value.
        let one = HistogramSnapshot {
            count: 1,
            sum: 5,
            min: 5,
            max: 5,
            buckets: vec![(7, 1)],
        };
        assert_eq!(one.p50(), 5);
        assert_eq!(one.p99(), 5);
    }

    #[test]
    fn table_is_deterministic_and_name_ordered() {
        let mut report = sample_report();
        // A second span with *larger* total time but later name must not
        // move ahead of the first: ordering is by name, not by time.
        report.spans.insert(
            "exec.interpret".into(),
            SpanSnapshot {
                count: 1,
                total_ns: 9_999_999_999,
                min_ns: 1,
                max_ns: 1,
            },
        );
        let table = report.to_table();
        assert_eq!(table, report.to_table());
        let first = table.find("codegen.generate/poly.feasibility").unwrap();
        let second = table.find("exec.interpret").unwrap();
        assert!(first < second, "span rows must be in name order");
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(412), "412ns");
        assert_eq!(fmt_ns(13_200), "13.2µs");
        assert_eq!(fmt_ns(4_700_000), "4.7ms");
        assert_eq!(fmt_ns(1_230_000_000), "1.23s");
    }
}
