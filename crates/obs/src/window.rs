//! Sliding-window live metrics: a ring of time buckets over the last N
//! seconds, answering "what are the p50/p95/p99 latency, request rate,
//! and error rate *right now*" — the server-side source for the wire
//! `metrics` request and the `inl-top` dashboard.
//!
//! # Window math
//!
//! The window is a ring of `buckets` slots, each covering `bucket_ms`
//! milliseconds of wall time. An observation at time `t` (ms) belongs to
//! **epoch** `t / bucket_ms` and lands in slot `epoch % buckets`; a slot
//! holding an older epoch is zeroed on first touch (lazy rotation —
//! there is no background thread). A snapshot at time `t` merges every
//! slot whose epoch lies in `(epoch(t) - buckets, epoch(t)]`, i.e. the
//! current bucket plus the `buckets - 1` before it, so the window spans
//! at most `buckets × bucket_ms` milliseconds and stale buckets age out
//! purely by being skipped.
//!
//! Per-bucket state is bounded and fixed-size: scalar tallies, a
//! per-request-kind count map, and a 65-slot log₂ latency histogram
//! whose `u32` slots **saturate** rather than wrap, so a bucket absorbing
//! more than `u32::MAX` same-magnitude observations degrades percentile
//! resolution instead of corrupting it (`count`/`sum` stay exact in
//! `u64`). Merged percentiles reuse [`HistogramSnapshot`]'s rank walk,
//! so window percentiles and report percentiles share one definition.
//!
//! The rate denominator is `min(window span, elapsed + 1ms)`: a server
//! 3 s into its life reports requests-per-second over those 3 s, not
//! over a mostly-empty 60 s window.
//!
//! Time is injected: the public [`SlidingWindow::record`] /
//! [`SlidingWindow::snapshot`] pair reads a monotonic clock anchored at
//! construction, while the `*_at` variants take explicit milliseconds —
//! tests drive rotation and expiry with a simulated clock, no sleeping.

use crate::json::Json;
use crate::report::HistogramSnapshot;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// Default number of ring buckets (`60 × 1 s` = one minute of history).
pub const DEFAULT_BUCKETS: usize = 60;
/// Default width of one bucket in milliseconds.
pub const DEFAULT_BUCKET_MS: u64 = 1000;

/// One ring slot: tallies for a single `bucket_ms`-wide time epoch.
#[derive(Clone, Debug)]
struct Bucket {
    /// Which epoch this slot currently holds; `u64::MAX` = never used.
    epoch: u64,
    count: u64,
    errors: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
    by_kind: BTreeMap<&'static str, u64>,
    /// Log₂ latency histogram, same bucketing as the registry histograms:
    /// value 0 → slot 0, `v > 0` → slot `64 - v.leading_zeros()`.
    hist: [u32; 65],
}

impl Bucket {
    const fn empty() -> Self {
        Bucket {
            epoch: u64::MAX,
            count: 0,
            errors: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            by_kind: BTreeMap::new(),
            hist: [0u32; 65],
        }
    }

    fn reset_for(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.count = 0;
        self.errors = 0;
        self.sum_ns = 0;
        self.min_ns = u64::MAX;
        self.max_ns = 0;
        self.by_kind.clear();
        self.hist = [0u32; 65];
    }

    fn record(&mut self, kind: &'static str, latency_ns: u64, error: bool, n: u64) {
        self.count += n;
        if error {
            self.errors += n;
        }
        self.sum_ns = self.sum_ns.saturating_add(latency_ns.saturating_mul(n));
        self.min_ns = self.min_ns.min(latency_ns);
        self.max_ns = self.max_ns.max(latency_ns);
        *self.by_kind.entry(kind).or_insert(0) += n;
        let slot = (64 - latency_ns.leading_zeros()) as usize;
        let clamped = u32::try_from(n).unwrap_or(u32::MAX);
        self.hist[slot] = self.hist[slot].saturating_add(clamped);
    }
}

/// Ring of time buckets; see the module docs for the window math.
/// All methods take `&self` — interior mutability via one mutex, so one
/// instance can be shared by every server worker thread.
pub struct SlidingWindow {
    bucket_ms: u64,
    start: Instant,
    ring: Mutex<Vec<Bucket>>,
}

/// Point-in-time merge of the live buckets; see [`SlidingWindow::snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct WindowSnapshot {
    /// Maximum span the window covers, in milliseconds.
    pub window_ms: u64,
    /// Milliseconds actually represented (≤ `window_ms` early in life);
    /// the denominator of [`WindowSnapshot::req_per_sec`].
    pub covered_ms: u64,
    /// Observations inside the window.
    pub count: u64,
    /// Error observations inside the window.
    pub errors: u64,
    /// Merged latency histogram (empty when `count == 0`); carries the
    /// percentile logic.
    pub latency: HistogramSnapshot,
    /// Observation counts by request kind, name-ordered.
    pub by_kind: BTreeMap<&'static str, u64>,
}

impl WindowSnapshot {
    /// Requests per second over the covered span.
    pub fn req_per_sec(&self) -> f64 {
        self.count as f64 * 1000.0 / self.covered_ms.max(1) as f64
    }

    /// Errors as a fraction of observations (0.0 when empty).
    pub fn error_rate(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.errors as f64 / self.count as f64
        }
    }

    /// Render as the canonical `metrics` JSON section (version 1):
    ///
    /// ```json
    /// {
    ///   "version": 1,
    ///   "window_ms": 60000, "covered_ms": 3000,
    ///   "count": 120, "errors": 2,
    ///   "req_per_sec_milli": 40000, "error_rate_ppm": 16666,
    ///   "latency_ns": { "p50": 1023, "p95": 4095, "p99": 8191,
    ///                    "min": 712, "max": 8012, "mean": 1402 },
    ///   "by_kind": { "compile": 80, "run": 40 }
    /// }
    /// ```
    ///
    /// Rates are scaled integers (milli-requests/s, errors per million)
    /// so the document stays float-free and byte-deterministic for a
    /// given set of tallies.
    pub fn to_json(&self) -> Json {
        let mut root = Json::object();
        root.insert("version", Json::Int(1));
        root.insert("window_ms", Json::Int(self.window_ms));
        root.insert("covered_ms", Json::Int(self.covered_ms));
        root.insert("count", Json::Int(self.count));
        root.insert("errors", Json::Int(self.errors));
        root.insert(
            "req_per_sec_milli",
            Json::Int((self.req_per_sec() * 1000.0).round() as u64),
        );
        root.insert(
            "error_rate_ppm",
            Json::Int((self.error_rate() * 1_000_000.0).round() as u64),
        );
        let mut lat = Json::object();
        lat.insert("p50", Json::Int(self.latency.p50()));
        lat.insert("p95", Json::Int(self.latency.p95()));
        lat.insert("p99", Json::Int(self.latency.p99()));
        lat.insert("min", Json::Int(self.latency.min));
        lat.insert("max", Json::Int(self.latency.max));
        lat.insert("mean", Json::Int(self.latency.mean().round() as u64));
        root.insert("latency_ns", lat);
        let mut kinds = Json::object();
        for (&kind, &n) in &self.by_kind {
            kinds.insert(kind, Json::Int(n));
        }
        root.insert("by_kind", kinds);
        root
    }
}

impl Default for SlidingWindow {
    fn default() -> Self {
        SlidingWindow::new(DEFAULT_BUCKETS, DEFAULT_BUCKET_MS)
    }
}

impl SlidingWindow {
    /// A window of `buckets` ring slots, each `bucket_ms` wide (both
    /// clamped to ≥ 1). The wall clock is anchored now.
    pub fn new(buckets: usize, bucket_ms: u64) -> Self {
        SlidingWindow {
            bucket_ms: bucket_ms.max(1),
            start: Instant::now(),
            ring: Mutex::new(vec![Bucket::empty(); buckets.max(1)]),
        }
    }

    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// Record one observation at the internal clock's current time.
    pub fn record(&self, kind: &'static str, latency_ns: u64, error: bool) {
        self.record_at(self.now_ms(), kind, latency_ns, error);
    }

    /// Record one observation at an explicit time (test clock).
    pub fn record_at(&self, now_ms: u64, kind: &'static str, latency_ns: u64, error: bool) {
        self.record_n_at(now_ms, kind, latency_ns, error, 1);
    }

    /// Record `n` identical observations at an explicit time in one lock
    /// acquisition. `count`/`sum` stay exact in `u64`; the corresponding
    /// log₂ histogram slot saturates at `u32::MAX`.
    pub fn record_n_at(
        &self,
        now_ms: u64,
        kind: &'static str,
        latency_ns: u64,
        error: bool,
        n: u64,
    ) {
        if n == 0 {
            return;
        }
        let epoch = now_ms / self.bucket_ms;
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        let len = ring.len() as u64;
        let bucket = &mut ring[(epoch % len) as usize];
        if bucket.epoch != epoch {
            bucket.reset_for(epoch);
        }
        bucket.record(kind, latency_ns, error, n);
    }

    /// Merge the live buckets at the internal clock's current time.
    pub fn snapshot(&self) -> WindowSnapshot {
        self.snapshot_at(self.now_ms())
    }

    /// Merge the live buckets at an explicit time (test clock). Buckets
    /// whose epoch fell out of `(epoch(now) - buckets, epoch(now)]` are
    /// excluded — and an observation "from the future" of `now_ms` is
    /// excluded the same way, so a snapshot never reads ahead of its
    /// clock.
    pub fn snapshot_at(&self, now_ms: u64) -> WindowSnapshot {
        let epoch = now_ms / self.bucket_ms;
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        let len = ring.len() as u64;
        let window_ms = len * self.bucket_ms;

        let mut count = 0u64;
        let mut errors = 0u64;
        let mut sum_ns = 0u64;
        let mut min_ns = u64::MAX;
        let mut max_ns = 0u64;
        let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut hist = [0u64; 65];
        for bucket in ring.iter() {
            if bucket.epoch == u64::MAX || bucket.epoch > epoch || epoch - bucket.epoch >= len {
                continue;
            }
            count += bucket.count;
            errors += bucket.errors;
            sum_ns = sum_ns.saturating_add(bucket.sum_ns);
            min_ns = min_ns.min(bucket.min_ns);
            max_ns = max_ns.max(bucket.max_ns);
            for (&kind, &n) in &bucket.by_kind {
                *by_kind.entry(kind).or_insert(0) += n;
            }
            for (slot, &c) in bucket.hist.iter().enumerate() {
                hist[slot] += c as u64;
            }
        }
        let latency = HistogramSnapshot {
            count,
            sum: sum_ns,
            min: if count == 0 { 0 } else { min_ns },
            max: max_ns,
            buckets: hist
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(i, &c)| (if i == 0 { 0 } else { (1u128 << i) as u64 - 1 }, c))
                .collect(),
        };
        WindowSnapshot {
            window_ms,
            covered_ms: window_ms.min(now_ms.saturating_add(1)),
            count,
            errors,
            latency,
            by_kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SlidingWindow {
        SlidingWindow::new(4, 1000) // 4-second window, 1 s buckets
    }

    #[test]
    fn empty_window_has_zero_percentiles_and_rates() {
        let snap = small().snapshot_at(10_000);
        assert_eq!(snap.count, 0);
        assert_eq!(snap.latency.p50(), 0);
        assert_eq!(snap.latency.p99(), 0);
        assert_eq!(snap.latency.min, 0);
        assert_eq!(snap.req_per_sec(), 0.0);
        assert_eq!(snap.error_rate(), 0.0);
        assert!(snap.by_kind.is_empty());
        let j = snap.to_json();
        assert_eq!(j.get("count").and_then(Json::as_u64), Some(0));
        assert_eq!(
            j.get("latency_ns")
                .and_then(|l| l.get("p50"))
                .and_then(Json::as_u64),
            Some(0)
        );
    }

    #[test]
    fn buckets_expire_as_the_clock_advances() {
        let w = small();
        w.record_at(500, "compile", 1_000, false); // epoch 0
        w.record_at(1_500, "run", 2_000, false); // epoch 1
        let snap = w.snapshot_at(1_900);
        assert_eq!(snap.count, 2);
        assert_eq!(snap.by_kind["compile"], 1);
        assert_eq!(snap.by_kind["run"], 1);

        // Window is 4 buckets: at epoch 4 the epoch-0 bucket ages out...
        let snap = w.snapshot_at(4_200);
        assert_eq!(snap.count, 1);
        assert!(!snap.by_kind.contains_key("compile"));
        assert_eq!(snap.by_kind["run"], 1);
        // ...and at epoch 5 the epoch-1 bucket does too.
        let snap = w.snapshot_at(5_000);
        assert_eq!(snap.count, 0);

        // New traffic reclaims the stale ring slot (epoch 4 reuses slot 0).
        w.record_at(4_300, "explain", 3_000, true);
        let snap = w.snapshot_at(4_400);
        assert_eq!(snap.count, 2); // epoch-1 run + epoch-4 explain
        assert_eq!(snap.errors, 1);
        assert_eq!(snap.by_kind["explain"], 1);
    }

    #[test]
    fn snapshot_excludes_observations_ahead_of_its_clock() {
        let w = small();
        w.record_at(3_500, "compile", 1_000, false);
        let snap = w.snapshot_at(1_000); // clock behind the observation
        assert_eq!(snap.count, 0);
    }

    #[test]
    fn percentiles_and_rates_over_live_buckets() {
        let w = small();
        // 90 fast (≤1023ns) + 10 slow (≤65535ns) in one second.
        for i in 0..90 {
            w.record_at(i, "run", 1_000, false);
        }
        for i in 0..10 {
            w.record_at(500 + i, "run", 60_000, i < 2);
        }
        let snap = w.snapshot_at(999);
        assert_eq!(snap.count, 100);
        assert_eq!(snap.errors, 2);
        assert_eq!(snap.latency.p50(), 1_023);
        assert_eq!(snap.latency.p95(), 60_000); // bucket ub clamped to max
        assert_eq!(snap.latency.max, 60_000);
        assert_eq!(snap.covered_ms, 1_000);
        assert!((snap.req_per_sec() - 100.0).abs() < 1e-9);
        assert!((snap.error_rate() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn covered_span_is_clamped_to_window_and_elapsed() {
        let w = small();
        w.record_at(100, "run", 1_000, false);
        // 101 ms into life: rate denominator is the elapsed time.
        assert_eq!(w.snapshot_at(100).covered_ms, 101);
        // Deep into life: denominator is the full 4 s window.
        assert_eq!(w.snapshot_at(100_000).covered_ms, 4_000);
    }

    #[test]
    fn per_bucket_histogram_saturates_without_corrupting_totals() {
        let w = SlidingWindow::new(2, 1000);
        let n = u32::MAX as u64 + 10_000;
        w.record_n_at(10, "run", 1_000, false, n);
        let snap = w.snapshot_at(20);
        // Exact tallies survive in u64...
        assert_eq!(snap.count, n);
        assert_eq!(snap.by_kind["run"], n);
        // ...while the histogram slot pinned at u32::MAX still yields
        // sane (resolution-degraded, not wrapped) percentiles.
        assert_eq!(snap.latency.buckets, vec![(1_023, u32::MAX as u64)]);
        assert_eq!(snap.latency.p50(), 1_000); // ub 1023 clamped to max
        assert!(snap.latency.p99() <= 1_023);
    }

    #[test]
    fn bulk_record_matches_repeated_singles() {
        let bulk = SlidingWindow::new(4, 1000);
        let singles = SlidingWindow::new(4, 1000);
        bulk.record_n_at(100, "run", 5_000, true, 7);
        for _ in 0..7 {
            singles.record_at(100, "run", 5_000, true);
        }
        let (a, b) = (bulk.snapshot_at(200), singles.snapshot_at(200));
        assert_eq!(a, b);
        assert_eq!(
            a.to_json().to_pretty_string(),
            b.to_json().to_pretty_string()
        );
    }

    #[test]
    fn shared_across_threads() {
        let w = std::sync::Arc::new(SlidingWindow::new(8, 1000));
        std::thread::scope(|s| {
            for t in 0..4 {
                let w = std::sync::Arc::clone(&w);
                s.spawn(move || {
                    for i in 0..100 {
                        w.record_at(
                            i * 10,
                            if t % 2 == 0 { "compile" } else { "run" },
                            100,
                            false,
                        );
                    }
                });
            }
        });
        let snap = w.snapshot_at(1_000);
        assert_eq!(snap.count, 400);
        assert_eq!(snap.by_kind["compile"], 200);
        assert_eq!(snap.by_kind["run"], 200);
    }

    #[test]
    fn internal_clock_paths_record_and_snapshot() {
        let w = SlidingWindow::default();
        w.record("compile", 1_000, false);
        w.record("compile", 2_000, true);
        let snap = w.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.errors, 1);
        assert_eq!(snap.window_ms, 60_000);
        assert!(snap.req_per_sec() > 0.0);
    }
}
