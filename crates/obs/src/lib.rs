//! # inl-obs
//!
//! Observability for the `inl` transformation pipeline: scoped wall-time
//! **spans**, monotonic **counters**, and log₂-bucketed **histograms**,
//! aggregated in a process-wide registry and rendered as a
//! [`PipelineReport`] (human-readable table or JSON).
//!
//! The layer is built to be *always on*:
//!
//! * every instrument checks a single relaxed atomic and is a no-op while
//!   telemetry is disabled (the default);
//! * enabling costs one `Instant::now()` pair per span, one `fetch_add`
//!   per counter bump (handles are cached at the call site by the
//!   [`counter_add!`]/[`hist_record!`] macros), and one short mutex
//!   acquisition per span *exit* — cheap enough that hot interpreter
//!   loops budget under 5 % overhead (measured by
//!   `cargo run --release -p inl-bench --bin report`).
//!
//! Telemetry is switched on by calling [`set_enabled`]`(true)` or by
//! setting the `INL_OBS` environment variable to `1`/`true`/`on` before
//! the first instrument fires. Setting `INL_OBS_JSON=<path>` additionally
//! enables telemetry in *any* binary and dumps the [`PipelineReport`]
//! JSON to `<path>` at process exit (no code changes required).
//!
//! A second, independent layer — the [`timeline`] — records timestamped
//! events into bounded per-thread ring buffers and exports Chrome
//! trace-event JSON (viewable in Perfetto / `chrome://tracing`). It is
//! enabled by `INL_TRACE=1` / [`set_timeline_enabled`], and
//! `INL_TRACE_JSON=<path>` dumps the trace at process exit.
//!
//! A third layer — [`explain`] — records *decision provenance*: why each
//! candidate transformation was legal or rejected, with the dependence
//! evidence and cost features behind every verdict. It is enabled by
//! `INL_EXPLAIN=1` / [`set_explain_enabled`], and
//! `INL_EXPLAIN_JSON=<path>` dumps the record store at process exit.
//!
//! A fourth concern — request-scoped [`capture`] — reuses the same
//! instruments to attribute counters, span durations, and explain
//! verdicts to *one request* (the compile service streams the result
//! back to clients), and the [`window`] module aggregates per-request
//! latencies into a sliding window of live percentiles. All layers share
//! one flag byte, so "everything disabled" still costs exactly one
//! relaxed atomic load per instrument.
//!
//! Spans nest: a span opened while another span is open on the same
//! thread is recorded under the path `outer/inner`, so solver time inside
//! a pipeline stage (`codegen.generate/poly.feasibility`) is attributed
//! to that stage. There are no external dependencies — JSON is emitted
//! and parsed by the [`json`] module.

#![warn(missing_docs)]

pub mod capture;
pub mod diff;
pub mod explain;
pub mod json;
pub mod report;
pub mod timeline;
pub mod window;

pub use json::{Json, JsonError, ParseLimits};
pub use report::{HistogramSnapshot, PipelineReport, SpanSnapshot};

use std::cell::RefCell;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------- enabling

/// Flag bit: aggregate telemetry (spans/counters/histograms).
pub(crate) const FLAG_OBS: u8 = 1;
/// Flag bit: timeline event recording.
pub(crate) const FLAG_TIMELINE: u8 = 2;
/// Flag bit: decision-provenance (explain) recording.
pub(crate) const FLAG_EXPLAIN: u8 = 4;
/// Flag bit: at least one request-scoped [`capture`] is active somewhere
/// in the process (raised/lowered by `capture::with`, never by env).
pub(crate) const FLAG_CAPTURE: u8 = 8;

/// JSON dump paths read from the environment at first-instrument time;
/// written at process exit by the `atexit` hook.
static EXIT_OBS_JSON: OnceLock<Option<PathBuf>> = OnceLock::new();
static EXIT_TRACE_JSON: OnceLock<Option<PathBuf>> = OnceLock::new();
static EXIT_EXPLAIN_JSON: OnceLock<Option<PathBuf>> = OnceLock::new();

fn env_on(name: &str) -> bool {
    matches!(
        std::env::var(name).ok().as_deref(),
        Some("1") | Some("true") | Some("on")
    )
}

fn env_path(name: &str) -> Option<PathBuf> {
    std::env::var_os(name)
        .filter(|v| !v.is_empty())
        .map(PathBuf::from)
}

/// Parse a numeric environment variable, warning **once per variable** to
/// stderr when the value is set but malformed (previously such values
/// were silently ignored). Unset variables and valid values never warn;
/// malformed or zero values fall back to `default`.
pub fn env_usize(name: &str, default: usize) -> usize {
    let Ok(raw) = std::env::var(name) else {
        return default;
    };
    match raw.trim().parse::<usize>() {
        Ok(v) if v > 0 => v,
        _ => {
            warn_once(name, &raw, default);
            default
        }
    }
}

/// Emit the malformed-env warning at most once per variable name per
/// process, even if the variable is parsed from several call sites.
fn warn_once(name: &str, raw: &str, default: usize) {
    static WARNED: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    let mut warned = WARNED
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    if warned.iter().any(|n| n == name) {
        return;
    }
    warned.push(name.to_string());
    eprintln!(
        "inl-obs: ignoring malformed {name}={raw:?} (expected a positive integer); \
         using default {default}"
    );
}

/// Dump telemetry/trace JSON for `INL_OBS_JSON` / `INL_TRACE_JSON`.
/// Runs via `atexit`, so it must never unwind.
extern "C" fn exit_dump() {
    let _ = std::panic::catch_unwind(|| {
        if let Some(Some(path)) = EXIT_OBS_JSON.get() {
            let _ = PipelineReport::capture().write_json(path);
        }
        if let Some(Some(path)) = EXIT_TRACE_JSON.get() {
            let _ = timeline::write_chrome_trace(path);
        }
        if let Some(Some(path)) = EXIT_EXPLAIN_JSON.get() {
            let _ = explain::write_json(path);
        }
    });
}

#[cfg(unix)]
fn register_exit_dump() {
    extern "C" {
        fn atexit(cb: extern "C" fn()) -> i32;
    }
    unsafe {
        atexit(exit_dump);
    }
}

#[cfg(not(unix))]
fn register_exit_dump() {
    // No portable exit hook without libc; the env-dump feature is inert.
    let _ = exit_dump;
}

fn flags_cell() -> &'static AtomicU8 {
    static FLAGS: OnceLock<AtomicU8> = OnceLock::new();
    FLAGS.get_or_init(|| {
        // Anchor the timeline epoch before any event can be recorded.
        timeline::epoch();
        let mut f = 0u8;
        if env_on("INL_OBS") {
            f |= FLAG_OBS;
        }
        if env_on("INL_TRACE") {
            f |= FLAG_TIMELINE;
        }
        if env_on("INL_EXPLAIN") {
            f |= FLAG_EXPLAIN;
        }
        let obs_json = env_path("INL_OBS_JSON");
        let trace_json = env_path("INL_TRACE_JSON");
        let explain_json = env_path("INL_EXPLAIN_JSON");
        // A dump path implies the matching layer: collecting nothing and
        // then writing an empty file would be useless.
        if obs_json.is_some() {
            f |= FLAG_OBS;
        }
        if trace_json.is_some() {
            f |= FLAG_TIMELINE;
        }
        if explain_json.is_some() {
            f |= FLAG_EXPLAIN;
        }
        let want_dump = obs_json.is_some() || trace_json.is_some() || explain_json.is_some();
        let _ = EXIT_OBS_JSON.set(obs_json);
        let _ = EXIT_TRACE_JSON.set(trace_json);
        let _ = EXIT_EXPLAIN_JSON.set(explain_json);
        if want_dump {
            register_exit_dump();
        }
        AtomicU8::new(f)
    })
}

/// Both layer flags in one relaxed load.
#[inline]
pub(crate) fn flags() -> u8 {
    flags_cell().load(Ordering::Relaxed)
}

/// True iff telemetry collection is on. All instruments are no-ops when
/// this is false; the check is a single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    flags() & FLAG_OBS != 0
}

/// True iff timeline event recording is on (one relaxed atomic load).
#[inline]
pub fn timeline_enabled() -> bool {
    flags() & FLAG_TIMELINE != 0
}

/// True iff decision-provenance (explain) recording is on (one relaxed
/// atomic load). Call sites should gate evidence-string construction on
/// this so the disabled path stays free.
#[inline]
pub fn explain_enabled() -> bool {
    flags() & FLAG_EXPLAIN != 0
}

/// Turn telemetry collection on or off at runtime (overrides `INL_OBS`).
/// The timeline flag is unaffected.
pub fn set_enabled(on: bool) {
    if on {
        flags_cell().fetch_or(FLAG_OBS, Ordering::Relaxed);
    } else {
        flags_cell().fetch_and(!FLAG_OBS, Ordering::Relaxed);
    }
}

/// Turn timeline recording on or off at runtime (overrides `INL_TRACE`).
/// The aggregate-telemetry flag is unaffected.
pub fn set_timeline_enabled(on: bool) {
    if on {
        flags_cell().fetch_or(FLAG_TIMELINE, Ordering::Relaxed);
    } else {
        flags_cell().fetch_and(!FLAG_TIMELINE, Ordering::Relaxed);
    }
}

/// Turn decision-provenance recording on or off at runtime (overrides
/// `INL_EXPLAIN`). The other two layer flags are unaffected.
pub fn set_explain_enabled(on: bool) {
    if on {
        flags_cell().fetch_or(FLAG_EXPLAIN, Ordering::Relaxed);
    } else {
        flags_cell().fetch_and(!FLAG_EXPLAIN, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------- registry

#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct SpanStats {
    pub count: u64,
    pub total_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
}

pub(crate) struct HistogramInner {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    /// `buckets[i]` counts values whose bit length is `i`, i.e. value 0
    /// lands in bucket 0 and value `v > 0` in bucket `64 - v.leading_zeros()`
    /// (upper bound `2^i - 1`).
    buckets: [AtomicU64; 65],
}

impl HistogramInner {
    fn new() -> Self {
        HistogramInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [0u64; 65].map(AtomicU64::new),
        }
    }

    fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        let b = (64 - v.leading_zeros()) as usize;
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let c = b.load(Ordering::Relaxed);
                    (c > 0).then(|| (if i == 0 { 0 } else { (1u128 << i) as u64 - 1 }, c))
                })
                .collect(),
        }
    }
}

pub(crate) struct Registry {
    pub(crate) counters: Mutex<HashMap<&'static str, Arc<AtomicU64>>>,
    pub(crate) histograms: Mutex<HashMap<&'static str, Arc<HistogramInner>>>,
    pub(crate) spans: Mutex<HashMap<String, SpanStats>>,
}

pub(crate) fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(|| Registry {
        counters: Mutex::new(HashMap::new()),
        histograms: Mutex::new(HashMap::new()),
        spans: Mutex::new(HashMap::new()),
    })
}

/// Zero every counter and histogram and drop all span statistics.
/// Counter/histogram *handles* cached at call sites stay valid — their
/// values restart from zero.
pub fn reset() {
    let reg = registry();
    for c in reg.counters.lock().unwrap().values() {
        c.store(0, Ordering::Relaxed);
    }
    for h in reg.histograms.lock().unwrap().values() {
        h.reset();
    }
    reg.spans.lock().unwrap().clear();
}

// ---------------------------------------------------------------- counters

/// Handle to a named monotonic counter. Cheap to clone; `add` is one
/// relaxed `fetch_add`.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The subset of the flag byte that arms counter/span instruments:
/// aggregate telemetry and request-scoped capture. One relaxed load.
#[doc(hidden)]
#[inline]
pub fn instrument_flags() -> u8 {
    flags() & (FLAG_OBS | FLAG_CAPTURE)
}

/// Route one counter bump to the layers named in `flags` (the global
/// registry and/or the thread's active [`capture`]). Support for the
/// [`counter_add!`] expansion — not part of the public API surface.
#[doc(hidden)]
pub fn dispatch_counter(flags: u8, cell: &'static OnceLock<Counter>, name: &'static str, n: u64) {
    if flags & FLAG_OBS != 0 {
        cell.get_or_init(|| counter(name)).add(n);
    }
    if flags & FLAG_CAPTURE != 0 {
        capture::record_counter(name, n);
    }
}

/// Look up (or create) the counter `name`. Call sites on hot paths should
/// cache the handle — the [`counter_add!`] macro does this with a
/// function-local `OnceLock`.
pub fn counter(name: &'static str) -> Counter {
    let mut map = registry().counters.lock().unwrap();
    Counter(
        map.entry(name)
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone(),
    )
}

/// Convenience: the counter's current value (0 if it never fired).
pub fn counter_value(name: &'static str) -> u64 {
    registry()
        .counters
        .lock()
        .unwrap()
        .get(name)
        .map_or(0, |c| c.load(Ordering::Relaxed))
}

/// Bump counter `$name` by `$n` iff aggregate telemetry is enabled or a
/// request-scoped [`capture`] is active (one relaxed load when both are
/// off). The registry handle is resolved once per call site and cached
/// in a local `OnceLock`; the bump additionally lands in this thread's
/// capture while one is open.
#[macro_export]
macro_rules! counter_add {
    ($name:literal, $n:expr) => {{
        let __obs_flags = $crate::instrument_flags();
        if __obs_flags != 0 {
            static __OBS_COUNTER: ::std::sync::OnceLock<$crate::Counter> =
                ::std::sync::OnceLock::new();
            $crate::dispatch_counter(__obs_flags, &__OBS_COUNTER, $name, $n as u64);
        }
    }};
}

// -------------------------------------------------------------- histograms

/// Handle to a named log₂ histogram. Cheap to clone; `record` is four
/// relaxed atomic ops plus one bucket increment.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.record(v);
    }
}

/// Look up (or create) the histogram `name`.
pub fn histogram(name: &'static str) -> Histogram {
    let mut map = registry().histograms.lock().unwrap();
    Histogram(
        map.entry(name)
            .or_insert_with(|| Arc::new(HistogramInner::new()))
            .clone(),
    )
}

/// Record `$v` into histogram `$name` iff telemetry is enabled, caching
/// the handle like [`counter_add!`].
#[macro_export]
macro_rules! hist_record {
    ($name:literal, $v:expr) => {
        if $crate::enabled() {
            static __OBS_HIST: ::std::sync::OnceLock<$crate::Histogram> =
                ::std::sync::OnceLock::new();
            __OBS_HIST
                .get_or_init(|| $crate::histogram($name))
                .record($v as u64);
        }
    };
}

// ------------------------------------------------------------------- spans

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// How many spans are open on this thread right now (capture uses this
/// to make its stage paths envelope-relative).
pub(crate) fn span_stack_depth() -> usize {
    SPAN_STACK.with(|s| s.borrow().len())
}

/// RAII guard for a scoped span; created by [`span`]. Dropping it records
/// the elapsed wall time under the thread's current nesting path, and —
/// when the timeline layer is on — a matching timeline slice.
#[must_use = "a span measures the scope it is bound to; bind it to a variable"]
pub struct SpanGuard {
    start: Option<Instant>,
    name: &'static str,
    /// Which layers to record into on drop ([`FLAG_OBS`] |
    /// [`FLAG_TIMELINE`] | [`FLAG_CAPTURE`], as sampled at open).
    record: u8,
}

/// Open a scoped span. While every layer is disabled this is a no-op
/// (the guard holds no timestamp). Nested spans on the same thread record
/// under `outer/inner` paths — into the global registry when aggregate
/// telemetry is on, into the thread's [`capture`] when one is open — and
/// with the timeline enabled the span also becomes a Chrome-trace slice
/// under its bare name.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    let record = flags();
    if record == 0 {
        return SpanGuard {
            start: None,
            name,
            record,
        };
    }
    if record & (FLAG_OBS | FLAG_CAPTURE) != 0 {
        SPAN_STACK.with(|s| s.borrow_mut().push(name));
    }
    SpanGuard {
        start: Some(Instant::now()),
        name,
        record,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let ns = start.elapsed().as_nanos() as u64;
        if self.record & FLAG_TIMELINE != 0 {
            timeline::complete_from(self.name, start, ns);
        }
        if self.record & (FLAG_OBS | FLAG_CAPTURE) == 0 {
            return;
        }
        let path = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            // guards normally drop in LIFO order; tolerate surprises
            if stack.last() == Some(&self.name) {
                stack.pop();
            } else if let Some(i) = stack.iter().rposition(|&n| n == self.name) {
                stack.remove(i);
            }
            path
        });
        if self.record & FLAG_CAPTURE != 0 {
            capture::record_span(&path, ns);
        }
        if self.record & FLAG_OBS == 0 {
            return;
        }
        let mut spans = registry().spans.lock().unwrap();
        let st = spans.entry(path).or_insert(SpanStats {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        });
        st.count += 1;
        st.total_ns += ns;
        st.min_ns = st.min_ns.min(ns);
        st.max_ns = st.max_ns.max(ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The enabled flag is process-global; tests toggling it must not run
    /// concurrently with each other.
    pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_instruments_are_noops() {
        let _l = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        let _g = span("obs.test.noop");
        drop(_g);
        counter_add!("obs.test.noop.counter", 5);
        hist_record!("obs.test.noop.hist", 5);
        assert_eq!(counter_value("obs.test.noop.counter"), 0);
        assert!(!registry()
            .spans
            .lock()
            .unwrap()
            .contains_key("obs.test.noop"));
    }

    #[test]
    fn counter_and_histogram_basics() {
        let _l = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        let c = counter("obs.test.basic.counter");
        c.add(3);
        c.add(4);
        assert_eq!(counter_value("obs.test.basic.counter"), 7);
        let h = histogram("obs.test.basic.hist");
        h.record(0);
        h.record(1);
        h.record(100);
        let snap = registry().histograms.lock().unwrap()["obs.test.basic.hist"].snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum, 101);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 100);
        // 0 → bucket ub 0, 1 → ub 1, 100 → ub 127
        assert_eq!(snap.buckets, vec![(0, 1), (1, 1), (127, 1)]);
    }

    #[test]
    fn reset_keeps_cached_handles_live() {
        let _l = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        let c = counter("obs.test.reset.counter");
        c.add(10);
        reset();
        assert_eq!(counter_value("obs.test.reset.counter"), 0);
        c.add(2);
        assert_eq!(counter_value("obs.test.reset.counter"), 2);
    }
}
