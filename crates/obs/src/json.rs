//! Dependency-free JSON value type with a pretty serializer and a small
//! recursive-descent parser.
//!
//! The build environment has no registry access, so `serde_json` is not
//! available; telemetry reports instead build [`Json`] trees by hand.
//! Integers are kept exact (`Json::Int` holds a `u64`) so that metric
//! values survive a serialize/parse round trip bit-for-bit — important
//! for the report round-trip tests and for downstream tooling diffing
//! telemetry files.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// Resource limits for [`Json::parse_with_limits`].
///
/// The parser is recursive-descent, so adversarial input — a megabyte of
/// `[[[[…` from an untrusted socket — could otherwise exhaust the stack
/// or force a huge allocation. Both limits report a typed [`JsonError`]
/// instead of crashing. [`Json::parse`] uses [`ParseLimits::default`],
/// which is generous enough for every artifact this workspace writes;
/// wire-facing callers (the `inl-proto` decoder) pass tighter ones.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum input length in bytes; longer documents fail upfront with
    /// [`JsonError::TooLong`] before any parsing work.
    pub max_len: usize,
    /// Maximum container nesting depth (arrays + objects); exceeding it
    /// fails with [`JsonError::TooDeep`] instead of deep recursion.
    pub max_depth: usize,
}

impl Default for ParseLimits {
    fn default() -> Self {
        ParseLimits {
            max_len: usize::MAX,
            max_depth: 512,
        }
    }
}

/// Typed JSON parse failure; see [`Json::parse_with_limits`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JsonError {
    /// The document exceeds [`ParseLimits::max_len`] bytes.
    TooLong {
        /// Actual input length.
        len: usize,
        /// The configured limit.
        max: usize,
    },
    /// Container nesting exceeds [`ParseLimits::max_depth`].
    TooDeep {
        /// The configured limit.
        max: usize,
    },
    /// Any other syntax error, with a byte-position message.
    Syntax(String),
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::TooLong { len, max } => {
                write!(f, "input of {len} bytes exceeds the {max}-byte limit")
            }
            JsonError::TooDeep { max } => {
                write!(f, "nesting exceeds the depth limit of {max}")
            }
            JsonError::Syntax(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for JsonError {}

fn syn(msg: impl Into<String>) -> JsonError {
    JsonError::Syntax(msg.into())
}

/// A JSON value. Object keys are ordered (`BTreeMap`) so serialized
/// output is deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integers (all inl-obs metrics are u64 counts/nanos).
    Int(u64),
    /// Floating-point numbers (ratios, speedups).
    Float(f64),
    /// A string.
    Str(String),
    /// An array of values.
    Array(Vec<Json>),
    /// An object; `BTreeMap` keeps serialized key order deterministic.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Convenience: an empty object.
    pub fn object() -> Json {
        Json::Object(BTreeMap::new())
    }

    /// Insert into an object; panics if `self` is not an object.
    pub fn insert(&mut self, key: impl Into<String>, value: Json) {
        match self {
            Json::Object(map) => {
                map.insert(key.into(), value);
            }
            _ => panic!("Json::insert on non-object"),
        }
    }

    /// Look up a key in an object, `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Integer value, if this is `Json::Int`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is `Json::Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let text = f.to_string();
                    out.push_str(&text);
                    // `{}` omits ".0" for integral floats; keep the
                    // float/int distinction visible so parse() restores
                    // the same variant.
                    if !text.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Supports the subset this crate emits
    /// (which is all of JSON except exotic number forms beyond f64).
    /// Uses [`ParseLimits::default`]; errors flatten to strings.
    pub fn parse(text: &str) -> Result<Json, String> {
        Json::parse_with_limits(text, &ParseLimits::default()).map_err(|e| e.to_string())
    }

    /// Parse a JSON document under explicit resource limits, reporting a
    /// typed [`JsonError`]. This is the entry point for *untrusted* input
    /// (the wire decoder): over-length documents and over-deep nesting
    /// fail deterministically instead of exhausting memory or stack.
    pub fn parse_with_limits(text: &str, limits: &ParseLimits) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        if bytes.len() > limits.max_len {
            return Err(JsonError::TooLong {
                len: bytes.len(),
                max: limits.max_len,
            });
        }
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0, limits)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(syn(format!("trailing data at byte {pos}")));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(syn(format!("expected '{}' at byte {}", byte as char, *pos)))
    }
}

fn parse_value(
    bytes: &[u8],
    pos: &mut usize,
    depth: usize,
    limits: &ParseLimits,
) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(syn("unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            if depth >= limits.max_depth {
                return Err(JsonError::TooDeep {
                    max: limits.max_depth,
                });
            }
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1, limits)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(syn(format!("expected ',' or ']' at byte {}", *pos))),
                }
            }
        }
        Some(b'{') => {
            if depth >= limits.max_depth {
                return Err(JsonError::TooDeep {
                    max: limits.max_depth,
                });
            }
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos, depth + 1, limits)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(map));
                    }
                    _ => return Err(syn(format!("expected ',' or '}}' at byte {}", *pos))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(syn(format!("invalid literal at byte {}", *pos)))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(syn("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| syn("truncated \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| syn("bad \\u escape"))?,
                            16,
                        )
                        .map_err(|_| syn("bad \\u escape"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(syn(format!("bad escape at byte {}", *pos))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume the whole run up to the next quote or escape in
                // one slice: validating per-character re-scanned the entire
                // remaining input each time, which made parsing large
                // artifacts (multi-MB explain files) quadratic.
                let start = *pos;
                while let Some(&b) = bytes.get(*pos) {
                    if b == b'"' || b == b'\\' {
                        break;
                    }
                    *pos += 1;
                }
                let run =
                    std::str::from_utf8(&bytes[start..*pos]).map_err(|_| syn("invalid utf-8"))?;
                out.push_str(run);
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| syn("invalid number"))?;
    if text.is_empty() {
        return Err(syn(format!("expected value at byte {start}")));
    }
    // JSON forbids a leading '+' even though Rust's number parsers accept it.
    if text.starts_with('+') {
        return Err(syn(format!("invalid number '{text}'")));
    }
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Json::Int(n));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| syn(format!("invalid number '{text}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let mut obj = Json::object();
        obj.insert(
            "name",
            Json::Str("quote \" slash \\ newline \n ctrl \u{1}".into()),
        );
        obj.insert("count", Json::Int(u64::MAX));
        obj.insert("ratio", Json::Float(0.125));
        obj.insert("flag", Json::Bool(true));
        obj.insert("missing", Json::Null);
        obj.insert(
            "buckets",
            Json::Array(vec![
                Json::Array(vec![Json::Int(0), Json::Int(1)]),
                Json::Array(vec![Json::Int(127), Json::Int(3)]),
            ]),
        );
        let text = obj.to_pretty_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, obj);
    }

    #[test]
    fn parses_whitespace_and_empty_containers() {
        let parsed = Json::parse(" { \"a\" : [ ] , \"b\" : { } } ").unwrap();
        assert_eq!(parsed.get("a"), Some(&Json::Array(vec![])));
        assert_eq!(parsed.get("b"), Some(&Json::object()));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("[1,]").is_err());
    }

    #[test]
    fn length_limit_is_a_typed_error() {
        let limits = ParseLimits {
            max_len: 8,
            max_depth: 512,
        };
        let doc = r#"{"key": 123456789}"#;
        assert_eq!(
            Json::parse_with_limits(doc, &limits),
            Err(JsonError::TooLong {
                len: doc.len(),
                max: 8
            })
        );
        // At or under the limit, the same limits parse fine.
        assert_eq!(
            Json::parse_with_limits("12345678", &limits),
            Ok(Json::Int(12345678))
        );
    }

    #[test]
    fn depth_limit_is_a_typed_error_not_a_stack_overflow() {
        let limits = ParseLimits {
            max_len: usize::MAX,
            max_depth: 16,
        };
        // Exactly at the limit: 16 nested arrays parse.
        let ok = format!("{}7{}", "[".repeat(16), "]".repeat(16));
        assert!(Json::parse_with_limits(&ok, &limits).is_ok());
        // One deeper: typed error.
        let deep = format!("{}7{}", "[".repeat(17), "]".repeat(17));
        assert_eq!(
            Json::parse_with_limits(&deep, &limits),
            Err(JsonError::TooDeep { max: 16 })
        );
        // Objects count toward the same depth budget, and a *massively*
        // over-deep document (which would overflow the stack with no
        // limit) still errors cleanly.
        let mixed = format!("{}{}", r#"{"a": "#.repeat(17), "1");
        assert_eq!(
            Json::parse_with_limits(&mixed, &limits),
            Err(JsonError::TooDeep { max: 16 })
        );
        let hostile = "[".repeat(10_000_000);
        assert_eq!(
            Json::parse_with_limits(&hostile, &limits),
            Err(JsonError::TooDeep { max: 16 })
        );
    }

    #[test]
    fn json_error_display_is_descriptive() {
        let e = JsonError::TooLong { len: 10, max: 4 };
        assert!(e.to_string().contains("10 bytes"), "{e}");
        let e = JsonError::TooDeep { max: 4 };
        assert!(e.to_string().contains("depth limit of 4"), "{e}");
    }
}
