//! Integration tests: the telemetry layer observed from outside the crate,
//! including a run of the real transformation pipeline.
//!
//! The enabled flag and the registry are process-global, so every test
//! serializes on one lock and resets the registry before measuring.

use inl_obs::{set_enabled, PipelineReport};
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

/// Hold the lock (poison-tolerant), enable telemetry, start clean.
fn begin() -> std::sync::MutexGuard<'static, ()> {
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_enabled(true);
    inl_obs::reset();
    guard
}

#[test]
fn counters_and_histograms_aggregate_across_threads() {
    let _g = begin();
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 1000;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    inl_obs::counter_add!("test.cross.count", 1);
                    inl_obs::hist_record!("test.cross.hist", t * PER_THREAD + i);
                }
            });
        }
    });
    let report = PipelineReport::capture();
    assert_eq!(report.counters["test.cross.count"], THREADS * PER_THREAD);
    let h = &report.histograms["test.cross.hist"];
    assert_eq!(h.count, THREADS * PER_THREAD);
    // sum of 0..8000
    let n = THREADS * PER_THREAD;
    assert_eq!(h.sum, n * (n - 1) / 2);
    assert_eq!(h.min, 0);
    assert_eq!(h.max, n - 1);
    assert_eq!(h.buckets.iter().map(|&(_, c)| c).sum::<u64>(), n);
    set_enabled(false);
}

#[test]
fn span_nesting_builds_slash_separated_paths() {
    let _g = begin();
    {
        let _outer = inl_obs::span("outer");
        {
            let _inner = inl_obs::span("inner");
            std::hint::black_box(0);
        }
        {
            let _inner = inl_obs::span("inner");
            std::hint::black_box(0);
        }
    }
    let report = PipelineReport::capture();
    assert_eq!(report.spans["outer"].count, 1);
    assert_eq!(report.spans["outer/inner"].count, 2);
    assert!(
        !report.spans.contains_key("inner"),
        "inner must nest under outer"
    );
    assert!(report.spans["outer"].total_ns >= report.spans["outer/inner"].total_ns);
    set_enabled(false);
}

#[test]
fn report_json_round_trips_through_text() {
    let _g = begin();
    inl_obs::counter_add!("test.rt.counter", 42);
    inl_obs::hist_record!("test.rt.hist", 7);
    {
        let _s = inl_obs::span("test.rt.span");
    }
    let mut report = PipelineReport::capture();
    report.attach("note", inl_obs::Json::Str("round trip".into()));
    let text = report.to_json_string();
    let back = PipelineReport::from_json_str(&text).expect("parse back");
    assert_eq!(report, back);
    set_enabled(false);
}

#[test]
fn quickstart_pipeline_fires_every_stage_family() {
    use inl_codegen::generate;
    use inl_core::depend::analyze;
    use inl_core::instance::InstanceLayout;
    use inl_core::legal::check_legal;
    use inl_core::transform::Transform;
    use inl_exec::{Interpreter, Machine};
    use inl_ir::zoo;

    let _g = begin();
    // A warm poly query cache would answer everything without running FM,
    // zeroing the counters this test pins — start from a cold cache.
    inl_poly::cache::clear();

    let p = zoo::simple_cholesky();
    let layout = InstanceLayout::new(&p);
    let deps = analyze(&p, &layout).expect("analysis");
    let loops: Vec<_> = p.loops().collect();
    let m = Transform::compose(
        &p,
        &layout,
        &[
            Transform::ReorderChildren {
                parent: Some(loops[0]),
                perm: vec![1, 0],
            },
            Transform::Interchange(loops[0], loops[1]),
        ],
    )
    .unwrap();
    assert!(check_legal(&p, &layout, &deps, &m)
        .expect("legality")
        .is_legal());
    let result = generate(&p, &layout, &deps, &m).expect("codegen");
    let mut machine = Machine::new(&result.program, &[8], &|_, _| 4.0);
    Interpreter::new(&result.program).run(&mut machine);

    let report = PipelineReport::capture();
    assert!(report.counters["depend.pairs_tested"] > 0);
    assert!(
        report.counters.keys().any(|k| k.starts_with("legal.")),
        "legality metrics missing: {:?}",
        report.counters.keys().collect::<Vec<_>>()
    );
    assert!(report.counters["legal.fast_path_hits"] > 0);
    assert!(report.counters["poly.fm.eliminations"] > 0);
    assert!(report.counters["codegen.bounds_scanned"] > 0);
    assert!(report.counters["exec.instances"] > 0);
    assert!(report.histograms["poly.fm.constraints"].count > 0);
    assert!(report.spans["depend.analyze"].count == 1);
    assert!(report
        .spans
        .keys()
        .any(|k| k == "codegen.generate/legal.check"));
    set_enabled(false);
}

#[test]
fn disabled_pipeline_records_nothing() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_enabled(false);
    inl_obs::reset();
    inl_obs::counter_add!("test.off.counter", 9);
    {
        let _s = inl_obs::span("test.off.span");
    }
    let report = PipelineReport::capture();
    assert!(!report.enabled);
    assert!(report.counters.is_empty());
    assert!(report.spans.is_empty());
}
