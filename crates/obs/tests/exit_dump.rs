//! `INL_OBS_JSON` / `INL_TRACE_JSON` / `INL_EXPLAIN_JSON` exit-dump
//! integration test.
//!
//! The contract under test: pointing any of the env vars at a path makes
//! the process dump its telemetry report (resp. Chrome trace, resp.
//! decision-provenance artifact) there at exit,
//! with no code changes in the binary beyond touching any inl-obs entry
//! point. Verifying an atexit hook requires a real process exit, so this
//! test re-executes its own test binary as a child with the env vars set
//! and parses what the child left behind.

use inl_obs::Json;
use std::path::PathBuf;

const CHILD_MARKER: &str = "INL_OBS_EXIT_DUMP_CHILD";

fn target_tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("inl-obs-exit-dump-{}-{name}", std::process::id()));
    p
}

/// In the child: behave like an instrumented binary. `enabled()` is the
/// first inl-obs call — it must be what initializes the flags from the
/// environment and registers the exit dump.
fn run_as_child() {
    assert!(
        inl_obs::enabled(),
        "INL_OBS_JSON implies telemetry is enabled"
    );
    assert!(
        inl_obs::timeline_enabled(),
        "INL_TRACE_JSON implies the timeline is enabled"
    );
    assert!(
        inl_obs::explain_enabled(),
        "INL_EXPLAIN_JSON implies the explain layer is enabled"
    );
    inl_obs::counter("exit_dump.child.events").add(7);
    inl_obs::timeline::instant("exit_dump.child.marker");
    {
        let _s = inl_obs::span("exit_dump.child.work");
        std::hint::black_box(0u64);
    }
    inl_obs::explain::begin_session("exit_dump/child");
    inl_obs::explain::reject(
        "test",
        "child decision",
        "recorded only to survive into the exit dump",
    )
    .detail("dep_row", "[+ 0 *]")
    .feature("deps", 1);
    // Return normally; the atexit hook does the dumping.
}

#[test]
fn env_dump_paths_produce_reports_at_process_exit() {
    if std::env::var_os(CHILD_MARKER).is_some() {
        run_as_child();
        return;
    }

    let obs_path = target_tmp("report.json");
    let trace_path = target_tmp("trace.json");
    let explain_path = target_tmp("explain.json");
    let _ = std::fs::remove_file(&obs_path);
    let _ = std::fs::remove_file(&trace_path);
    let _ = std::fs::remove_file(&explain_path);

    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(&exe)
        .arg("env_dump_paths_produce_reports_at_process_exit")
        .arg("--exact")
        .env(CHILD_MARKER, "1")
        .env("INL_OBS_JSON", &obs_path)
        .env("INL_TRACE_JSON", &trace_path)
        .env("INL_EXPLAIN_JSON", &explain_path)
        .env_remove("INL_OBS")
        .env_remove("INL_TRACE")
        .env_remove("INL_EXPLAIN")
        .output()
        .expect("spawn child test process");
    assert!(
        out.status.success(),
        "child failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    // Telemetry report: valid JSON containing the child's counter.
    let report_text = std::fs::read_to_string(&obs_path).expect("child dumped telemetry JSON");
    let report = Json::parse(&report_text).expect("telemetry dump is well-formed JSON");
    assert_eq!(
        report
            .get("counters")
            .and_then(|c| c.get("exit_dump.child.events"))
            .and_then(Json::as_u64),
        Some(7),
        "counter bumped in the child survives into the dump"
    );
    assert!(
        report
            .get("spans")
            .and_then(|s| s.get("exit_dump.child.work"))
            .is_some(),
        "child span present in dump"
    );

    // Chrome trace: valid JSON whose events include the child's instant.
    let trace_text = std::fs::read_to_string(&trace_path).expect("child dumped trace JSON");
    let trace = Json::parse(&trace_text).expect("trace dump is well-formed JSON");
    let events = match trace.get("traceEvents") {
        Some(Json::Array(items)) => items,
        other => panic!("traceEvents array expected, got {other:?}"),
    };
    assert!(
        events.iter().any(|e| {
            e.get("name").and_then(Json::as_str) == Some("exit_dump.child.marker")
                && e.get("ph").and_then(Json::as_str) == Some("i")
        }),
        "child instant present in trace dump"
    );

    // Explain artifact: versioned JSON whose records include the child's
    // rejection with its evidence.
    let explain_text = std::fs::read_to_string(&explain_path).expect("child dumped explain JSON");
    let explain = Json::parse(&explain_text).expect("explain dump is well-formed JSON");
    assert_eq!(
        explain.get("version").and_then(Json::as_u64),
        Some(inl_obs::explain::SCHEMA_VERSION),
        "explain artifact carries its schema version"
    );
    let records = match explain.get("records") {
        Some(Json::Array(items)) => items,
        other => panic!("records array expected, got {other:?}"),
    };
    let rec = records
        .iter()
        .find(|r| r.get("subject").and_then(Json::as_str) == Some("child decision"))
        .expect("child record present in explain dump");
    assert_eq!(rec.get("verdict").and_then(Json::as_str), Some("reject"));
    assert_eq!(
        rec.get("details")
            .and_then(|d| d.get("dep_row"))
            .and_then(Json::as_str),
        Some("[+ 0 *]"),
        "evidence details survive the dump"
    );
    let sessions = match explain.get("sessions") {
        Some(Json::Array(items)) => items,
        other => panic!("sessions array expected, got {other:?}"),
    };
    assert!(
        sessions
            .iter()
            .any(|s| s.get("label").and_then(Json::as_str) == Some("exit_dump/child")),
        "child session label present in explain dump"
    );

    let _ = std::fs::remove_file(&obs_path);
    let _ = std::fs::remove_file(&trace_path);
    let _ = std::fs::remove_file(&explain_path);
}
