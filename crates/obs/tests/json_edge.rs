//! JSON parser/serializer edge cases: escape sequences, deep nesting,
//! and rejection of non-finite numbers.

use inl_obs::Json;

#[test]
fn escape_sequences_round_trip() {
    let s =
        "quote \" backslash \\ slash / nl \n cr \r tab \t bs \u{8} ff \u{c} nul \u{0} bell \u{7}";
    let mut obj = Json::object();
    obj.insert(s, Json::Str(s.into()));
    let text = obj.to_pretty_string();
    assert_eq!(Json::parse(&text).unwrap(), obj);
}

#[test]
fn unicode_escapes_parse() {
    assert_eq!(Json::parse(r#""Aé世""#).unwrap(), Json::Str("Aé世".into()));
    // Unpaired surrogate degrades to the replacement character rather
    // than failing or producing invalid UTF-8.
    assert_eq!(
        Json::parse(r#""\ud800""#).unwrap(),
        Json::Str("\u{fffd}".into())
    );
    assert!(Json::parse(r#""\u00g1""#).is_err());
    assert!(Json::parse(r#""\u00""#).is_err());
    assert!(Json::parse(r#""\x41""#).is_err());
}

#[test]
fn raw_multibyte_strings_round_trip() {
    let s = "héllo wörld — ∑ 世界 🦀";
    let json = Json::Str(s.into());
    assert_eq!(Json::parse(&json.to_pretty_string()).unwrap(), json);
}

#[test]
fn deeply_nested_arrays_round_trip() {
    let mut value = Json::Int(7);
    for _ in 0..200 {
        value = Json::Array(vec![value]);
    }
    let text = value.to_pretty_string();
    let back = Json::parse(&text).unwrap();
    assert_eq!(back, value);
    // and unwrap all the way back down
    let mut cur = &back;
    for _ in 0..200 {
        match cur {
            Json::Array(items) => {
                assert_eq!(items.len(), 1);
                cur = &items[0];
            }
            other => panic!("expected array, got {other:?}"),
        }
    }
    assert_eq!(cur, &Json::Int(7));
}

#[test]
fn rejects_nan_and_infinity_literals() {
    for bad in [
        "NaN",
        "nan",
        "Infinity",
        "-Infinity",
        "inf",
        "-inf",
        "[1, NaN]",
    ] {
        assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
    }
}

#[test]
fn non_finite_floats_serialize_as_null() {
    let mut obj = Json::object();
    obj.insert("nan", Json::Float(f64::NAN));
    obj.insert("inf", Json::Float(f64::INFINITY));
    obj.insert("ninf", Json::Float(f64::NEG_INFINITY));
    let text = obj.to_pretty_string();
    let back = Json::parse(&text).unwrap();
    assert_eq!(back.get("nan"), Some(&Json::Null));
    assert_eq!(back.get("inf"), Some(&Json::Null));
    assert_eq!(back.get("ninf"), Some(&Json::Null));
}

#[test]
fn number_edges() {
    assert_eq!(
        Json::parse(&u64::MAX.to_string()).unwrap(),
        Json::Int(u64::MAX)
    );
    // Negative and fractional numbers fall back to floats.
    assert_eq!(Json::parse("-3").unwrap(), Json::Float(-3.0));
    assert_eq!(Json::parse("0.5e2").unwrap(), Json::Float(50.0));
    assert!(Json::parse("1.2.3").is_err());
    assert!(Json::parse("--1").is_err());
    assert!(Json::parse("+1").is_err());
}

#[test]
fn malformed_documents_error() {
    for bad in [
        "",
        "{",
        "[",
        "\"unterminated",
        "{\"a\" 1}",
        "{\"a\": 1,}",
        "[1 2]",
        "tru",
        "nulll",
    ] {
        assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
    }
}
