//! Explain ring-buffer overflow while the timeline layer is live too
//! (the `INL_EXPLAIN=1 INL_TRACE=1` configuration): the layers share one
//! flag byte, so enabling both must keep their ring buffers and drop
//! accounting fully independent.

use inl_obs::explain::{self, Verdict};
use inl_obs::timeline;

#[test]
fn explain_overflow_with_timeline_live_keeps_layers_independent() {
    inl_obs::set_explain_enabled(true);
    inl_obs::set_timeline_enabled(true);
    explain::reset();
    timeline::reset();
    let old_explain_cap = explain::capacity();
    let old_timeline_cap = timeline::capacity();
    explain::set_capacity(8);
    timeline::set_capacity(8);

    explain::begin_session("overflow/interleaved");
    // Timeline rings are per-thread and sized at creation: flood from a
    // fresh thread so the small capacity applies there too.
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 0..30i64 {
                explain::accept("test", format!("subject {i}"), "flood").feature("i", i);
                timeline::instant("explain_overflow.tick");
            }
        });
    });

    // Explain: ring keeps the newest `capacity` records, counts the rest.
    assert_eq!(explain::len(), 8);
    assert_eq!(explain::dropped_total(), 30 - 8);
    let records = explain::snapshot();
    assert!(records
        .iter()
        .all(|r| r.stage == "test" && r.verdict == Verdict::Accept));
    let kept: Vec<i64> = records.iter().map(|r| r.features["i"]).collect();
    assert_eq!(kept, (22..30).collect::<Vec<i64>>(), "oldest dropped first");
    // Dropped records surface in the JSON artifact header too.
    let json = explain::to_json().to_pretty_string();
    assert!(json.contains("\"dropped\": 22"), "artifact reports drops");

    // Timeline: its own ring overflowed on its own counter, untouched by
    // the explain traffic.
    assert_eq!(timeline::dropped_total(), 30 - 8);

    explain::set_capacity(old_explain_cap);
    timeline::set_capacity(old_timeline_cap);
    explain::reset();
    timeline::reset();
    inl_obs::set_explain_enabled(false);
    inl_obs::set_timeline_enabled(false);
}
