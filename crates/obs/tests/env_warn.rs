//! Malformed numeric env vars (`INL_TRACE_CAP`, `INL_EXPLAIN_CAP`) must
//! warn once to stderr and fall back to the default capacity instead of
//! being silently ignored. The warning fires during lazy capacity
//! initialization, so this test re-executes its own binary as a child
//! with bad values set and inspects the child's stderr.

const CHILD_MARKER: &str = "INL_OBS_ENV_WARN_CHILD";

/// In the child: the first capacity queries parse the malformed values,
/// warn once each, and fall back to the defaults.
fn run_as_child() {
    assert_eq!(
        inl_obs::timeline::capacity(),
        inl_obs::timeline::DEFAULT_CAPACITY,
        "malformed INL_TRACE_CAP falls back to the default"
    );
    assert_eq!(
        inl_obs::explain::capacity(),
        inl_obs::explain::DEFAULT_CAPACITY,
        "malformed INL_EXPLAIN_CAP falls back to the default"
    );
    // Re-parsing the same variable later must not warn a second time.
    assert_eq!(inl_obs::env_usize("INL_TRACE_CAP", 77), 77);
}

#[test]
fn malformed_numeric_env_vars_warn_once_and_fall_back() {
    if std::env::var_os(CHILD_MARKER).is_some() {
        run_as_child();
        return;
    }

    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(&exe)
        .arg("malformed_numeric_env_vars_warn_once_and_fall_back")
        .arg("--exact")
        // the child harness must not swallow the warning we assert on
        .arg("--nocapture")
        .env(CHILD_MARKER, "1")
        .env("INL_TRACE_CAP", "banana")
        .env("INL_EXPLAIN_CAP", "-3")
        .env_remove("INL_OBS")
        .env_remove("INL_TRACE")
        .env_remove("INL_EXPLAIN")
        .output()
        .expect("spawn child test process");
    assert!(
        out.status.success(),
        "child failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        stderr.matches("ignoring malformed INL_TRACE_CAP").count(),
        1,
        "exactly one warning per variable:\n{stderr}"
    );
    assert_eq!(
        stderr.matches("ignoring malformed INL_EXPLAIN_CAP").count(),
        1,
        "exactly one warning per variable:\n{stderr}"
    );
    assert!(
        stderr.contains("using default"),
        "warning names the fallback:\n{stderr}"
    );
}
