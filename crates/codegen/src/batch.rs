//! Parallel compile-side batch driver: run the full analysis + codegen
//! pipeline over many transformation variants across a thread pool.
//!
//! Each job is self-contained — layout, dependence analysis, legality,
//! code generation — so the driver parallelizes trivially; the poly query
//! cache (`inl_poly::cache`) is what makes the repeated sub-systems cheap
//! across jobs. Workers pull jobs from a shared atomic index (the same
//! work-stealing-free queue idiom as `inl_exec::ParallelExecutor`) and
//! every job records a `batch.compile` timeline slice tagged with its
//! variant index, so a Chrome trace shows the per-variant schedule across
//! worker threads.
//!
//! This lives in `inl-codegen` (moved here from `inl-bench`) so the
//! auto-scheduler can drive its cache-warm candidate sweep without
//! depending on the benchmark harness; `inl_bench` re-exports it.

use crate::cost::CostFeatures;
use crate::generate::generate;
use inl_core::depend::analyze;
use inl_core::instance::InstanceLayout;
use inl_ir::Program;
use inl_linalg::IMat;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One compiled variant out of [`compile_batch`].
#[derive(Clone, Debug)]
pub struct CompiledVariant {
    /// The variant's label (e.g. its loop order, `"KJLI"`).
    pub label: String,
    /// Pseudocode of the generated program — the batch drivers compare
    /// this text across runs to assert bitwise-identical output.
    pub pseudocode: String,
    /// The generated program itself (runnable through `inl-exec`).
    pub program: Program,
    /// Static cost features of the variant (the scheduler's ranking
    /// signal), as computed by [`crate::cost::cost_features`].
    pub features: CostFeatures,
    /// Wall time of this job alone (analysis through codegen).
    pub wall_ns: u64,
}

/// Compile every `(label, matrix)` variant of `p` on `threads` worker
/// threads (`0` = one per available core). Results come back in variant
/// order regardless of which worker ran which job. Panics if any variant
/// fails to generate — callers pass matrices already proven legal.
pub fn compile_batch(
    p: &Program,
    variants: &[(String, IMat)],
    threads: usize,
) -> Vec<CompiledVariant> {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    };
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<CompiledVariant>>> =
        variants.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(variants.len().max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= variants.len() {
                    break;
                }
                let (label, m) = &variants[i];
                let _slice =
                    inl_obs::timeline::scope_args("batch.compile", &[("variant", i as i64)]);
                let _span = inl_obs::span("batch.compile");
                let t0 = Instant::now();
                let layout = InstanceLayout::new(p);
                let deps =
                    analyze(p, &layout).unwrap_or_else(|e| panic!("batch analyze of {label}: {e}"));
                let result = generate(p, &layout, &deps, m)
                    .unwrap_or_else(|e| panic!("batch compile of {label}: {e:?}"));
                let wall_ns = t0.elapsed().as_nanos() as u64;
                *results[i].lock().unwrap() = Some(CompiledVariant {
                    label: label.clone(),
                    pseudocode: result.program.to_pseudocode(),
                    program: result.program,
                    features: result.features,
                    wall_ns,
                });
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("batch job completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use inl_core::complete::complete_transform;
    use inl_ir::zoo;
    use inl_linalg::IVec;

    #[test]
    fn batch_returns_program_and_features() {
        // two legal variants of simple Cholesky: identity completion and
        // the J-outer interchange; the batch result must carry a runnable
        // program whose pseudocode matches, and non-default features.
        let p = zoo::simple_cholesky();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        let j = p.loops().find(|&l| p.loop_decl(l).name == "J").unwrap();
        let variants: Vec<(String, IMat)> = [
            ("IJ".to_string(), vec![]),
            (
                "JI".to_string(),
                vec![IVec::unit(layout.len(), layout.loop_position(j))],
            ),
        ]
        .into_iter()
        .map(|(label, partial)| {
            let c = complete_transform(&p, &layout, &deps, &partial).expect("completes");
            (label, c.matrix)
        })
        .collect();
        let out = compile_batch(&p, &variants, 2);
        assert_eq!(out.len(), 2);
        for v in &out {
            assert_eq!(v.pseudocode, v.program.to_pseudocode());
            assert!(v.features.deps > 0, "{}: features populated", v.label);
        }
    }
}
