//! Code generation tests: every generated program is *executed* and its
//! final state compared bitwise against the source program's — the
//! strongest check a legal transformation admits.

use crate::generate::{generate, generate_seq, CodegenError};
use inl_core::depend::analyze;
use inl_core::instance::InstanceLayout;
use inl_core::transform::Transform;
use inl_exec::equivalent;
use inl_ir::{zoo, LoopId, Program, StmtId};
use inl_linalg::IMat;

fn looop(p: &Program, name: &str) -> LoopId {
    p.loops().find(|&l| p.loop_decl(l).name == name).unwrap()
}
fn stmt(p: &Program, name: &str) -> StmtId {
    p.stmts().find(|&s| p.stmt_decl(s).name == name).unwrap()
}

/// Generate for a matrix and check execution equivalence at several sizes.
fn check_matrix(p: &Program, m: &IMat, init: &dyn Fn(&str, &[usize]) -> f64) -> Program {
    let layout = InstanceLayout::new(p);
    let deps = analyze(p, &layout).expect("analysis");
    let result = generate(p, &layout, &deps, m).expect("codegen succeeds");
    for n in [1, 2, 3, 5, 8] {
        equivalent(p, &result.program, &[n], init).unwrap_or_else(|e| {
            panic!(
                "N={n}: {e}\nsource:\n{}\ntarget:\n{}",
                p.to_pseudocode(),
                result.program.to_pseudocode()
            )
        });
    }
    result.program
}

fn spd_init(_: &str, idx: &[usize]) -> f64 {
    if idx.len() == 2 {
        if idx[0] == idx[1] {
            (idx[0] + 10) as f64
        } else {
            1.0 / ((idx[0] + idx[1] + 2) as f64)
        }
    } else {
        2.0 + idx[0] as f64
    }
}

#[test]
fn identity_reproduces_source() {
    let p = zoo::simple_cholesky();
    let layout = InstanceLayout::new(&p);
    let m = IMat::identity(layout.len());
    let t = check_matrix(&p, &m, &spd_init);
    // same loop structure
    assert_eq!(t.loops().count(), 2);
    assert_eq!(t.stmts().count(), 2);
}

#[test]
fn paper_section5_skew_example() {
    // §5.4/5.5: skew I by -J on the augmentation example. S1 collapses to
    // the first outer iteration and receives an extra loop; the generated
    // code must execute identically.
    let p = zoo::augmentation_example();
    let m = Transform::Skew {
        target: looop(&p, "I"),
        source: looop(&p, "J"),
        factor: -1,
    };
    let layout = InstanceLayout::new(&p);
    let deps = analyze(&p, &layout).expect("analysis");
    let mat = m.matrix(&p, &layout);
    let result = generate(&p, &layout, &deps, &mat).expect("codegen");
    let t = &result.program;
    // S1 gained exactly one augmented loop: it is now nested in 2 loops
    let s1_new = result.stmt_map[stmt(&p, "S1").0];
    assert_eq!(t.loops_surrounding(s1_new).len(), 2);
    // the paper's generated outer loop runs 1-N..0
    for n in [1, 2, 3, 6] {
        equivalent(&p, t, &[n], &|_, _| 0.25).unwrap_or_else(|e| {
            panic!("N={n}: {e}\n{}", t.to_pseudocode());
        });
    }
}

#[test]
fn left_looking_cholesky_codegen() {
    // §6's headline: the completed left-looking matrix generates code that
    // computes the same factorization bitwise.
    let p = zoo::cholesky_kij();
    let c = IMat::from_rows(&[
        &[0, 0, 0, 0, 0, 1, 0][..],
        &[0, 0, 1, 0, 0, 0, 0],
        &[0, 0, 0, 1, 0, 0, 0],
        &[0, 1, 0, 0, 0, 0, 0],
        &[0, 0, 0, 0, 1, 0, 0],
        &[1, 0, 0, 0, 0, 0, 0],
        &[0, 0, 0, 0, 0, 0, 1],
    ]);
    let t = check_matrix(&p, &c, &spd_init);
    // statement order in the generated program is S3, S1, S2
    let names: Vec<String> = t
        .stmts_in_syntactic_order()
        .iter()
        .map(|&s| t.stmt_decl(s).name.clone())
        .collect();
    assert_eq!(names, vec!["S3", "S1", "S2"]);
}

#[test]
fn simple_cholesky_left_looking_via_transforms() {
    // reorder children + interchange on the 2-loop Cholesky fragment
    let p = zoo::simple_cholesky();
    let i = looop(&p, "I");
    let j = looop(&p, "J");
    let result = generate_seq(
        &p,
        &[
            Transform::ReorderChildren {
                parent: Some(i),
                perm: vec![1, 0],
            },
            Transform::Interchange(i, j),
        ],
    )
    .expect("codegen");
    for n in [1, 2, 3, 7] {
        equivalent(&p, &result.program, &[n], &spd_init).unwrap_or_else(|e| {
            panic!("N={n}: {e}\n{}", result.program.to_pseudocode());
        });
    }
}

#[test]
fn wavefront_skew_codegen() {
    // skew outer by inner: classic wavefront schedule; executed identically
    let p = zoo::wavefront();
    let i = looop(&p, "I");
    let j = looop(&p, "J");
    let result = generate_seq(
        &p,
        &[Transform::Skew {
            target: i,
            source: j,
            factor: 1,
        }],
    )
    .expect("codegen");
    let init = |_: &str, idx: &[usize]| {
        if idx[0] == 0 || idx[1] == 0 {
            1.0
        } else {
            0.0
        }
    };
    for n in [1, 2, 3, 6] {
        equivalent(&p, &result.program, &[n], &init).unwrap_or_else(|e| {
            panic!("N={n}: {e}\n{}", result.program.to_pseudocode());
        });
    }
}

#[test]
fn reversal_of_parallel_dimension() {
    // in the independent_pair program the loop carries nothing: reversal
    // is legal and must still execute identically
    let p = zoo::independent_pair();
    let i = p.loops().next().unwrap();
    let result = generate_seq(&p, &[Transform::Reverse(i)]).expect("codegen");
    for n in [1, 2, 5] {
        equivalent(&p, &result.program, &[n], &|_, _| 0.0).unwrap_or_else(|e| {
            panic!("N={n}: {e}\n{}", result.program.to_pseudocode());
        });
    }
}

#[test]
fn scaling_generates_divisibility_guards() {
    // scaling a loop by 2 is non-unimodular: the generated loop ranges
    // over the scaled space with divisibility guards; execution identical
    let p = zoo::independent_pair();
    let i = p.loops().next().unwrap();
    let result = generate_seq(
        &p,
        &[Transform::Scale {
            target: i,
            factor: 2,
        }],
    )
    .expect("codegen");
    let t = &result.program;
    let has_div_guard = t.stmts().any(|s| {
        t.stmt_decl(s)
            .guards
            .iter()
            .any(|g| matches!(g, inl_ir::Guard::Div(_, _)))
    });
    assert!(
        has_div_guard,
        "expected divisibility guards:\n{}",
        t.to_pseudocode()
    );
    for n in [1, 2, 5] {
        equivalent(&p, t, &[n], &|_, _| 0.0).unwrap_or_else(|e| {
            panic!("N={n}: {e}\n{}", t.to_pseudocode());
        });
    }
}

#[test]
fn illegal_matrix_rejected() {
    let p = zoo::simple_cholesky();
    let layout = InstanceLayout::new(&p);
    let deps = analyze(&p, &layout).expect("analysis");
    let rev = Transform::Reverse(looop(&p, "I")).matrix(&p, &layout);
    assert!(matches!(
        generate(&p, &layout, &deps, &rev),
        Err(crate::generate::CodegenError::Illegal(_))
    ));
}

#[test]
fn alignment_codegen() {
    // align S1 backward by -1 w.r.t. I — wait, that moves each sqrt one
    // outer iteration earlier, which breaks the S2@(I-1,·)→S1@I chain?
    // A(I) is written by S2@(i, I) for i < I; S1@I must come after all of
    // them. Aligned to slot I-1, S1@I runs during outer value I-1 ≥ i…
    // only i ≤ I-1 — the latest is S2@(I-1, I) at outer I-1, same slot;
    // child order: S1 comes before the J loop, so S1@I would run before
    // S2@(I-1, I): illegal. Verify the generator agrees, then use the
    // legal direction on an independent program.
    let p = zoo::simple_cholesky();
    let layout = InstanceLayout::new(&p);
    let deps = analyze(&p, &layout).expect("analysis");
    let s1 = stmt(&p, "S1");
    let i = looop(&p, "I");
    let m = Transform::Align {
        stmt: s1,
        looop: i,
        offset: -1,
    }
    .matrix(&p, &layout);
    assert!(
        generate(&p, &layout, &deps, &m).is_err(),
        "backward alignment of the pivot must be illegal"
    );

    // alignment on independent statements is always legal
    let q = zoo::independent_pair();
    let qs1 = stmt(&q, "S1");
    let qi = q.loops().next().unwrap();
    let result = generate_seq(
        &q,
        &[Transform::Align {
            stmt: qs1,
            looop: qi,
            offset: 3,
        }],
    )
    .expect("codegen");
    for n in [1, 4, 7] {
        equivalent(&q, &result.program, &[n], &|_, _| 0.0).unwrap_or_else(|e| {
            panic!("N={n}: {e}\n{}", result.program.to_pseudocode());
        });
    }
}

#[test]
fn lu_identity_and_interchange() {
    // LU: identity works; interchanging the two independent I loops'…
    // actually interchange K with inner loops is illegal; test identity +
    // a legal inner interchange (I2 and J of the update loop: both carry
    // nothing between themselves)
    let p = zoo::lu_kij();
    let layout = InstanceLayout::new(&p);
    let m = IMat::identity(layout.len());
    check_matrix(&p, &m, &spd_init);
    let i2 = looop(&p, "I2");
    let j = looop(&p, "J");
    let result = generate_seq(&p, &[Transform::Interchange(i2, j)]).expect("codegen");
    for n in [1, 2, 3, 6] {
        equivalent(&p, &result.program, &[n], &spd_init).unwrap_or_else(|e| {
            panic!("N={n}: {e}\n{}", result.program.to_pseudocode());
        });
    }
}

#[test]
fn generated_pseudocode_matches_paper_shape() {
    // the §5.5 generated code: outer loop 1-N..0 with S2's skewed nest and
    // S1 guarded at outer == 0 under an extra loop
    let p = zoo::augmentation_example();
    let result = generate_seq(
        &p,
        &[Transform::Skew {
            target: looop(&p, "I"),
            source: looop(&p, "J"),
            factor: -1,
        }],
    )
    .expect("codegen");
    let code = result.program.to_pseudocode();
    // the outer loop's bounds include 1-N (lower) and 0 (upper)
    assert!(
        code.contains("1..") || code.contains("- N") || code.contains("-N"),
        "{code}"
    );
    // S1 sits under a guard (its outer position is pinned to 0)
    let s1_new = result.stmt_map[stmt(&p, "S1").0];
    let t = &result.program;
    let has_eq_guard =
        !t.stmt_decl(s1_new).guards.is_empty() || t.loops_surrounding(s1_new).len() > 1;
    assert!(has_eq_guard, "{code}");
}

#[test]
fn infeasible_domain_degrades_to_typed_error() {
    // A guard that contradicts the loop bounds (i >= 1 vs i <= 0) makes the
    // statement's iteration polyhedron empty. A non-unimodular schedule
    // (scaling) forces real Fourier-Motzkin combination, which detects the
    // contradiction mid-projection. Codegen must surface a typed error --
    // never a panic -- on this input-dependent path.
    use inl_ir::{Aff, Expr, ProgramBuilder};
    let mut b = ProgramBuilder::new("emptydom");
    let n = b.param("N");
    let x = b.array(
        "X",
        &[Aff::param(n) + Aff::konst(2), Aff::param(n) + Aff::konst(2)],
    );
    b.hloop("I", Aff::konst(1), Aff::param(n), |b| {
        let i = b.loop_var("I");
        b.hloop("J", Aff::konst(1), Aff::param(n), |b| {
            let j = b.loop_var("J");
            b.stmt_guarded(
                "S1",
                x,
                vec![Aff::var(i), Aff::var(j)],
                Expr::index(Aff::var(i)),
                vec![inl_ir::Guard::Ge(Aff::konst(0) - Aff::var(i))],
            );
        });
    });
    let p = b.finish();
    let layout = InstanceLayout::new(&p);
    let deps = analyze(&p, &layout).expect("analysis");
    let mut m = IMat::identity(layout.len());
    m[(0, 0)] = 2;
    m[(1, 1)] = 2;
    match generate(&p, &layout, &deps, &m) {
        Err(CodegenError::Unbounded(slot)) => {
            assert!(slot.contains("loop slot"), "unexpected slot label: {slot}")
        }
        other => panic!("expected typed Unbounded error, got {other:?}"),
    }
}
