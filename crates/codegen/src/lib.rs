//! # inl-codegen
//!
//! Code generation from legal transformation matrices (§5.4–5.5 of the
//! paper): turn a source [`inl_ir::Program`], its dependence matrix, and a
//! legal matrix `M` into a new executable [`inl_ir::Program`].
//!
//! The pipeline:
//!
//! 1. **Legality & AST** — [`inl_core::legal::check_legal`] recovers the
//!    transformed AST (child reorderings) and the self-dependences left
//!    unsatisfied.
//! 2. **Per-statement schedules** — [`inl_core::perstmt`] builds each
//!    statement's (possibly augmented) transformation `T'_S`, its
//!    non-singular core `N_S`, and the singular-row combinations.
//! 3. **Bounds** — for every statement, the polyhedron `{domain(i), v =
//!    T'_S·i + off}` is projected onto `(params, v)` by Fourier–Motzkin and
//!    scanned (Ancourt–Irigoin) to get per-loop bounds; bounds of loops
//!    shared by several statements are merged by proving pairwise `≤` under
//!    the program's parameter assumptions.
//! 4. **Guards** — exactness does not rely on the (possibly over-
//!    approximate) scan bounds: each statement gets guards that re-derive
//!    its original bounds through `i = N_S⁻¹(v − off)` (integer `Ge`
//!    guards after clearing denominators), divisibility guards when `N_S`
//!    is non-unimodular, and equality guards for singular rows (§5.5's
//!    `i_k = Σ m_j·i_j`). Guards implied by the enclosing loop bounds are
//!    removed by a Fourier–Motzkin implication pass.
//! 5. **Bodies** — subscripts and expressions are rewritten with the same
//!    `N_S⁻¹` substitution (exact rational, guarded divisors).
//!
//! The result executes **bitwise identically** to the source program — the
//! `inl-exec` interpreter enforces this throughout the test-suite.

pub mod batch;
pub mod cost;
pub mod generate;

#[cfg(test)]
mod tests;

pub use batch::{compile_batch, CompiledVariant};
pub use cost::{cost_features, CostFeatures};
pub use generate::{generate, generate_seq, CodegenError, CodegenResult};
