//! The code generator. See the crate docs for the pipeline overview.

use inl_core::depend::{analyze, DependenceMatrix};
use inl_core::instance::{InstanceLayout, Position};
use inl_core::legal::{check_legal, NewAst};
use inl_core::perstmt::{schedule_all, ScheduleError, StmtSchedule};
use inl_core::transform::Transform;
use inl_ir::{Aff, Bound, Guard, LoopId, Node, Program, ProgramBuilder, StmtId, VarKey};
use inl_linalg::{gauss, lcm, IMat, InlError, InlErrorKind, Int};
use inl_poly::{fm, is_empty, scan_bounds, Feasibility, LinExpr, System, VarBounds};
use std::collections::HashMap;

/// Lower/upper bound term lists for one loop slot, in the shared space.
type SlotBounds = (Vec<(LinExpr, Int)>, Vec<(LinExpr, Int)>);

/// Why code generation failed.
#[derive(Clone, Debug)]
pub enum CodegenError {
    /// The matrix is not a legal transformation.
    Illegal(String),
    /// Per-statement scheduling failed.
    Schedule(ScheduleError),
    /// Two statements sharing a loop have bounds that could not be merged
    /// (neither could be proven to dominate the other).
    BoundMerge(String),
    /// A loop slot ended up with no bound on one side.
    Unbounded(String),
    /// Exact arithmetic overflowed, a polyhedral budget was exhausted, or
    /// the request was structurally malformed. Carries source context.
    Inl(InlError),
}

impl From<InlError> for CodegenError {
    fn from(e: InlError) -> Self {
        CodegenError::Inl(e)
    }
}

/// The generated program, with the mapping from source to target
/// statements and the variant's static cost features.
#[derive(Clone, Debug)]
pub struct CodegenResult {
    /// The transformed program.
    pub program: Program,
    /// `stmt_map[source.0]` = target statement id.
    pub stmt_map: Vec<StmtId>,
    /// Static cost features of the variant (see [`crate::cost`]) — the
    /// ranking signal of the auto-scheduler, computed on every
    /// generation so callers never re-derive them.
    pub features: crate::cost::CostFeatures,
}

/// Everything known about one statement during generation.
struct StmtPlan {
    sched: StmtSchedule,
    /// Scan bounds for each of the statement's new loops (slots then
    /// augmented), over the local space `[params | old iters | new vars]`.
    bounds: Vec<VarBounds>,
    /// Local-space size and offsets.
    np: usize,
    kold: usize,
}

/// Generate the transformed program for a legal matrix `m`.
pub fn generate(
    p: &Program,
    layout: &InstanceLayout,
    deps: &DependenceMatrix,
    m: &IMat,
) -> Result<CodegenResult, CodegenError> {
    let _span = inl_obs::span("codegen.generate");
    inl_obs::timeline::instant("stage.codegen");
    let report = check_legal(p, layout, deps, m)?;
    let ast = match &report.new_ast {
        Ok(a) => a.clone(),
        Err(e) => return Err(CodegenError::Illegal(e.clone())),
    };
    if !report.violations.is_empty() {
        return Err(CodegenError::Illegal(format!("{:?}", report.violations)));
    }
    let schedules =
        schedule_all(p, layout, &ast, m, deps, &report).map_err(CodegenError::Schedule)?;

    // --- per-statement polyhedra and scan bounds ---
    let np = p.nparams();
    let mut plans: Vec<StmtPlan> = Vec::with_capacity(schedules.len());
    let mut bounds_scanned = 0i64;
    let mut loops_augmented = 0i64;
    for sched in schedules {
        let s = sched.stmt;
        let old_loops = layout.stmt_loops(s).to_vec();
        let kold = old_loops.len();
        let knew = sched.rows.nrows();
        let space = np + kold + knew;
        let mut sys = p.assumption_system(space);
        add_domain(p, s, &old_loops, np, space, &mut sys)?;
        // v_r = rows_r · i + off_r
        for r in 0..knew {
            let mut e = LinExpr::var(space, np + kold + r);
            for (q, &c) in sched.rows.row_slice(r).iter().enumerate() {
                e = e.checked_sub(&LinExpr::var(space, np + q).checked_scale(c)?)?;
            }
            e = e.checked_sub(&LinExpr::constant(space, sched.offsets[r]))?;
            sys.add_eq(e);
        }
        // eliminate old iteration variables
        let keep: Vec<usize> = (0..np).chain(np + kold..space).collect();
        let (projected, _exact) = fm::project(&sys, &keep)?;
        let order: Vec<usize> = (np + kold..space).collect();
        let bounds = scan_bounds(&projected, &order)?;
        inl_obs::counter_add!("codegen.bounds_scanned", bounds.len());
        inl_obs::counter_add!("codegen.loops_augmented", sched.n_aug);
        bounds_scanned += bounds.len() as i64;
        loops_augmented += sched.n_aug as i64;
        plans.push(StmtPlan {
            sched,
            bounds,
            np,
            kold,
        });
    }

    // --- merge bounds for shared loop slots ---
    // Which statements sit under each loop slot (position) in the new AST?
    let assumptions = p.assumption_system(np);
    let mut slot_bounds: HashMap<usize, SlotBounds> = HashMap::new();
    for (qi, pos) in layout.positions().iter().enumerate() {
        if !matches!(pos, Position::Loop(_)) {
            continue;
        }
        // statements under this slot, with the index of the slot in their
        // schedule
        let members: Vec<(usize, usize)> = plans
            .iter()
            .enumerate()
            .filter_map(|(pi, plan)| {
                plan.sched
                    .slot_positions
                    .iter()
                    .position(|&sp| sp == qi)
                    .map(|r| (pi, r))
            })
            .collect();
        if members.is_empty() {
            continue;
        }
        // canonicalize each member's bound terms into the shared space
        // [params | slot positions...]: we translate LinExprs over local
        // spaces into (coeff per global slot, const, div) keyed by slot
        // position.
        let canon = |pi: usize, r: usize, lower: bool| -> Result<Vec<(LinExpr, Int)>, InlError> {
            let plan = &plans[pi];
            let vb = &plan.bounds[r];
            let terms = if lower { &vb.lowers } else { &vb.uppers };
            terms
                .iter()
                .map(|t| Ok((globalize(&t.expr, plan, layout, np)?, t.div)))
                .collect()
        };
        let mut lo = canon(members[0].0, members[0].1, true)?;
        let mut hi = canon(members[0].0, members[0].1, false)?;
        for &(pi, r) in &members[1..] {
            lo = merge_side(lo, canon(pi, r, true)?, true, &assumptions)
                .map_err(|e| CodegenError::BoundMerge(format!("slot {qi} lower: {e}")))?;
            hi = merge_side(hi, canon(pi, r, false)?, false, &assumptions)
                .map_err(|e| CodegenError::BoundMerge(format!("slot {qi} upper: {e}")))?;
        }
        if lo.is_empty() || hi.is_empty() {
            return Err(CodegenError::Unbounded(format!("loop slot {qi}")));
        }
        slot_bounds.insert(qi, (lo, hi));
    }

    // --- build the target program ---
    let builder = Builder {
        src: p,
        layout,
        ast: &ast,
        plans: &plans,
        slot_bounds: &slot_bounds,
        np,
    };
    let result = builder.build()?;
    let mut result = simplify_guards(result, p);
    result.features = crate::cost::cost_features(
        layout,
        deps,
        m,
        &ast,
        &result.program,
        bounds_scanned,
        loops_augmented,
    );
    if inl_obs::explain_enabled() {
        record_cost_features(p, layout, deps, m, &result);
    }
    Ok(result)
}

/// Attach per-variant cost features to the explain stream (stage
/// `codegen`): dependence-matrix summary, parallel/wavefront shape under
/// this transformation, write-access strides, and generation work counts.
fn record_cost_features(
    p: &Program,
    layout: &InstanceLayout,
    deps: &DependenceMatrix,
    m: &IMat,
    out: &CodegenResult,
) {
    use inl_core::provenance;
    let f = &out.features;
    let (flow, anti, output) = crate::cost::dep_kind_counts(deps);
    let rec = inl_obs::explain::note(
        "codegen",
        format!("program {} under {}", p.name(), provenance::matrix_text(m)),
        format!(
            "generated {} statements over {} loop slot(s); {} DOALL slot(s)",
            out.stmt_map.len(),
            layout
                .positions()
                .iter()
                .filter(|pos| matches!(pos, Position::Loop(_)))
                .count(),
            f.doall.len()
        ),
    )
    .detail(
        "dep_summary",
        format!(
            "{} deps ({flow} flow, {anti} anti, {output} output; {} certain)",
            f.deps, f.deps_certain
        ),
    )
    .feature("deps", f.deps)
    .feature("deps_certain", f.deps_certain)
    .feature("stmts", out.stmt_map.len() as i64)
    .feature("bounds_scanned", f.bounds_scanned)
    .feature("loops_augmented", f.loops_augmented)
    .feature("guards_emitted", f.guards)
    .feature("parallel_slots", f.parallel_slots())
    .feature("wavefront", f.wavefront as i64)
    .feature("max_write_stride", f.max_write_stride)
    .feature("reuse_penalty", f.reuse_penalty);
    if !f.doall.is_empty() {
        let listed: Vec<String> = f.doall.iter().map(|q| q.to_string()).collect();
        rec.detail("doall_slots", listed.join(" "));
    }
}

/// Convenience: compose a transformation sequence, analyze, and generate.
pub fn generate_seq(p: &Program, seq: &[Transform]) -> Result<CodegenResult, CodegenError> {
    let layout = InstanceLayout::new(p);
    let deps = analyze(p, &layout)?;
    let m =
        Transform::compose(p, &layout, seq).map_err(|e| CodegenError::Illegal(format!("{e:?}")))?;
    generate(p, &layout, &deps, &m)
}

/// Add statement `s`'s iteration-domain constraints over old-iteration
/// slots `np..np+k`.
fn add_domain(
    p: &Program,
    s: StmtId,
    old_loops: &[LoopId],
    np: usize,
    space: usize,
    sys: &mut System,
) -> Result<(), InlError> {
    let slot_of = |l: LoopId| -> Result<usize, InlError> {
        old_loops
            .iter()
            .position(|&x| x == l)
            .map(|i| np + i)
            .ok_or_else(|| {
                InlError::new(
                    InlErrorKind::MalformedProgram,
                    "bound or guard references a non-surrounding loop",
                )
            })
    };
    let to_expr = |a: &Aff| -> Result<LinExpr, InlError> {
        let mut coeffs: Vec<Int> = vec![0; space];
        for &(v, c) in a.terms() {
            let slot = match v {
                VarKey::Param(pr) => pr.0,
                VarKey::Loop(l) => slot_of(l)?,
            };
            coeffs[slot] = coeffs[slot]
                .checked_add(c)
                .ok_or_else(|| InlError::overflow("domain coefficient"))?;
        }
        Ok(LinExpr::from_parts(coeffs, a.constant()))
    };
    for (idx, &l) in old_loops.iter().enumerate() {
        let ld = p.loop_decl(l);
        let iv = LinExpr::var(space, np + idx);
        for t in &ld.lower.terms {
            sys.add_ge(
                iv.checked_scale(t.divisor())?
                    .checked_sub(&to_expr(&t.numerator())?)?,
            );
        }
        for t in &ld.upper.terms {
            sys.add_ge(to_expr(&t.numerator())?.checked_sub(&iv.checked_scale(t.divisor())?)?);
        }
        if ld.step != 1 {
            return Err(InlError::new(
                InlErrorKind::Unsupported,
                format!("loop {}: non-unit steps unsupported by codegen", ld.name),
            ));
        }
    }
    for g in &p.stmt_decl(s).guards {
        match g {
            Guard::Ge(a) => sys.add_ge(to_expr(a)?),
            Guard::Eq(a) => sys.add_eq(to_expr(a)?),
            Guard::Div(_, _) => {
                // conservative: the guard shrinks the domain; omitting it
                // from the polyhedron only widens loop bounds, and the
                // rewritten guard is re-emitted on the target statement.
            }
        }
    }
    Ok(())
}

/// Translate a bound LinExpr from a plan's local space into the shared
/// space `[params | layout positions]`: coefficients keyed by parameter or
/// by *slot position*. Fails when an augmented variable appears (augmented
/// loops are innermost and never feed shared-slot bounds); use
/// [`globalize_tail`] for per-statement augmented-loop bounds.
fn globalize(
    e: &LinExpr,
    plan: &StmtPlan,
    layout: &InstanceLayout,
    np: usize,
) -> Result<LinExpr, InlError> {
    let n = layout.len();
    let out = globalize_tail(e, plan, layout, np)?;
    for i in np + n..out.nvars() {
        if out.coeff(i) != 0 {
            return Err(InlError::new(
                InlErrorKind::IllFormed,
                "shared-slot bound references an augmented variable",
            ));
        }
    }
    Ok(LinExpr::from_parts(
        out.coeffs()[..np + n].to_vec(),
        out.constant_term(),
    ))
}

/// Like [`globalize`], but keeps a per-statement tail for augmented
/// variables: space `[params | layout positions | this statement's rows]`.
fn globalize_tail(
    e: &LinExpr,
    plan: &StmtPlan,
    layout: &InstanceLayout,
    np: usize,
) -> Result<LinExpr, InlError> {
    let n = layout.len();
    let shared = np + n + plan.sched.rows.nrows();
    let mut coeffs: Vec<Int> = vec![0; shared];
    let oops = || InlError::overflow("globalized bound coefficient");
    for (i, &c) in e.coeffs().iter().enumerate() {
        if c == 0 {
            continue;
        }
        if i < np {
            coeffs[i] = coeffs[i].checked_add(c).ok_or_else(oops)?;
        } else if i < plan.np + plan.kold {
            return Err(InlError::new(
                InlErrorKind::IllFormed,
                "bound references an eliminated old iteration variable",
            ));
        } else {
            let r = i - plan.np - plan.kold;
            if r < plan.sched.slot_positions.len() {
                let slot = np + plan.sched.slot_positions[r];
                coeffs[slot] = coeffs[slot].checked_add(c).ok_or_else(oops)?;
            } else {
                // augmented variable: keep in the per-statement tail
                coeffs[np + n + r] = coeffs[np + n + r].checked_add(c).ok_or_else(oops)?;
            }
        }
    }
    Ok(LinExpr::from_parts(coeffs, e.constant_term()))
}

/// Merge bound-term lists from two statements on one side.
/// `lower = true`: result must be `≤` both maxima; prefer the provably
/// smaller side. `lower = false`: result must be `≥` both minima.
fn merge_side(
    a: Vec<(LinExpr, Int)>,
    b: Vec<(LinExpr, Int)>,
    lower: bool,
    assumptions: &System,
) -> Result<Vec<(LinExpr, Int)>, String> {
    if a.iter().all(|t| b.contains(t)) && b.iter().all(|t| a.contains(t)) {
        return Ok(a);
    }
    // All globalized terms share one space; extend the assumptions into it
    // once rather than per prove_le query.
    let space = a
        .first()
        .or_else(|| b.first())
        .map_or(assumptions.nvars(), |t| t.0.nvars());
    let assumptions = assumptions.extend(space);
    // prove: max(a) <= max(b) (lower) or min(a) >= min(b) (upper) — then
    // keeping `a` is sound for the union; and vice versa.
    let a_covers_b = side_dominates(&a, &b, lower, &assumptions);
    if a_covers_b {
        return Ok(a);
    }
    if side_dominates(&b, &a, lower, &assumptions) {
        return Ok(b);
    }
    Err("incomparable bound sets".to_string())
}

/// For lower bounds: does `max(keep) ≤ max(other)` always hold? (Then
/// `keep` is a sound lower bound for the union.) It does if for every term
/// `k` of `keep` there is a term `o` of `other` with `k ≤ o`... which is
/// necessary only against the other statement's *range*; we use the
/// sufficient pairwise check `∀k ∃o: k ≤ o` for lowers and `∀k ∃o: k ≥ o`
/// for uppers.
fn side_dominates(
    keep: &[(LinExpr, Int)],
    other: &[(LinExpr, Int)],
    lower: bool,
    assumptions: &System,
) -> bool {
    keep.iter().all(|k| {
        other.iter().any(|o| {
            if lower {
                prove_le(k, o, assumptions)
            } else {
                prove_le(o, k, assumptions)
            }
        })
    })
}

/// Prove `a/da ≤ b/db` for all parameter values satisfying the
/// assumptions (conservative: free variables universally quantified, and
/// arithmetic overflow while forming the query counts as "not proven").
/// `assumptions` must already live in the terms' variable space.
fn prove_le(a: &(LinExpr, Int), b: &(LinExpr, Int), assumptions: &System) -> bool {
    let space = a.0.nvars();
    debug_assert_eq!(assumptions.nvars(), space, "prove_le: space mismatch");
    // counterexample: a·db − b·da ≥ 1
    let counter =
        a.0.checked_scale(b.1)
            .and_then(|x| x.checked_sub(&b.0.checked_scale(a.1)?))
            .and_then(|x| x.checked_sub(&LinExpr::constant(space, 1)));
    let Ok(counter) = counter else {
        return false;
    };
    let mut sys = assumptions.clone();
    sys.add_ge(counter);
    is_empty(&sys) == Feasibility::Empty
}

/// Builder state for emitting the target program.
struct Builder<'x> {
    src: &'x Program,
    layout: &'x InstanceLayout,
    ast: &'x NewAst,
    plans: &'x [StmtPlan],
    slot_bounds: &'x HashMap<usize, SlotBounds>,
    np: usize,
}

impl Builder<'_> {
    fn build(&self) -> Result<CodegenResult, CodegenError> {
        let mut b = ProgramBuilder::new(format!("{}_transformed", self.src.name()));
        for name in self.src.params() {
            b.param(name.clone());
        }
        for a in self.src.assumes() {
            b.assume(a.clone());
        }
        let mut arrays = Vec::new();
        for a in self.src.arrays() {
            let d = self.src.array_decl(a);
            arrays.push(b.array(d.name.clone(), &d.dims));
        }
        // map: slot position -> target LoopId (filled as loops open)
        let mut slot_loop: HashMap<usize, LoopId> = HashMap::new();
        let mut stmt_map = vec![StmtId(usize::MAX); self.src.stmts().count()];
        let root: Vec<Node> = self.ast.program.root().to_vec();
        self.emit_nodes(&mut b, &root, &mut slot_loop, &mut stmt_map)?;
        let program = b.finish_unchecked();
        if let Err(e) = program.validate() {
            return Err(CodegenError::Illegal(format!(
                "generated program invalid: {e}"
            )));
        }
        Ok(CodegenResult {
            program,
            stmt_map,
            features: crate::cost::CostFeatures::default(),
        })
    }

    fn emit_nodes(
        &self,
        b: &mut ProgramBuilder,
        nodes: &[Node],
        slot_loop: &mut HashMap<usize, LoopId>,
        stmt_map: &mut [StmtId],
    ) -> Result<(), CodegenError> {
        for &n in nodes {
            match n {
                Node::Loop(l) => {
                    // slot position of this loop in the pinned layout
                    let qpos = self.ast.layout.loop_position(l);
                    let (lo, hi) = self
                        .slot_bounds
                        .get(&qpos)
                        .ok_or_else(|| CodegenError::Unbounded(format!("slot {qpos}")))?;
                    let name = self.slot_name(qpos);
                    let lower = Bound {
                        terms: lo
                            .iter()
                            .map(|t| self.to_aff(t, slot_loop, None))
                            .collect::<Result<_, _>>()?,
                    };
                    let upper = Bound {
                        terms: hi
                            .iter()
                            .map(|t| self.to_aff(t, slot_loop, None))
                            .collect::<Result<_, _>>()?,
                    };
                    let children = self.ast.program.loop_decl(l).children.clone();
                    let mut res: Result<(), CodegenError> = Ok(());
                    b.loop_full(name, lower, upper, 1, false, |b| {
                        let id = b.current_loop().expect("inside loop");
                        slot_loop.insert(qpos, id);
                        res = self.emit_nodes(b, &children, slot_loop, stmt_map);
                    });
                    res?;
                }
                Node::Stmt(s) => {
                    self.emit_stmt(b, s, slot_loop, stmt_map)?;
                }
            }
        }
        Ok(())
    }

    /// Name a slot loop: reuse the source loop's name when every statement
    /// schedules this slot as exactly that loop (identity row), otherwise
    /// a fresh `t<pos>`.
    fn slot_name(&self, qpos: usize) -> String {
        let mut source: Option<usize> = None;
        let mut uniform = true;
        for plan in self.plans {
            let Some(r) = plan.sched.slot_positions.iter().position(|&sp| sp == qpos) else {
                continue;
            };
            let row = plan.sched.rows.row(r);
            if plan.sched.offsets[r] != 0 {
                uniform = false;
                break;
            }
            // identity selector of some old loop dimension?
            let nz: Vec<usize> = (0..row.len()).filter(|&i| row[i] != 0).collect();
            if nz.len() == 1 && row[nz[0]] == 1 {
                let old = self.layout.stmt_loops(plan.sched.stmt)[nz[0]];
                let oldpos = self.layout.loop_position(old);
                match source {
                    None => source = Some(oldpos),
                    Some(x) if x == oldpos => {}
                    _ => {
                        uniform = false;
                        break;
                    }
                }
            } else {
                uniform = false;
                break;
            }
        }
        match (uniform, source) {
            (true, Some(oldpos)) => {
                if let Position::Loop(l) = self.layout.positions()[oldpos] {
                    self.src.loop_decl(l).name.clone()
                } else {
                    format!("t{qpos}")
                }
            }
            _ => format!("t{qpos}"),
        }
    }

    /// Convert a globalized bound term into a target-program `Aff`.
    /// `aug_ctx` maps aug tail indices to target loop ids (for aug-loop
    /// bounds referencing outer augs).
    fn to_aff(
        &self,
        t: &(LinExpr, Int),
        slot_loop: &HashMap<usize, LoopId>,
        aug_ctx: Option<&HashMap<usize, LoopId>>,
    ) -> Result<Aff, InlError> {
        let n = self.layout.len();
        let ill = |what: &str| InlError::new(InlErrorKind::IllFormed, what.to_string());
        let mut acc = Aff::konst(t.0.constant_term());
        for (i, &c) in t.0.coeffs().iter().enumerate() {
            if c == 0 {
                continue;
            }
            let v = if i < self.np {
                VarKey::Param(inl_ir::ParamId(i))
            } else if i < self.np + n {
                let qpos = i - self.np;
                VarKey::Loop(
                    *slot_loop
                        .get(&qpos)
                        .ok_or_else(|| ill("bound references a loop slot that is not yet open"))?,
                )
            } else {
                let r = i - self.np - n;
                VarKey::Loop(
                    *aug_ctx
                        .ok_or_else(|| {
                            ill("bound references an augmented variable outside its statement")
                        })?
                        .get(&r)
                        .ok_or_else(|| {
                            ill("bound references an augmented loop that is not yet open")
                        })?,
                )
            };
            acc = acc + Aff::var(v) * c;
        }
        if t.1 != 1 {
            acc = acc.exact_div(t.1);
        }
        Ok(acc)
    }

    fn emit_stmt(
        &self,
        b: &mut ProgramBuilder,
        s: StmtId,
        slot_loop: &mut HashMap<usize, LoopId>,
        stmt_map: &mut [StmtId],
    ) -> Result<(), CodegenError> {
        let plan = self
            .plans
            .iter()
            .find(|pl| pl.sched.stmt == s)
            .expect("plan");
        let sched = &plan.sched;
        let k = sched.slot_positions.len();
        let knew = sched.rows.nrows();

        // open augmented loops (innermost around the statement)
        let mut aug_ctx: HashMap<usize, LoopId> = HashMap::new();
        self.emit_aug_loops(b, plan, k, &mut aug_ctx, slot_loop, s, stmt_map)?;
        if knew == k {
            // no augs: emit directly
            self.emit_stmt_body(b, s, plan, slot_loop, &aug_ctx, stmt_map)?;
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_aug_loops(
        &self,
        b: &mut ProgramBuilder,
        plan: &StmtPlan,
        r: usize,
        aug_ctx: &mut HashMap<usize, LoopId>,
        slot_loop: &mut HashMap<usize, LoopId>,
        s: StmtId,
        stmt_map: &mut [StmtId],
    ) -> Result<(), CodegenError> {
        let knew = plan.sched.rows.nrows();
        if r >= knew {
            if plan.sched.n_aug > 0 {
                self.emit_stmt_body(b, s, plan, slot_loop, aug_ctx, stmt_map)?;
            }
            return Ok(());
        }
        let vb = &plan.bounds[r];
        let lo: Vec<Aff> = vb
            .lowers
            .iter()
            .map(|t| {
                self.to_aff(
                    &(globalize_tail(&t.expr, plan, self.layout, self.np)?, t.div),
                    slot_loop,
                    Some(aug_ctx),
                )
            })
            .collect::<Result<_, _>>()?;
        let hi: Vec<Aff> = vb
            .uppers
            .iter()
            .map(|t| {
                self.to_aff(
                    &(globalize_tail(&t.expr, plan, self.layout, self.np)?, t.div),
                    slot_loop,
                    Some(aug_ctx),
                )
            })
            .collect::<Result<_, _>>()?;
        if lo.is_empty() || hi.is_empty() {
            return Err(CodegenError::Unbounded(format!(
                "augmented loop {r} of {}",
                self.src.stmt_decl(s).name
            )));
        }
        let name = format!(
            "{}_a{}",
            self.src.stmt_decl(s).name.to_lowercase(),
            r - plan.sched.slot_positions.len()
        );
        let mut res: Result<(), CodegenError> = Ok(());
        b.loop_full(
            name,
            Bound { terms: lo },
            Bound { terms: hi },
            1,
            false,
            |b| {
                let id = b.current_loop().expect("inside loop");
                aug_ctx.insert(r, id);
                res = self.emit_aug_loops(b, plan, r + 1, aug_ctx, slot_loop, s, stmt_map);
            },
        );
        res
    }

    fn emit_stmt_body(
        &self,
        b: &mut ProgramBuilder,
        s: StmtId,
        plan: &StmtPlan,
        slot_loop: &HashMap<usize, LoopId>,
        aug_ctx: &HashMap<usize, LoopId>,
        stmt_map: &mut [StmtId],
    ) -> Result<(), CodegenError> {
        let sched = &plan.sched;
        let k = sched.slot_positions.len();
        let old_loops = self.layout.stmt_loops(s);

        // target loop variable for row r of the schedule
        let target_var = |r: usize| -> VarKey {
            if r < k {
                VarKey::Loop(*slot_loop.get(&sched.slot_positions[r]).expect("slot open"))
            } else {
                VarKey::Loop(*aug_ctx.get(&r).expect("aug open"))
            }
        };

        // i = N_S⁻¹ · (v - off), one Aff per old loop dim
        let inv = gauss::inverse_rational(&sched.n_s)?.ok_or_else(|| {
            InlError::new(
                InlErrorKind::RankDeficient,
                "per-statement transform N_S is singular",
            )
        })?;
        let kq = sched.n_s.nrows();
        let mut old_exprs: Vec<Aff> = Vec::with_capacity(kq);
        for q in 0..kq {
            // common denominator of row q
            let den = inv.rows[q]
                .iter()
                .try_fold(1, |acc, x| lcm(acc, x.den()).map(|l| l.max(1)))?;
            let mut acc = Aff::konst(0);
            let mut constant: Int = 0;
            for (j, &coef) in inv.rows[q].iter().enumerate() {
                if coef.is_zero() {
                    continue;
                }
                let r = sched.n_s_rows[j];
                let c = coef
                    .num()
                    .checked_mul(den / coef.den())
                    .ok_or_else(|| InlError::overflow("schedule coefficient"))?;
                acc = acc + Aff::var(target_var(r)) * c;
                constant = c
                    .checked_mul(sched.offsets[r])
                    .and_then(|t| constant.checked_sub(t))
                    .ok_or_else(|| InlError::overflow("schedule offset"))?;
            }
            acc = acc + Aff::konst(constant);
            if den != 1 {
                acc = acc.exact_div(den);
            }
            old_exprs.push(acc);
        }
        let subst = |a: &Aff| -> Aff {
            a.substitute_loops(&|l: LoopId| {
                match old_loops.iter().position(|&x| x == l) {
                    Some(q) => old_exprs[q].clone(),
                    None => Aff::var(VarKey::Loop(l)), // not ours (impossible after validation)
                }
            })
        };

        // guards
        let mut guards: Vec<Guard> = Vec::new();
        // (a) divisibility of each recovered old index
        for e in &old_exprs {
            if e.divisor() > 1 {
                guards.push(Guard::Div(e.numerator(), e.divisor()));
            }
        }
        // (b) singular-row equalities: v_r - off_r = Σ m_j (v_kj - off_kj)
        for (r, sing) in sched.singular.iter().enumerate() {
            let Some(coeffs) = sing else { continue };
            let den = coeffs
                .iter()
                .try_fold(1, |acc, x| lcm(acc, x.den()).map(|l| l.max(1)))?;
            let mut e = (Aff::var(target_var(r)) - Aff::konst(sched.offsets[r])) * den;
            for (j, coef) in coeffs.iter().enumerate() {
                if coef.is_zero() {
                    continue;
                }
                let rj = sched.n_s_rows[j];
                let c = coef
                    .num()
                    .checked_mul(den / coef.den())
                    .ok_or_else(|| InlError::overflow("singular-row coefficient"))?;
                e = e - (Aff::var(target_var(rj)) - Aff::konst(sched.offsets[rj])) * c;
            }
            guards.push(Guard::Eq(e.numerator()));
        }
        // (c) original bounds re-derived through the substitution
        for &l in old_loops {
            let ld = self.src.loop_decl(l);
            let iv = subst(&Aff::var(VarKey::Loop(l)));
            for t in &ld.lower.terms {
                // d·i - t ≥ 0
                let e = iv.clone() * t.divisor() - subst(&t.numerator());
                guards.push(Guard::Ge(e.numerator()));
            }
            for t in &ld.upper.terms {
                let e = subst(&t.numerator()) - iv.clone() * t.divisor();
                guards.push(Guard::Ge(e.numerator()));
            }
        }
        // (d) original statement guards, rewritten
        for g in &self.src.stmt_decl(s).guards {
            guards.push(match g {
                Guard::Ge(a) => Guard::Ge(subst(a).numerator()),
                Guard::Eq(a) => Guard::Eq(subst(a).numerator()),
                Guard::Div(a, md) => {
                    let sa = subst(a);
                    // (e/d) mod m == 0 with guaranteed divisibility of d:
                    // check m·d | e (conservative exactness: the separate
                    // Div guard for d already holds when this runs)
                    Guard::Div(sa.numerator(), md * sa.divisor())
                }
            });
        }

        // body
        let sd = self.src.stmt_decl(s);
        let write_idxs: Vec<Aff> = sd.write.idxs.iter().map(&subst).collect();
        let rhs = sd.rhs.map_affs(&subst);
        let target_array = inl_ir::ArrayId(sd.write.array.0); // arrays copied in order
        let new_id = b.stmt_guarded(sd.name.clone(), target_array, write_idxs, rhs, guards);
        stmt_map[s.0] = new_id;
        Ok(())
    }
}

/// Drop guards implied by the enclosing loops' bounds (and the program
/// assumptions): the paper's "standard optimizations" step, §5.5.
fn simplify_guards(result: CodegenResult, _src: &Program) -> CodegenResult {
    let mut program = result.program;
    let stmts: Vec<StmtId> = program.stmts().collect();
    for s in stmts {
        let sys = context_without_guards(&program, s);
        let space = sys.nvars();
        let to_expr = |a: &Aff| -> LinExpr { program.to_linexpr(a, space) };
        let decl = program.stmt_decl(s).clone();
        let kept: Vec<Guard> = decl
            .guards
            .iter()
            .filter(|g| match g {
                Guard::Ge(a) => {
                    // keep unless ¬(a ≥ 0) is infeasible in context;
                    // overflow while forming the query keeps the guard
                    let Ok(e) = to_expr(a)
                        .checked_neg()
                        .and_then(|x| x.checked_sub(&LinExpr::constant(space, 1)))
                    else {
                        return true;
                    };
                    let mut neg = sys.clone();
                    neg.add_ge(e);
                    is_empty(&neg) != Feasibility::Empty
                }
                Guard::Eq(a) => {
                    let above = to_expr(a).checked_sub(&LinExpr::constant(space, 1));
                    let below = to_expr(a)
                        .checked_neg()
                        .and_then(|x| x.checked_sub(&LinExpr::constant(space, 1)));
                    let (Ok(above), Ok(below)) = (above, below) else {
                        return true;
                    };
                    let mut pos = sys.clone();
                    pos.add_ge(above);
                    let mut negs = sys.clone();
                    negs.add_ge(below);
                    is_empty(&pos) != Feasibility::Empty || is_empty(&negs) != Feasibility::Empty
                }
                Guard::Div(_, _) => true,
            })
            .cloned()
            .collect();
        inl_obs::counter_add!("codegen.guards_simplified", decl.guards.len() - kept.len());
        set_guards(&mut program, s, kept);
    }
    CodegenResult {
        program,
        stmt_map: result.stmt_map,
        features: result.features,
    }
}

/// The iteration context of a statement ignoring its own guards.
fn context_without_guards(p: &Program, s: StmtId) -> System {
    // temporarily strip guards, reuse iteration_system
    let mut q = p.clone();
    set_guards(&mut q, s, Vec::new());
    q.iteration_system(s)
}

fn set_guards(p: &mut Program, s: StmtId, guards: Vec<Guard>) {
    // Program fields are private to inl-ir; use the surgery-style accessor
    p.set_stmt_guards(s, guards);
}

#[cfg(test)]
mod tests {
    use super::*;
    use inl_core::depend::analyze;
    use inl_core::instance::InstanceLayout;
    use inl_ir::zoo;

    #[test]
    fn bound_on_eliminated_old_var_is_typed_error() {
        // A scan bound referencing an old (pre-transformation) iteration
        // variable means projection broke off early; the globalizers must
        // report IllFormed instead of panicking.
        let p = zoo::wavefront();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        let m = IMat::identity(layout.len());
        let report = check_legal(&p, &layout, &deps, &m).expect("legality");
        let ast = report.new_ast.as_ref().unwrap();
        let schedules = schedule_all(&p, &layout, ast, &m, &deps, &report).expect("schedule");
        let sched = schedules.into_iter().next().unwrap();
        let np = p.nparams();
        let kold = layout.stmt_loops(sched.stmt).len();
        let plan = StmtPlan {
            sched,
            bounds: Vec::new(),
            np,
            kold,
        };
        let space = np + kold + plan.sched.rows.nrows();
        let bad = LinExpr::var(space, np); // slot np = first old iteration var
        let err = globalize_tail(&bad, &plan, &layout, np).unwrap_err();
        assert_eq!(err.kind(), InlErrorKind::IllFormed);
        assert!(
            err.to_string()
                .contains("eliminated old iteration variable"),
            "{err}"
        );
        let err = globalize(&bad, &plan, &layout, np).unwrap_err();
        assert_eq!(err.kind(), InlErrorKind::IllFormed);
    }
}
