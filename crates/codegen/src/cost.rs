//! Static cost features of a generated variant.
//!
//! The auto-scheduler (`inl-sched`) ranks legal variants *without running
//! them*, using integer features computed from the dependence matrix, the
//! transformation, and the generated program. Everything here is exact
//! integer arithmetic over structures the pipeline already built — no
//! timing, no floating point — so ranking is deterministic and
//! reproducible across machines, and the same numbers double as explain
//! evidence (`inl_obs::explain` features on the `codegen` stage).
//!
//! Feature definitions (see DESIGN.md → "The auto-scheduler" for the
//! formulas and rationale):
//!
//! * **`reuse_penalty`** — locality proxy. For every statement of the
//!   *generated* program and every access (the write plus all reads),
//!   look at the innermost surrounding loop variable `v` — skipping
//!   loops that provably run **at most one trip** per surrounding
//!   iteration (a lower/upper term pair whose difference is a constant
//!   below 1, e.g. the `⌈(e−T+1)/T⌉..⌊e/T⌋` pair a permutation leaves
//!   when it sinks a split's tile-number loop inside its tile loop).
//!   Such a loop contributes no locality: every access is trivially
//!   "invariant" across its single iteration, and without the skip a
//!   degenerate tiled order would zero out its deepest statement's
//!   penalty and game the ranking:
//!   - `v` appears in no subscript → 0 (the access is invariant in the
//!     innermost loop: temporal reuse);
//!   - `v` appears only in the **last** subscript with |coeff| = 1 → 1
//!     (unit stride through the row-major minor dimension);
//!   - `v` appears only in the last subscript with |coeff| > 1 → 8
//!     (strided within the minor dimension);
//!   - `v` appears in any **non-last** subscript → 64 (row jumps: each
//!     iteration moves a whole minor-dimension stride).
//!
//!   Each statement's access penalties are weighted by
//!   `4096^depth` (depth = number of surrounding loops in the generated
//!   program), so penalties in deeper — more frequently executed — code
//!   dominate penalties in setup code, whatever the parameter values.
//! * **`max_write_stride`** — the largest |coefficient| of any loop
//!   variable in any write subscript of the generated program.
//! * **`parallel_slots` / `wavefront`** — how many loop slots the
//!   dependence projections certify as DOALL under this transformation,
//!   and whether the outermost parallelism sits strictly inside the nest
//!   (a wavefront schedule: synchronization per outer iteration).
//! * **`guards`** — guards surviving guard simplification; each is a
//!   per-instance branch in the inner loops.
//! * **`bounds_scanned` / `loops_augmented`** — generation work counts,
//!   kept for explain parity (they describe compile cost, not run cost).
//! * **`tile_reuse`** — how many accesses a split (strip-mine) genuinely
//!   blocks. A loop `v` is *tile-confined* when its generated bounds
//!   carry the clamp pair `T·vo ≤ v ≤ T·vo + T − 1` left by
//!   `Program::split_loop` (coefficient `T ≥ 2` on an outer loop `vo`).
//!   An access counts when it mentions a tile-confined `v` in a
//!   **non-last** subscript (the row-jump class, whose working set is a
//!   whole slab) *and* is invariant in some other loop nested inside
//!   `vo` — then each sweep of that invariant loop re-touches only the
//!   tile-sized slab instead of the full extent, which is exactly the
//!   reuse-distance reduction tiling buys. `reuse_penalty` alone cannot
//!   see this (the extra outer loop deepens the nest, so the
//!   depth-weighted penalty *grows* under a split).

use inl_core::depend::{DepKind, DependenceMatrix};
use inl_core::instance::{InstanceLayout, Position};
use inl_core::legal::NewAst;
use inl_ir::{Aff, Program, VarKey};
use inl_linalg::IMat;

/// Weight base for statement depth in [`CostFeatures::reuse_penalty`]:
/// any single access at depth `d+1` outweighs every access at depth `d`.
const DEPTH_WEIGHT: i64 = 4096;

/// Per-access penalty for a non-unit stride in the minor dimension.
const STRIDED_PENALTY: i64 = 8;

/// Per-access penalty for an innermost variable in a major dimension.
const ROW_JUMP_PENALTY: i64 = 64;

/// Integer cost features of one generated variant (see the module docs
/// for definitions). Lower is better for every field except
/// `parallel_slots`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CostFeatures {
    /// Number of dependences in the source program's dependence matrix.
    pub deps: i64,
    /// How many of those are certain (distance known exactly).
    pub deps_certain: i64,
    /// Statements in the generated program.
    pub stmts: i64,
    /// Scan bounds computed during generation (compile cost).
    pub bounds_scanned: i64,
    /// Loops added by augmentation (§5.4) during generation.
    pub loops_augmented: i64,
    /// Guards surviving simplification, summed over statements.
    pub guards: i64,
    /// Loop slots certified DOALL under this transformation.
    pub doall: Vec<usize>,
    /// `true` when the outermost DOALL slot is strictly inside the nest
    /// (inner parallelism only — a wavefront schedule).
    pub wavefront: bool,
    /// Largest |coefficient| of a loop variable in any write subscript.
    pub max_write_stride: i64,
    /// Depth-weighted locality penalty over all accesses (module docs).
    pub reuse_penalty: i64,
    /// Accesses whose row-jump slab a strip-mine confines to one tile
    /// that is re-swept by an inner invariant loop (module docs). Higher
    /// is better; 0 for every untiled variant.
    pub tile_reuse: i64,
}

impl CostFeatures {
    /// Number of certified DOALL slots (`doall.len()` as a feature value).
    pub fn parallel_slots(&self) -> i64 {
        self.doall.len() as i64
    }
}

/// Does loop `l` provably run at most one trip per surrounding
/// iteration? True when some lower term `lt` and upper term `ut` differ
/// by a variable-free constant below 1: the trip count
/// `⌊ut⌋ − ⌈lt⌉ + 1` is then at most 1 for every surrounding iteration.
fn single_trip(out: &Program, l: inl_ir::LoopId) -> bool {
    let ld = out.loop_decl(l);
    ld.lower.terms.iter().any(|lt| {
        ld.upper.terms.iter().any(|ut| {
            let diff = ut.clone() - lt.clone();
            diff.terms().is_empty() && diff.constant() < diff.divisor()
        })
    })
}

/// The outer (tile-number) loop confining `v`, if `v`'s bounds carry a
/// split's clamp pair `T·vo ≤ v ≤ T·vo + T − 1` with `T ≥ 2`.
fn tile_confinement(out: &Program, v: inl_ir::LoopId) -> Option<VarKey> {
    let ld = out.loop_decl(v);
    let single_loop_term = |a: &Aff| -> Option<(VarKey, i128)> {
        if a.divisor() != 1 || a.terms().len() != 1 {
            return None;
        }
        let &(vo, t) = &a.terms()[0];
        matches!(vo, VarKey::Loop(_)).then_some((vo, t))
    };
    for lo in &ld.lower.terms {
        if lo.constant() != 0 {
            continue;
        }
        let Some((vo, t)) = single_loop_term(lo) else {
            continue;
        };
        if t < 2 {
            continue;
        }
        let clamped = ld.upper.terms.iter().any(|up| {
            up.constant() == t - 1
                && single_loop_term(&(up.clone() - Aff::konst(t - 1)))
                    .is_some_and(|(vu, tu)| vu == vo && tu == t)
        });
        if clamped {
            return Some(vo);
        }
    }
    None
}

/// Does strip-mining pay off for this access? See the module docs'
/// `tile_reuse` definition. `surrounding` are the loops around the
/// statement in the generated program, outermost first.
fn access_tile_reuse(out: &Program, surrounding: &[inl_ir::LoopId], idxs: &[Aff]) -> bool {
    for (k, a) in idxs.iter().enumerate() {
        if k + 1 == idxs.len() {
            continue; // last subscript: minor-dimension, not a slab jump
        }
        for &(v, c) in a.terms() {
            let (VarKey::Loop(vl), true) = (v, c != 0) else {
                continue;
            };
            let Some(vo) = tile_confinement(out, vl) else {
                continue;
            };
            let reused = surrounding.iter().any(|&m| {
                m != vl
                    && out
                        .loops_surrounding_loop(m)
                        .iter()
                        .any(|&q| VarKey::Loop(q) == vo)
                    && idxs.iter().all(|ix| ix.coeff(VarKey::Loop(m)) == 0)
            });
            if reused {
                return true;
            }
        }
    }
    false
}

/// Penalty of one access with respect to loop variable `innermost`.
fn access_penalty(idxs: &[Aff], innermost: VarKey) -> i64 {
    let mut penalty = 0i64;
    for (k, a) in idxs.iter().enumerate() {
        let coeff = a
            .terms()
            .iter()
            .find(|(v, _)| *v == innermost)
            .map(|&(_, c)| c)
            .unwrap_or(0);
        if coeff == 0 {
            continue;
        }
        let last = k + 1 == idxs.len();
        penalty = penalty.max(if !last {
            ROW_JUMP_PENALTY
        } else if coeff.unsigned_abs() == 1 {
            1
        } else {
            STRIDED_PENALTY
        });
    }
    penalty
}

/// Compute the cost features of a generated variant.
///
/// `out` is the *generated* program (after guard simplification); the
/// remaining arguments describe the source program's dependence structure
/// and the transformation, exactly as they reached code generation.
pub fn cost_features(
    layout: &InstanceLayout,
    deps: &DependenceMatrix,
    m: &IMat,
    ast: &NewAst,
    out: &Program,
    bounds_scanned: i64,
    loops_augmented: i64,
) -> CostFeatures {
    let deps_certain = deps.deps.iter().filter(|d| d.certain).count() as i64;
    let doall = inl_core::parallel::parallel_slots(layout, deps, ast, m);
    let first_loop_slot = layout
        .positions()
        .iter()
        .position(|pos| matches!(pos, Position::Loop(_)));
    let wavefront = match (doall.first(), first_loop_slot) {
        (Some(&s), Some(f)) => s > f,
        _ => false,
    };

    let mut max_write_stride = 0i64;
    let mut guards = 0i64;
    let mut reuse_penalty = 0i64;
    let mut tile_reuse = 0i64;
    for s in out.stmts() {
        let sd = out.stmt_decl(s);
        for a in &sd.write.idxs {
            for &(v, c) in a.terms() {
                if matches!(v, VarKey::Loop(_)) {
                    let mag = c.unsigned_abs().min(i64::MAX as u128) as i64;
                    max_write_stride = max_write_stride.max(mag);
                }
            }
        }
        guards += sd.guards.len() as i64;

        let surrounding = out.loops_surrounding(s);
        let depth = surrounding.len() as u32;
        // locality is decided by the innermost loop that actually
        // iterates; single-trip loops are transparent
        let effective_inner = surrounding
            .iter()
            .rev()
            .find(|&&m| !single_trip(out, m))
            .copied();
        if let Some(inner) = effective_inner {
            let innermost = VarKey::Loop(inner);
            let weight = DEPTH_WEIGHT.saturating_pow(depth);
            let mut accesses: Vec<&[Aff]> = vec![&sd.write.idxs];
            let mut reads = Vec::new();
            sd.rhs.collect_reads(&mut reads);
            for r in &reads {
                accesses.push(&r.idxs);
            }
            for idxs in accesses {
                reuse_penalty = reuse_penalty
                    .saturating_add(access_penalty(idxs, innermost).saturating_mul(weight));
                if access_tile_reuse(out, &surrounding, idxs) {
                    tile_reuse += 1;
                }
            }
        }
    }

    CostFeatures {
        deps: deps.deps.len() as i64,
        deps_certain,
        stmts: out.stmts().count() as i64,
        bounds_scanned,
        loops_augmented,
        guards,
        doall,
        wavefront,
        max_write_stride,
        reuse_penalty,
        tile_reuse,
    }
}

/// Kind counts of a dependence matrix, for explain details.
pub(crate) fn dep_kind_counts(deps: &DependenceMatrix) -> (i64, i64, i64) {
    let (mut flow, mut anti, mut output) = (0i64, 0i64, 0i64);
    for d in &deps.deps {
        match d.kind {
            DepKind::Flow => flow += 1,
            DepKind::Anti => anti += 1,
            DepKind::Output => output += 1,
        }
    }
    (flow, anti, output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use inl_core::depend::analyze;
    use inl_ir::zoo;

    #[test]
    fn identity_matmul_features() {
        // matmul C(i,j) += A(i,k)·B(k,j) under identity (i,j,k): C is
        // invariant in k (0), A walks its last subscript k unit-stride
        // (1), B's k sits in the first subscript (row jump, 64).
        let p = zoo::matmul();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        let m = IMat::identity(layout.len());
        let r = crate::generate(&p, &layout, &deps, &m).expect("generates");
        let f = &r.features;
        assert_eq!(f.stmts, 1);
        let weight = DEPTH_WEIGHT.pow(3);
        // write C(i,j): 0 · two reads of C: 0 each · A(i,k): 1 · B(k,j): 64
        assert_eq!(f.reuse_penalty, (1 + ROW_JUMP_PENALTY) * weight);
        assert_eq!(f.max_write_stride, 1);
        assert_eq!(f.deps, deps.deps.len() as i64);
        // no loop is tile-confined in an unsplit program
        assert_eq!(f.tile_reuse, 0);
    }

    #[test]
    fn tile_reuse_counts_confined_slab_accesses() {
        use inl_ir::{Bound, Expr, ProgramBuilder};
        // hand-build the good tiled matmul order (Ko, I, K, J): K is
        // confined to [16·Ko, 16·Ko + 15] and B(k,j)'s slab is re-swept
        // by the invariant loop I inside Ko
        let mut b = ProgramBuilder::new("tiled_matmul");
        let n = b.param("N");
        let dims = [Aff::param(n) + Aff::konst(1), Aff::param(n) + Aff::konst(1)];
        let c = b.array("C", &dims);
        let a = b.array("A", &dims);
        let bb = b.array("B", &dims);
        b.hloop(
            "Ko",
            (Aff::konst(1) + Aff::konst(1 - 16)).exact_div(16),
            Aff::param(n).exact_div(16),
            |b| {
                let ko = b.loop_var("Ko");
                b.hloop("I", Aff::konst(1), Aff::param(n), |b| {
                    b.loop_full(
                        "K",
                        Bound {
                            terms: vec![Aff::konst(1), Aff::var(ko) * 16],
                        },
                        Bound {
                            terms: vec![Aff::param(n), Aff::var(ko) * 16 + Aff::konst(15)],
                        },
                        1,
                        false,
                        |b| {
                            b.hloop("J", Aff::konst(1), Aff::param(n), |b| {
                                let (i, j, k) = (b.loop_var("I"), b.loop_var("J"), b.loop_var("K"));
                                b.stmt(
                                    "S1",
                                    c,
                                    vec![Aff::var(i), Aff::var(j)],
                                    Expr::add(
                                        Expr::read(c, vec![Aff::var(i), Aff::var(j)]),
                                        Expr::mul(
                                            Expr::read(a, vec![Aff::var(i), Aff::var(k)]),
                                            Expr::read(bb, vec![Aff::var(k), Aff::var(j)]),
                                        ),
                                    ),
                                );
                            });
                        },
                    );
                });
            },
        );
        let p = b.finish();
        assert!(p.validate().is_ok(), "{:?}", p.validate());
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        let m = IMat::identity(layout.len());
        let r = crate::generate(&p, &layout, &deps, &m).expect("generates");
        // only B(k,j) counts: K in a non-last subscript, confined by Ko,
        // and B is invariant in I (inside Ko); A(i,k) has K in the last
        // subscript, C(i,j) mentions no confined loop
        assert_eq!(r.features.tile_reuse, 1);
    }

    #[test]
    fn access_penalty_classes() {
        use inl_ir::ProgramBuilder;
        // build a tiny program just to obtain loop VarKeys
        let mut b = ProgramBuilder::new("t");
        let n = b.param("N");
        let x = b.array("X", &[Aff::param(n), Aff::param(n)]);
        b.hloop("I", Aff::konst(0), Aff::param(n), |b| {
            let i = b.loop_var("I");
            b.stmt(
                "S",
                x,
                vec![Aff::var(i), Aff::var(i)],
                inl_ir::Expr::konst(0.0),
            );
        });
        let p = b.finish();
        let i = VarKey::Loop(p.loops().next().unwrap());
        let n0 = Aff::konst(0);
        let unit = Aff::var(i);
        let strided = Aff::var(i) * 3;
        assert_eq!(access_penalty(&[n0.clone(), n0.clone()], i), 0);
        assert_eq!(access_penalty(&[n0.clone(), unit.clone()], i), 1);
        assert_eq!(
            access_penalty(&[n0.clone(), strided.clone()], i),
            STRIDED_PENALTY
        );
        assert_eq!(access_penalty(&[unit.clone(), n0], i), ROW_JUMP_PENALTY);
        // worst class wins when both subscripts use the variable
        assert_eq!(access_penalty(&[unit.clone(), unit], i), ROW_JUMP_PENALTY);
    }
}
