//! Static cost features of a generated variant.
//!
//! The auto-scheduler (`inl-sched`) ranks legal variants *without running
//! them*, using integer features computed from the dependence matrix, the
//! transformation, and the generated program. Everything here is exact
//! integer arithmetic over structures the pipeline already built — no
//! timing, no floating point — so ranking is deterministic and
//! reproducible across machines, and the same numbers double as explain
//! evidence (`inl_obs::explain` features on the `codegen` stage).
//!
//! Feature definitions (see DESIGN.md → "The auto-scheduler" for the
//! formulas and rationale):
//!
//! * **`reuse_penalty`** — locality proxy. For every statement of the
//!   *generated* program and every access (the write plus all reads),
//!   look at the innermost surrounding loop variable `v`:
//!   - `v` appears in no subscript → 0 (the access is invariant in the
//!     innermost loop: temporal reuse);
//!   - `v` appears only in the **last** subscript with |coeff| = 1 → 1
//!     (unit stride through the row-major minor dimension);
//!   - `v` appears only in the last subscript with |coeff| > 1 → 8
//!     (strided within the minor dimension);
//!   - `v` appears in any **non-last** subscript → 64 (row jumps: each
//!     iteration moves a whole minor-dimension stride).
//!
//!   Each statement's access penalties are weighted by
//!   `4096^depth` (depth = number of surrounding loops in the generated
//!   program), so penalties in deeper — more frequently executed — code
//!   dominate penalties in setup code, whatever the parameter values.
//! * **`max_write_stride`** — the largest |coefficient| of any loop
//!   variable in any write subscript of the generated program.
//! * **`parallel_slots` / `wavefront`** — how many loop slots the
//!   dependence projections certify as DOALL under this transformation,
//!   and whether the outermost parallelism sits strictly inside the nest
//!   (a wavefront schedule: synchronization per outer iteration).
//! * **`guards`** — guards surviving guard simplification; each is a
//!   per-instance branch in the inner loops.
//! * **`bounds_scanned` / `loops_augmented`** — generation work counts,
//!   kept for explain parity (they describe compile cost, not run cost).

use inl_core::depend::{DepKind, DependenceMatrix};
use inl_core::instance::{InstanceLayout, Position};
use inl_core::legal::NewAst;
use inl_ir::{Aff, Program, VarKey};
use inl_linalg::IMat;

/// Weight base for statement depth in [`CostFeatures::reuse_penalty`]:
/// any single access at depth `d+1` outweighs every access at depth `d`.
const DEPTH_WEIGHT: i64 = 4096;

/// Per-access penalty for a non-unit stride in the minor dimension.
const STRIDED_PENALTY: i64 = 8;

/// Per-access penalty for an innermost variable in a major dimension.
const ROW_JUMP_PENALTY: i64 = 64;

/// Integer cost features of one generated variant (see the module docs
/// for definitions). Lower is better for every field except
/// `parallel_slots`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CostFeatures {
    /// Number of dependences in the source program's dependence matrix.
    pub deps: i64,
    /// How many of those are certain (distance known exactly).
    pub deps_certain: i64,
    /// Statements in the generated program.
    pub stmts: i64,
    /// Scan bounds computed during generation (compile cost).
    pub bounds_scanned: i64,
    /// Loops added by augmentation (§5.4) during generation.
    pub loops_augmented: i64,
    /// Guards surviving simplification, summed over statements.
    pub guards: i64,
    /// Loop slots certified DOALL under this transformation.
    pub doall: Vec<usize>,
    /// `true` when the outermost DOALL slot is strictly inside the nest
    /// (inner parallelism only — a wavefront schedule).
    pub wavefront: bool,
    /// Largest |coefficient| of a loop variable in any write subscript.
    pub max_write_stride: i64,
    /// Depth-weighted locality penalty over all accesses (module docs).
    pub reuse_penalty: i64,
}

impl CostFeatures {
    /// Number of certified DOALL slots (`doall.len()` as a feature value).
    pub fn parallel_slots(&self) -> i64 {
        self.doall.len() as i64
    }
}

/// Penalty of one access with respect to loop variable `innermost`.
fn access_penalty(idxs: &[Aff], innermost: VarKey) -> i64 {
    let mut penalty = 0i64;
    for (k, a) in idxs.iter().enumerate() {
        let coeff = a
            .terms()
            .iter()
            .find(|(v, _)| *v == innermost)
            .map(|&(_, c)| c)
            .unwrap_or(0);
        if coeff == 0 {
            continue;
        }
        let last = k + 1 == idxs.len();
        penalty = penalty.max(if !last {
            ROW_JUMP_PENALTY
        } else if coeff.unsigned_abs() == 1 {
            1
        } else {
            STRIDED_PENALTY
        });
    }
    penalty
}

/// Compute the cost features of a generated variant.
///
/// `out` is the *generated* program (after guard simplification); the
/// remaining arguments describe the source program's dependence structure
/// and the transformation, exactly as they reached code generation.
pub fn cost_features(
    layout: &InstanceLayout,
    deps: &DependenceMatrix,
    m: &IMat,
    ast: &NewAst,
    out: &Program,
    bounds_scanned: i64,
    loops_augmented: i64,
) -> CostFeatures {
    let deps_certain = deps.deps.iter().filter(|d| d.certain).count() as i64;
    let doall = inl_core::parallel::parallel_slots(layout, deps, ast, m);
    let first_loop_slot = layout
        .positions()
        .iter()
        .position(|pos| matches!(pos, Position::Loop(_)));
    let wavefront = match (doall.first(), first_loop_slot) {
        (Some(&s), Some(f)) => s > f,
        _ => false,
    };

    let mut max_write_stride = 0i64;
    let mut guards = 0i64;
    let mut reuse_penalty = 0i64;
    for s in out.stmts() {
        let sd = out.stmt_decl(s);
        for a in &sd.write.idxs {
            for &(v, c) in a.terms() {
                if matches!(v, VarKey::Loop(_)) {
                    let mag = c.unsigned_abs().min(i64::MAX as u128) as i64;
                    max_write_stride = max_write_stride.max(mag);
                }
            }
        }
        guards += sd.guards.len() as i64;

        let surrounding = out.loops_surrounding(s);
        let depth = surrounding.len() as u32;
        if let Some(&inner) = surrounding.last() {
            let innermost = VarKey::Loop(inner);
            let weight = DEPTH_WEIGHT.saturating_pow(depth);
            let mut accesses: Vec<&[Aff]> = vec![&sd.write.idxs];
            let mut reads = Vec::new();
            sd.rhs.collect_reads(&mut reads);
            for r in &reads {
                accesses.push(&r.idxs);
            }
            for idxs in accesses {
                reuse_penalty = reuse_penalty
                    .saturating_add(access_penalty(idxs, innermost).saturating_mul(weight));
            }
        }
    }

    CostFeatures {
        deps: deps.deps.len() as i64,
        deps_certain,
        stmts: out.stmts().count() as i64,
        bounds_scanned,
        loops_augmented,
        guards,
        doall,
        wavefront,
        max_write_stride,
        reuse_penalty,
    }
}

/// Kind counts of a dependence matrix, for explain details.
pub(crate) fn dep_kind_counts(deps: &DependenceMatrix) -> (i64, i64, i64) {
    let (mut flow, mut anti, mut output) = (0i64, 0i64, 0i64);
    for d in &deps.deps {
        match d.kind {
            DepKind::Flow => flow += 1,
            DepKind::Anti => anti += 1,
            DepKind::Output => output += 1,
        }
    }
    (flow, anti, output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use inl_core::depend::analyze;
    use inl_ir::zoo;

    #[test]
    fn identity_matmul_features() {
        // matmul C(i,j) += A(i,k)·B(k,j) under identity (i,j,k): C is
        // invariant in k (0), A walks its last subscript k unit-stride
        // (1), B's k sits in the first subscript (row jump, 64).
        let p = zoo::matmul();
        let layout = InstanceLayout::new(&p);
        let deps = analyze(&p, &layout).expect("analysis");
        let m = IMat::identity(layout.len());
        let r = crate::generate(&p, &layout, &deps, &m).expect("generates");
        let f = &r.features;
        assert_eq!(f.stmts, 1);
        let weight = DEPTH_WEIGHT.pow(3);
        // write C(i,j): 0 · two reads of C: 0 each · A(i,k): 1 · B(k,j): 64
        assert_eq!(f.reuse_penalty, (1 + ROW_JUMP_PENALTY) * weight);
        assert_eq!(f.max_write_stride, 1);
        assert_eq!(f.deps, deps.deps.len() as i64);
    }

    #[test]
    fn access_penalty_classes() {
        use inl_ir::ProgramBuilder;
        // build a tiny program just to obtain loop VarKeys
        let mut b = ProgramBuilder::new("t");
        let n = b.param("N");
        let x = b.array("X", &[Aff::param(n), Aff::param(n)]);
        b.hloop("I", Aff::konst(0), Aff::param(n), |b| {
            let i = b.loop_var("I");
            b.stmt(
                "S",
                x,
                vec![Aff::var(i), Aff::var(i)],
                inl_ir::Expr::konst(0.0),
            );
        });
        let p = b.finish();
        let i = VarKey::Loop(p.loops().next().unwrap());
        let n0 = Aff::konst(0);
        let unit = Aff::var(i);
        let strided = Aff::var(i) * 3;
        assert_eq!(access_penalty(&[n0.clone(), n0.clone()], i), 0);
        assert_eq!(access_penalty(&[n0.clone(), unit.clone()], i), 1);
        assert_eq!(
            access_penalty(&[n0.clone(), strided.clone()], i),
            STRIDED_PENALTY
        );
        assert_eq!(access_penalty(&[unit.clone(), n0], i), ROW_JUMP_PENALTY);
        // worst class wins when both subscripts use the variable
        assert_eq!(access_penalty(&[unit.clone(), unit], i), ROW_JUMP_PENALTY);
    }
}
