//! Sparse affine expressions over program variables.
//!
//! [`Aff`] is the expression language of the IR: loop bounds, array
//! subscripts and guards are all affine functions of symbolic parameters
//! and enclosing loop variables. Unlike [`inl_poly::LinExpr`], `Aff` is
//! sparse (it names variables by [`VarKey`], not position) so it can be
//! written before the program's full variable space is known, and it carries
//! an optional positive divisor so non-unimodular code generation can
//! express `(i' + j') / 2`-style recovered indices (the interpreter checks
//! exact divisibility at runtime; guards generated alongside make it hold).

use crate::program::{LoopId, ParamId};
use inl_linalg::{gcd, Int, Rational};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A variable of the program: a symbolic parameter or a loop index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VarKey {
    /// A symbolic size parameter (e.g. `N`).
    Param(ParamId),
    /// A loop index variable.
    Loop(LoopId),
}

/// A sparse affine expression `(Σ cᵢ·vᵢ + k) / div` with `div ≥ 1`.
///
/// The division is exact-rational: [`Aff::eval`] returns a [`Rational`].
/// Contexts that require integers (array subscripts) check divisibility at
/// runtime; loop bounds apply context-dependent floor/ceil instead.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Aff {
    /// Sorted by `VarKey`, no zero coefficients, no duplicate keys.
    terms: Vec<(VarKey, Int)>,
    constant: Int,
    div: Int,
}

impl Aff {
    /// The constant expression `k`.
    pub fn konst(k: Int) -> Self {
        Aff {
            terms: vec![],
            constant: k,
            div: 1,
        }
    }

    /// The zero expression.
    pub fn zero() -> Self {
        Aff::konst(0)
    }

    /// A single variable.
    pub fn var(v: VarKey) -> Self {
        Aff {
            terms: vec![(v, 1)],
            constant: 0,
            div: 1,
        }
    }

    /// A parameter variable.
    pub fn param(p: ParamId) -> Self {
        Aff::var(VarKey::Param(p))
    }

    /// A loop variable.
    pub fn loop_var(l: LoopId) -> Self {
        Aff::var(VarKey::Loop(l))
    }

    /// Build from terms (need not be sorted/deduped) and a constant.
    pub fn from_terms(terms: Vec<(VarKey, Int)>, constant: Int) -> Self {
        let mut a = Aff {
            terms: vec![],
            constant,
            div: 1,
        };
        for (v, c) in terms {
            a.add_term(v, c);
        }
        a
    }

    fn add_term(&mut self, v: VarKey, c: Int) {
        if c == 0 {
            return;
        }
        match self.terms.binary_search_by_key(&v, |&(k, _)| k) {
            Ok(i) => {
                self.terms[i].1 += c;
                if self.terms[i].1 == 0 {
                    self.terms.remove(i);
                }
            }
            Err(i) => self.terms.insert(i, (v, c)),
        }
    }

    /// The terms, sorted by variable.
    pub fn terms(&self) -> &[(VarKey, Int)] {
        &self.terms
    }

    /// The constant term (numerator part).
    pub fn constant(&self) -> Int {
        self.constant
    }

    /// The divisor (`≥ 1`).
    pub fn divisor(&self) -> Int {
        self.div
    }

    /// Coefficient of a variable (0 if absent).
    pub fn coeff(&self, v: VarKey) -> Int {
        self.terms
            .binary_search_by_key(&v, |&(k, _)| k)
            .map_or(0, |i| self.terms[i].1)
    }

    /// True iff no variables occur.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Divide by a positive constant (stacked onto the existing divisor,
    /// then normalized by the gcd of all numerator entries).
    ///
    /// # Panics
    /// If `d <= 0`.
    pub fn exact_div(&self, d: Int) -> Aff {
        assert!(d > 0, "divisor must be positive");
        let mut out = self.clone();
        out.div = out.div.checked_mul(d).expect("divisor overflow");
        out.normalize();
        out
    }

    fn normalize(&mut self) {
        if self.div == 1 {
            return;
        }
        let mut g = self.div;
        g = gcd(g, self.constant);
        for &(_, c) in &self.terms {
            g = gcd(g, c);
        }
        if g > 1 {
            self.div /= g;
            self.constant /= g;
            for t in &mut self.terms {
                t.1 /= g;
            }
        }
    }

    /// Evaluate at a point, looking variables up through `lookup`.
    pub fn eval(&self, lookup: &dyn Fn(VarKey) -> Int) -> Rational {
        let num = self
            .terms
            .iter()
            .map(|&(v, c)| c.checked_mul(lookup(v)).expect("aff eval overflow"))
            .fold(self.constant, |acc, t| {
                acc.checked_add(t).expect("aff eval overflow")
            });
        Rational::new(num, self.div)
    }

    /// Evaluate, requiring an integral result; `None` if the division is
    /// inexact at this point.
    pub fn eval_int(&self, lookup: &dyn Fn(VarKey) -> Int) -> Option<Int> {
        let r = self.eval(lookup);
        r.is_integer().then(|| r.num())
    }

    /// Substitute each loop variable via `subst` (parameters are kept).
    /// Each replacement may itself have a divisor; the result is normalized.
    pub fn substitute_loops(&self, subst: &dyn Fn(LoopId) -> Aff) -> Aff {
        let mut acc = Aff {
            terms: vec![],
            constant: self.constant,
            div: 1,
        };
        let mut den: Int = 1;
        let mut parts: Vec<(Aff, Int)> = Vec::new(); // (replacement, coeff)
        for &(v, c) in &self.terms {
            match v {
                VarKey::Param(_) => acc.add_term(v, c),
                VarKey::Loop(l) => {
                    let r = subst(l);
                    den = den
                        .checked_mul(r.div / gcd(den, r.div).max(1))
                        .expect("lcm overflow");
                    parts.push((r, c));
                }
            }
        }
        // common denominator: den (lcm of replacement divisors)
        let mut out = Aff {
            terms: vec![],
            constant: 0,
            div: 1,
        };
        for (v, c) in acc.terms {
            out.add_term(v, c * den);
        }
        out.constant = acc.constant * den;
        for (r, c) in parts {
            let scale = c * (den / r.div);
            for &(v, rc) in &r.terms {
                out.add_term(v, rc * scale);
            }
            out.constant += r.constant * scale;
        }
        out.div = den * self.div;
        out.normalize();
        out
    }

    /// All variables mentioned.
    pub fn vars(&self) -> impl Iterator<Item = VarKey> + '_ {
        self.terms.iter().map(|&(v, _)| v)
    }

    /// The numerator as a divisor-free expression: `numerator() / divisor()
    /// == self` as exact rationals. Useful for turning `e/d ≥ 0` into the
    /// equivalent integer constraint `e ≥ 0` (the divisor is positive).
    pub fn numerator(&self) -> Aff {
        Aff {
            terms: self.terms.clone(),
            constant: self.constant,
            div: 1,
        }
    }

    /// Scale so the divisor becomes 1: returns `self * divisor()` as a
    /// divisor-free expression (identical to [`Aff::numerator`]).
    pub fn clear_divisor(&self) -> Aff {
        self.numerator()
    }
}

impl Add for Aff {
    type Output = Aff;
    fn add(self, rhs: Aff) -> Aff {
        let d1 = self.div;
        let d2 = rhs.div;
        let l = d1 / gcd(d1, d2).max(1) * d2; // lcm
        let (s1, s2) = (l / d1, l / d2);
        let mut out = Aff {
            terms: vec![],
            constant: 0,
            div: l,
        };
        for (v, c) in self.terms {
            out.add_term(v, c * s1);
        }
        for (v, c) in rhs.terms {
            out.add_term(v, c * s2);
        }
        out.constant = self.constant * s1 + rhs.constant * s2;
        out.normalize();
        out
    }
}

impl Sub for Aff {
    type Output = Aff;
    fn sub(self, rhs: Aff) -> Aff {
        self + (-rhs)
    }
}

impl Neg for Aff {
    type Output = Aff;
    fn neg(mut self) -> Aff {
        for t in &mut self.terms {
            t.1 = -t.1;
        }
        self.constant = -self.constant;
        self
    }
}

impl Mul<Int> for Aff {
    type Output = Aff;
    fn mul(mut self, k: Int) -> Aff {
        if k == 0 {
            return Aff::konst(0);
        }
        for t in &mut self.terms {
            t.1 *= k;
        }
        self.constant *= k;
        self.normalize();
        self
    }
}

impl fmt::Debug for Aff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = |v: VarKey| match v {
            VarKey::Param(p) => format!("p{}", p.0),
            VarKey::Loop(l) => format!("L{}", l.0),
        };
        write!(f, "{}", self.display_with(&name))
    }
}

impl Aff {
    /// Render with names supplied by `name`.
    pub fn display_with<'a>(&'a self, name: &'a dyn Fn(VarKey) -> String) -> AffDisplay<'a> {
        AffDisplay { aff: self, name }
    }
}

/// Helper for [`Aff::display_with`].
pub struct AffDisplay<'a> {
    aff: &'a Aff,
    name: &'a dyn Fn(VarKey) -> String,
}

impl fmt::Display for AffDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.aff.div != 1 {
            write!(f, "(")?;
        }
        let mut first = true;
        for &(v, c) in &self.aff.terms {
            let n = (self.name)(v);
            if first {
                match c {
                    1 => write!(f, "{n}")?,
                    -1 => write!(f, "-{n}")?,
                    _ => write!(f, "{c}*{n}")?,
                }
                first = false;
            } else if c == 1 {
                write!(f, " + {n}")?;
            } else if c == -1 {
                write!(f, " - {n}")?;
            } else if c > 0 {
                write!(f, " + {c}*{n}")?;
            } else {
                write!(f, " - {}*{n}", -c)?;
            }
        }
        let k = self.aff.constant;
        if first {
            write!(f, "{k}")?;
        } else if k > 0 {
            write!(f, " + {k}")?;
        } else if k < 0 {
            write!(f, " - {}", -k)?;
        }
        if self.aff.div != 1 {
            write!(f, ")/{}", self.aff.div)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{LoopId, ParamId};

    fn l(i: usize) -> VarKey {
        VarKey::Loop(LoopId(i))
    }
    fn p(i: usize) -> VarKey {
        VarKey::Param(ParamId(i))
    }

    #[test]
    fn arithmetic_and_dedup() {
        let a = Aff::var(l(0)) + Aff::var(l(1)) * 2 + Aff::konst(3);
        let b = Aff::var(l(0)) * -1 + Aff::var(l(1)) + Aff::konst(1);
        let s = a.clone() + b;
        assert_eq!(s.coeff(l(0)), 0);
        assert_eq!(s.coeff(l(1)), 3);
        assert_eq!(s.constant(), 4);
        assert_eq!(s.terms().len(), 1); // zero coefficient removed
        let d = a.clone() - a;
        assert!(d.is_constant());
        assert_eq!(d.constant(), 0);
    }

    #[test]
    fn eval_simple() {
        let e = Aff::var(l(0)) * 2 - Aff::var(p(0)) + Aff::konst(1);
        let lookup = |v: VarKey| match v {
            VarKey::Loop(LoopId(0)) => 5,
            VarKey::Param(ParamId(0)) => 3,
            _ => unreachable!(),
        };
        assert_eq!(e.eval(&lookup), Rational::int(8));
        assert_eq!(e.eval_int(&lookup), Some(8));
    }

    #[test]
    fn division_semantics() {
        let e = (Aff::var(l(0)) + Aff::var(l(1))).exact_div(2);
        let mk = |a: Int, b: Int| move |v: VarKey| if v == l(0) { a } else { b };
        assert_eq!(e.eval_int(&mk(3, 5)), Some(4));
        assert_eq!(e.eval_int(&mk(3, 4)), None);
        assert_eq!(e.eval(&mk(3, 4)), Rational::new(7, 2));
    }

    #[test]
    fn divisor_normalization() {
        // (2x + 4)/2 == x + 2
        let e = (Aff::var(l(0)) * 2 + Aff::konst(4)).exact_div(2);
        assert_eq!(e.divisor(), 1);
        assert_eq!(e.coeff(l(0)), 1);
        assert_eq!(e.constant(), 2);
    }

    #[test]
    fn add_with_divisors() {
        // x/2 + x/3 = 5x/6
        let a = Aff::var(l(0)).exact_div(2);
        let b = Aff::var(l(0)).exact_div(3);
        let s = a + b;
        assert_eq!(s.divisor(), 6);
        assert_eq!(s.coeff(l(0)), 5);
    }

    #[test]
    fn substitute_loops_basic() {
        // expr = i + 2j + 1 with i := u - v, j := v  =>  u + v + 1
        let e = Aff::var(l(0)) + Aff::var(l(1)) * 2 + Aff::konst(1);
        let r = e.substitute_loops(&|id: LoopId| match id.0 {
            0 => Aff::var(l(10)) - Aff::var(l(11)),
            1 => Aff::var(l(11)),
            _ => unreachable!(),
        });
        assert_eq!(r.coeff(l(10)), 1);
        assert_eq!(r.coeff(l(11)), 1);
        assert_eq!(r.constant(), 1);
        assert_eq!(r.divisor(), 1);
    }

    #[test]
    fn substitute_loops_with_divisor() {
        // expr = i, i := u/2  =>  u/2
        let e = Aff::var(l(0)) + Aff::param(ParamId(0));
        let r = e.substitute_loops(&|_| Aff::var(l(10)).exact_div(2));
        assert_eq!(r.divisor(), 2);
        assert_eq!(r.coeff(l(10)), 1);
        assert_eq!(r.coeff(p(0)), 2);
    }

    #[test]
    fn display_names() {
        let name = |v: VarKey| match v {
            VarKey::Loop(LoopId(0)) => "i".to_string(),
            VarKey::Loop(LoopId(1)) => "j".to_string(),
            VarKey::Param(ParamId(0)) => "N".to_string(),
            _ => "?".to_string(),
        };
        let e = Aff::param(ParamId(0)) - Aff::var(l(0)) - Aff::konst(1);
        assert_eq!(format!("{}", e.display_with(&name)), "N - i - 1");
        let d = (Aff::var(l(0)) + Aff::var(l(1))).exact_div(2);
        assert_eq!(format!("{}", d.display_with(&name)), "(i + j)/2");
    }
}
