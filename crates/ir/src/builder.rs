//! Fluent construction of [`Program`]s.

use crate::aff::{Aff, VarKey};
use crate::expr::{Access, Expr};
use crate::program::{
    ArrayDecl, ArrayId, Bound, Guard, LoopDecl, LoopId, Node, ParamId, Program, StmtDecl, StmtId,
};
use inl_linalg::Int;

/// Builds a [`Program`] with nested closures mirroring the loop structure.
///
/// See the crate-level example. Loops opened with [`ProgramBuilder::hloop`]
/// have inclusive `do lo..hi` bounds and unit step, matching the paper's
/// pseudo-code.
pub struct ProgramBuilder {
    name: String,
    params: Vec<String>,
    loops: Vec<LoopDecl>,
    stmts: Vec<StmtDecl>,
    arrays: Vec<ArrayDecl>,
    root: Vec<Node>,
    stack: Vec<LoopId>,
    assumes: Vec<Aff>,
}

impl ProgramBuilder {
    /// Start a new program.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            params: Vec::new(),
            loops: Vec::new(),
            stmts: Vec::new(),
            arrays: Vec::new(),
            root: Vec::new(),
            stack: Vec::new(),
            assumes: Vec::new(),
        }
    }

    /// Declare a symbolic parameter, assumed `≥ 1`.
    pub fn param(&mut self, name: impl Into<String>) -> ParamId {
        self.params.push(name.into());
        let p = ParamId(self.params.len() - 1);
        self.assumes.push(Aff::param(p) - Aff::konst(1));
        p
    }

    /// Add an assumption `aff ≥ 0` on the parameters.
    pub fn assume(&mut self, aff: Aff) {
        self.assumes.push(aff);
    }

    /// Declare an array with the given per-dimension extents (affine in
    /// parameters).
    pub fn array(&mut self, name: impl Into<String>, dims: &[Aff]) -> ArrayId {
        self.arrays.push(ArrayDecl {
            name: name.into(),
            dims: dims.to_vec(),
        });
        ArrayId(self.arrays.len() - 1)
    }

    /// Open a `do name = lo..hi` loop (inclusive bounds, step 1), build its
    /// body in the closure, and close it.
    pub fn hloop(
        &mut self,
        name: impl Into<String>,
        lo: Aff,
        hi: Aff,
        body: impl FnOnce(&mut Self),
    ) -> LoopId {
        self.loop_full(name, Bound::single(lo), Bound::single(hi), 1, false, body)
    }

    /// Open a loop with general bounds (max-of-ceilings lower,
    /// min-of-floors upper), a step, and a parallel flag.
    pub fn loop_full(
        &mut self,
        name: impl Into<String>,
        lower: Bound,
        upper: Bound,
        step: Int,
        parallel: bool,
        body: impl FnOnce(&mut Self),
    ) -> LoopId {
        let id = LoopId(self.loops.len());
        self.loops.push(LoopDecl {
            name: name.into(),
            lower,
            upper,
            step,
            children: Vec::new(),
            parallel,
        });
        self.attach(Node::Loop(id));
        self.stack.push(id);
        body(self);
        self.stack.pop();
        id
    }

    /// Look up an *open* (currently enclosing) loop's variable by name.
    ///
    /// # Panics
    /// If no enclosing loop has that name.
    pub fn loop_var(&self, name: &str) -> VarKey {
        for &l in self.stack.iter().rev() {
            if self.loops[l.0].name == name {
                return VarKey::Loop(l);
            }
        }
        panic!("no enclosing loop named {name}");
    }

    /// The innermost currently-open loop.
    pub fn current_loop(&self) -> Option<LoopId> {
        self.stack.last().copied()
    }

    /// Add an atomic statement `array[idxs] = rhs` at the current position.
    pub fn stmt(
        &mut self,
        name: impl Into<String>,
        array: ArrayId,
        idxs: Vec<Aff>,
        rhs: Expr,
    ) -> StmtId {
        self.stmt_guarded(name, array, idxs, rhs, Vec::new())
    }

    /// Add a guarded atomic statement.
    pub fn stmt_guarded(
        &mut self,
        name: impl Into<String>,
        array: ArrayId,
        idxs: Vec<Aff>,
        rhs: Expr,
        guards: Vec<Guard>,
    ) -> StmtId {
        let id = StmtId(self.stmts.len());
        self.stmts.push(StmtDecl {
            name: name.into(),
            write: Access { array, idxs },
            rhs,
            guards,
        });
        self.attach(Node::Stmt(id));
        id
    }

    fn attach(&mut self, node: Node) {
        match self.stack.last() {
            Some(&l) => self.loops[l.0].children.push(node),
            None => self.root.push(node),
        }
    }

    /// Finish, validating structural invariants.
    ///
    /// # Panics
    /// If validation fails (programming error in the builder calls).
    pub fn finish(self) -> Program {
        let p = self.finish_unchecked();
        if let Err(e) = p.validate() {
            panic!("invalid program {}: {e}", p.name());
        }
        p
    }

    /// Finish without validation (for tests that construct invalid
    /// programs deliberately).
    pub fn finish_unchecked(self) -> Program {
        assert!(self.stack.is_empty(), "finish called with open loops");
        Program {
            name: self.name,
            params: self.params,
            loops: self.loops,
            stmts: self.stmts,
            arrays: self.arrays,
            root: self.root,
            assumes: self.assumes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_structure() {
        let mut b = ProgramBuilder::new("t");
        let n = b.param("N");
        let a = b.array("A", &[Aff::param(n)]);
        b.hloop("I", Aff::konst(0), Aff::param(n) - Aff::konst(1), |b| {
            let i = b.loop_var("I");
            b.stmt("S1", a, vec![Aff::var(i)], Expr::konst(0.0));
            b.hloop("J", Aff::konst(0), Aff::var(i), |b| {
                let j = b.loop_var("J");
                b.stmt("S2", a, vec![Aff::var(j)], Expr::read(a, vec![Aff::var(j)]));
            });
            b.stmt("S3", a, vec![Aff::var(i)], Expr::konst(1.0));
        });
        let p = b.finish();
        assert_eq!(p.root().len(), 1);
        let Node::Loop(outer) = p.root()[0] else {
            panic!()
        };
        assert_eq!(p.loop_decl(outer).children.len(), 3);
        let names: Vec<_> = p
            .stmts_in_syntactic_order()
            .iter()
            .map(|&s| p.stmt_decl(s).name.clone())
            .collect();
        assert_eq!(names, vec!["S1", "S2", "S3"]);
    }

    #[test]
    #[should_panic(expected = "no enclosing loop")]
    fn loop_var_out_of_scope() {
        let mut b = ProgramBuilder::new("t");
        let n = b.param("N");
        b.hloop("I", Aff::konst(1), Aff::param(n), |_| {});
        let _ = b.loop_var("I"); // loop is closed now
    }

    #[test]
    fn multiple_top_level_loops() {
        let mut b = ProgramBuilder::new("t");
        let n = b.param("N");
        let a = b.array("A", &[Aff::param(n) + Aff::konst(1)]);
        b.hloop("I", Aff::konst(1), Aff::param(n), |b| {
            let i = b.loop_var("I");
            b.stmt("S1", a, vec![Aff::var(i)], Expr::konst(1.0));
        });
        b.hloop("I2", Aff::konst(1), Aff::param(n), |b| {
            let i = b.loop_var("I2");
            b.stmt("S2", a, vec![Aff::var(i)], Expr::konst(2.0));
        });
        let p = b.finish();
        assert_eq!(p.root().len(), 2);
    }
}
